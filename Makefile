GO ?= go

.PHONY: all build test race lint vet varlint docscheck lintgraph persistence drift cluster benchcheck benchcheck-update fuzz cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI lint shard: vet plus the repository's own
# analyzer suite and the package-docs floor. The findings cache makes
# warm re-runs near-instant; `make clean` drops it.
lint: vet varlint docscheck

vet:
	$(GO) vet ./...

varlint:
	$(GO) run ./cmd/varlint -cache .varlint-cache ./...

# lintgraph prints the //perf:hotpath reachability report: the roots,
# every function the call graph proves reachable from them (with one
# provenance chain each), and the //perf:pooled boundaries that stop
# propagation. CI uploads it as an artifact on every run.
lintgraph:
	$(GO) run ./cmd/varlint -hotreport ./...

# docscheck enforces the documentation floor: every internal package
# must carry a `// Package <name>` comment (conventionally in doc.go).
docscheck:
	@fail=0; \
	for dir in $$(find internal -type d ! -path '*testdata*'); do \
	  ls $$dir/*.go >/dev/null 2>&1 || continue; \
	  grep -q '^// Package ' $$dir/*.go || \
	    { echo "docscheck: $$dir has no package comment"; fail=1; }; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docscheck: every internal package has a package comment"

# persistence mirrors the CI model-store shard: save -> restart -> load
# -> predict round trips, format damage handling, and registry
# semantics, bypassing the test cache.
persistence:
	$(GO) test -count=1 -run 'Persistence|Registry|Store|Loaded|Decode|Encode|Fingerprint|Key' ./internal/modelstore/ ./internal/core/

# drift mirrors the CI streaming-ingest shard: windowed drift
# detection, breaker-guarded background refits, copy-on-write merges,
# and the measurement ingest handlers, under the race detector and
# bypassing the test cache.
drift:
	$(GO) test -race -count=1 ./internal/drift/
	$(GO) test -race -count=1 -run 'Measurements|Drift|Refit|Ingest|BodyCap|Batch' ./internal/serve/ ./internal/core/ ./internal/faults/

# cluster mirrors the CI sharded-serving shard: consistent-hash ring
# property tests, router failover/hot-swap concurrency under the race
# detector, and the deterministic multi-replica simulation invariants
# (single owner, bounded imbalance, minimal remap, zero lost requests,
# near-linear virtual-time scaling), bypassing the test cache.
cluster:
	$(GO) test -race -count=1 ./internal/cluster/...

# benchcheck guards the tier-1 hot paths (batch prediction, KS/W1
# kernels) against BENCH_baseline.json; >20% ns/op regressions fail.
# Refresh the baseline deliberately with benchcheck-update.
benchcheck:
	$(GO) run ./cmd/benchcheck

benchcheck-update:
	$(GO) run ./cmd/benchcheck -update

# fuzz smokes every fuzz target for 10s each (Go permits one -fuzz
# target per invocation).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/measure -run '^$$' -fuzz '^FuzzValidateRuns$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzPredictRequestDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzBatchPredictRequestDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzMeasurementsRequestDecode$$' -fuzztime $(FUZZTIME)

# cover prints per-package coverage and enforces the internal/obs gate
# (the observability layer must stay >= 80% covered).
cover:
	$(GO) test -cover ./... | grep -v 'no test files'
	@pct=$$($(GO) test -cover ./internal/obs | grep -o 'coverage: [0-9.]*' | grep -o '[0-9.]*'); \
	echo "internal/obs coverage: $$pct% (gate: 80%)"; \
	awk -v p="$$pct" 'BEGIN { exit (p >= 80 ? 0 : 1) }' || \
	  { echo "FAIL: internal/obs coverage below 80%"; exit 1; }

clean:
	rm -rf .varlint-cache
