GO ?= go

.PHONY: all build test race lint vet varlint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI lint shard: vet plus the repository's own
# analyzer suite. The findings cache makes warm re-runs near-instant;
# `make clean` drops it.
lint: vet varlint

vet:
	$(GO) vet ./...

varlint:
	$(GO) run ./cmd/varlint -cache .varlint-cache ./...

clean:
	rm -rf .varlint-cache
