// Package repro's root benchmark harness regenerates every results
// figure of the paper (Figures 1 and 3–9) and times the ablations called
// out in DESIGN.md. Each BenchmarkFigN target runs the corresponding
// experiment end-to-end on a shared reduced campaign and logs the
// headline paper-vs-measured numbers (visible with `go test -bench
// -v`); absolute timings document the cost of each experiment.
//
// The full paper-scale regeneration is `go run ./cmd/experiments`.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/ml/knn"
	"repro/internal/perfsim"
	"repro/internal/report"
	"repro/internal/stats"
)

var (
	benchOnce sync.Once
	benchDB   *measure.Database
	benchErr  error
)

// benchCampaign collects the shared reduced campaign used by all
// benchmarks: every Table I benchmark on both systems, 200 distribution
// runs and 110 probe runs each (enough for the Figure 6 sweep).
func benchCampaign(b *testing.B) *measure.Database {
	b.Helper()
	benchOnce.Do(func() {
		benchDB, benchErr = measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI(),
			measure.Config{Runs: 200, ProbeRuns: 110, Seed: 1},
		)
	})
	if benchErr != nil {
		b.Fatalf("campaign: %v", benchErr)
	}
	return benchDB
}

// benchOpts keeps the ensembles small enough for a single-core bench run
// while preserving every comparison the figures make.
func benchOpts() report.Options {
	return report.Options{
		Seed: 1, Samples: 10, Bins: 30,
		ForestTrees: 20, XGBRounds: 10, XGBDepth: 2,
		SweepSamples: []int{1, 2, 5, 10, 25, 100},
	}
}

// runFigure is the shared driver: regenerate the figure b.N times and
// log its headlines once.
func runFigure(b *testing.B, id string) {
	db := benchCampaign(b)
	fig := report.Figures()[id]
	if fig == nil {
		b.Fatalf("unknown figure %s", id)
	}
	b.ResetTimer()
	var last *report.Result
	for i := 0; i < b.N; i++ {
		r, err := fig(db, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	for _, h := range last.Headlines {
		paper := "-"
		if h.Paper != 0 {
			paper = fmt.Sprintf("%.3f", h.Paper)
		}
		b.Logf("%s: paper=%s measured=%.3f", h.Name, paper, h.Measured)
	}
}

// BenchmarkFig1SampleSizes regenerates Figure 1: SPEC OMP 376 measured
// from 1,000/2/3/5/10 samples and predicted from 10.
func BenchmarkFig1SampleSizes(b *testing.B) { runFigure(b, "fig1") }

// BenchmarkFig3AllDistributions regenerates Figure 3: the relative-time
// distributions of all 60 benchmarks on the Intel system.
func BenchmarkFig3AllDistributions(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFig4RepsModels regenerates Figure 4: UC1 KS violins for every
// representation × model combination.
func BenchmarkFig4RepsModels(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig5Overlays regenerates Figure 5: UC1 predicted-vs-actual
// overlays across the KS spectrum.
func BenchmarkFig5Overlays(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig6SampleSweep regenerates Figure 6: UC1 KS as a function of
// the number of profile runs.
func BenchmarkFig6SampleSweep(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7CrossSystem regenerates Figure 7: UC2 KS violins
// (AMD → Intel) for every representation × model combination.
func BenchmarkFig7CrossSystem(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8Direction regenerates Figure 8: UC2 KS for both
// prediction directions.
func BenchmarkFig8Direction(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9Overlays regenerates Figure 9: UC2 predicted-vs-actual
// overlays (AMD → Intel).
func BenchmarkFig9Overlays(b *testing.B) { runFigure(b, "fig9") }

// ---- Ablations (DESIGN.md section 5) ----

// uc1Mean evaluates UC1 with kNN + PearsonRnd under a config mutation
// and returns the mean KS.
func uc1Mean(b *testing.B, mutate func(*core.UC1Config)) float64 {
	db := benchCampaign(b)
	intel, ok := db.System("intel")
	if !ok {
		b.Fatal("intel system missing")
	}
	cfg := core.UC1Config{
		Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: 10, Seed: 1,
	}
	mutate(&cfg)
	scores, err := core.EvaluateUC1(intel, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return stats.Mean(core.KSValues(scores))
}

// BenchmarkAblationKNNMetric compares the paper's cosine distance with
// Euclidean and Manhattan (the paper reports cosine winning).
func BenchmarkAblationKNNMetric(b *testing.B) {
	metrics := []knn.Metric{knn.Cosine, knn.Euclidean, knn.Manhattan}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range metrics {
			mean := uc1Mean(b, func(c *core.UC1Config) {
				c.Models.KNNMetric = m
				c.Models.KNNMetricSet = true
			})
			if i == b.N-1 {
				b.Logf("kNN metric %-9s: mean KS = %.3f", m, mean)
			}
		}
	}
}

// BenchmarkAblationKNNK sweeps k around the paper's k = 15.
func BenchmarkAblationKNNK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []int{1, 5, 15, 30, 59} {
			mean := uc1Mean(b, func(c *core.UC1Config) { c.Models.KNNK = k })
			if i == b.N-1 {
				b.Logf("kNN k=%-3d: mean KS = %.3f", k, mean)
			}
		}
	}
}

// BenchmarkAblationFeatureMoments compares the full 4-moment profile
// features with mean-only features (the paper found moments beyond the
// fourth insignificant; this probes the other direction).
func BenchmarkAblationFeatureMoments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := uc1Mean(b, func(c *core.UC1Config) {})
		meanOnly := uc1Mean(b, func(c *core.UC1Config) { c.FeatureMeanOnly = true })
		if i == b.N-1 {
			b.Logf("profile features: 4 moments = %.3f, mean-only = %.3f", full, meanOnly)
		}
	}
}

// BenchmarkAblationHistogramBins sweeps the Histogram representation's
// bin count.
func BenchmarkAblationHistogramBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bins := range []int{10, 30, 50, 100} {
			mean := uc1Mean(b, func(c *core.UC1Config) {
				c.Rep = distrep.Histogram
				c.Bins = bins
			})
			if i == b.N-1 {
				b.Logf("histogram bins=%-3d: mean KS = %.3f", bins, mean)
			}
		}
	}
}

// ---- Extension experiments (DESIGN.md and the paper's future work) ----

// BenchmarkExt1ModelBaselines runs the extended model comparison
// including the Ridge linear baseline.
func BenchmarkExt1ModelBaselines(b *testing.B) { runExtension(b, "ext1") }

// BenchmarkExt2QuantileRepresentation runs the extended representation
// comparison including the Quantile representation.
func BenchmarkExt2QuantileRepresentation(b *testing.B) { runExtension(b, "ext2") }

// BenchmarkExt3DivergenceRobustness rescores the headline comparison
// under four additional divergences.
func BenchmarkExt3DivergenceRobustness(b *testing.B) { runExtension(b, "ext3") }

// BenchmarkExt4AdaptiveCost compares the fixed prediction budget with
// the adaptive stopping rule's measured run cost.
func BenchmarkExt4AdaptiveCost(b *testing.B) { runExtension(b, "ext4") }

// BenchmarkExt5FeatureImportance computes the random-forest gain
// importance of the profile metrics.
func BenchmarkExt5FeatureImportance(b *testing.B) { runExtension(b, "ext5") }

func runExtension(b *testing.B, id string) {
	db := benchCampaign(b)
	fig := report.Extensions()[id]
	if fig == nil {
		b.Fatalf("unknown extension %s", id)
	}
	b.ResetTimer()
	var last *report.Result
	for i := 0; i < b.N; i++ {
		r, err := fig(db, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	for _, h := range last.Headlines {
		b.Logf("%s: measured=%.3f", h.Name, h.Measured)
	}
}
