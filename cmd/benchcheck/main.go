// Command benchcheck is the benchmark regression guard: it runs the
// tier-1 hot-path benchmarks (batch prediction and the KS/W1 scoring
// kernels), compares the best-of-N ns/op against the committed
// BENCH_baseline.json, and exits nonzero when any guarded benchmark
// slowed down beyond the threshold.
//
// Usage:
//
//	go run ./cmd/benchcheck                  # compare against the baseline
//	go run ./cmd/benchcheck -update          # re-measure and rewrite it
//	go run ./cmd/benchcheck -max-regress 0.5 # looser bar (noisy CI boxes)
//
// CI runs this as a blocking gate. Absolute ns/op moves with the host,
// so the CI invocation passes a loose -max-regress: the gate exists to
// catch large accidents — a lost fast path, an accidental O(n^2), the
// SIMD kernel silently disabled — not single-digit drift. Re-measure
// with -update on the reference box when a deliberate change shifts
// the hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// targets lists the guarded benchmarks. Keep this in sync with the
// "Benchmark regression guard" section of README.md.
var targets = []struct {
	pkg   string // package path passed to go test
	bench string // -bench regexp
}{
	{"./internal/ml", "^(BenchmarkPredictBatch|BenchmarkPredictBatchForest|BenchmarkPredictBatchXGB|BenchmarkPredictBatchTraced|BenchmarkKNNFitPredict)$"},
	{"./internal/stats", "^(BenchmarkKSStatistic1000|BenchmarkWasserstein1)$"},
}

// Baseline is the committed measurement set.
type Baseline struct {
	Note    string             `json:"note,omitempty"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		maxRegress   = flag.Float64("max-regress", 0.20, "fail when ns/op exceeds baseline by more than this fraction")
		benchtime    = flag.String("benchtime", "0.3s", "per-benchmark -benchtime")
		count        = flag.Int("count", 5, "-count repetitions (best of N is compared)")
	)
	flag.Parse()

	current, err := measure(*benchtime, *count)
	if err != nil {
		log.Fatal(err)
	}
	if len(current) == 0 {
		log.Fatal("no benchmark results parsed")
	}

	if *update {
		b := Baseline{
			Note:    "best-of-N ns/op from `go run ./cmd/benchcheck -update`; host-dependent, refresh when hardware changes",
			NsPerOp: current,
		}
		blob, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d benchmarks)", *baselinePath, len(current))
		return
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatalf("read baseline (create with -update): %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		log.Fatalf("parse %s: %v", *baselinePath, err)
	}

	failed := false
	for _, name := range sortedKeys(current) {
		cur := current[name]
		want, ok := base.NsPerOp[name]
		if !ok {
			fmt.Printf("NEW   %-32s %12.0f ns/op (not in baseline; run -update)\n", name, cur)
			continue
		}
		if want <= 0 {
			fmt.Printf("SKIP  %-32s baseline is %v\n", name, want)
			continue
		}
		ratio := cur / want
		switch {
		case ratio > 1+*maxRegress:
			fmt.Printf("FAIL  %-32s %12.0f ns/op vs baseline %.0f (%+.1f%%, limit %+.0f%%)\n",
				name, cur, want, (ratio-1)*100, *maxRegress*100)
			failed = true
		default:
			fmt.Printf("ok    %-32s %12.0f ns/op vs baseline %.0f (%+.1f%%)\n",
				name, cur, want, (ratio-1)*100)
		}
	}
	for _, name := range sortedKeys(base.NsPerOp) {
		if _, ok := current[name]; !ok {
			fmt.Printf("GONE  %-32s in baseline but not measured (renamed? run -update)\n", name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// measure runs every guarded benchmark and returns the best-of-count
// ns/op per benchmark name (suffix-stripped). Best-of is the standard
// noise reducer: scheduling delays only ever make a run slower.
func measure(benchtime string, count int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, tgt := range targets {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", tgt.bench, "-benchtime", benchtime,
			"-count", strconv.Itoa(count), tgt.pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w\n%s", tgt.pkg, err, raw)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			name, ns, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if prev, seen := out[name]; !seen || ns < prev {
				out[name] = ns
			}
		}
	}
	return out, nil
}

// parseBenchLine extracts (name, ns/op) from one testing benchmark
// output line, e.g. "BenchmarkPredictBatch-8   218   1062789 ns/op".
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || ns <= 0 {
		return "", 0, false
	}
	return name, ns, true
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
