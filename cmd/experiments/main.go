// Command experiments regenerates the paper's results figures
// (Figures 1 and 3–9) from a measurement campaign and prints each as a
// terminal figure plus its data series and a paper-vs-measured summary.
// With -ext it also runs the extension experiments, including the ext6
// fault-tolerance sweep (UC1 accuracy vs injected fault rate under
// ingest quarantine, with and without counter repair).
//
// Usage:
//
//	experiments                         # full campaign, all figures
//	experiments -fig 4,6                # only Figures 4 and 6
//	experiments -db campaign.gob.gz     # reuse a saved campaign
//	experiments -runs 300 -fast         # reduced scale for quick runs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		dbPath = flag.String("db", "", "measurement database from varcollect (collected on the fly when empty)")
		figSel = flag.String("fig", "all", "comma-separated figure numbers or extension ids (e.g. \"1,4,ext6\") or \"all\"")
		ext    = flag.Bool("ext", false, "also run the extension experiments (ext1-ext6)")
		runs   = flag.Int("runs", 1000, "campaign runs per benchmark when collecting on the fly")
		probes = flag.Int("probes", 120, "campaign probe runs per benchmark")
		seed   = flag.Uint64("seed", 1, "seed for campaign and models")
		fast   = flag.Bool("fast", false, "shrink ensembles and the sample sweep for quick runs")
		outDir = flag.String("out", "", "also write each figure's text to <out>/<fig>.txt")
		procs  = flag.Int("procs", 0, "GOMAXPROCS for parallel training/prediction (0 = all cores)")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	var db *measure.Database
	var err error
	if *dbPath != "" {
		fmt.Printf("loading campaign from %s...\n", *dbPath)
		db, err = measure.Load(*dbPath)
	} else {
		fmt.Printf("collecting campaign: %d runs + %d probes x 60 benchmarks x 2 systems...\n", *runs, *probes)
		start := randx.SystemClock()
		db, err = measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI(),
			measure.Config{Runs: *runs, ProbeRuns: *probes, Seed: *seed},
		)
		if err == nil {
			fmt.Printf("campaign collected in %v\n", randx.SystemClock.Since(start).Round(time.Millisecond))
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	opts := report.Options{Seed: *seed}
	if *fast {
		opts.ForestTrees = 15
		opts.XGBRounds = 8
		opts.Bins = 20
		opts.SweepSamples = []int{1, 3, 10, 50}
	}

	ids := report.FigureIDs()
	figs := report.Figures()
	for k, v := range report.Extensions() {
		figs[k] = v
	}
	ids = append(ids, report.ExtensionIDs()...)

	wanted := map[string]bool{}
	if *figSel == "all" {
		for _, id := range report.FigureIDs() {
			wanted[id] = true
		}
		if *ext {
			for _, id := range report.ExtensionIDs() {
				wanted[id] = true
			}
		}
	} else {
		for _, tok := range strings.Split(*figSel, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			id := tok
			if !strings.HasPrefix(tok, "ext") {
				id = "fig" + strings.TrimPrefix(tok, "fig")
			}
			if _, ok := figs[id]; !ok {
				log.Fatalf("unknown figure %q (have 1, 3, 4, 5, 6, 7, 8, 9, ext1-ext6)", tok)
			}
			wanted[id] = true
		}
	}
	for _, id := range ids {
		if !wanted[id] {
			continue
		}
		start := randx.SystemClock()
		result, err := figs[id](db, opts)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		text := report.Render(result)
		fmt.Println(text)
		fmt.Printf("(%s regenerated in %v)\n\n", id, randx.SystemClock.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := *outDir + "/" + id + ".txt"
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}
