// Command varcollect runs the measurement campaign — every Table I
// benchmark, both systems, a configurable number of repetitions — and
// persists the resulting database for the other tools.
//
// Usage:
//
//	varcollect -out campaign.gob.gz [-runs 1000] [-probes 120] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("varcollect: ")
	var (
		out    = flag.String("out", "campaign.gob.gz", "output database path")
		runs   = flag.Int("runs", 1000, "distribution-measurement runs per benchmark (the paper uses 1000)")
		probes = flag.Int("probes", 120, "extra probe runs per benchmark for few-run profiles")
		seed   = flag.Uint64("seed", 1, "campaign seed")
		csvDir = flag.String("csv", "", "also export per-system relative-time CSVs into this directory")
	)
	flag.Parse()

	systems := []*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()}
	workloads := perfsim.TableI()
	fmt.Printf("collecting %d runs + %d probes for %d benchmarks on %d systems (seed %d)...\n",
		*runs, *probes, len(workloads), len(systems), *seed)
	start := randx.SystemClock()
	db, err := measure.Collect(systems, workloads, measure.Config{
		Runs: *runs, ProbeRuns: *probes, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s in %v\n", *out, randx.SystemClock.Since(start).Round(time.Millisecond))
	for i := range db.Systems {
		sd := &db.Systems[i]
		fmt.Printf("  system %-6s: %d benchmarks x %d runs, %d metrics each\n",
			sd.SystemName, len(sd.Benchmarks), *runs, len(sd.MetricNames))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvDir, "reltimes_"+sd.SystemName+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := sd.ExportRelTimesCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
}
