// Command varcollect runs the measurement campaign — every Table I
// benchmark, both systems, a configurable number of repetitions — and
// persists the resulting database for the other tools.
//
// Usage:
//
//	varcollect -out campaign.gob.gz [-runs 1000] [-probes 120] [-seed 1]
//
// With -trace the collect/save/export phases are timed as an obs span
// tree and printed at the end.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("varcollect: ")
	var (
		out    = flag.String("out", "campaign.gob.gz", "output database path")
		runs   = flag.Int("runs", 1000, "distribution-measurement runs per benchmark (the paper uses 1000)")
		probes = flag.Int("probes", 120, "extra probe runs per benchmark for few-run profiles")
		seed   = flag.Uint64("seed", 1, "campaign seed")
		csvDir = flag.String("csv", "", "also export per-system relative-time CSVs into this directory")
		trace  = flag.Bool("trace", false, "print an obs span tree of the collect/save/export phases")
	)
	flag.Parse()

	// Phase tracing: each stage of the campaign becomes a child span so
	// slow collections show where the time went.
	ctx := context.Background()
	var tracer *obs.Tracer
	var rootSpan *obs.Span
	if *trace {
		tracer = obs.NewTracer(obs.Config{BufferSize: 1})
		ctx, rootSpan = tracer.Start(ctx, "varcollect")
	}

	systems := []*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()}
	workloads := perfsim.TableI()
	fmt.Printf("collecting %d runs + %d probes for %d benchmarks on %d systems (seed %d)...\n",
		*runs, *probes, len(workloads), len(systems), *seed)
	start := randx.SystemClock()
	_, collectSpan := obs.Start(ctx, "collect.measure")
	collectSpan.SetAttr("runs", *runs)
	collectSpan.SetAttr("probes", *probes)
	db, err := measure.Collect(systems, workloads, measure.Config{
		Runs: *runs, ProbeRuns: *probes, Seed: *seed,
	})
	collectSpan.End()
	if err != nil {
		log.Fatal(err)
	}
	_, saveSpan := obs.Start(ctx, "collect.save")
	err = db.Save(*out)
	saveSpan.End()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s in %v\n", *out, randx.SystemClock.Since(start).Round(time.Millisecond))
	for i := range db.Systems {
		sd := &db.Systems[i]
		fmt.Printf("  system %-6s: %d benchmarks x %d runs, %d metrics each\n",
			sd.SystemName, len(sd.Benchmarks), *runs, len(sd.MetricNames))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvDir, "reltimes_"+sd.SystemName+".csv")
			_, exportSpan := obs.Start(ctx, "collect.export")
			exportSpan.SetAttr("path", path)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := sd.ExportRelTimesCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			exportSpan.End()
			fmt.Printf("  wrote %s\n", path)
		}
	}
	if rootSpan != nil {
		rootSpan.End()
		for _, root := range tracer.Traces() {
			fmt.Println("trace:")
			fmt.Println(root.Render())
		}
	}
}
