// Command vardist inspects the measured performance distribution of one
// benchmark on one system: density plot, summary statistics, mode count,
// Pearson-type classification, and straggler-tail diagnostics. It is the
// "look at one application closely" companion to cmd/experiments.
//
// Usage:
//
//	vardist -bench specomp/376 [-system intel] [-runs 1000]
//	vardist -list
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/pearson"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vardist: ")
	var (
		benchID = flag.String("bench", "specomp/376", "benchmark to inspect (suite/name)")
		sysName = flag.String("system", "intel", "system (intel | amd)")
		runs    = flag.Int("runs", 1000, "number of measured runs")
		seed    = flag.Uint64("seed", 1, "measurement seed")
		list    = flag.Bool("list", false, "list all Table I benchmarks and exit")
	)
	flag.Parse()

	if *list {
		ws := perfsim.TableI()
		ids := make([]string, len(ws))
		for i, w := range ws {
			ids[i] = w.ID()
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	var system *perfsim.System
	switch *sysName {
	case "intel":
		system = perfsim.NewIntelSystem()
	case "amd":
		system = perfsim.NewAMDSystem()
	default:
		log.Fatalf("unknown system %q (want intel or amd)", *sysName)
	}
	w, ok := perfsim.FindWorkload(*benchID)
	if !ok {
		log.Fatalf("unknown benchmark %q (use -list)", *benchID)
	}

	bench := perfsim.NewMachine(system).Bench(w)
	rel := stats.Normalize(bench.Dist.SampleN(randx.New(*seed), *runs))
	m := stats.ComputeMoments4(rel)
	modes := stats.NewKDE(rel).CountModes(1024, 0.08)

	fmt.Println(viz.DensityPlot(rel, 72, 12,
		fmt.Sprintf("%s on %s — relative time, %d runs", *benchID, system.Name, *runs)))

	ptype := "infeasible"
	if ty, err := pearson.Classify(m.Skew, m.Kurt); err == nil {
		ptype = ty.String()
	}
	// Overlay the Pearson fit with the measured sample: how much of the
	// shape do four moments retain for this benchmark?
	if fit, err := pearson.New(m); err == nil {
		fitted := fit.SampleN(randx.New(*seed^0xBEEF), len(rel))
		fmt.Println(viz.OverlayPlot(rel, fitted, 72, 10,
			fmt.Sprintf("Pearson %s fit vs measured (KS=%.3f)",
				fit.PType, stats.KSStatistic(rel, fitted))))
	}
	qs := stats.Quantiles(rel, []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99})
	tailRatio := math.NaN() // degenerate sample with p50 = 0
	if qs[2] > 0 {
		tailRatio = qs[5] / qs[2]
	}
	fmt.Println(viz.Table([][]string{
		{"quantity", "value"},
		{"mean seconds", fmt.Sprintf("%.3f", bench.Dist.MeanSeconds())},
		{"relative std", fmt.Sprintf("%.4f", m.Std)},
		{"skewness", fmt.Sprintf("%.3f", m.Skew)},
		{"kurtosis", fmt.Sprintf("%.3f", m.Kurt)},
		{"KDE modes", fmt.Sprint(modes)},
		{"ground-truth modes", fmt.Sprint(bench.Dist.NumModes())},
		{"Pearson type of (skew, kurt)", ptype},
		{"p1 / p25 / p50", fmt.Sprintf("%.4f / %.4f / %.4f", qs[0], qs[1], qs[2])},
		{"p75 / p95 / p99", fmt.Sprintf("%.4f / %.4f / %.4f", qs[3], qs[4], qs[5])},
		{"p99/p50 (tail ratio)", fmt.Sprintf("%.4f", tailRatio)},
	}))
}
