// Command varimportance reports which perf-counter metrics a random
// forest relies on when predicting performance distributions (use
// case 1): per-metric gain importance with the four per-metric moment
// features aggregated. It answers "which counters should I collect if I
// can only afford a few?".
//
// Usage:
//
//	varimportance [-system intel] [-samples 10] [-top 20] [-runs 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("varimportance: ")
	var (
		dbPath  = flag.String("db", "", "measurement database from varcollect (collected on the fly when empty)")
		sysName = flag.String("system", "intel", "system (intel | amd)")
		samples = flag.Int("samples", 10, "profile runs per benchmark")
		top     = flag.Int("top", 20, "number of metrics to report")
		trees   = flag.Int("trees", 100, "forest size")
		runs    = flag.Int("runs", 400, "on-the-fly campaign size")
		seed    = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	var db *measure.Database
	var err error
	if *dbPath != "" {
		db, err = measure.Load(*dbPath)
	} else {
		fmt.Printf("collecting an on-the-fly campaign (%d runs per benchmark)...\n", *runs)
		db, err = measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI(),
			measure.Config{Runs: *runs, ProbeRuns: 120, Seed: *seed},
		)
	}
	if err != nil {
		log.Fatal(err)
	}
	sd, ok := db.System(*sysName)
	if !ok {
		log.Fatalf("database lacks system %q", *sysName)
	}

	names, imp, err := core.FeatureImportanceUC1(sd, core.UC1Config{
		Rep: distrep.PearsonRnd, Model: core.RandomForest, NumSamples: *samples,
		Seed: *seed, Models: core.ModelOptions{ForestTrees: *trees},
	})
	if err != nil {
		log.Fatal(err)
	}

	byMetric := map[string]float64{}
	byMoment := map[string]float64{}
	for i, name := range names {
		metric, moment := name, "mean"
		if cut := strings.LastIndex(name, ":"); cut >= 0 {
			metric, moment = name[:cut], name[cut+1:]
		}
		byMetric[metric] += imp[i]
		byMoment[moment] += imp[i]
	}
	type kv struct {
		name string
		v    float64
	}
	ranked := make([]kv, 0, len(byMetric))
	for k, v := range byMetric {
		ranked = append(ranked, kv{k, v})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].v != ranked[b].v {
			return ranked[a].v > ranked[b].v
		}
		return ranked[a].name < ranked[b].name
	})
	if *top > len(ranked) {
		*top = len(ranked)
	}
	rows := [][]string{{"rank", "metric", "importance"}}
	for i := 0; i < *top; i++ {
		rows = append(rows, []string{fmt.Sprint(i + 1), ranked[i].name, fmt.Sprintf("%.4f", ranked[i].v)})
	}
	fmt.Printf("top %d metrics driving distribution prediction on %s:\n\n", *top, *sysName)
	fmt.Println(viz.Table(rows))
	fmt.Println("importance by feature moment:")
	fmt.Println(viz.Table([][]string{
		{"moment", "importance"},
		{"mean", fmt.Sprintf("%.4f", byMoment["mean"])},
		{"std", fmt.Sprintf("%.4f", byMoment["std"])},
		{"skew", fmt.Sprintf("%.4f", byMoment["skew"])},
		{"kurt", fmt.Sprintf("%.4f", byMoment["kurt"])},
	}))
}
