// Command varlint runs the repository's custom static-analysis suite —
// the machine-checked form of the determinism, float-hygiene, error-
// flow, concurrency, context-propagation, and hot-path allocation
// contracts documented in README ("Static analysis").
//
// Usage:
//
//	go run ./cmd/varlint ./...
//	go run ./cmd/varlint -cache .varlint-cache ./...
//	go run ./cmd/varlint -analyzers nondeterminism,floatcheck ./internal/stats
//	go run ./cmd/varlint -format github ./...
//	go run ./cmd/varlint -fix ./...
//	go run ./cmd/varlint -hotreport ./...
//	go run ./cmd/varlint -list
//
// -format selects text (default), json (the Finding array), or github
// (GitHub Actions ::error workflow commands, consumed by the CI lint
// job). -fix prints the mechanical suggested rewrite under each finding
// that carries one — a dry run; nothing is modified. -hotreport skips
// analysis and prints the //perf:hotpath reachability report from the
// cross-package call graph instead.
//
// Exit status: 0 when clean, 1 on findings, 2 on operational errors
// (including //lint:allow directives without a reason).
//
// Suppressions: `//lint:allow <analyzer> <reason>` on the finding's
// line or the line above. The reason is mandatory. Legacy debt can be
// parked in the baseline file (-baseline, default varlint.baseline; see
// -write-baseline), which this repository keeps empty.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("varlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline      = fs.String("baseline", "varlint.baseline", "baseline file of tolerated legacy findings (missing file = empty)")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the baseline with the current findings and exit 0")
		cacheDir      = fs.String("cache", "", "directory for the per-package findings cache (empty = no cache)")
		names         = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list          = fs.Bool("list", false, "list the analyzers and exit")
		format        = fs.String("format", "text", "output format: text, json, or github")
		fix           = fs.Bool("fix", false, "print mechanical suggested rewrites (dry run; nothing is applied)")
		hotreport     = fs.Bool("hotreport", false, "print the //perf:hotpath reachability report and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			_, _ = fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				_, _ = fmt.Fprintf(stderr, "varlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *hotreport {
		if err := lint.HotReport(stdout, patterns, lint.Config{}); err != nil {
			_, _ = fmt.Fprintf(stderr, "varlint: %v\n", err)
			return 2
		}
		return 0
	}
	n, err := lint.Run(stdout, patterns, lint.Config{
		Analyzers:     suite,
		Baseline:      *baseline,
		CacheDir:      *cacheDir,
		WriteBaseline: *writeBaseline,
		Format:        *format,
		Fix:           *fix,
	})
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "varlint: %v\n", err)
		return 2
	}
	if n > 0 {
		_, _ = fmt.Fprintf(stderr, "varlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
