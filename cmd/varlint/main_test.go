package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepositoryIsClean is the smoke test the CI lint shard mirrors:
// the full analyzer suite over the whole module must produce zero
// findings with an empty baseline. If this fails, either fix the code
// or add a //lint:allow with a reason where the invariant is enforced
// elsewhere.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow")
	}
	var buf bytes.Buffer
	n, err := lint.Run(&buf, []string{"./..."}, lint.Config{Dir: "../.."})
	if err != nil {
		t.Fatalf("varlint: %v", err)
	}
	if n != 0 {
		t.Fatalf("varlint found %d finding(s):\n%s", n, buf.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"nondeterminism", "floatcheck", "errflow", "lockcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", errb.String())
	}
}
