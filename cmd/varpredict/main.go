// Command varpredict predicts the performance distribution of one
// benchmark and overlays it against the measured ground truth —
// the deployment view of both use cases.
//
// Usage:
//
//	varpredict -bench specomp/376                       # use case 1 on Intel
//	varpredict -bench parsec/canneal -usecase 2         # AMD → Intel
//	varpredict -bench npb/bt -rep histogram -model rf   # other designs
//	varpredict -bench npb/bt -model rf -modeldir models/  # persist / reuse the fit
//
// A measurement database can be reused with -db (see varcollect);
// otherwise a reduced campaign is collected on the fly. With -trace the
// prediction runs through the cached predictor under an obs trace and
// the span tree (dataset build, model fit, decode) is printed after the
// overlay — the "where did the time go" view. With -modeldir the fitted
// model is saved to (or loaded back from) a persistent model store, so
// a second run with the same database and settings skips training.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/modelstore"
	"repro/internal/obs"
	"repro/internal/perfsim"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("varpredict: ")
	var (
		dbPath  = flag.String("db", "", "measurement database from varcollect (collected on the fly when empty)")
		bench   = flag.String("bench", "specomp/376", "benchmark to predict (suite/name)")
		usecase = flag.Int("usecase", 1, "1 = few runs on the same system; 2 = cross-system")
		samples = flag.Int("samples", 10, "profile runs for use case 1")
		repName = flag.String("rep", "pearsonrnd", "distribution representation (histogram | pymaxent | pearsonrnd)")
		mdlName = flag.String("model", "knn", "prediction model (knn | rf | xgboost)")
		src     = flag.String("src", "amd", "use case 2 source system")
		dst     = flag.String("dst", "intel", "use case 2 target system")
		runs    = flag.Int("runs", 400, "on-the-fly campaign size when -db is not given")
		seed    = flag.Uint64("seed", 1, "seed")
		procs   = flag.Int("procs", 0, "GOMAXPROCS for parallel training/prediction (0 = all cores)")
		trace   = flag.Bool("trace", false, "print the obs span tree of the prediction (timings per phase)")
		mdlDir  = flag.String("modeldir", "", "persistent model store directory: save the fitted model there, or load it back on a later run (empty = off)")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	rep, err := report.ParseRep(*repName)
	if err != nil {
		log.Fatal(err)
	}
	model, err := report.ParseModel(*mdlName)
	if err != nil {
		log.Fatal(err)
	}

	var db *measure.Database
	if *dbPath != "" {
		db, err = measure.Load(*dbPath)
	} else {
		fmt.Printf("collecting an on-the-fly campaign (%d runs per benchmark)...\n", *runs)
		db, err = measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI(),
			measure.Config{Runs: *runs, ProbeRuns: 120, Seed: *seed},
		)
	}
	if err != nil {
		log.Fatal(err)
	}

	// With -trace the request runs through the cached predictor (the
	// serving path), whose spans land on a local tracer; the results are
	// bit-identical to the batch path for the same seed. -modeldir also
	// routes through the predictor, with a persistent model store
	// attached: the first run fits and saves the model, later runs load
	// it from disk instead of retraining.
	ctx := context.Background()
	var tracer *obs.Tracer
	var rootSpan *obs.Span
	if *trace {
		tracer = obs.NewTracer(obs.Config{BufferSize: 1})
		ctx, rootSpan = tracer.Start(ctx, fmt.Sprintf("varpredict uc%d %s", *usecase, *bench))
	}
	usePredictor := *trace || *mdlDir != ""
	var registry *modelstore.Registry
	newPredictor := func() *core.Predictor {
		p := core.NewPredictor(db)
		if *mdlDir != "" {
			store, err := modelstore.Open(*mdlDir)
			if err != nil {
				log.Fatal(err)
			}
			registry = modelstore.NewRegistry(store, 16)
			p.SetModelStore(registry)
		}
		return p
	}

	var predicted, actual []float64
	var title string
	switch *usecase {
	case 1:
		title = fmt.Sprintf("%s on intel, predicted from %d runs (%s + %s)", *bench, *samples, rep, model)
		cfg := core.UC1Config{Rep: rep, Model: model, NumSamples: *samples, Seed: *seed}
		if usePredictor {
			var p *core.Prediction
			p, err = newPredictor().PredictUC1(ctx, "intel", *bench, cfg)
			if err == nil {
				predicted, actual = p.Predicted, p.Actual
			}
			break
		}
		intel, ok := db.System("intel")
		if !ok {
			log.Fatal("database lacks the intel system")
		}
		predicted, actual, err = core.PredictUC1(intel, *bench, cfg)
	case 2:
		title = fmt.Sprintf("%s: %s → %s (%s + %s)", *bench, *src, *dst, rep, model)
		cfg := core.UC2Config{Rep: rep, Model: model, Seed: *seed}
		if usePredictor {
			var p *core.Prediction
			p, err = newPredictor().PredictUC2(ctx, *src, *dst, *bench, cfg)
			if err == nil {
				predicted, actual = p.Predicted, p.Actual
			}
			break
		}
		srcSys, ok := db.System(*src)
		if !ok {
			log.Fatalf("database lacks system %q", *src)
		}
		dstSys, ok := db.System(*dst)
		if !ok {
			log.Fatalf("database lacks system %q", *dst)
		}
		predicted, actual, err = core.PredictUC2(srcSys, dstSys, *bench, cfg)
	default:
		log.Fatalf("unknown use case %d", *usecase)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rootSpan != nil {
		rootSpan.End()
	}
	if registry != nil {
		ss := registry.Stats()
		switch {
		case ss.DiskHits > 0:
			fmt.Printf("model store %s: loaded the trained model from disk (no refit)\n", registry.Store().Dir())
		case ss.Misses > 0:
			fmt.Printf("model store %s: fitted and saved the trained model\n", registry.Store().Dir())
		default:
			// Ridge and the kNN fallback are never persisted.
			fmt.Printf("model store %s: model kind is not persisted\n", registry.Store().Dir())
		}
	}

	fmt.Println(viz.OverlayPlot(actual, predicted, 72, 12, title))
	pm := stats.ComputeMoments4(predicted)
	am := stats.ComputeMoments4(actual)
	fmt.Println(viz.Table([][]string{
		{"", "KS", "W1", "mean", "std", "skew", "kurt", "modes"},
		{"actual", "", "",
			fmt.Sprintf("%.4f", am.Mean), fmt.Sprintf("%.4f", am.Std),
			fmt.Sprintf("%.2f", am.Skew), fmt.Sprintf("%.2f", am.Kurt),
			fmt.Sprint(stats.NewKDE(actual).CountModes(512, 0.1))},
		{"predicted",
			fmt.Sprintf("%.3f", stats.KSStatistic(predicted, actual)),
			fmt.Sprintf("%.4f", stats.Wasserstein1(predicted, actual)),
			fmt.Sprintf("%.4f", pm.Mean), fmt.Sprintf("%.4f", pm.Std),
			fmt.Sprintf("%.2f", pm.Skew), fmt.Sprintf("%.2f", pm.Kurt),
			fmt.Sprint(stats.NewKDE(predicted).CountModes(512, 0.1))},
	}))
	if tracer != nil {
		for _, root := range tracer.Traces() {
			fmt.Println()
			fmt.Println("trace:")
			fmt.Println(root.Render())
		}
	}
}
