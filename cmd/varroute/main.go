// Command varroute is the cluster frontend: it shards dataset cells
// across N varserve replicas by consistent hashing on the stable
// dataset key, tracks replica health from their /readyz and /v1/status
// endpoints, and fails requests over (with optional hedging) when a
// replica degrades or dies.
//
// Usage:
//
//	varroute -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	varroute -addr :8080 -policy least-loaded -retries 3
//	varroute -replicas ... -hedge 50ms                # tail-latency hedging
//
// Replica ring identities default to "replica-<index>" in flag order;
// start each varserve with the matching -replica flag so its status
// payloads confirm its shard. The frontend exposes the same /v1
// surface as a single varserve (predictions, batch, measurements,
// systems) plus GET /v1/cluster/status for the router's own posture,
// so existing clients — including varserve -loadgen -url — point at it
// unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("varroute: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		replicas   = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		policyName = flag.String("policy", "cache-affinity", "routing policy: cache-affinity | round-robin | least-loaded")
		vnodes     = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
		loadFactor = flag.Float64("loadfactor", cluster.DefaultLoadFactor, "bounded-load ownership factor (>= 1)")
		retries    = flag.Int("retries", cluster.DefaultMaxRetries, "max failover retries per request")
		hedge      = flag.Duration("hedge", 0, "hedge to the next candidate after this long (0 = off)")
		probe      = flag.Duration("probe", cluster.DefaultProbeInterval, "replica health-probe interval")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-replica request timeout")
		drain      = flag.Duration("drain", 5*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()

	urls := splitList(*replicas)
	if len(urls) == 0 {
		log.Fatal("at least one -replicas URL is required")
	}
	policy := cluster.PolicyByName(*policyName)
	if policy == nil {
		log.Fatalf("unknown -policy %q (want cache-affinity, round-robin, or least-loaded)", *policyName)
	}

	metrics := obs.NewRegistry()
	cfg := cluster.Config{
		Policy:        policy,
		VNodes:        *vnodes,
		LoadFactor:    *loadFactor,
		MaxRetries:    *retries,
		HedgeAfter:    *hedge,
		ProbeInterval: *probe,
		Metrics:       metrics,
		Tracer:        obs.NewTracer(obs.Config{}),
	}
	for i, u := range urls {
		id := fmt.Sprintf("replica-%d", i)
		cfg.Backends = append(cfg.Backends, cluster.NewHTTPBackend(id, strings.TrimRight(u, "/"), nil, *timeout))
		log.Printf("%s -> %s", id, u)
	}
	router, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// First probe pass before accepting traffic, then the background
	// cadence for the life of the process.
	router.ProbeAll(ctx)
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		router.Run(ctx)
	}()

	frontend := cluster.NewFrontend(router, metrics)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: frontend}
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveHTTP(srv, ln) }()
	log.Printf("routing %d replicas on %s (policy %s, load factor %.2f)",
		len(urls), ln.Addr(), policy.Name(), *loadFactor)

	<-ctx.Done()
	//lint:allow ctxflow the drain deadline must outlive the canceled run ctx; Background is the correct root for shutdown
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	probeWG.Wait()
	log.Print("drained, bye")
}

// serveHTTP runs the server and normalizes the clean-shutdown error.
func serveHTTP(srv *http.Server, ln net.Listener) error {
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitList parses the comma-separated replica URL list, dropping
// empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
