// Command varserve runs the online prediction service: it loads (or
// collects) a measurement database and serves use-case-1/2 distribution
// predictions over HTTP, with the trained models cached so repeated
// queries cost O(predict) instead of O(train).
//
// Usage:
//
//	varserve -db campaign.gob.gz                      # serve on :8080
//	varserve -addr :9090 -workers 16 -timeout 10s     # tuned
//	varserve -warm                                    # pre-train default models
//	varserve -modeldir models/ -warm                  # warm start from the model store
//	varserve -modeldir models/ -refresh 10m           # with breaker-aware refresh
//	varserve -loadgen -requests 600 -model xgboost    # self-hosted benchmark
//	varserve -loadgen -url http://host:8080           # benchmark a remote server
//	varserve -driftscenario                           # streaming-drift experiment
//
// Endpoints: POST /v1/predict/uc1, POST /v1/predict/uc2,
// POST /v1/measurements (streaming ingest with drift-triggered
// background refits; tuned by the -drift* flags), GET /v1/systems,
// /healthz, /readyz, /metrics, /v1/metrics (obs registry), /v1/traces
// (recent request traces), and — with -pprof — /debug/pprof/. See the
// "Serving predictions", "Streaming ingest & drift", and
// "Observability" sections of README.md for the request/response
// reference.
//
// The server drains gracefully on SIGINT/SIGTERM: readiness flips to
// 503 and in-flight requests get time to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"expvar"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/measure"
	"repro/internal/modelstore"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("varserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		replica = flag.String("replica", "", "shard identity when serving behind varroute (surfaced in /readyz and /v1/status)")
		dbPath  = flag.String("db", "", "measurement database from varcollect (collected on the fly when empty)")
		runs    = flag.Int("runs", 400, "on-the-fly campaign size when -db is not given")
		seed    = flag.Uint64("seed", 1, "on-the-fly campaign seed")
		workers = flag.Int("workers", 0, "max concurrent predictions (0 = GOMAXPROCS)")
		procs   = flag.Int("procs", 0, "GOMAXPROCS for parallel training/prediction (0 = all cores)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		warm    = flag.Bool("warm", false, "pre-train the default full models before serving")

		driftWindow = flag.Int("driftwindow", 0, "streaming-ingest drift window size per (system, benchmark) cell (0 = default 256)")
		driftMin    = flag.Int("driftmin", 0, "minimum window fill before drift evaluation (0 = default 32)")
		driftKS     = flag.Float64("driftks", 0, "KS-statistic drift threshold (0 = default 0.25)")
		driftAlpha  = flag.Float64("driftalpha", 0, "KS p-value significance gate for a breach (0 = default 0.01)")
		driftHyst   = flag.Int("drifthyst", 0, "consecutive breaching evaluations before a cell trips (0 = default 3)")
		driftRefits = flag.Int("driftrefits", 0, "max concurrent background refits (0 = default 2)")

		driftScenario = flag.Bool("driftscenario", false, "run the streaming-drift experiment (self-hosted): inject drifted measurements, report detection latency and residual KS vs a no-refit control, exit")

		modelDir   = flag.String("modeldir", "", "persistent model store directory: fitted models are saved there and loaded on restart (empty = off)")
		modelCache = flag.Int("modelcache", 256, "max models resident in memory with -modeldir (LRU beyond that)")
		refresh    = flag.Duration("refresh", 0, "periodically drop caches so models refit from fresh data, keeping stale models as breaker-guarded fallbacks (0 = off)")

		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap/stack contents; opt-in)")
		slow    = flag.Duration("slowtrace", time.Second, "log requests slower than this as span trees (0 disables)")
		traces  = flag.Int("tracebuf", 256, "completed request traces kept for GET /v1/traces")

		loadgen  = flag.Bool("loadgen", false, "run the load generator instead of (or against) a server")
		url      = flag.String("url", "", "loadgen target (empty = self-host an in-process server)")
		requests = flag.Int("requests", 300, "loadgen total requests")
		conc     = flag.Int("concurrency", 8, "loadgen client workers")
		usecase  = flag.Int("usecase", 1, "loadgen use case (1 or 2)")
		model    = flag.String("model", "knn", "loadgen model (knn | rf | xgboost | ridge)")
		repName  = flag.String("rep", "pearsonrnd", "loadgen representation")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *loadgen && *url != "" {
		// Benchmark a remote server; no database needed locally.
		runLoadgen(ctx, *url, *requests, *conc, *usecase, *model, *repName)
		return
	}

	db := loadDatabase(*dbPath, *runs, *seed)
	driftCfg := drift.Config{
		WindowSize:   *driftWindow,
		MinWindow:    *driftMin,
		KSThreshold:  *driftKS,
		PValueAlpha:  *driftAlpha,
		Hysteresis:   *driftHyst,
		RefitWorkers: *driftRefits,
		Seed:         *seed,
	}
	if *driftScenario {
		// Self-hosted drift experiment: report and exit (recorded in
		// EXPERIMENTS.md "Streaming drift").
		res, err := serve.DriftScenario(ctx, serve.DriftScenarioOptions{DB: db, Drift: driftCfg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		return
	}
	listenAddr := *addr
	if *loadgen {
		listenAddr = "127.0.0.1:0" // self-hosted benchmark target
	}
	var registry *modelstore.Registry
	if *modelDir != "" {
		store, err := modelstore.Open(*modelDir)
		if err != nil {
			log.Fatal(err)
		}
		registry = modelstore.NewRegistry(store, *modelCache)
		keys, err := store.Keys()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("model store %s: %d models on disk, %d resident max", store.Dir(), len(keys), *modelCache)
	}
	srv := serve.New(db, serve.Config{
		Addr:               listenAddr,
		ReplicaID:          *replica,
		Workers:            *workers,
		RequestTimeout:     *timeout,
		EnablePprof:        *pprofOn,
		SlowTraceThreshold: *slow,
		TraceBufferSize:    *traces,
		ModelRegistry:      registry,
		Drift:              driftCfg,
	})
	// Mirror the server's obs registry into the process-global expvar
	// set (one server per process here, so the name cannot collide).
	expvar.Publish("obs", srv.Metrics().Registry().ExpvarVar())
	if registry != nil {
		expvar.Publish("modelstore", expvar.Func(func() any { return registry.Stats() }))
	}
	if *refresh > 0 {
		// Breaker-aware background refresh: Predictor.Refresh drops the
		// fitted models but keeps them as stale fallbacks, so the next
		// request per key refits under its breaker — while a refit fails
		// or its breaker is open, the stale model keeps serving. With
		// -modeldir the refit resolves through the content-addressed
		// store: unchanged data loads the same bits back instead of
		// retraining, changed data gets a new address and a real refit.
		ticker := time.NewTicker(*refresh)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					srv.Predictor().Refresh()
					log.Printf("refresh: caches dropped, models will refit (or reload) on demand")
				}
			}
		}()
	}
	if *warm {
		warmStart := randx.SystemClock()
		if err := srv.Predictor().Warm(ctx,
			[]core.UC1Config{{NumSamples: 10, Seed: 1}},
			[]core.UC2Config{{Seed: 1}},
		); err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed default models in %v", randx.SystemClock.Since(warmStart).Round(time.Millisecond))
	}

	if *loadgen {
		// Self-hosted benchmark: serve on a loopback port, hammer it,
		// report, exit.
		if err := srv.Listen(); err != nil {
			log.Fatal(err)
		}
		srvCtx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(srvCtx) }()
		log.Printf("self-hosted server on http://%s", srv.Addr())
		runLoadgen(ctx, "http://"+srv.Addr(), *requests, *conc, *usecase, *model, *repName)
		cancel()
		if err := <-done; err != nil {
			log.Fatal(err)
		}
		return
	}

	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving predictions on %s (%d systems, %d benchmarks each)",
		srv.Addr(), len(db.Systems), len(db.Systems[0].Benchmarks))
	if err := srv.Serve(ctx); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}

// loadDatabase loads a persisted campaign or collects a reduced one.
func loadDatabase(path string, runs int, seed uint64) *measure.Database {
	if path != "" {
		db, err := measure.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		return db
	}
	log.Printf("no -db given; collecting an on-the-fly campaign (%d runs per benchmark)...", runs)
	start := randx.SystemClock()
	db, err := measure.Collect(
		[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
		perfsim.TableI(),
		measure.Config{Runs: runs, ProbeRuns: 120, Seed: seed},
	)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collected in %v", randx.SystemClock.Since(start).Round(time.Millisecond))
	return db
}

func runLoadgen(ctx context.Context, url string, requests, conc, usecase int, model, rep string) {
	res, err := serve.Loadgen(ctx, serve.LoadgenOptions{
		URL:            url,
		UseCase:        usecase,
		Requests:       requests,
		Concurrency:    conc,
		Model:          model,
		Representation: rep,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}
