// Adaptivebudget contrasts the two ways of obtaining a trustworthy
// performance distribution that the paper positions against each other:
//
//  1. measure adaptively — keep running the application until bootstrap
//     confidence intervals for its mean and tail quantile stabilize
//     (the stopping-rule methodology the paper cites), or
//  2. predict — run only 10 times and let a model trained on other
//     benchmarks fill in the rest (the paper's use case 1).
//
// For narrow benchmarks the two cost about the same; for wide and
// multimodal benchmarks the adaptive rule demands hundreds of runs,
// which is exactly the cost the predictor avoids.
//
//	go run ./examples/adaptivebudget
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)

	system := perfsim.NewIntelSystem()
	machine := perfsim.NewMachine(system)
	fmt.Println("collecting the training corpus...")
	db, err := measure.Collect(
		[]*perfsim.System{system},
		perfsim.TableI(),
		measure.Config{Runs: 400, ProbeRuns: 20, Seed: 31},
	)
	if err != nil {
		log.Fatal(err)
	}
	intel, _ := db.System("intel")

	apps := []string{
		"specaccel/359",       // very narrow
		"rodinia/ludomp",      // moderate
		"parboil/mrigridding", // wide, multimodal
	}
	rows := [][]string{{"benchmark", "adaptive runs", "KS(adaptive)", "KS(predicted from 10)"}}
	rng := randx.New(77)
	for _, id := range apps {
		w, _ := perfsim.FindWorkload(id)
		bench := machine.Bench(w)

		// Path 1: adaptive measurement.
		src := rng.Split()
		res, err := adaptive.Run(func() float64 {
			s, _ := bench.Dist.Sample(src)
			return s
		}, adaptive.Config{MaxRuns: 1000}, rng.Split())
		if err != nil {
			log.Fatal(err)
		}
		b, _ := intel.Find(id)
		truth := b.RelTimes()
		ksAdaptive := stats.KSStatistic(stats.Normalize(res.Sample), truth)

		// Path 2: 10-run prediction.
		pred, actual, err := core.PredictUC1(intel, id, core.UC1Config{
			Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: 10, Seed: 31,
		})
		if err != nil {
			log.Fatal(err)
		}
		ksPred := stats.KSStatistic(pred, actual)

		rows = append(rows, []string{
			id, fmt.Sprint(res.Runs),
			fmt.Sprintf("%.3f", ksAdaptive), fmt.Sprintf("%.3f", ksPred),
		})
	}
	fmt.Println(viz.Table(rows))
	fmt.Println("prediction trades some accuracy for a fixed 10-run budget; the")
	fmt.Println("adaptive rule's cost grows with exactly the variability you are")
	fmt.Println("trying to characterize.")
}
