// Newsystem demonstrates use case 2: anticipating how an application's
// performance distribution will look on a machine you are considering
// buying, without ever running on it.
//
// The story follows the paper's Section III-A2: the vendor of the new
// (Intel) system publishes the profiles and 1,000-run distributions of a
// standard benchmark corpus; you run the same corpus on the system you
// already own (AMD), train a system-to-system model, and feed it your
// application's AMD measurements.
//
//	go run ./examples/newsystem
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)

	fmt.Println("measuring the corpus on the owned (AMD) and candidate (Intel) systems...")
	db, err := measure.Collect(
		[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
		perfsim.TableI(),
		measure.Config{Runs: 400, ProbeRuns: 20, Seed: 23},
	)
	if err != nil {
		log.Fatal(err)
	}
	intel, _ := db.System("intel")
	amd, _ := db.System("amd")

	// Applications whose fate on the new system we want to anticipate.
	apps := []string{"parsec/canneal", "mllib/correlation", "rodinia/heartwall"}
	for _, app := range apps {
		predicted, actual, err := core.PredictUC2(amd, intel, app, core.UC2Config{
			Rep:   distrep.PearsonRnd,
			Model: core.KNN,
			Seed:  23,
		})
		if err != nil {
			log.Fatal(err)
		}
		srcData, _ := amd.Find(app)
		srcRel := srcData.RelTimes()

		fmt.Printf("\n=== %s ===\n", app)
		fmt.Println(viz.OverlayPlot(actual, predicted, 64, 9,
			"predicted on intel (from AMD measurements) vs measured on intel"))
		fmt.Println(viz.Table([][]string{
			{"distribution", "rel-std", "p95", "modes"},
			{"measured on AMD (input)",
				fmt.Sprintf("%.4f", stats.StdDev(srcRel)),
				fmt.Sprintf("%.3f", stats.Quantile(srcRel, 0.95)),
				fmt.Sprint(stats.NewKDE(srcRel).CountModes(512, 0.1))},
			{"predicted on Intel",
				fmt.Sprintf("%.4f", stats.StdDev(predicted)),
				fmt.Sprintf("%.3f", stats.Quantile(predicted, 0.95)),
				fmt.Sprint(stats.NewKDE(predicted).CountModes(512, 0.1))},
			{"measured on Intel (truth)",
				fmt.Sprintf("%.4f", stats.StdDev(actual)),
				fmt.Sprintf("%.3f", stats.Quantile(actual, 0.95)),
				fmt.Sprint(stats.NewKDE(actual).CountModes(512, 0.1))},
		}))
		fmt.Printf("KS(predicted, measured) = %.3f\n",
			stats.KSStatistic(predicted, actual))
	}
	fmt.Println("\na buyer can rank candidate systems by predicted tail behavior and")
	fmt.Println("modality for their own applications before committing to hardware.")
}
