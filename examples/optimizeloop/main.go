// Optimizeloop demonstrates the paper's first motivating scenario for
// use case 1: a developer tuning an application wants to inspect its
// performance *distribution* after every optimization step — e.g. to
// check a candidate's fitness for latency-sensitive deployment — but
// cannot afford 1,000 runs per step. Instead, each step takes 10 runs
// and predicts the full distribution with a model trained on the
// benchmark corpus.
//
// The "optimization" is simulated as successive variants of a workload
// whose synchronization pressure and page-allocation sensitivity shrink
// step by step (think: lock splitting, then NUMA pinning, then huge
// pages). The predicted distributions expose what a mean would hide:
// one of the steps removes a slow mode entirely rather than shifting
// the average.
//
//	go run ./examples/optimizeloop
package main

import (
	"fmt"
	"log"

	"repro/internal/distrep"
	"repro/internal/features"
	"repro/internal/measure"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)

	system := perfsim.NewIntelSystem()
	machine := perfsim.NewMachine(system)

	// Train the system-specific predictor once, on the benchmark corpus.
	fmt.Println("training the distribution predictor on the Table I corpus...")
	db, err := measure.Collect(
		[]*perfsim.System{system},
		perfsim.TableI(),
		measure.Config{Runs: 400, ProbeRuns: 20, Seed: 11},
	)
	if err != nil {
		log.Fatal(err)
	}
	intel, _ := db.System("intel")
	rep, _ := distrep.New(distrep.PearsonRnd, 0)
	train := &ml.Dataset{}
	for i := range intel.Benchmarks {
		b := &intel.Benchmarks[i]
		prof, err := features.FromRuns(b.ProbeRuns[:10], intel.MetricNames)
		if err != nil {
			log.Fatal(err)
		}
		train.X = append(train.X, prof.Values)
		train.Y = append(train.Y, rep.Encode(b.RelTimes()))
	}
	model := knn.New(15)
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}

	// The application being tuned: a canneal-like workload. Each
	// optimization step reduces a different source of variability.
	app, _ := perfsim.FindWorkload("parsec/canneal")
	app.Suite, app.Name = "dev", "myapp"
	steps := []struct {
		label string
		apply func(*perfsim.Workload)
	}{
		{"baseline", func(w *perfsim.Workload) {}},
		{"lock splitting (sync 0.35 -> 0.10)", func(w *perfsim.Workload) { w.Sync = 0.10 }},
		{"NUMA pinning (numa 0.70 -> 0.10)", func(w *perfsim.Workload) { w.NUMASensitivity = 0.10 }},
		{"huge pages (page 0.60 -> 0.05)", func(w *perfsim.Workload) { w.PageSensitivity = 0.05 }},
	}

	rng := randx.New(99)
	variant := app
	for i, step := range steps {
		step.apply(&variant)
		bench := machine.Bench(variant)

		// Ten runs is all each iteration of the loop costs.
		runs := bench.RunN(rng.Split(), 10)
		prof, err := features.FromRuns(runs, system.MetricNames)
		if err != nil {
			log.Fatal(err)
		}
		predicted := rep.Decode(model.Predict(prof.Values), 2000, rng.Split())

		// Ground truth, which the developer would not normally measure.
		actual := stats.Normalize(bench.Dist.SampleN(rng.Split(), 2000))

		fmt.Printf("\nstep %d: %s\n", i, step.label)
		fmt.Println(viz.OverlayPlot(actual, predicted, 64, 8, ""))
		p95 := stats.Quantile(predicted, 0.95)
		fmt.Printf("  predicted: modes=%d  rel-std=%.4f  p95=%.3f   (true modes=%d, KS=%.3f)\n",
			stats.NewKDE(predicted).CountModes(512, 0.15),
			stats.StdDev(predicted), p95,
			stats.NewKDE(actual).CountModes(512, 0.15),
			stats.KSStatistic(predicted, actual))
	}
	fmt.Println("\nthe multi-modal structure collapses to a tight unimodal distribution —")
	fmt.Println("information a mean-of-10-runs summary would never reveal.")
}
