// Quickstart: predict the full performance distribution of a benchmark
// on a system from just 10 runs, exactly the paper's headline use case.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)

	// 1. Measure a training corpus: many benchmarks, many runs each.
	//    (On real hardware this is the expensive step the paper's
	//    predictors amortize; here the perfsim substrate stands in.)
	fmt.Println("collecting the training corpus (60 benchmarks x 400 runs)...")
	db, err := measure.Collect(
		[]*perfsim.System{perfsim.NewIntelSystem()},
		perfsim.TableI(),
		measure.Config{Runs: 400, ProbeRuns: 20, Seed: 7},
	)
	if err != nil {
		log.Fatal(err)
	}
	intel, _ := db.System("intel")

	// 2. Predict a held-out application's distribution from 10 runs,
	//    using the paper's best design: PearsonRnd representation + kNN.
	const app = "specomp/376"
	predicted, actual, err := core.PredictUC1(intel, app, core.UC1Config{
		Rep:        distrep.PearsonRnd,
		Model:      core.KNN,
		NumSamples: 10,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the result: the predicted distribution should recover
	//    the shape (here: two modes, the larger one faster) without the
	//    cost of hundreds of runs.
	fmt.Println(viz.OverlayPlot(actual, predicted, 72, 12,
		app+" on intel: predicted from 10 runs vs measured from 400"))
	fmt.Printf("KS divergence: %.3f (0 = perfect match)\n",
		stats.KSStatistic(predicted, actual))
	fmt.Printf("measured modes: %d, predicted modes: %d\n",
		stats.NewKDE(actual).CountModes(512, 0.1),
		stats.NewKDE(predicted).CountModes(512, 0.1))
}
