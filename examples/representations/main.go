// Representations compares the paper's three distribution
// representations (Histogram, PyMaxEnt, PearsonRnd) on the same
// measured distribution — in isolation from any prediction model — to
// show each one's intrinsic encode/decode fidelity. This is the
// structural trade-off underlying Figures 4 and 7: histograms keep
// multi-modal detail but are high-dimensional (and thus harder to
// regress), while the 4-moment representations compress to four numbers
// but can only express unimodal Pearson/max-entropy shapes.
//
//	go run ./examples/representations
package main

import (
	"fmt"
	"log"

	"repro/internal/distrep"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	machine := perfsim.NewMachine(perfsim.NewIntelSystem())
	rng := randx.New(5)

	cases := []string{
		"specomp/376",          // strongly bimodal
		"parsec/streamcluster", // long right tail
		"rodinia/heartwall",    // very narrow unimodal
	}
	for _, id := range cases {
		w, ok := perfsim.FindWorkload(id)
		if !ok {
			log.Fatalf("unknown benchmark %s", id)
		}
		measured := stats.Normalize(machine.Bench(w).Dist.SampleN(rng.Split(), 3000))
		fmt.Printf("\n=== %s (measured: %d modes, std %.4f, skew %.2f) ===\n",
			id,
			stats.NewKDE(measured).CountModes(512, 0.1),
			stats.StdDev(measured),
			stats.Skewness(measured))

		rows := [][]string{{"representation", "dim", "round-trip KS"}}
		for _, kind := range distrep.Kinds() {
			rep, err := distrep.New(kind, distrep.DefaultBins)
			if err != nil {
				log.Fatal(err)
			}
			decoded := rep.Decode(rep.Encode(measured), len(measured), rng.Split())
			ks := stats.KSStatistic(measured, decoded)
			rows = append(rows, []string{
				rep.Name(),
				fmt.Sprint(rep.Dim()),
				fmt.Sprintf("%.3f", ks),
			})
			fmt.Println(viz.OverlayPlot(measured, decoded, 64, 7,
				fmt.Sprintf("%s (KS=%.3f)", rep.Name(), ks)))
		}
		fmt.Println(viz.Table(rows))
	}
	fmt.Println("\nhistograms win on multi-modal shapes; the moment representations win")
	fmt.Println("when the 4 regressed targets are easier for a model to predict — the")
	fmt.Println("tension the paper resolves in favor of PearsonRnd + kNN.")
}
