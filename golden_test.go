package repro

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// goldenEntry pins one end-to-end prediction. Values are stored as
// 6-significant-digit strings: comfortably inside float64 determinism
// (the pipeline is bit-reproducible for a fixed seed) while keeping the
// golden file readable in review.
type goldenEntry struct {
	Case      string            `json:"case"`
	Benchmark string            `json:"benchmark"`
	N         int               `json:"n"`
	KS        string            `json:"ks"`
	W1        string            `json:"w1"`
	Mean      string            `json:"mean"`
	Std       string            `json:"std"`
	Skew      string            `json:"skew"`
	Kurt      string            `json:"kurt"`
	Quantiles map[string]string `json:"quantiles"`
}

func g6(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }

var (
	goldenOnce sync.Once
	goldenDB   *measure.Database
	goldenErr  error
)

// goldenCampaign is a reduced but fully representative campaign: eight
// Table I benchmarks on both systems, enough runs for stable holdout
// fits, fixed seed so the whole pipeline is deterministic.
func goldenCampaign(t *testing.T) *measure.Database {
	t.Helper()
	goldenOnce.Do(func() {
		goldenDB, goldenErr = measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI()[:8],
			measure.Config{Runs: 60, ProbeRuns: 20, Seed: 42},
		)
	})
	if goldenErr != nil {
		t.Fatalf("campaign: %v", goldenErr)
	}
	return goldenDB
}

func entryFrom(name, benchID string, predicted, actual []float64) goldenEntry {
	m := stats.ComputeMoments4(predicted)
	qs := stats.Quantiles(predicted, []float64{0.05, 0.25, 0.5, 0.75, 0.95})
	return goldenEntry{
		Case:      name,
		Benchmark: benchID,
		N:         len(predicted),
		KS:        g6(stats.KSStatistic(predicted, actual)),
		W1:        g6(stats.Wasserstein1(predicted, actual)),
		Mean:      g6(m.Mean),
		Std:       g6(m.Std),
		Skew:      g6(m.Skew),
		Kurt:      g6(m.Kurt),
		Quantiles: map[string]string{
			"p5": g6(qs[0]), "p25": g6(qs[1]), "p50": g6(qs[2]),
			"p75": g6(qs[3]), "p95": g6(qs[4]),
		},
	}
}

// TestGoldenUC1Pipeline runs the full pipeline — simulator campaign,
// ingest validation, feature extraction, model fit, distribution
// decode, scoring — and compares the result against the committed
// golden file. Regenerate deliberately with:
//
//	go test . -run TestGolden -update
func TestGoldenUC1Pipeline(t *testing.T) {
	db := goldenCampaign(t)
	intel, ok := db.System("intel")
	if !ok {
		t.Fatal("intel system missing")
	}
	amd, ok := db.System("amd")
	if !ok {
		t.Fatal("amd system missing")
	}

	var got []goldenEntry
	for _, benchID := range []string{
		intel.Benchmarks[0].Workload.ID(),
		intel.Benchmarks[3].Workload.ID(),
	} {
		for _, mc := range []struct {
			name  string
			model core.Model
			rep   distrep.Kind
		}{
			{"uc1 knn+pearsonrnd", core.KNN, distrep.PearsonRnd},
			{"uc1 rf+histogram", core.RandomForest, distrep.Histogram},
		} {
			pred, actual, err := core.PredictUC1(intel, benchID, core.UC1Config{
				Rep: mc.rep, Model: mc.model, NumSamples: 10, Seed: 7,
			})
			if err != nil {
				t.Fatalf("%s %s: %v", mc.name, benchID, err)
			}
			got = append(got, entryFrom(mc.name, benchID, pred, actual))
		}
	}
	// One cross-system prediction closes the loop on use case 2.
	uc2Bench := intel.Benchmarks[1].Workload.ID()
	pred, actual, err := core.PredictUC2(amd, intel, uc2Bench, core.UC2Config{
		Rep: distrep.PearsonRnd, Model: core.KNN, Seed: 7,
	})
	if err != nil {
		t.Fatalf("uc2: %v", err)
	}
	got = append(got, entryFrom("uc2 amd->intel knn+pearsonrnd", uc2Bench, pred, actual))

	goldenPath := filepath.Join("testdata", "uc1_golden.json")
	if *update {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", goldenPath, len(got))
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d entries, golden has %d (regenerate with -update?)", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			gj, _ := json.Marshal(got[i])
			wj, _ := json.Marshal(want[i])
			t.Errorf("entry %d diverged from golden:\n got %s\nwant %s", i, gj, wj)
		}
	}
}
