// Package adaptive implements the confidence-interval-based adaptive
// stopping rule for performance measurements that the paper cites as the
// state of the art for deciding how many runs a benchmark needs (Maricq
// et al., OSDI'18; Mittal et al., PMBS'23). It is the cost baseline the
// paper's predictors compete against: instead of predicting a
// distribution from 10 runs, one can keep measuring until bootstrap
// confidence intervals for the mean and tail quantile are tight — at a
// much higher (and benchmark-dependent) run cost.
//
// The extension experiment in cmd/experiments compares this measured
// stopping cost with the fixed 10-run budget of the paper's use case 1.
package adaptive

import (
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/stats"
)

// Config tunes the stopping rule.
type Config struct {
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// RelTol is the target relative half-width of the mean's CI
	// (default 0.01, i.e. ±1%).
	RelTol float64
	// QuantileProbe is the tail quantile whose stability is also
	// required (default 0.95); set DisableQuantile to skip it.
	QuantileProbe float64
	// DisableQuantile turns off the tail-quantile criterion.
	DisableQuantile bool
	// QuantileRelTol is the target relative half-width for the probed
	// quantile's CI (default 0.03).
	QuantileRelTol float64
	// MinRuns and MaxRuns bound the procedure (defaults 10 and 1000).
	MinRuns, MaxRuns int
	// Batch is the number of additional runs taken per iteration
	// (default 5).
	Batch int
	// Resamples is the bootstrap replicate count (default 200).
	Resamples int
}

func (c Config) withDefaults() Config {
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.RelTol <= 0 {
		c.RelTol = 0.01
	}
	if c.QuantileProbe <= 0 || c.QuantileProbe >= 1 {
		c.QuantileProbe = 0.95
	}
	if c.QuantileRelTol <= 0 {
		c.QuantileRelTol = 0.03
	}
	if c.MinRuns < 3 {
		c.MinRuns = 10
	}
	if c.MaxRuns <= c.MinRuns {
		c.MaxRuns = 1000
	}
	if c.Batch < 1 {
		c.Batch = 5
	}
	if c.Resamples < 50 {
		c.Resamples = 200
	}
	return c
}

// Result reports the stopping decision.
type Result struct {
	// Runs is the number of measurements consumed.
	Runs int
	// Skipped counts invalid measurements (NaN, Inf, or non-positive
	// durations) discarded by ingest validation; they never enter the
	// sample or the convergence test.
	Skipped int
	// Converged is false when MaxRuns was hit before the criteria held.
	Converged bool
	// MeanCI and QuantileCI are the final intervals.
	MeanCILo, MeanCIHi         float64
	QuantileCILo, QuantileCIHi float64
	// Sample holds all collected measurements.
	Sample []float64
}

// maxConsecutiveInvalid bounds how many invalid measurements in a row
// the collector tolerates before declaring the source unusable, so a
// source that only ever emits garbage cannot spin the rule forever.
const maxConsecutiveInvalid = 100

// collect appends valid measurements until the sample reaches want,
// discarding invalid ones (counted in res.Skipped).
func collect(measure func() float64, res *Result, want int) error {
	invalid := 0
	for len(res.Sample) < want {
		v := measure()
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			res.Skipped++
			invalid++
			if invalid >= maxConsecutiveInvalid {
				return fmt.Errorf("adaptive: %d consecutive invalid measurements (NaN/Inf/non-positive); source unusable with %d valid runs", invalid, len(res.Sample))
			}
			continue
		}
		invalid = 0
		res.Sample = append(res.Sample, v)
	}
	return nil
}

// Run executes the stopping rule against a measurement source: measure
// is called for each additional run and returns one duration. rng drives
// the bootstrap.
//
// Invalid measurements (NaN, Inf, non-positive) are quarantined rather
// than mixed into the sample, and a degenerate sample — fewer than two
// valid runs, or zero variance (e.g. every survivor was imputed to the
// same value) — never converges: the rule requests more runs instead of
// trusting a zero-width confidence interval.
func Run(measure func() float64, cfg Config, rng *randx.RNG) (*Result, error) {
	if measure == nil {
		return nil, fmt.Errorf("adaptive: nil measurement source")
	}
	c := cfg.withDefaults()
	res := &Result{}
	if err := collect(measure, res, c.MinRuns); err != nil {
		res.Runs = len(res.Sample)
		return res, err
	}
	for {
		res.Runs = len(res.Sample)
		lo, hi := stats.BootstrapMeanCI(res.Sample, c.Confidence, c.Resamples, rng.Float64)
		res.MeanCILo, res.MeanCIHi = lo, hi
		meanOK := stats.HalfWidthRel(lo, hi) <= c.RelTol

		quantOK := true
		if !c.DisableQuantile {
			qlo, qhi := bootstrapQuantileCI(res.Sample, c.QuantileProbe, c.Confidence, c.Resamples, rng)
			res.QuantileCILo, res.QuantileCIHi = qlo, qhi
			quantOK = stats.HalfWidthRel(qlo, qhi) <= c.QuantileRelTol
		}
		degenerate := len(res.Sample) < 2 || stats.StdDev(res.Sample) == 0
		if meanOK && quantOK && !degenerate {
			res.Converged = true
			return res, nil
		}
		if len(res.Sample) >= c.MaxRuns {
			return res, nil
		}
		want := len(res.Sample) + c.Batch
		if want > c.MaxRuns {
			want = c.MaxRuns
		}
		if err := collect(measure, res, want); err != nil {
			res.Runs = len(res.Sample)
			return res, err
		}
	}
}

// bootstrapQuantileCI is the percentile bootstrap for a single quantile.
func bootstrapQuantileCI(xs []float64, p, confidence float64, resamples int, rng *randx.RNG) (lo, hi float64) {
	n := len(xs)
	vals := make([]float64, resamples)
	buf := make([]float64, n)
	for r := range vals {
		for i := range buf {
			buf[i] = xs[rng.IntN(n)]
		}
		vals[r] = stats.Quantile(buf, p)
	}
	alpha := (1 - confidence) / 2
	qs := stats.Quantiles(vals, []float64{alpha, 1 - alpha})
	return qs[0], qs[1]
}
