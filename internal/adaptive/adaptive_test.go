package adaptive

import (
	"math"
	"testing"

	"repro/internal/perfsim"
	"repro/internal/randx"
)

func TestStopsQuicklyOnNarrowDistribution(t *testing.T) {
	rng := randx.New(1)
	src := randx.New(2)
	res, err := Run(func() float64 { return src.Normal(10, 0.01) }, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("narrow distribution did not converge")
	}
	if res.Runs > 60 {
		t.Errorf("narrow distribution took %d runs, expected few", res.Runs)
	}
	if !(res.MeanCILo < 10 && 10 < res.MeanCIHi) {
		t.Errorf("mean CI [%v, %v] misses 10", res.MeanCILo, res.MeanCIHi)
	}
}

func TestNeedsMoreRunsOnWideDistribution(t *testing.T) {
	rng := randx.New(3)
	srcNarrow := randx.New(4)
	srcWide := randx.New(4)
	narrow, err := Run(func() float64 { return srcNarrow.Normal(10, 0.02) }, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(func() float64 { return srcWide.Normal(10, 1.0) }, Config{}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if wide.Runs <= narrow.Runs {
		t.Errorf("wide (%d runs) should need more than narrow (%d runs)", wide.Runs, narrow.Runs)
	}
}

func TestHitsMaxRunsWithoutConvergence(t *testing.T) {
	rng := randx.New(5)
	src := randx.New(6)
	res, err := Run(func() float64 { return src.Lognormal(0, 2) },
		Config{RelTol: 1e-6, MaxRuns: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("impossible tolerance should not converge")
	}
	if res.Runs != 50 {
		t.Errorf("runs = %d, want exactly MaxRuns", res.Runs)
	}
}

func TestQuantileCriterionDelaysStopping(t *testing.T) {
	// A distribution with a stable mean but jittery tail must require
	// more runs when the quantile criterion is on.
	mk := func(seed uint64) func() float64 {
		src := randx.New(seed)
		return func() float64 {
			v := src.Normal(10, 0.05)
			if src.Float64() < 0.05 {
				v += src.Uniform(1, 3) // occasional straggler
			}
			return v
		}
	}
	rng := randx.New(7)
	withQ, err := Run(mk(8), Config{QuantileProbe: 0.97, QuantileRelTol: 0.005}, rng)
	if err != nil {
		t.Fatal(err)
	}
	noQ, err := Run(mk(8), Config{DisableQuantile: true}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if withQ.Runs < noQ.Runs {
		t.Errorf("tail criterion (%d runs) should not stop before mean-only (%d runs)", withQ.Runs, noQ.Runs)
	}
}

func TestOnSimulatedBenchmarks(t *testing.T) {
	// The stopping rule must demand more runs for a wide multimodal
	// benchmark than for a narrow one — the cost asymmetry motivating
	// the paper's prediction approach.
	machine := perfsim.NewMachine(perfsim.NewIntelSystem())
	runCost := func(id string, seed uint64) int {
		w, ok := perfsim.FindWorkload(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		bench := machine.Bench(w)
		src := randx.New(seed)
		res, err := Run(func() float64 {
			s, _ := bench.Dist.Sample(src)
			return s
		}, Config{MaxRuns: 800}, randx.New(seed^0xABC))
		if err != nil {
			t.Fatal(err)
		}
		return res.Runs
	}
	narrow := runCost("specaccel/359", 11)
	wide := runCost("specaccel/303", 11)
	if wide <= narrow {
		t.Errorf("wide benchmark stopped at %d runs, narrow at %d; expected wide > narrow", wide, narrow)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}, randx.New(1)); err == nil {
		t.Error("nil source should fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Confidence != 0.95 || c.RelTol != 0.01 || c.MinRuns != 10 ||
		c.MaxRuns != 1000 || c.Batch != 5 || c.Resamples != 200 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestInvalidMeasurementsAreQuarantined(t *testing.T) {
	rng := randx.New(21)
	src := randx.New(22)
	n := 0
	// Every third measurement is garbage: NaN, Inf, or non-positive.
	res, err := Run(func() float64 {
		n++
		switch n % 6 {
		case 0:
			return math.NaN()
		case 3:
			return -1
		}
		return src.Normal(10, 0.01)
	}, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("valid subsample should converge")
	}
	if res.Skipped == 0 {
		t.Error("invalid measurements must be counted in Skipped")
	}
	for _, v := range res.Sample {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("invalid measurement %v leaked into the sample", v)
		}
	}
}

func TestZeroVarianceNeverConverges(t *testing.T) {
	rng := randx.New(23)
	// A constant source (e.g. every survivor imputed to the same value)
	// yields zero-width CIs; trusting them would stop at MinRuns.
	res, err := Run(func() float64 { return 7 }, Config{MaxRuns: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("zero-variance sample must not satisfy the stopping rule")
	}
	if res.Runs != 40 {
		t.Errorf("Runs = %d, want MaxRuns=40 exhausted", res.Runs)
	}
}

func TestAllInvalidSourceErrors(t *testing.T) {
	rng := randx.New(24)
	calls := 0
	res, err := Run(func() float64 { calls++; return math.NaN() }, Config{}, rng)
	if err == nil {
		t.Fatal("a source that only emits garbage must error, not spin")
	}
	if calls != maxConsecutiveInvalid {
		t.Errorf("gave up after %d calls, want %d", calls, maxConsecutiveInvalid)
	}
	if res == nil || res.Skipped != maxConsecutiveInvalid || res.Runs != 0 {
		t.Errorf("result = %+v, want all measurements skipped", res)
	}
}
