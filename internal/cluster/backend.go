package cluster

import (
	"context"
	"time"
)

// Request is one routed call, already reduced to what placement and
// forwarding need: the HTTP shape plus the dataset key the frontend
// derived from the body (modelstore.DatasetKey). Key may be empty for
// unkeyed endpoints (GET /v1/systems), which route by policy order
// alone.
type Request struct {
	Method string
	Path   string
	Key    string
	Body   []byte
}

// Response is a replica's answer. Body is the raw JSON payload,
// forwarded verbatim by the frontend.
type Response struct {
	Status     int
	RetryAfter time.Duration // parsed Retry-After, 0 when absent
	Body       []byte
}

// Probe is one health observation of a replica, distilled from its
// /readyz and /v1/status endpoints (or synthesized by the sim's fake
// replicas).
type Probe struct {
	// Ready is the /readyz verdict: false while draining or down.
	Ready bool
	// Status is the replica's own posture string ("ok"/"ready",
	// "degraded", "draining").
	Status string
	// BreakersOpen and Drifted count the replica's open fit breakers
	// and tripped ingest cells — the degraded-drain signals.
	BreakersOpen int
	Drifted      int
}

// Backend is one varserve replica as the router sees it: an ID that is
// its ring identity, a request transport, and a health probe. HTTP
// replicas and the sim's in-process fakes implement it identically,
// which is what lets the sim exercise the real router.
type Backend interface {
	// ID returns the stable replica identity hashed onto the ring.
	ID() string
	// Do forwards one request and returns the replica's response; a
	// non-nil error means transport failure (no response reached us).
	Do(ctx context.Context, req Request) (Response, error)
	// Probe returns the replica's current health; a non-nil error
	// counts as a failed probe.
	Probe(ctx context.Context) (Probe, error)
}
