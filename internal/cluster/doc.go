// Package cluster is the sharded multi-replica serving tier: a
// router/frontend that partitions model cells across N varserve
// replicas so one process's trained-model cache becomes a fleet's.
//
// Placement is consistent hashing with virtual nodes over the stable
// dataset key (modelstore.DatasetKey, hashed with FNV-1a — the same
// derivation the model registry's content addresses embed, so the
// replica that owns a cell also owns every model trained from it and
// its warm caches stay hot). Ownership is bounded-load: a replica
// holds at most ceil(LoadFactor x keys/replicas) cells, with overflow
// walking the ring, so a hot ring segment cannot pile every cell onto
// one replica.
//
// Routing policies are pluggable behind one interface: cache-affinity
// (the default, ownership-driven), round-robin, and least-loaded.
// Replica health is tracked from the replicas' own /readyz and
// /v1/status endpoints; degraded or breaker-open replicas drain to
// ring-ordered fallbacks without giving up ownership, while failed
// replicas trigger deterministic key remapping with minimal churn
// (only the dead replica's keys move, and they move back when it
// recovers). Replica errors are retried on the fallback sequence, with
// optional hedging for tail latency.
//
// The router is exercised against in-process fake replicas by
// internal/cluster/sim — a shared-clock event-loop harness that proves
// the routing invariants (single owner per key, bounded imbalance,
// minimal remap, no lost requests during failover) deterministically,
// before any socket is opened. cmd/varroute wires the same router to
// real HTTP backends.
package cluster
