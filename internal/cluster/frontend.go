package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/modelstore"
	"repro/internal/obs"
)

// maxFrontendBody bounds request bodies the frontend will buffer,
// mirroring varserve's own ingest limit.
const maxFrontendBody = 32 << 20

// Frontend is the router's HTTP face: it derives the dataset key from
// each request body, routes through the Router, and relays the owning
// replica's response verbatim. It exposes the same /v1 surface as a
// single varserve plus /v1/cluster/status, so existing clients (and
// the loadgen) point at the router unchanged.
type Frontend struct {
	router  *Router
	metrics *obs.Registry
	mux     *http.ServeMux
}

// NewFrontend builds the HTTP handler for the router. metrics may be
// nil.
func NewFrontend(router *Router, metrics *obs.Registry) *Frontend {
	f := &Frontend{router: router, metrics: metrics, mux: http.NewServeMux()}
	f.mux.HandleFunc("POST /v1/predict/uc1", f.forwardKeyed(keyUC1))
	f.mux.HandleFunc("POST /v1/predict/uc1/batch", f.forwardKeyed(keyUC1))
	f.mux.HandleFunc("POST /v1/predict/uc2", f.forwardKeyed(keyUC2))
	f.mux.HandleFunc("POST /v1/measurements", f.forwardKeyed(keyMeasurement))
	f.mux.HandleFunc("GET /v1/systems", f.forwardUnkeyed)
	f.mux.HandleFunc("GET /v1/cluster/status", f.handleClusterStatus)
	f.mux.HandleFunc("GET /metrics", f.handleMetrics)
	f.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	f.mux.HandleFunc("GET /readyz", f.handleReadyz)
	return f
}

// ServeHTTP implements http.Handler.
func (f *Frontend) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

// keyedBody is the superset of fields the frontend needs from any
// keyed request body to derive its routing key. Everything else passes
// through opaque.
type keyedBody struct {
	System string `json:"system"`
	Source string `json:"source"`
	Target string `json:"target"`
}

// keyUC1 routes UC1 predictions (single and batch) by their system's
// dataset cell.
func keyUC1(b keyedBody) (string, error) {
	if b.System == "" {
		return "", fmt.Errorf("system is required")
	}
	return modelstore.DatasetKey(1, b.System, ""), nil
}

// keyUC2 routes cross-system predictions by the (source, target) cell.
func keyUC2(b keyedBody) (string, error) {
	if b.Source == "" || b.Target == "" {
		return "", fmt.Errorf("source and target are required")
	}
	return modelstore.DatasetKey(2, b.Source, b.Target), nil
}

// keyMeasurement routes ingest batches to the system's UC1 cell owner,
// so the replica accumulating a system's drift windows is the one
// serving its predictions.
func keyMeasurement(b keyedBody) (string, error) {
	if b.System == "" {
		return "", fmt.Errorf("system is required")
	}
	return modelstore.DatasetKey(1, b.System, ""), nil
}

// forwardKeyed builds a handler that extracts the routing key with
// derive and relays through the router.
func (f *Frontend) forwardKeyed(derive func(keyedBody) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxFrontendBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		var kb keyedBody
		if err := json.Unmarshal(body, &kb); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
			return
		}
		key, err := derive(kb)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		f.relay(w, r, Request{Method: r.Method, Path: r.URL.Path, Key: key, Body: body})
	}
}

// forwardUnkeyed relays requests with no dataset identity (the policy
// alone picks the replica).
func (f *Frontend) forwardUnkeyed(w http.ResponseWriter, r *http.Request) {
	f.relay(w, r, Request{Method: r.Method, Path: r.URL.Path})
}

// relay routes through the router and copies the replica's answer out.
func (f *Frontend) relay(w http.ResponseWriter, r *http.Request, req Request) {
	resp, err := f.router.Do(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if resp.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(resp.RetryAfter/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

// handleClusterStatus renders the router's own posture.
func (f *Frontend) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, f.router.Snapshot())
}

// handleMetrics renders the router's metric registry.
func (f *Frontend) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, f.metrics.Snapshot())
}

// handleReadyz: the tier is ready while any replica is routable.
func (f *Frontend) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := f.router.Snapshot()
	alive := 0
	for _, rep := range st.Replicas {
		if rep.State != Down.String() {
			alive++
		}
	}
	if alive == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no live replicas"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "replicas_live": alive})
}

// writeJSON and writeError mirror the serve package's helpers (the
// frontend keeps zero dependencies on internal/serve so the sim can
// import cluster without pulling the full server).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
