package cluster

import (
	"sort"
	"sync/atomic"
)

// State is a replica's health as the router tracks it.
type State int32

// The replica health states. Ready replicas take their owned traffic;
// Degraded replicas (open breakers, drifted ingest cells, or a
// degraded /readyz) keep ownership but drain new traffic to ring
// fallbacks; Down replicas (failed probes or draining /readyz) take
// nothing and their keys remap.
const (
	Ready State = iota
	Degraded
	Down
)

// String renders the state for status payloads and metrics.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Degraded:
		return "degraded"
	default:
		return "down"
	}
}

// replica is the router's per-backend record. Health and load fields
// are atomics so routing reads never contend with probe writes.
type replica struct {
	backend Backend
	id      string

	state      atomic.Int32 // State
	inFlight   atomic.Int64
	probeFails atomic.Int32 // consecutive failed probes

	// Served/failed tally requests forwarded to this replica; breakers
	// and drifted mirror the last successful probe.
	served  atomic.Uint64
	failed  atomic.Uint64
	breakers atomic.Int32
	drifted  atomic.Int32
}

func (r *replica) State() State { return State(r.state.Load()) }

// View is the immutable health-and-ownership snapshot a Policy ranks
// candidates from. It is built per routed request; all lookups are on
// materialized maps, so policies stay pure functions.
type View struct {
	// Owner is the routed key's current table owner ("" when the key is
	// unkeyed or not yet assigned).
	Owner string
	// Sequence is the key's full ring fallback order (owner first). For
	// unkeyed requests it is the sorted replica list.
	Sequence []string
	// States and InFlight map replica ID to health and live request
	// count.
	States   map[string]State
	InFlight map[string]int64
	// RRTick is a monotone counter the round-robin policy offsets by.
	RRTick uint64
}

// Alive reports whether id is routable at all (Ready or Degraded).
func (v View) Alive(id string) bool {
	s, ok := v.States[id]
	return ok && s != Down
}

// readyThenDegraded orders ids: Ready replicas first (preserving the
// given order), then Degraded, Down dropped. The shared drain rule
// every built-in policy applies.
func readyThenDegraded(ids []string, v View) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if v.States[id] == Ready {
			out = append(out, id)
		}
	}
	for _, id := range ids {
		if v.States[id] == Degraded {
			out = append(out, id)
		}
	}
	return out
}

// sortedIDs returns the view's replica IDs sorted, the canonical
// iteration order for unkeyed routing.
func (v View) sortedIDs() []string {
	ids := make([]string, 0, len(v.States))
	for id := range v.States {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
