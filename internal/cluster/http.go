package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxReplicaBody bounds how much of a replica's response the router
// buffers (batch predictions dominate; 32 MiB is far above any real
// payload).
const maxReplicaBody = 32 << 20

// HTTPBackend adapts one varserve replica's HTTP surface to the
// Backend interface. The zero value is unusable; use NewHTTPBackend.
type HTTPBackend struct {
	id     string
	base   string
	client *http.Client
}

// NewHTTPBackend wraps the replica at baseURL (e.g.
// "http://127.0.0.1:8081") under the given ring identity. client nil
// selects a default with the given timeout per request.
func NewHTTPBackend(id, baseURL string, client *http.Client, timeout time.Duration) *HTTPBackend {
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	return &HTTPBackend{id: id, base: baseURL, client: client}
}

// ID implements Backend.
func (b *HTTPBackend) ID() string { return b.id }

// Do implements Backend: forward the request and buffer the response.
func (b *HTTPBackend) Do(ctx context.Context, req Request) (Response, error) {
	var body io.Reader
	if len(req.Body) > 0 {
		body = bytes.NewReader(req.Body)
	}
	hreq, err := http.NewRequestWithContext(ctx, req.Method, b.base+req.Path, body)
	if err != nil {
		return Response{}, fmt.Errorf("cluster: build request: %w", err)
	}
	if len(req.Body) > 0 {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return Response{}, fmt.Errorf("cluster: %s: %w", b.id, err)
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, maxReplicaBody))
	if err != nil {
		return Response{}, fmt.Errorf("cluster: read %s response: %w", b.id, err)
	}
	resp := Response{Status: hresp.StatusCode, Body: payload}
	if ra := hresp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			resp.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp, nil
}

// Probe implements Backend: distill /readyz and /v1/status into one
// health observation. /readyz alone decides routability; /v1/status
// only refines Ready into Degraded, so its failure is not a probe
// failure.
func (b *HTTPBackend) Probe(ctx context.Context) (Probe, error) {
	var rz struct {
		Status       string `json:"status"`
		BreakersOpen int    `json:"breakers_open"`
	}
	status, err := b.getJSON(ctx, "/readyz", &rz)
	if err != nil {
		return Probe{}, err
	}
	p := Probe{
		Ready:        status == http.StatusOK,
		Status:       rz.Status,
		BreakersOpen: rz.BreakersOpen,
	}
	if !p.Ready {
		return p, nil
	}
	var st struct {
		Status       string `json:"status"`
		BreakersOpen int    `json:"breakers_open"`
		Drift        *struct {
			Drifted int `json:"drifted"`
		} `json:"drift"`
	}
	if code, err := b.getJSON(ctx, "/v1/status", &st); err == nil && code == http.StatusOK {
		p.Status = st.Status
		p.BreakersOpen = st.BreakersOpen
		if st.Drift != nil {
			p.Drifted = st.Drift.Drifted
		}
	}
	return p, nil
}

// getJSON fetches path and decodes the JSON body into out, returning
// the HTTP status. Non-2xx bodies are still decoded when possible
// (varserve's draining /readyz is a 503 with a JSON body).
func (b *HTTPBackend) getJSON(ctx context.Context, path string, out any) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return 0, fmt.Errorf("cluster: build probe: %w", err)
	}
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("cluster: probe %s: %w", b.id, err)
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return hresp.StatusCode, fmt.Errorf("cluster: read probe body: %w", err)
	}
	if len(payload) > 0 {
		// Tolerate non-JSON bodies from intermediaries.
		_ = json.Unmarshal(payload, out)
	}
	return hresp.StatusCode, nil
}
