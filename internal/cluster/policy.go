package cluster

import "sort"

// Policy ranks the replicas a request may be sent to, most preferred
// first. The router forwards to the first candidate and walks the rest
// on retryable failure, so a policy expresses preference, not
// admission: returning no candidates fails the request with 503.
// Policies must be pure functions of (key, View) — all mutable state
// lives in the View — so they can be hot-swapped under load.
type Policy interface {
	// Name identifies the policy in status payloads and flags.
	Name() string
	// Candidates returns replica IDs in forwarding order. Down replicas
	// must not appear; Degraded replicas should trail Ready ones.
	Candidates(key string, v View) []string
}

// CacheAffinity is the default policy: the key's owner first — that
// replica holds the cell's trained models warm — then the ring
// fallback sequence, Ready before Degraded throughout. Unkeyed
// requests fall back to sorted order.
type CacheAffinity struct{}

// Name implements Policy.
func (CacheAffinity) Name() string { return "cache-affinity" }

// Candidates implements Policy.
func (CacheAffinity) Candidates(key string, v View) []string {
	seq := v.Sequence
	if len(seq) == 0 {
		seq = v.sortedIDs()
	}
	if v.Owner != "" && (len(seq) == 0 || seq[0] != v.Owner) {
		// The owner table may disagree with the pure ring (bounded-load
		// overflow); the table wins, the ring order follows.
		reordered := make([]string, 0, len(seq))
		reordered = append(reordered, v.Owner)
		for _, id := range seq {
			if id != v.Owner {
				reordered = append(reordered, id)
			}
		}
		seq = reordered
	}
	return readyThenDegraded(seq, v)
}

// RoundRobin ignores affinity and spreads requests evenly over live
// replicas in rotating sorted order — the baseline policy for scaling
// comparisons (every replica fits every cell's models cold).
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Candidates implements Policy.
func (RoundRobin) Candidates(_ string, v View) []string {
	ids := v.sortedIDs()
	if len(ids) == 0 {
		return nil
	}
	start := int(v.RRTick % uint64(len(ids)))
	rotated := make([]string, 0, len(ids))
	rotated = append(rotated, ids[start:]...)
	rotated = append(rotated, ids[:start]...)
	return readyThenDegraded(rotated, v)
}

// LeastLoaded routes to the live replica with the fewest in-flight
// requests, breaking ties by replica ID so ranking is deterministic
// under equal load. It never returns a Down replica (pinned by a
// regression test) and drains Degraded ones behind Ready ones like
// every built-in policy.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Candidates implements Policy.
func (LeastLoaded) Candidates(_ string, v View) []string {
	ids := v.sortedIDs()
	sort.SliceStable(ids, func(i, j int) bool {
		li, lj := v.InFlight[ids[i]], v.InFlight[ids[j]]
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
	return readyThenDegraded(ids, v)
}

// PolicyByName resolves the -policy flag values. Unknown names return
// nil.
func PolicyByName(name string) Policy {
	switch name {
	case "", "cache-affinity":
		return CacheAffinity{}
	case "round-robin":
		return RoundRobin{}
	case "least-loaded":
		return LeastLoaded{}
	default:
		return nil
	}
}
