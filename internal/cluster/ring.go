package cluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per replica when Config
// leaves it zero. 128 points per replica keeps the pure-hash spread of
// 1k keys over 8 replicas within ~1.3x of the mean; the bounded-load
// walk tightens that to the configured factor.
const DefaultVNodes = 128

// Hash64 is the ring's key hash: FNV-1a over the dataset-key bytes.
// It matches the derivation style modelstore and faults use, and is
// pinned by tests — changing it remaps every cell in a fleet.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// ringPoint is one virtual node: a position on the hash circle owned
// by a replica.
type ringPoint struct {
	hash    uint64
	replica int // index into ids
}

// Ring is an immutable consistent-hash ring: each replica contributes
// vnodes points, keys resolve to the first point clockwise from their
// hash. Immutability is what makes ownership a pure function — two
// rings built from the same replica set agree on every key regardless
// of construction order, and topology changes build a derived ring so
// the remap between old and new is auditable.
type Ring struct {
	vnodes int
	ids    []string // sorted replica IDs
	points []ringPoint
}

// NewRing builds a ring over the replica IDs (order-insensitive;
// duplicates collapse). vnodes <= 0 selects DefaultVNodes.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	// Collapse duplicates so a repeated ID cannot double its share.
	uniq := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			uniq = append(uniq, id)
		}
	}
	r := &Ring{vnodes: vnodes, ids: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for ri, id := range r.ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: Hash64(id + "#" + strconv.Itoa(v)), replica: ri})
		}
	}
	// Ties (astronomically rare with 64-bit FNV) break by replica ID so
	// the ring stays a pure function of the replica set.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.ids[r.points[i].replica] < r.ids[r.points[j].replica]
	})
	return r
}

// IDs returns the replica IDs, sorted.
func (r *Ring) IDs() []string { return append([]string(nil), r.ids...) }

// Len returns the replica count.
func (r *Ring) Len() int { return len(r.ids) }

// succ returns the index of the first point clockwise from hash h.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the key's pure consistent-hash owner ("" on an empty
// ring): the replica of the first virtual node clockwise from the
// key's hash. Removing a replica moves only the keys it owned;
// adding one moves only keys onto it — the classic minimal-remap
// property, pinned by the ring property tests.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.ids[r.points[r.succ(Hash64(key))].replica]
}

// Sequence returns every replica in ring order starting from the key's
// owner: the deterministic fallback chain a router walks when the
// owner is unhealthy or at capacity. Each replica appears once.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.ids))
	seen := make([]bool, len(r.ids))
	for i, n := r.succ(Hash64(key)), 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.ids[p.replica])
			if len(out) == len(r.ids) {
				break
			}
		}
	}
	return out
}

// Without returns a derived ring with id removed (the replica-loss
// topology). The surviving replicas' virtual nodes are identical, so
// only keys owned by id resolve differently.
func (r *Ring) Without(id string) *Ring {
	ids := make([]string, 0, len(r.ids))
	for _, x := range r.ids {
		if x != id {
			ids = append(ids, x)
		}
	}
	return NewRing(ids, r.vnodes)
}

// With returns a derived ring with id added.
func (r *Ring) With(id string) *Ring {
	return NewRing(append(r.IDs(), id), r.vnodes)
}

// BoundedCap returns the bounded-load ownership cap for nKeys keys
// over nReplicas replicas: ceil(factor x nKeys/nReplicas), never below
// 1. factor <= 1 degenerates to perfect balance.
func BoundedCap(factor float64, nKeys, nReplicas int) int {
	if nReplicas <= 0 {
		return 0
	}
	if factor < 1 {
		factor = 1
	}
	c := int(math.Ceil(factor * float64(nKeys) / float64(nReplicas)))
	if c < 1 {
		c = 1
	}
	return c
}

// AssignBounded assigns every key to a replica by walking its ring
// sequence under the bounded-load cap BoundedCap(factor, len(keys),
// Len()). Keys are placed in canonical (hash, key) order, so the
// result is a pure function of the key SET — independent of input
// order and identical across runs — which is what the distribution
// property tests pin. The router's online owner table is the
// incremental form of this assignment.
func AssignBounded(r *Ring, keys []string, factor float64) (map[string]string, error) {
	if r.Len() == 0 {
		return nil, fmt.Errorf("cluster: assign over an empty ring")
	}
	canon := append([]string(nil), keys...)
	sort.Slice(canon, func(i, j int) bool {
		hi, hj := Hash64(canon[i]), Hash64(canon[j])
		if hi != hj {
			return hi < hj
		}
		return canon[i] < canon[j]
	})
	cap_ := BoundedCap(factor, len(canon), r.Len())
	out := make(map[string]string, len(canon))
	count := make(map[string]int, r.Len())
	for _, key := range canon {
		if _, dup := out[key]; dup {
			continue
		}
		placed := false
		for _, id := range r.Sequence(key) {
			if count[id] < cap_ {
				out[key] = id
				count[id]++
				placed = true
				break
			}
		}
		if !placed {
			// Unreachable: cap x replicas >= keys by construction.
			return nil, fmt.Errorf("cluster: no replica below cap %d for key %q", cap_, key)
		}
	}
	return out, nil
}
