package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/modelstore"
	"repro/internal/randx"
)

// testKeys builds n dataset-style keys via the exported modelstore
// derivation, so the property tests exercise the exact byte shapes the
// router will hash in production.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = modelstore.DatasetKey(1, fmt.Sprintf("sys%04d", i), "")
		case 1:
			keys[i] = modelstore.DatasetKey(2, fmt.Sprintf("sys%04d", i), fmt.Sprintf("dst%02d", i%11))
		default:
			keys[i] = modelstore.DatasetKey(2, fmt.Sprintf("alt%04d", i), fmt.Sprintf("sys%02d", i%7))
		}
	}
	return keys
}

func replicaIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("replica-%d", i)
	}
	return ids
}

// TestAssignBoundedBalance pins the headline distribution invariant:
// 1k keys over 8 replicas stay within the bounded-load cap
// ceil(1.25 x 1000/8) = 157, and every replica gets a non-trivial
// share.
func TestAssignBoundedBalance(t *testing.T) {
	keys := testKeys(1000)
	ring := NewRing(replicaIDs(8), DefaultVNodes)
	assign, err := AssignBounded(ring, keys, 1.25)
	if err != nil {
		t.Fatalf("AssignBounded: %v", err)
	}
	if len(assign) != len(keys) {
		t.Fatalf("assigned %d keys, want %d", len(assign), len(keys))
	}
	counts := map[string]int{}
	for _, id := range assign {
		counts[id]++
	}
	cap_ := BoundedCap(1.25, len(keys), ring.Len())
	if cap_ != 157 {
		t.Fatalf("BoundedCap(1.25, 1000, 8) = %d, want 157", cap_)
	}
	for _, id := range ring.IDs() {
		c := counts[id]
		if c > cap_ {
			t.Errorf("replica %s holds %d keys, above cap %d", id, c, cap_)
		}
		// Bounded load guarantees the ceiling, not a floor, but with 128
		// vnodes no replica should be starved outright.
		if c < 50 {
			t.Errorf("replica %s holds only %d of 1000 keys", id, c)
		}
	}
}

// TestAssignBoundedOrderIndependent pins that assignment is a pure
// function of the key set: shuffled input orders produce the identical
// map.
func TestAssignBoundedOrderIndependent(t *testing.T) {
	keys := testKeys(400)
	ring := NewRing(replicaIDs(5), 64)
	want, err := AssignBounded(ring, keys, 1.25)
	if err != nil {
		t.Fatalf("AssignBounded: %v", err)
	}
	rng := randx.New(42)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), keys...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		got, err := AssignBounded(ring, shuffled, 1.25)
		if err != nil {
			t.Fatalf("AssignBounded(shuffle %d): %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shuffle %d changed the assignment", trial)
		}
	}
}

// TestRingDeterministicAcrossConstruction pins that rings built from
// permuted (and duplicated) replica ID lists agree on every key and on
// the fallback sequence.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	ids := replicaIDs(6)
	ring := NewRing(ids, 64)
	perm := []string{ids[3], ids[0], ids[5], ids[1], ids[4], ids[2], ids[3]}
	ring2 := NewRing(perm, 64)
	if !reflect.DeepEqual(ring.IDs(), ring2.IDs()) {
		t.Fatalf("IDs diverge: %v vs %v", ring.IDs(), ring2.IDs())
	}
	for _, key := range testKeys(300) {
		if a, b := ring.Owner(key), ring2.Owner(key); a != b {
			t.Fatalf("owner of %q diverges: %s vs %s", key, a, b)
		}
		if a, b := ring.Sequence(key), ring2.Sequence(key); !reflect.DeepEqual(a, b) {
			t.Fatalf("sequence of %q diverges: %v vs %v", key, a, b)
		}
	}
}

// TestRingMinimalRemapOnRemove pins the monotone minimal-remap
// property: removing one replica moves exactly the keys it owned, and
// every surviving key keeps its owner.
func TestRingMinimalRemapOnRemove(t *testing.T) {
	keys := testKeys(1000)
	ring := NewRing(replicaIDs(8), DefaultVNodes)
	victim := "replica-3"
	after := ring.Without(victim)
	moved := 0
	for _, key := range keys {
		before := ring.Owner(key)
		now := after.Owner(key)
		if before == victim {
			moved++
			if now == victim {
				t.Fatalf("key %q still owned by removed replica", key)
			}
			continue
		}
		if now != before {
			t.Fatalf("key %q moved %s -> %s although %s did not own it", key, before, now, victim)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; test is vacuous")
	}
}

// TestRingMinimalRemapOnAdd pins the other direction: adding a replica
// only pulls keys onto the newcomer.
func TestRingMinimalRemapOnAdd(t *testing.T) {
	keys := testKeys(1000)
	ring := NewRing(replicaIDs(7), DefaultVNodes)
	after := ring.With("replica-7")
	gained := 0
	for _, key := range keys {
		before := ring.Owner(key)
		now := after.Owner(key)
		if now == before {
			continue
		}
		if now != "replica-7" {
			t.Fatalf("key %q moved %s -> %s instead of onto the new replica", key, before, now)
		}
		gained++
	}
	if gained == 0 {
		t.Fatal("new replica gained no keys; test is vacuous")
	}
}

// TestRingRemoveAddRoundTrips pins that remove-then-add restores the
// original ownership exactly (the ring is memoryless).
func TestRingRemoveAddRoundTrips(t *testing.T) {
	ring := NewRing(replicaIDs(5), 64)
	round := ring.Without("replica-2").With("replica-2")
	for _, key := range testKeys(300) {
		if a, b := ring.Owner(key), round.Owner(key); a != b {
			t.Fatalf("round trip changed owner of %q: %s -> %s", key, a, b)
		}
	}
}

// TestRingSequenceCoversAllReplicas pins that the fallback chain
// starts at the owner and visits every replica exactly once.
func TestRingSequenceCoversAllReplicas(t *testing.T) {
	ring := NewRing(replicaIDs(6), 64)
	for _, key := range testKeys(100) {
		seq := ring.Sequence(key)
		if len(seq) != ring.Len() {
			t.Fatalf("sequence for %q has %d entries, want %d", key, len(seq), ring.Len())
		}
		if seq[0] != ring.Owner(key) {
			t.Fatalf("sequence for %q starts at %s, owner is %s", key, seq[0], ring.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("sequence for %q repeats %s", key, id)
			}
			seen[id] = true
		}
	}
}

// TestRingEmptyAndSingle pins the degenerate topologies.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 64)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := empty.Sequence("k"); got != nil {
		t.Fatalf("empty ring sequence = %v, want nil", got)
	}
	if _, err := AssignBounded(empty, []string{"k"}, 1.25); err == nil {
		t.Fatal("AssignBounded over empty ring did not error")
	}
	solo := NewRing([]string{"only"}, 64)
	for _, key := range testKeys(20) {
		if solo.Owner(key) != "only" {
			t.Fatalf("single-replica ring routed %q elsewhere", key)
		}
	}
}

// TestHash64Golden pins the key hash so a hash change (which would
// remap a live fleet) cannot slip through silently.
func TestHash64Golden(t *testing.T) {
	cases := map[string]uint64{
		"":                   0xcbf29ce484222325, // FNV-1a offset basis
		"uc1|sys=intel|dst=": 0xbbdf463d00788be,
		"replica-0#0":        0x4ae75db58bd6b561,
	}
	for s, want := range cases {
		if got := Hash64(s); got != want {
			t.Errorf("Hash64(%q) = %#x, want %#x", s, got, want)
		}
	}
}
