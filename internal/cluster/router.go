package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/randx"
)

// Default router tuning. LoadFactor 1.25 is the classic bounded-load
// constant; two retries give every request three candidate replicas,
// enough to survive one dead and one degraded replica on the same
// arc.
const (
	DefaultLoadFactor    = 1.25
	DefaultMaxRetries    = 2
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeFailures = 2
)

// Config parameterizes a Router. Backends and nothing else is
// required; zero fields take the defaults above.
type Config struct {
	// Backends are the replicas, one per varserve process (or sim
	// fake). IDs must be unique.
	Backends []Backend
	// Policy ranks forwarding candidates (default CacheAffinity).
	Policy Policy
	// VNodes is the virtual-node count per replica (default
	// DefaultVNodes).
	VNodes int
	// LoadFactor bounds ownership: no replica owns more than
	// ceil(LoadFactor x keys/alive) cells (default 1.25).
	LoadFactor float64
	// MaxRetries bounds failover: a request touches at most
	// 1+MaxRetries replicas (default 2).
	MaxRetries int
	// HedgeAfter, when positive, launches a second attempt on the next
	// candidate if the first has not answered within it. Zero disables
	// hedging.
	HedgeAfter time.Duration
	// ProbeInterval is Run's health-probe cadence (default 2s).
	ProbeInterval time.Duration
	// ProbeFailures is the consecutive probe/transport failures that
	// mark a replica Down (default 2).
	ProbeFailures int
	// Clock is the router's time source (default randx.SystemClock;
	// the sim installs its shared virtual clock).
	Clock randx.Clock
	// Tracer, when set, roots one span per routed request.
	Tracer *obs.Tracer
	// Metrics, when set, receives router and per-replica instruments
	// under the "cluster." scope.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = CacheAffinity{}
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadFactor < 1 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = DefaultProbeFailures
	}
	if c.Clock == nil {
		c.Clock = randx.SystemClock
	}
	return c
}

// Router is the sharded serving tier's brain: it owns the ring, the
// bounded-load owner table, per-replica health, and the forwarding
// loop with retries and optional hedging. Safe for concurrent use.
type Router struct {
	cfg   Config
	ring  *Ring
	clock randx.Clock

	policy atomic.Value // policyBox

	replicas map[string]*replica
	ids      []string // sorted

	mu     sync.Mutex
	owners map[string]string // key -> replica ID
	counts map[string]int    // replica ID -> owned keys

	rrTick    atomic.Uint64
	remaps    atomic.Uint64
	failbacks atomic.Uint64

	scope    obs.Scope
	requests *obs.Counter
	retries  *obs.Counter
	hedges   *obs.Counter
	noroute  *obs.Counter
}

// New builds a router over the backends. It starts with every replica
// assumed Ready; the first probe pass corrects that, so callers that
// cannot afford optimistic routing should ProbeAll before serving.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:      cfg,
		clock:    cfg.Clock,
		replicas: make(map[string]*replica, len(cfg.Backends)),
		owners:   make(map[string]string),
		counts:   make(map[string]int),
	}
	for _, b := range cfg.Backends {
		id := b.ID()
		if id == "" {
			return nil, fmt.Errorf("cluster: backend with empty ID")
		}
		if _, dup := r.replicas[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend ID %q", id)
		}
		rep := &replica{backend: b, id: id}
		rep.state.Store(int32(Ready))
		r.replicas[id] = rep
		r.ids = append(r.ids, id)
	}
	sort.Strings(r.ids)
	r.ring = NewRing(r.ids, cfg.VNodes)
	r.policy.Store(policyBox{cfg.Policy})
	r.scope = cfg.Metrics.Scope("cluster.")
	r.requests = r.scope.Counter("requests")
	r.retries = r.scope.Counter("retries")
	r.hedges = r.scope.Counter("hedges")
	r.noroute = r.scope.Counter("no_route")
	return r, nil
}

// Ring exposes the router's ring (for status and tests).
func (r *Router) Ring() *Ring { return r.ring }

// policyBox gives atomic.Value one consistent concrete type across
// the distinct Policy implementations.
type policyBox struct{ p Policy }

// Policy returns the active routing policy.
func (r *Router) Policy() Policy { return r.policy.Load().(policyBox).p }

// SetPolicy swaps the routing policy atomically; in-flight requests
// finish under the policy they started with.
func (r *Router) SetPolicy(p Policy) {
	if p != nil {
		r.policy.Store(policyBox{p})
	}
}

// view snapshots health, load, and the key's ownership for one routing
// decision.
func (r *Router) view(key string) View {
	v := View{
		States:   make(map[string]State, len(r.ids)),
		InFlight: make(map[string]int64, len(r.ids)),
		RRTick:   r.rrTick.Add(1) - 1,
	}
	for _, id := range r.ids {
		rep := r.replicas[id]
		v.States[id] = rep.State()
		v.InFlight[id] = rep.inFlight.Load()
	}
	if key != "" {
		v.Owner = r.ownerFor(key, v)
		v.Sequence = r.ring.Sequence(key)
	}
	return v
}

// ownerFor resolves (assigning if needed) the key's owner under the
// bounded-load cap. The table is sticky: an assignment only changes
// when its replica goes Down (minimal remap) or when fail-back hands a
// recovered replica its ring-owned keys.
func (r *Router) ownerFor(key string, v View) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.owners[key]; ok {
		return id
	}
	alive := 0
	for _, id := range r.ids {
		if v.Alive(id) {
			alive++
		}
	}
	if alive == 0 {
		return ""
	}
	cap_ := BoundedCap(r.cfg.LoadFactor, len(r.owners)+1, alive)
	var fallback string
	for _, id := range r.ring.Sequence(key) {
		if !v.Alive(id) {
			continue
		}
		if fallback == "" {
			fallback = id
		}
		if r.counts[id] < cap_ {
			r.assignLocked(key, id)
			return id
		}
	}
	// Every live replica is at cap (possible transiently when most of
	// the fleet is down): fall back to the first live one rather than
	// refusing the key.
	if fallback != "" {
		r.assignLocked(key, fallback)
	}
	return fallback
}

func (r *Router) assignLocked(key, id string) {
	r.owners[key] = id
	r.counts[id]++
}

// setState applies a health transition and its ownership consequences:
// a replica going Down sheds every key it owned (they reassign on next
// touch — only its keys move), and a replica recovering from Down
// pulls back exactly the keys whose pure ring owner it is.
func (r *Router) setState(rep *replica, next State) {
	prev := State(rep.state.Swap(int32(next)))
	if prev == next {
		return
	}
	r.scope.Scope("replica." + rep.id + ".").Gauge("state").Set(float64(next))
	if next == Down {
		r.shedOwned(rep.id)
		return
	}
	if prev == Down {
		r.failBack(rep.id)
	}
}

// shedOwned drops every key the dead replica owned; they reassign to
// live replicas on next touch, so only its keys move.
func (r *Router) shedOwned(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, owner := range r.owners {
		if owner == id {
			delete(r.owners, key)
			r.remaps.Add(1)
		}
	}
	r.counts[id] = 0
}

// failBack releases exactly the keys whose pure ring owner is the
// recovered replica, so they return home without disturbing anything
// else.
func (r *Router) failBack(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, owner := range r.owners {
		if owner != id && r.ring.Owner(key) == id {
			delete(r.owners, key)
			if r.counts[owner] > 0 {
				r.counts[owner]--
			}
			r.failbacks.Add(1)
		}
	}
}

// retryableStatus reports whether an HTTP status is safe to fail over:
// the replica refused or could not complete the request without
// consuming it (502/503/504). 4xx and 500 are returned to the caller
// as-is — they would fail identically everywhere.
func retryableStatus(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// Do routes one request: candidates from the active policy, forwarded
// with at most MaxRetries failovers, hedged when configured. The
// returned error is non-nil only when no replica produced a response.
func (r *Router) Do(ctx context.Context, req Request) (Response, error) {
	var span *obs.Span
	if r.cfg.Tracer != nil {
		ctx, span = r.cfg.Tracer.Start(ctx, "cluster.route")
	} else {
		ctx, span = obs.Start(ctx, "cluster.route")
	}
	defer span.End()
	span.SetAttr("path", req.Path)
	if req.Key != "" {
		span.SetAttr("key", req.Key)
	}
	r.requests.Inc()

	v := r.view(req.Key)
	if v.Owner != "" {
		span.SetAttr("owner", v.Owner)
	}
	candidates := r.Policy().Candidates(req.Key, v)
	if len(candidates) == 0 {
		r.noroute.Inc()
		span.SetAttr("error", "no live replica")
		return Response{}, fmt.Errorf("cluster: no live replica for %s %s", req.Method, req.Path)
	}
	if max := 1 + r.cfg.MaxRetries; len(candidates) > max {
		candidates = candidates[:max]
	}

	var lastResp Response
	var lastErr error
	haveResp := false
	for i := 0; i < len(candidates); i++ {
		rep := r.replicas[candidates[i]]
		if rep == nil || rep.State() == Down {
			continue
		}
		if i > 0 {
			r.retries.Inc()
		}
		var resp Response
		var err error
		var via string
		if i == 0 && r.cfg.HedgeAfter > 0 && len(candidates) > 1 {
			next := r.replicas[candidates[1]]
			resp, via, err = r.doHedged(ctx, rep, next, req)
			if via != "" && via != rep.id {
				i++ // the hedge consumed the next candidate
			}
		} else {
			resp, err = r.attempt(ctx, rep, req)
			via = rep.id
		}
		if err == nil && !retryableStatus(resp.Status) {
			span.SetAttr("replica", via)
			span.SetAttr("attempts", i+1)
			return resp, nil
		}
		if err == nil {
			lastResp, haveResp = resp, true
		} else {
			lastErr = err
		}
	}
	span.SetAttr("attempts", len(candidates))
	if haveResp {
		span.SetAttr("status", lastResp.Status)
		return lastResp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no routable replica for %s %s", req.Method, req.Path)
	}
	span.SetAttr("error", lastErr.Error())
	return Response{}, fmt.Errorf("cluster: all candidates failed: %w", lastErr)
}

// attempt forwards to one replica, maintaining its load and health
// accounting. A transport error counts toward the Down threshold so a
// crashed replica stops receiving traffic before the next probe pass.
func (r *Router) attempt(ctx context.Context, rep *replica, req Request) (Response, error) {
	sc := r.scope.Scope("replica." + rep.id + ".")
	rep.inFlight.Add(1)
	start := r.clock()
	resp, err := rep.backend.Do(ctx, req)
	sc.Histogram("latency").ObserveMS(float64(r.clock().Sub(start)) / float64(time.Millisecond))
	rep.inFlight.Add(-1)
	if err != nil {
		rep.failed.Add(1)
		sc.Counter("failures").Inc()
		if int(rep.probeFails.Add(1)) >= r.cfg.ProbeFailures {
			r.setState(rep, Down)
		}
		return Response{}, fmt.Errorf("cluster: replica %s: %w", rep.id, err)
	}
	rep.probeFails.Store(0)
	rep.served.Add(1)
	sc.Counter("requests").Inc()
	return resp, nil
}

// doHedged races the primary against the next candidate launched after
// HedgeAfter. The first acceptable answer wins; the loser's attempt is
// canceled.
func (r *Router) doHedged(ctx context.Context, primary, hedge *replica, req Request) (Response, string, error) {
	type result struct {
		resp Response
		err  error
		id   string
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	launch := func(rep *replica) {
		go func() {
			resp, err := r.attempt(hctx, rep, req)
			select {
			case ch <- result{resp, err, rep.id}:
			case <-hctx.Done():
			}
		}()
	}
	launch(primary)
	timer := time.NewTimer(r.cfg.HedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var last result
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil && !retryableStatus(res.resp.Status) {
				return res.resp, res.id, nil
			}
			last = res
			if outstanding == 0 {
				if !hedged && hedge.State() != Down {
					// Primary failed fast: use the hedge slot as an
					// immediate retry.
					r.hedges.Inc()
					hedged = true
					outstanding++
					launch(hedge)
					continue
				}
				return last.resp, last.id, last.err
			}
		case <-timer.C:
			if !hedged && hedge.State() != Down {
				r.hedges.Inc()
				hedged = true
				outstanding++
				launch(hedge)
			}
		case <-ctx.Done():
			return Response{}, "", ctx.Err()
		}
	}
}

// probeOne applies one health observation to a replica.
func (r *Router) probeOne(ctx context.Context, rep *replica) {
	p, err := rep.backend.Probe(ctx)
	sc := r.scope.Scope("replica." + rep.id + ".")
	if err != nil {
		sc.Counter("probe_failures").Inc()
		if int(rep.probeFails.Add(1)) >= r.cfg.ProbeFailures {
			r.setState(rep, Down)
		}
		return
	}
	rep.probeFails.Store(0)
	rep.breakers.Store(int32(p.BreakersOpen))
	rep.drifted.Store(int32(p.Drifted))
	switch {
	case !p.Ready:
		r.setState(rep, Down)
	case p.Status == "degraded" || p.BreakersOpen > 0 || p.Drifted > 0:
		r.setState(rep, Degraded)
	default:
		r.setState(rep, Ready)
	}
}

// ProbeAll probes every replica once, synchronously, in sorted ID
// order — deterministic, which is why the sim drives health through it
// directly.
func (r *Router) ProbeAll(ctx context.Context) {
	for _, id := range r.ids {
		r.probeOne(ctx, r.replicas[id])
	}
}

// Run probes on the configured cadence until ctx is canceled. Callers
// own the goroutine (cmd/varroute runs it alongside its HTTP server).
func (r *Router) Run(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	r.ProbeAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.ProbeAll(ctx)
		}
	}
}

// ReplicaStatus is one replica's row in the cluster status payload.
type ReplicaStatus struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	InFlight     int64  `json:"in_flight"`
	Served       uint64 `json:"served"`
	Failed       uint64 `json:"failed"`
	BreakersOpen int    `json:"breakers_open,omitempty"`
	Drifted      int    `json:"drifted,omitempty"`
	OwnedKeys    int    `json:"owned_keys"`
}

// Status is the router's self-description (GET /v1/cluster/status).
type Status struct {
	Policy    string          `json:"policy"`
	Replicas  []ReplicaStatus `json:"replicas"`
	Keys      int             `json:"keys"`
	Remaps    uint64          `json:"remaps"`
	Failbacks uint64          `json:"failbacks"`
}

// Snapshot captures the router's current state, replicas sorted by ID.
func (r *Router) Snapshot() Status {
	keys, counts := r.tableSnapshot()
	st := Status{
		Policy:    r.Policy().Name(),
		Keys:      keys,
		Remaps:    r.remaps.Load(),
		Failbacks: r.failbacks.Load(),
	}
	for _, id := range r.ids {
		rep := r.replicas[id]
		st.Replicas = append(st.Replicas, ReplicaStatus{
			ID:           id,
			State:        rep.State().String(),
			InFlight:     rep.inFlight.Load(),
			Served:       rep.served.Load(),
			Failed:       rep.failed.Load(),
			BreakersOpen: int(rep.breakers.Load()),
			Drifted:      int(rep.drifted.Load()),
			OwnedKeys:    counts[id],
		})
	}
	return st
}

// tableSnapshot copies the owner-table size and per-replica counts.
func (r *Router) tableSnapshot() (int, map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]int, len(r.counts))
	for id, n := range r.counts {
		counts[id] = n
	}
	return len(r.owners), counts
}

// Owners returns a copy of the owner table (tests and status).
func (r *Router) Owners() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.owners))
	for k, v := range r.owners {
		out[k] = v
	}
	return out
}

// OwnerCounts returns owned-key counts per replica ID.
func (r *Router) OwnerCounts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.counts))
	for id, n := range r.counts {
		out[id] = n
	}
	return out
}
