package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is the in-package test replica: scriptable health,
// transport failures, and per-key serve counts.
type fakeBackend struct {
	id string

	mu       sync.Mutex
	ready    bool
	status   string
	breakers int
	fail     bool          // transport error on Do
	delay    time.Duration // real sleep before answering (hedging tests)

	served sync.Map // key -> *atomic.Int64
	total  atomic.Int64
}

func newFakeBackend(id string) *fakeBackend {
	return &fakeBackend{id: id, ready: true, status: "ok"}
}

func (f *fakeBackend) ID() string { return f.id }

func (f *fakeBackend) set(ready bool, status string, fail bool) {
	f.mu.Lock()
	f.ready, f.status, f.fail = ready, status, fail
	f.mu.Unlock()
}

func (f *fakeBackend) Do(ctx context.Context, req Request) (Response, error) {
	f.mu.Lock()
	fail, delay := f.fail, f.delay
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	if fail {
		return Response{}, fmt.Errorf("connection refused")
	}
	c, _ := f.served.LoadOrStore(req.Key, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
	f.total.Add(1)
	return Response{Status: http.StatusOK, Body: []byte(`{"ok":true}`)}, nil
}

func (f *fakeBackend) Probe(context.Context) (Probe, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return Probe{}, fmt.Errorf("connection refused")
	}
	return Probe{Ready: f.ready, Status: f.status, BreakersOpen: f.breakers}, nil
}

func testRouter(t *testing.T, n int, mutate func(cfg *Config)) (*Router, []*fakeBackend) {
	t.Helper()
	backs := make([]*fakeBackend, n)
	cfg := Config{}
	for i := range backs {
		backs[i] = newFakeBackend(fmt.Sprintf("replica-%d", i))
		cfg.Backends = append(cfg.Backends, backs[i])
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, backs
}

// TestRouterConcurrentHealthAndRouting hammers Do from many goroutines
// while probes flip replica health underneath — the -race workhorse.
func TestRouterConcurrentHealthAndRouting(t *testing.T) {
	r, backs := testRouter(t, 4, nil)
	ctx := context.Background()
	keys := testKeys(64)
	stop := make(chan struct{})
	var prober sync.WaitGroup
	prober.Add(1)
	go func() {
		defer prober.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b := backs[i%len(backs)]
			b.set(i%3 != 0, "ok", false)
			r.ProbeAll(ctx)
		}
	}()
	var errs atomic.Int64
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 200; i++ {
				key := keys[(g*200+i)%len(keys)]
				if _, err := r.Do(ctx, Request{Method: "POST", Path: "/v1/predict/uc1", Key: key}); err != nil {
					errs.Add(1)
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	prober.Wait()
	// At most one replica is unhealthy at a time and retries cover it,
	// so hard failures should be rare to zero.
	if errs.Load() > 50 {
		t.Fatalf("%d of 1600 requests failed outright", errs.Load())
	}
}

// TestPolicyHotSwap swaps policies under live traffic; -race plus the
// invariant that every request still lands somewhere.
func TestPolicyHotSwap(t *testing.T) {
	r, backs := testRouter(t, 3, nil)
	ctx := context.Background()
	keys := testKeys(32)
	policies := []Policy{CacheAffinity{}, RoundRobin{}, LeastLoaded{}}
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.SetPolicy(policies[i%len(policies)])
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 6; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 150; i++ {
				if _, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: keys[i%len(keys)]}); err != nil {
					t.Errorf("Do under hot swap: %v", err)
					return
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	swapper.Wait()
	total := int64(0)
	for _, b := range backs {
		total += b.total.Load()
	}
	if total != 6*150 {
		t.Fatalf("replicas served %d requests, want %d", total, 6*150)
	}
}

// TestLeastLoadedNeverRoutesNotReady is the regression pin: a Down
// replica receives zero requests under the least-loaded policy, even
// though it always has the fewest in flight.
func TestLeastLoadedNeverRoutesNotReady(t *testing.T) {
	r, backs := testRouter(t, 3, func(cfg *Config) { cfg.Policy = LeastLoaded{} })
	ctx := context.Background()
	backs[1].set(false, "draining", false)
	r.ProbeAll(ctx)
	for i, key := range testKeys(200) {
		if _, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: key}); err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
	}
	if got := backs[1].total.Load(); got != 0 {
		t.Fatalf("not-ready replica served %d requests, want 0", got)
	}
	// Sequential requests all tie at zero in flight, so the ID
	// tie-break deterministically picks the first live replica; the
	// live pair must account for every request either way.
	if total := backs[0].total.Load() + backs[2].total.Load(); total != 200 {
		t.Fatalf("live replicas served %d requests, want 200", total)
	}
}

// TestRouterFailoverOnTransportError pins retry semantics: the dead
// owner's transport error fails over to a fallback, the request
// succeeds, and the dead replica trips Down at the failure threshold
// with its keys remapped.
func TestRouterFailoverOnTransportError(t *testing.T) {
	r, backs := testRouter(t, 3, func(cfg *Config) { cfg.ProbeFailures = 1 })
	ctx := context.Background()
	keys := testKeys(60)
	for _, key := range keys {
		if _, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: key}); err != nil {
			t.Fatalf("warm Do: %v", err)
		}
	}
	var victim *fakeBackend
	owners := r.Owners()
	for _, b := range backs {
		for _, id := range owners {
			if id == b.id {
				victim = b
				break
			}
		}
		if victim != nil {
			break
		}
	}
	victim.set(true, "ok", true) // transport failures from now on
	for _, key := range keys {
		resp, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: key})
		if err != nil {
			t.Fatalf("failover Do(%q): %v", key, err)
		}
		if resp.Status != http.StatusOK {
			t.Fatalf("failover Do(%q) status %d", key, resp.Status)
		}
	}
	if got := r.replicas[victim.id].State(); got != Down {
		t.Fatalf("victim state %v after transport failures, want Down", got)
	}
	for key, id := range r.Owners() {
		if id == victim.id {
			t.Fatalf("key %q still owned by down replica", key)
		}
	}
}

// TestRouterFailbackOnRecovery pins minimal remap and fail-back: keys
// shed by a dead replica return to it (and only to it) on recovery —
// but only the keys whose pure ring owner it is.
func TestRouterFailbackOnRecovery(t *testing.T) {
	r, backs := testRouter(t, 4, nil)
	ctx := context.Background()
	keys := testKeys(200)
	route := func() {
		for _, key := range keys {
			if _, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: key}); err != nil {
				t.Fatalf("Do: %v", err)
			}
		}
	}
	route()
	before := r.Owners()

	victim := backs[2]
	victim.set(false, "down", false)
	r.ProbeAll(ctx)
	route()
	during := r.Owners()
	for key, id := range during {
		if id == victim.id {
			t.Fatalf("key %q routed to down replica", key)
		}
		if before[key] != victim.id && during[key] != before[key] {
			t.Fatalf("key %q moved %s -> %s though its owner stayed alive", key, before[key], during[key])
		}
	}

	victim.set(true, "ok", false)
	r.ProbeAll(ctx)
	route()
	after := r.Owners()
	returned := 0
	for key, id := range after {
		if r.ring.Owner(key) == victim.id {
			if id != victim.id {
				t.Fatalf("ring-owned key %q not failed back (owner %s)", key, id)
			}
			returned++
		} else if during[key] != "" && id != during[key] {
			t.Fatalf("non-ring key %q churned %s -> %s on recovery", key, during[key], id)
		}
	}
	if returned == 0 {
		t.Fatal("no keys failed back; test is vacuous")
	}
}

// TestRouterHedging pins that a slow primary gets hedged to the next
// candidate and the fast answer wins.
func TestRouterHedging(t *testing.T) {
	r, backs := testRouter(t, 2, func(cfg *Config) {
		cfg.HedgeAfter = 5 * time.Millisecond
	})
	ctx := context.Background()
	key := testKeys(1)[0]
	// Make the key's owner slow.
	if _, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: key}); err != nil {
		t.Fatalf("warm Do: %v", err)
	}
	ownerID := r.Owners()[key]
	var owner, other *fakeBackend
	for _, b := range backs {
		if b.id == ownerID {
			owner = b
		} else {
			other = b
		}
	}
	owner.mu.Lock()
	owner.delay = 300 * time.Millisecond
	owner.mu.Unlock()
	start := time.Now()
	resp, err := r.Do(ctx, Request{Method: "POST", Path: "/p", Key: key})
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("hedged Do: %v status %d", err, resp.Status)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("hedged request took %v; hedge did not fire", elapsed)
	}
	if other.total.Load() == 0 {
		t.Fatal("hedge replica served nothing")
	}
}
