// Package sim is the deterministic cluster-simulation harness: it
// runs the REAL cluster.Router against in-process fake replicas on a
// shared virtual clock, so the routing invariants that matter in
// production — single owner per key, bounded imbalance, minimal remap
// on replica loss, zero lost requests through failover — are proven
// byte-deterministically in unit-test time, with no sockets and no
// sleeps.
//
// The moving parts:
//
//   - Clock: a manually advanced shared time source every component
//     (router, replicas, harness) reads through randx.Clock.
//   - Replica: a fake varserve implementing cluster.Backend. Capacity
//     is modeled in virtual time with a busy-until horizon (a replica
//     serves serially; a request entering at t completes at
//     max(t, busyUntil) + service time), latency jitter and service
//     times are drawn from faults.StreamRNG so the same scenario seed
//     replays the same tails, and outage windows make Do and Probe
//     fail like a crashed process.
//   - Harness: drives a Schedule of timestamped requests through the
//     router synchronously, interleaving health probes on the
//     configured cadence, and records every response with the serving
//     replica and virtual completion time.
//
// Because everything is synchronous and every random draw is
// stream-seeded, a scenario's entire outcome — who served what, the
// owner table, the makespan — renders to a stable fingerprint string;
// the invariant tests compare fingerprints across reruns to pin
// determinism itself.
package sim
