package sim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/modelstore"
)

// ScalingPoint is one replica-count measurement from the scaling
// scenario.
type ScalingPoint struct {
	Replicas   int
	Requests   int
	Makespan   time.Duration
	Throughput float64 // requests per virtual second
}

// Speedup returns this point's throughput relative to base.
func (p ScalingPoint) Speedup(base ScalingPoint) float64 {
	if base.Throughput <= 0 {
		return 0
	}
	return p.Throughput / base.Throughput
}

// ScenarioKeys builds nKeys distinct dataset routing keys through the
// exported modelstore derivation — the exact bytes production routing
// hashes.
func ScenarioKeys(nKeys int) []string {
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = modelstore.DatasetKey(1, fmt.Sprintf("sys%04d", i), "")
	}
	return keys
}

// UniformSchedule spreads nRequests over the keys round-robin with a
// fixed virtual arrival interval, starting at start.
func UniformSchedule(keys []string, nRequests int, start, interval time.Duration) Schedule {
	sched := make(Schedule, nRequests)
	for i := range sched {
		sched[i] = Event{
			At: start + time.Duration(i)*interval,
			Req: cluster.Request{
				Method: "POST",
				Path:   "/v1/predict/uc1",
				Key:    keys[i%len(keys)],
			},
		}
	}
	return sched
}

// ScalingScenario runs the same saturating workload against fleets of
// each given size and reports virtual-time throughput per size. The
// load factor is pinned tight (1.05) so bounded-load placement, not
// hash luck, determines balance; arrivals come faster than any fleet
// can serve, so makespan measures capacity.
func ScalingScenario(ctx context.Context, replicaCounts []int, nKeys, nRequests int, service time.Duration, seed uint64) ([]ScalingPoint, error) {
	keys := ScenarioKeys(nKeys)
	maxN := 1
	for _, n := range replicaCounts {
		if n > maxN {
			maxN = n
		}
	}
	interval := service / time.Duration(2*maxN)
	if interval <= 0 {
		interval = time.Millisecond
	}
	var points []ScalingPoint
	for _, n := range replicaCounts {
		cfgs := make([]ReplicaConfig, n)
		for i := range cfgs {
			cfgs[i] = ReplicaConfig{ID: fmt.Sprintf("replica-%d", i), ServiceTime: service}
		}
		h, err := NewHarness(cfgs, seed, func(c *cluster.Config) { c.LoadFactor = 1.05 })
		if err != nil {
			return nil, err
		}
		res := h.Run(ctx, UniformSchedule(keys, nRequests, 0, interval))
		if lost := res.Lost(); lost > 0 {
			return nil, fmt.Errorf("sim: scaling run with %d replicas lost %d requests", n, lost)
		}
		points = append(points, ScalingPoint{
			Replicas:   n,
			Requests:   len(res.Outcomes),
			Makespan:   res.Makespan,
			Throughput: res.Throughput(),
		})
	}
	return points, nil
}
