package sim

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/randx"
)

// Clock is the simulation's shared time source: virtual time that
// moves only when the harness advances it. Safe for concurrent use
// (the router's attempt accounting reads it), though the harness
// itself is synchronous.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts a clock at the epoch of simulation time.
func NewClock() *Clock {
	return &Clock{now: time.Unix(0, 0).UTC()}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the clock forward to t (never backward).
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// Fn adapts the clock to the randx.Clock the router consumes.
func (c *Clock) Fn() randx.Clock { return c.Now }

// Window is a half-open interval of simulation time, as offsets from
// the clock epoch.
type Window struct {
	From, To time.Duration
}

func (w Window) contains(epoch, t time.Time) bool {
	off := t.Sub(epoch)
	return off >= w.From && off < w.To
}

// ReplicaConfig scripts one fake replica.
type ReplicaConfig struct {
	// ID is the ring identity.
	ID string
	// ServiceTime is the mean virtual time one request occupies the
	// replica (default 10ms).
	ServiceTime time.Duration
	// JitterFrac scales multiplicative service-time jitter drawn from
	// the scenario's fault stream (0 = none; 0.2 = ±20%).
	JitterFrac float64
	// Outages are windows during which the replica is dead: Do returns
	// transport errors and Probe fails.
	Outages []Window
	// Degraded are windows during which the replica reports a degraded
	// posture (open breakers) while still serving.
	Degraded []Window
}

// Replica is the in-process fake varserve. It implements
// cluster.Backend; all state is virtual-time bookkeeping.
type Replica struct {
	cfg   ReplicaConfig
	clock *Clock
	epoch time.Time
	rng   *randx.RNG

	mu        sync.Mutex
	busyUntil time.Time
	served    map[string]int // key -> requests served
	ingested  map[string]int // key -> measurement batches ingested
	total     int
	lastDone  time.Time
}

// NewReplica builds a fake replica. seed scopes the scenario; jitter
// draws come from faults.StreamRNG(seed, "sim/<id>/latency") so
// replicas' streams are independent and order-insensitive across
// scenarios.
func NewReplica(cfg ReplicaConfig, clock *Clock, seed uint64) *Replica {
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 10 * time.Millisecond
	}
	return &Replica{
		cfg:      cfg,
		clock:    clock,
		epoch:    clock.Now(),
		rng:      faults.StreamRNG(seed, "sim/"+cfg.ID+"/latency"),
		served:   make(map[string]int),
		ingested: make(map[string]int),
	}
}

// ID implements cluster.Backend.
func (r *Replica) ID() string { return r.cfg.ID }

func (r *Replica) down(t time.Time) bool {
	for _, w := range r.cfg.Outages {
		if w.contains(r.epoch, t) {
			return true
		}
	}
	return false
}

func (r *Replica) degraded(t time.Time) bool {
	for _, w := range r.cfg.Degraded {
		if w.contains(r.epoch, t) {
			return true
		}
	}
	return false
}

// Do implements cluster.Backend: occupy the replica for one service
// time in virtual time and answer with our identity, so the harness
// can attribute every response.
func (r *Replica) Do(_ context.Context, req cluster.Request) (cluster.Response, error) {
	now := r.clock.Now()
	if r.down(now) {
		return cluster.Response{}, fmt.Errorf("sim: replica %s is down", r.cfg.ID)
	}
	svc := r.cfg.ServiceTime
	if r.cfg.JitterFrac > 0 {
		svc = time.Duration(float64(svc) * (1 + r.cfg.JitterFrac*(2*r.rng.Float64()-1)))
	}
	done := r.occupy(now, svc, req.Key, strings.HasSuffix(req.Path, "/measurements"))
	body := fmt.Sprintf(`{"replica":%q,"done_ms":%d}`, r.cfg.ID, done.Sub(r.epoch)/time.Millisecond)
	return cluster.Response{Status: http.StatusOK, Body: []byte(body)}, nil
}

// occupy books one request onto the replica's serial virtual-time
// queue and returns its completion time.
func (r *Replica) occupy(now time.Time, svc time.Duration, key string, ingest bool) time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := now
	if r.busyUntil.After(start) {
		start = r.busyUntil
	}
	done := start.Add(svc)
	r.busyUntil = done
	r.lastDone = done
	r.served[key]++
	if ingest {
		r.ingested[key]++
	}
	r.total++
	return done
}

// Probe implements cluster.Backend.
func (r *Replica) Probe(context.Context) (cluster.Probe, error) {
	now := r.clock.Now()
	if r.down(now) {
		return cluster.Probe{}, fmt.Errorf("sim: replica %s is down", r.cfg.ID)
	}
	if r.degraded(now) {
		return cluster.Probe{Ready: true, Status: "degraded", BreakersOpen: 1}, nil
	}
	return cluster.Probe{Ready: true, Status: "ok"}, nil
}

// ServedKeys returns a copy of the per-key serve counts.
func (r *Replica) ServedKeys() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.served))
	for k, v := range r.served {
		out[k] = v
	}
	return out
}

// Ingested returns a copy of the per-key ingest-batch counts.
func (r *Replica) Ingested() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.ingested))
	for k, v := range r.ingested {
		out[k] = v
	}
	return out
}

// Busy returns the replica's virtual completion horizon — when its
// queue drains.
func (r *Replica) Busy() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastDone
}

// Event is one scheduled request: issue req at At (offset from the
// clock epoch).
type Event struct {
	At  time.Duration
	Req cluster.Request
}

// Schedule is a virtual-time workload, sorted by At before running.
type Schedule []Event

// Outcome records one routed request's result.
type Outcome struct {
	Event   Event
	Replica string // serving replica ("" on failure)
	Status  int
	Err     error
	// Done is the virtual completion time offset (0 on failure).
	Done time.Duration
}

// Result is a full scenario run.
type Result struct {
	Outcomes []Outcome
	// Makespan is the virtual time from epoch until the last replica's
	// queue drains — the denominator of simulated throughput.
	Makespan time.Duration
}

// Lost counts requests that produced no 2xx response.
func (r *Result) Lost() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Err != nil || o.Status < 200 || o.Status >= 300 {
			n++
		}
	}
	return n
}

// Throughput returns requests per virtual second.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Outcomes)) / r.Makespan.Seconds()
}

// Harness couples the real router to fake replicas on one clock.
type Harness struct {
	Clock    *Clock
	Router   *cluster.Router
	Replicas []*Replica

	// ProbeEvery is the virtual health-probe cadence (default 50ms).
	ProbeEvery time.Duration

	epoch     time.Time
	lastProbe time.Time
}

// NewHarness wires cfgs into fake replicas and a router. mutate, when
// non-nil, adjusts the router config (policy, retries, load factor)
// before construction; the harness always installs its own clock.
func NewHarness(cfgs []ReplicaConfig, seed uint64, mutate func(*cluster.Config)) (*Harness, error) {
	clock := NewClock()
	h := &Harness{Clock: clock, ProbeEvery: 50 * time.Millisecond, epoch: clock.Now()}
	rcfg := cluster.Config{Clock: clock.Fn()}
	for _, rc := range cfgs {
		rep := NewReplica(rc, clock, seed)
		h.Replicas = append(h.Replicas, rep)
		rcfg.Backends = append(rcfg.Backends, rep)
	}
	if mutate != nil {
		mutate(&rcfg)
	}
	rcfg.Clock = clock.Fn()
	router, err := cluster.New(rcfg)
	if err != nil {
		return nil, err
	}
	h.Router = router
	h.lastProbe = h.epoch.Add(-h.ProbeEvery)
	return h, nil
}

// Run drives the schedule synchronously: advance the clock to each
// event, run any probe ticks that came due, route the request, record
// the outcome. Deterministic by construction — no goroutines, no real
// time.
func (h *Harness) Run(ctx context.Context, sched Schedule) *Result {
	events := append(Schedule(nil), sched...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	res := &Result{}
	for _, ev := range events {
		at := h.epoch.Add(ev.At)
		// Fire every probe tick scheduled before this event, at its own
		// virtual time, so detection latency is the probe cadence, not
		// the event spacing.
		for h.lastProbe.Add(h.ProbeEvery).Before(at) || h.lastProbe.Add(h.ProbeEvery).Equal(at) {
			h.lastProbe = h.lastProbe.Add(h.ProbeEvery)
			h.Clock.AdvanceTo(h.lastProbe)
			h.Router.ProbeAll(ctx)
		}
		h.Clock.AdvanceTo(at)
		out := Outcome{Event: ev}
		resp, err := h.Router.Do(ctx, ev.Req)
		if err != nil {
			out.Err = err
		} else {
			out.Status = resp.Status
			out.Replica, out.Done = parseSimBody(resp.Body)
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	for _, rep := range h.Replicas {
		if busy := rep.Busy(); busy.Sub(h.epoch) > res.Makespan {
			res.Makespan = busy.Sub(h.epoch)
		}
	}
	return res
}

// parseSimBody extracts the serving replica and completion offset from
// the fake replica's response body without a JSON round-trip (the body
// shape is ours).
func parseSimBody(body []byte) (string, time.Duration) {
	s := string(body)
	var id string
	var ms int64
	if _, err := fmt.Sscanf(s, `{"replica":%q,"done_ms":%d}`, &id, &ms); err != nil {
		return "", 0
	}
	return id, time.Duration(ms) * time.Millisecond
}

// Fingerprint renders the run to a stable string: every outcome in
// schedule order plus each replica's sorted serve counts and the
// final owner table. Two deterministic runs of the same scenario must
// produce identical fingerprints byte for byte.
func (h *Harness) Fingerprint(res *Result) string {
	var b strings.Builder
	for _, o := range res.Outcomes {
		status := o.Status
		if o.Err != nil {
			status = -1
		}
		fmt.Fprintf(&b, "t=%dms %s %s -> %s status=%d done=%dms\n",
			o.Event.At/time.Millisecond, o.Event.Req.Method, o.Event.Req.Key,
			o.Replica, status, o.Done/time.Millisecond)
	}
	for _, rep := range h.Replicas {
		served := rep.ServedKeys()
		keys := make([]string, 0, len(served))
		for k := range served {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "replica %s total=%d\n", rep.ID(), len(keys))
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%d\n", k, served[k])
		}
	}
	owners := h.Router.Owners()
	keys := make([]string, 0, len(owners))
	for k := range owners {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "owner %s=%s\n", k, owners[k])
	}
	fmt.Fprintf(&b, "makespan=%dms\n", res.Makespan/time.Millisecond)
	return b.String()
}
