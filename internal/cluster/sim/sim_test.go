package sim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
)

func replicaConfigs(n int, mutate func(i int, rc *ReplicaConfig)) []ReplicaConfig {
	cfgs := make([]ReplicaConfig, n)
	for i := range cfgs {
		cfgs[i] = ReplicaConfig{ID: fmt.Sprintf("replica-%d", i), ServiceTime: 10 * time.Millisecond}
		if mutate != nil {
			mutate(i, &cfgs[i])
		}
	}
	return cfgs
}

// TestSimSingleOwnerAndImbalance is the headline distribution
// invariant on the live router: 1k keys over 8 healthy replicas, every
// key served by exactly one replica (its table owner), and no replica
// owns more than the bounded-load cap ceil(1.25 x 1000/8) = 157.
func TestSimSingleOwnerAndImbalance(t *testing.T) {
	h, err := NewHarness(replicaConfigs(8, nil), 7, nil)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	keys := ScenarioKeys(1000)
	res := h.Run(context.Background(), UniformSchedule(keys, 2000, 0, time.Millisecond))
	if lost := res.Lost(); lost != 0 {
		t.Fatalf("lost %d requests on a healthy fleet", lost)
	}
	owners := h.Router.Owners()
	for _, rep := range h.Replicas {
		for key := range rep.ServedKeys() {
			if owners[key] != rep.ID() {
				t.Fatalf("key %q served by %s but owned by %s", key, rep.ID(), owners[key])
			}
		}
	}
	servedBy := map[string]string{}
	for _, rep := range h.Replicas {
		for key := range rep.ServedKeys() {
			if prev, ok := servedBy[key]; ok && prev != rep.ID() {
				t.Fatalf("key %q served by both %s and %s", key, prev, rep.ID())
			}
			servedBy[key] = rep.ID()
		}
	}
	cap_ := cluster.BoundedCap(1.25, len(keys), 8)
	if cap_ != 157 {
		t.Fatalf("cap = %d, want 157", cap_)
	}
	for id, n := range h.Router.OwnerCounts() {
		if n > cap_ {
			t.Errorf("replica %s owns %d keys, above cap %d", id, n, cap_)
		}
	}
}

// TestSimFailoverNoLostRequests is the deterministic failover e2e: one
// replica dies mid-stream on the virtual schedule, every request in
// flight or arriving during the outage still completes via retry, no
// ingest batch is dropped, the remap is minimal, and ownership fails
// back after recovery.
func TestSimFailoverNoLostRequests(t *testing.T) {
	const (
		outageFrom = 400 * time.Millisecond
		outageTo   = 900 * time.Millisecond
	)
	victimID := "replica-2"
	h, err := NewHarness(replicaConfigs(4, func(i int, rc *ReplicaConfig) {
		if rc.ID == victimID {
			rc.Outages = []Window{{From: outageFrom, To: outageTo}}
		}
	}), 11, nil)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	keys := ScenarioKeys(120)

	// Phase 1: healthy warm-up assigns every key.
	warm := UniformSchedule(keys, 240, 0, time.Millisecond)
	if lost := h.Run(ctx, warm).Lost(); lost != 0 {
		t.Fatalf("warm-up lost %d requests", lost)
	}
	before := h.Router.Owners()

	// Phase 2: the outage window. Predictions and ingest batches keep
	// arriving; detection happens via transport failures and the 50ms
	// probe cadence, retries carry everything to fallbacks.
	var storm Schedule
	for i := 0; i < 300; i++ {
		at := 350*time.Millisecond + time.Duration(i)*2*time.Millisecond
		key := keys[i%len(keys)]
		req := cluster.Request{Method: "POST", Path: "/v1/predict/uc1", Key: key}
		if i%5 == 0 {
			req.Path = "/v1/measurements"
		}
		storm = append(storm, Event{At: at, Req: req})
	}
	stormRes := h.Run(ctx, storm)
	if lost := stormRes.Lost(); lost != 0 {
		for _, o := range stormRes.Outcomes {
			if o.Err != nil {
				t.Logf("lost: t=%v key=%s err=%v", o.Event.At, o.Event.Req.Key, o.Err)
			}
		}
		t.Fatalf("outage phase lost %d of %d requests", lost, len(storm))
	}
	during := h.Router.Owners()
	for key, id := range during {
		if before[key] != victimID && id != before[key] {
			t.Fatalf("key %q churned %s -> %s though its owner stayed up", key, before[key], id)
		}
	}
	ingested := 0
	for _, rep := range h.Replicas {
		for _, n := range rep.Ingested() {
			ingested += n
		}
	}
	if want := 60; ingested != want {
		t.Fatalf("replicas ingested %d measurement batches, want %d", ingested, want)
	}

	// Phase 3: after recovery, probes restore the victim and its
	// ring-owned keys fail back.
	tail := UniformSchedule(keys, 240, 1000*time.Millisecond, time.Millisecond)
	if lost := h.Run(ctx, tail).Lost(); lost != 0 {
		t.Fatalf("recovery phase lost %d requests", lost)
	}
	after := h.Router.Owners()
	returned := 0
	for key, id := range after {
		if h.Router.Ring().Owner(key) == victimID {
			if id != victimID {
				t.Fatalf("ring-owned key %q not failed back to %s (owner %s)", key, victimID, id)
			}
			returned++
		}
	}
	if returned == 0 {
		t.Fatal("victim owned no ring keys; failover test is vacuous")
	}
	if snap := h.Router.Snapshot(); snap.Remaps == 0 {
		t.Fatal("outage produced no remaps")
	}
}

// TestSimDegradedDrainsWithoutRemap pins the degraded semantics: a
// replica reporting open breakers keeps its ownership but receives no
// new traffic while Ready fallbacks exist.
func TestSimDegradedDrainsWithoutRemap(t *testing.T) {
	victimID := "replica-1"
	h, err := NewHarness(replicaConfigs(3, func(i int, rc *ReplicaConfig) {
		if rc.ID == victimID {
			rc.Degraded = []Window{{From: 200 * time.Millisecond, To: time.Hour}}
		}
	}), 13, nil)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	keys := ScenarioKeys(90)
	if lost := h.Run(ctx, UniformSchedule(keys, 90, 0, time.Millisecond)).Lost(); lost != 0 {
		t.Fatal("warm-up lost requests")
	}
	before := h.Router.Owners()
	var victim *Replica
	for _, rep := range h.Replicas {
		if rep.ID() == victimID {
			victim = rep
		}
	}
	servedBefore := len(victim.ServedKeys())
	if servedBefore == 0 {
		t.Fatal("victim served nothing while healthy; test is vacuous")
	}

	if lost := h.Run(ctx, UniformSchedule(keys, 180, 300*time.Millisecond, time.Millisecond)).Lost(); lost != 0 {
		t.Fatal("degraded phase lost requests")
	}
	// Ownership must be untouched (degraded is a drain, not a death).
	after := h.Router.Owners()
	for key, id := range before {
		if after[key] != id {
			t.Fatalf("key %q remapped %s -> %s on degradation", key, id, after[key])
		}
	}
	// And the victim served nothing new while degraded.
	if got := len(victim.ServedKeys()); got != servedBefore {
		t.Fatalf("degraded replica served %d keys, had %d before degradation", got, servedBefore)
	}
}

// TestSimByteDeterminism runs the same faulted scenario twice in fresh
// harnesses and compares full fingerprints — who served what, final
// ownership, makespan — byte for byte.
func TestSimByteDeterminism(t *testing.T) {
	build := func() (*Harness, *Result) {
		h, err := NewHarness(replicaConfigs(5, func(i int, rc *ReplicaConfig) {
			rc.JitterFrac = 0.3
			if i == 3 {
				rc.Outages = []Window{{From: 150 * time.Millisecond, To: 320 * time.Millisecond}}
			}
		}), 29, nil)
		if err != nil {
			t.Fatalf("NewHarness: %v", err)
		}
		keys := ScenarioKeys(200)
		var sched Schedule
		for i := 0; i < 500; i++ {
			req := cluster.Request{Method: "POST", Path: "/v1/predict/uc1", Key: keys[(i*7)%len(keys)]}
			if i%9 == 0 {
				req.Path = "/v1/measurements"
			}
			sched = append(sched, Event{At: time.Duration(i) * time.Millisecond, Req: req})
		}
		return h, h.Run(context.Background(), sched)
	}
	h1, r1 := build()
	h2, r2 := build()
	fp1, fp2 := h1.Fingerprint(r1), h2.Fingerprint(r2)
	if fp1 != fp2 {
		t.Fatalf("reruns diverged:\n--- run 1 ---\n%.2000s\n--- run 2 ---\n%.2000s", fp1, fp2)
	}
	if len(fp1) == 0 {
		t.Fatal("empty fingerprint")
	}
}

// TestSimScalingNearLinear is the acceptance scenario: the same
// saturating workload on 1, 2, and 4 replicas must scale virtual-time
// throughput by >= 1.7x and >= 3x respectively.
func TestSimScalingNearLinear(t *testing.T) {
	points, err := ScalingScenario(context.Background(), []int{1, 2, 4}, 200, 2000, 10*time.Millisecond, 5)
	if err != nil {
		t.Fatalf("ScalingScenario: %v", err)
	}
	base := points[0]
	for _, p := range points {
		t.Logf("replicas=%d makespan=%v throughput=%.1f req/s speedup=%.2fx",
			p.Replicas, p.Makespan, p.Throughput, p.Speedup(base))
	}
	if s := points[1].Speedup(base); s < 1.7 {
		t.Fatalf("2-replica speedup %.2fx < 1.7x", s)
	}
	if s := points[2].Speedup(base); s < 3.0 {
		t.Fatalf("4-replica speedup %.2fx < 3.0x", s)
	}
}
