package core

import (
	"fmt"
	"sync"
	"time"
)

// BreakerConfig tunes the per-(system, config) circuit breakers that
// guard model fitting. The zero value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive fit failures that
	// opens the breaker (default 1: model fitting is deterministic, so a
	// failed fit will fail again until something changes).
	FailureThreshold int
	// BaseBackoff is the first open interval (default 1s). Each
	// subsequent failure doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 2m).
	MaxBackoff time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 1
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Minute
	}
	return c
}

// BreakerOpenError reports that a model's breaker is open: the last fit
// attempt failed recently enough that retrying now would only repeat
// the failure. Serving layers map it to 503 with a Retry-After header.
type BreakerOpenError struct {
	// Key labels the guarded (system, config) pair.
	Key string
	// RetryAfter is how long until the breaker admits a probe attempt.
	RetryAfter time.Duration
	// LastErr is the fit error that opened (or kept open) the breaker.
	LastErr error
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("core: breaker open for %s (retry in %s): %v", e.Key, e.RetryAfter.Round(time.Millisecond), e.LastErr)
}

func (e *BreakerOpenError) Unwrap() error { return e.LastErr }

// BreakerState is an observable snapshot of one breaker, exposed via
// Predictor.Breakers and the server's /v1/status endpoint.
type BreakerState struct {
	// Key labels the guarded (system, config) pair.
	Key string
	// Open reports whether fits are currently rejected.
	Open bool
	// Failures is the current consecutive-failure count.
	Failures int
	// Trips counts how many times the breaker has opened in total.
	Trips int
	// RetryAfter is the time until the next probe is admitted (0 when
	// closed or already due).
	RetryAfter time.Duration
	// LastErr is the most recent fit error message ("" if none).
	LastErr string
}

// breaker is one circuit breaker. Fit attempts call allow first; an
// admitted attempt reports back via success or failure. While open, one
// probe attempt is admitted per backoff interval (half-open), so
// recovery is detected without a thundering herd of refits.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	key      string
	failures int
	trips    int
	open     bool
	halfOpen bool
	until    time.Time
	backoff  time.Duration
	lastErr  error
}

func newBreaker(key string, cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults(), key: key}
}

// allow decides whether a fit attempt may proceed at time now. It
// returns a *BreakerOpenError when the attempt is rejected.
func (b *breaker) allow(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if !now.Before(b.until) && !b.halfOpen {
		// Backoff elapsed: admit exactly one probe attempt.
		b.halfOpen = true
		return nil
	}
	retry := b.until.Sub(now)
	if retry < 0 {
		retry = 0
	}
	return &BreakerOpenError{Key: b.key, RetryAfter: retry, LastErr: b.lastErr}
}

// success records a completed fit and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.halfOpen = false
	b.backoff = 0
	b.lastErr = nil
}

// failure records a failed fit attempt at time now, opening the breaker
// (with doubled backoff if it was already open) once the consecutive
// failure count reaches the threshold.
func (b *breaker) failure(now time.Time, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = err
	b.halfOpen = false
	b.failures++
	if b.failures < b.cfg.FailureThreshold {
		return
	}
	switch {
	case b.backoff == 0:
		b.backoff = b.cfg.BaseBackoff
	default:
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
	}
	if !b.open {
		b.trips++
	}
	b.open = true
	b.until = now.Add(b.backoff)
}

// state snapshots the breaker for observability.
func (b *breaker) state(now time.Time) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerState{
		Key:      b.key,
		Open:     b.open,
		Failures: b.failures,
		Trips:    b.trips,
	}
	if b.open && now.Before(b.until) {
		s.RetryAfter = b.until.Sub(now)
	}
	if b.lastErr != nil {
		s.LastErr = b.lastErr.Error()
	}
	return s
}
