package core

import (
	"fmt"

	"repro/internal/distrep"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
	"repro/internal/ml/xgb"
)

// Model selects the prediction-model family (Section III-B3).
type Model int

// The paper's three models, plus the Ridge linear baseline (not part of
// the paper's comparison).
const (
	KNN Model = iota
	RandomForest
	XGBoost
	Ridge
)

// String names the model as the paper does.
func (m Model) String() string {
	switch m {
	case KNN:
		return "kNN"
	case RandomForest:
		return "RF"
	case XGBoost:
		return "XGBoost"
	case Ridge:
		return "Ridge"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Models lists the paper's models in paper order.
func Models() []Model { return []Model{KNN, RandomForest, XGBoost} }

// ModelsExtended additionally includes the Ridge linear baseline.
func ModelsExtended() []Model { return []Model{KNN, RandomForest, XGBoost, Ridge} }

// ModelOptions tunes the model families; the zero value selects the
// paper's settings (kNN with k=15 and cosine distance; default forest
// and boosting hyperparameters). The knobs exist for the ablation
// benchmarks.
type ModelOptions struct {
	// KNNK overrides k (default 15).
	KNNK int
	// KNNMetric overrides the kNN distance (default cosine).
	KNNMetric knn.Metric
	// KNNMetricSet marks KNNMetric as intentionally set (so Euclidean,
	// the zero value of the enum's neighbor, can be selected).
	KNNMetricSet bool
	// ForestTrees overrides the ensemble size (default 100).
	ForestTrees int
	// XGBRounds overrides boosting rounds (default 60).
	XGBRounds int
	// XGBDepth overrides tree depth (default 3).
	XGBDepth int
}

// newModel builds a fresh regressor of the given family.
func newModel(m Model, seed uint64, opts ModelOptions) (ml.Regressor, error) {
	switch m {
	case KNN:
		k := opts.KNNK
		if k <= 0 {
			k = 15 // the paper's setting
		}
		r := knn.New(k)
		if opts.KNNMetricSet {
			r.Metric = opts.KNNMetric
		}
		return r, nil
	case RandomForest:
		trees := opts.ForestTrees
		if trees <= 0 {
			trees = 100
		}
		return forest.New(forest.Config{NumTrees: trees, Seed: seed}), nil
	case XGBoost:
		rounds := opts.XGBRounds
		if rounds <= 0 {
			rounds = 60
		}
		depth := opts.XGBDepth
		if depth <= 0 {
			depth = 3
		}
		return xgb.New(xgb.Config{
			NumRounds:    rounds,
			MaxDepth:     depth,
			LearningRate: 0.12,
			Subsample:    0.9,
			ColSample:    0.8,
			Seed:         seed,
		}), nil
	case Ridge:
		return linreg.New(10), nil
	default:
		return nil, fmt.Errorf("core: unknown model %d", int(m))
	}
}

// newRepresentation builds the distribution representation, applying the
// default bin count when unset.
func newRepresentation(kind distrep.Kind, bins int) (distrep.Representation, error) {
	if bins <= 0 {
		bins = distrep.DefaultBins
	}
	return distrep.New(kind, bins)
}

// BenchScore is the evaluation outcome for one held-out benchmark.
type BenchScore struct {
	// Benchmark is the "suite/name" identifier.
	Benchmark string
	// KS is the two-sample Kolmogorov–Smirnov statistic between the
	// predicted and measured relative-time distributions (0 = perfect).
	KS float64
	// W1 is the 1-Wasserstein distance, a complementary area-based score.
	W1 float64
	// AD, CvM, and Energy are further divergences (Anderson–Darling,
	// Cramér–von Mises, energy distance) used by the extension
	// experiment that checks whether the paper's conclusions are
	// KS-specific.
	AD, CvM, Energy float64
	// PredictedModes and ActualModes count KDE modes, quantifying the
	// paper's qualitative multi-modality claims.
	PredictedModes, ActualModes int
}

// KSValues extracts the KS column for violin summaries.
func KSValues(scores []BenchScore) []float64 {
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = s.KS
	}
	return out
}
