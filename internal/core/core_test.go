package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/stats"
)

var (
	testDBOnce sync.Once
	testDB     *measure.Database
)

// testCampaign collects a reduced campaign (all 60 benchmarks, fewer
// runs) shared across tests.
func testCampaign(t *testing.T) *measure.Database {
	t.Helper()
	testDBOnce.Do(func() {
		db, err := measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI(),
			measure.Config{Runs: 300, ProbeRuns: 40, Seed: 20250704},
		)
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		testDB = db
	})
	if testDB == nil {
		t.Fatal("campaign unavailable")
	}
	return testDB
}

func TestModelAndConfigStrings(t *testing.T) {
	if KNN.String() != "kNN" || RandomForest.String() != "RF" || XGBoost.String() != "XGBoost" {
		t.Error("model names must match the paper")
	}
	if Model(9).String() == "" {
		t.Error("unknown model should render")
	}
	c1 := UC1Config{Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10}
	if c1.String() == "" {
		t.Error("UC1Config.String empty")
	}
	c2 := UC2Config{Rep: distrep.Histogram, Model: XGBoost}
	if c2.String() == "" {
		t.Error("UC2Config.String empty")
	}
	if len(Models()) != 3 {
		t.Error("Models() must list 3 models")
	}
}

func TestNewModelUnknown(t *testing.T) {
	if _, err := newModel(Model(42), 1, ModelOptions{}); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestEvaluateUC1Shape(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	scores, err := EvaluateUC1(intel, UC1Config{
		Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 60 {
		t.Fatalf("scores = %d, want 60", len(scores))
	}
	seen := map[string]bool{}
	for _, s := range scores {
		if s.KS < 0 || s.KS > 1 || math.IsNaN(s.KS) {
			t.Errorf("%s: KS = %v outside [0,1]", s.Benchmark, s.KS)
		}
		if s.W1 < 0 || math.IsNaN(s.W1) {
			t.Errorf("%s: W1 = %v", s.Benchmark, s.W1)
		}
		if s.ActualModes < 1 {
			t.Errorf("%s: actual modes = %d", s.Benchmark, s.ActualModes)
		}
		if seen[s.Benchmark] {
			t.Errorf("duplicate score for %s", s.Benchmark)
		}
		seen[s.Benchmark] = true
	}
}

func TestUC1PredictionCarriesSignal(t *testing.T) {
	// The learned predictor must beat the "no-learning" baseline of
	// predicting the global average target (kNN with k = all training
	// examples), showing that profiles genuinely carry distribution
	// information.
	db := testCampaign(t)
	intel, _ := db.System("intel")
	learned, err := EvaluateUC1(intel, UC1Config{
		Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	global, err := EvaluateUC1(intel, UC1Config{
		Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10, Seed: 2,
		Models: ModelOptions{KNNK: 59},
	})
	if err != nil {
		t.Fatal(err)
	}
	ml, mg := stats.Mean(KSValues(learned)), stats.Mean(KSValues(global))
	if ml >= mg {
		t.Errorf("learned mean KS %v not better than global-average baseline %v", ml, mg)
	}
	if ml > 0.45 {
		t.Errorf("learned mean KS %v unreasonably high", ml)
	}
}

func TestUC1MoreSamplesHelp(t *testing.T) {
	// Figure 6's trend: accuracy improves with the number of runs.
	db := testCampaign(t)
	intel, _ := db.System("intel")
	mean := func(n int) float64 {
		scores, err := EvaluateUC1(intel, UC1Config{
			Rep: distrep.PearsonRnd, Model: KNN, NumSamples: n, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(KSValues(scores))
	}
	m1, m25 := mean(1), mean(25)
	if m25 >= m1 {
		t.Errorf("mean KS with 25 samples (%v) not below 1 sample (%v)", m25, m1)
	}
}

func TestEvaluateUC1Validation(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	if _, err := EvaluateUC1(intel, UC1Config{Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 0}); err == nil {
		t.Error("NumSamples=0 should fail")
	}
	if _, err := EvaluateUC1(intel, UC1Config{Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10000}); err == nil {
		t.Error("NumSamples beyond probe runs should fail")
	}
	if _, err := EvaluateUC1(intel, UC1Config{Rep: distrep.Kind(9), Model: KNN, NumSamples: 5}); err == nil {
		t.Error("unknown representation should fail")
	}
}

func TestEvaluateUC1Deterministic(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	cfg := UC1Config{Rep: distrep.Histogram, Model: KNN, NumSamples: 5, Seed: 7}
	a, err := EvaluateUC1(intel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateUC1(intel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].KS != b[i].KS {
			t.Fatalf("KS differs across identical runs: %v vs %v", a[i].KS, b[i].KS)
		}
	}
}

func TestPredictUC1(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	pred, actual, err := PredictUC1(intel, "specomp/376", UC1Config{
		Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(actual) || len(actual) != 300 {
		t.Fatalf("lengths: pred=%d actual=%d", len(pred), len(actual))
	}
	if ks := stats.KSStatistic(pred, actual); ks >= 1 {
		t.Errorf("KS = %v", ks)
	}
	if _, _, err := PredictUC1(intel, "nope/none", UC1Config{
		Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10,
	}); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestAllRepsAndModelsRunUC1(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	for _, rep := range distrep.Kinds() {
		for _, model := range Models() {
			cfg := UC1Config{
				Rep: rep, Model: model, NumSamples: 5, Seed: 5, Bins: 20,
				Models: ModelOptions{ForestTrees: 20, XGBRounds: 8},
			}
			scores, err := EvaluateUC1(intel, cfg)
			if err != nil {
				t.Fatalf("%v: %v", cfg, err)
			}
			m := stats.Mean(KSValues(scores))
			if m <= 0 || m >= 1 {
				t.Errorf("%v: mean KS = %v implausible", cfg, m)
			}
		}
	}
}

func TestEvaluateUC2BothDirections(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	amd, _ := db.System("amd")
	cfg := UC2Config{Rep: distrep.PearsonRnd, Model: KNN, Seed: 6}
	a2i, err := EvaluateUC2(amd, intel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	i2a, err := EvaluateUC2(intel, amd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2i) != 60 || len(i2a) != 60 {
		t.Fatalf("scores: %d and %d", len(a2i), len(i2a))
	}
	for _, s := range a2i {
		if s.KS < 0 || s.KS > 1 {
			t.Errorf("AMD→Intel %s: KS=%v", s.Benchmark, s.KS)
		}
	}
	m := stats.Mean(KSValues(a2i))
	if m > 0.45 {
		t.Errorf("AMD→Intel mean KS %v unreasonably high", m)
	}
}

func TestUC2CarriesSignal(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	amd, _ := db.System("amd")
	learned, err := EvaluateUC2(amd, intel, UC2Config{Rep: distrep.PearsonRnd, Model: KNN, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	global, err := EvaluateUC2(amd, intel, UC2Config{
		Rep: distrep.PearsonRnd, Model: KNN, Seed: 8,
		Models: ModelOptions{KNNK: 59},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ml, mg := stats.Mean(KSValues(learned)), stats.Mean(KSValues(global)); ml >= mg {
		t.Errorf("UC2 learned mean KS %v not better than global baseline %v", ml, mg)
	}
}

func TestPredictUC2(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	amd, _ := db.System("amd")
	pred, actual, err := PredictUC2(amd, intel, "parsec/canneal", UC2Config{
		Rep: distrep.PearsonRnd, Model: KNN, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(actual) {
		t.Fatalf("length mismatch %d vs %d", len(pred), len(actual))
	}
}

func TestUC2MissingBenchmarkOnTarget(t *testing.T) {
	db := testCampaign(t)
	intel, _ := db.System("intel")
	amd, _ := db.System("amd")
	// Truncate the target system's benchmark list.
	trimmed := *amd
	trimmed.Benchmarks = amd.Benchmarks[:30]
	if _, err := EvaluateUC2(intel, &trimmed, UC2Config{Rep: distrep.PearsonRnd, Model: KNN}); err == nil {
		t.Error("missing target benchmarks should fail")
	}
}

func TestKSValues(t *testing.T) {
	vals := KSValues([]BenchScore{{KS: 0.1}, {KS: 0.3}})
	if len(vals) != 2 || vals[0] != 0.1 || vals[1] != 0.3 {
		t.Errorf("KSValues = %v", vals)
	}
}
