// Package core implements the paper's contribution: predicting the full
// performance distribution of an application from learned models.
//
// Two use cases are provided (Section III-A):
//
//   - Use case 1 (FewRuns): predict an application's run-time
//     distribution on a system from a few runs of the application on
//     that system, using a system-specific model trained on the profiles
//     and measured distributions of other benchmarks.
//   - Use case 2 (CrossSystem): predict the distribution on a target
//     system from the profile and measured distribution of the
//     application on a different source system.
//
// Both use cases are evaluated with leave-one-group-out cross-validation
// (each benchmark is a group) and scored with the two-sample
// Kolmogorov–Smirnov statistic against the measured 1,000-run
// distribution, exactly as in the paper's Section V.
//
// The package offers two entry points per use case:
//
//   - The batch functions (EvaluateUC1/2, PredictUC1/2) rebuild the
//     feature dataset and retrain the model on every call. They back the
//     figure reproductions in internal/report and the CLI tools, where
//     each invocation is a one-shot experiment.
//   - Predictor serves the same predictions online: the assembled
//     learning problem and each fitted model are cached behind
//     singleflight-style cells, so repeated requests skip training
//     entirely. It is the engine of internal/serve and cmd/varserve,
//     and additionally supports the paper's true deployment scenario —
//     predicting an application the database has never seen from its
//     raw probe runs (PredictUC1Profile/PredictUC2Profile).
//
// In paper terms: internal/features builds Section III-B1's profiles,
// internal/distrep encodes/decodes Section III-B2's distribution
// representations, internal/ml supplies Section III-B3's models, and
// this package wires them into the training and prediction pipelines
// whose accuracy Section V reports.
package core
