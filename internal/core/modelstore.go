package core

import (
	"fmt"

	"repro/internal/ml/knn"
	"repro/internal/modelstore"
)

// SetModelStore attaches a persistent model registry: every storable
// primary-model fit is persisted, and later misses (including a fresh
// process pointed at the same store directory) load the trained model
// from disk instead of refitting. Call before serving. Fallback models
// and the Ridge baseline always fit in-process.
func (p *Predictor) SetModelStore(r *modelstore.Registry) { p.registry = r }

// ModelStore returns the attached registry (nil when persistence is
// off) — the serving layer's handle for store gauges.
func (p *Predictor) ModelStore() *modelstore.Registry { return p.registry }

// storable reports whether the family has a binary codec in the model
// store.
func storable(m Model) bool {
	switch m {
	case KNN, RandomForest, XGBoost:
		return true
	default:
		return false
	}
}

// storeSpec renders the content-address spec of one model key. The
// dataset fingerprint already captures everything upstream of training
// (samples, representation, repair, quarantine outcome), so the spec
// only adds what the fingerprint cannot see: which rows were held out
// and the resolved model hyperparameters.
func storeSpec(k modelKey, m Model, seed uint64, opts ModelOptions, fp uint64) modelstore.KeySpec {
	return modelstore.KeySpec{
		UseCase:   k.data.useCase,
		System:    k.data.system,
		Target:    k.data.target,
		Holdout:   k.holdout,
		Model:     modelSpecString(m, seed, opts),
		DatasetFP: fp,
	}
}

// modelSpecString renders the resolved hyperparameters exactly as
// newModel would apply them, so two configurations that train the same
// model share a content address. kNN omits the seed — its fit draws no
// randomness — which lets every seed share one stored model.
func modelSpecString(m Model, seed uint64, opts ModelOptions) string {
	switch m {
	case KNN:
		k := opts.KNNK
		if k <= 0 {
			k = 15
		}
		metric := knn.Cosine
		if opts.KNNMetricSet {
			metric = opts.KNNMetric
		}
		return fmt.Sprintf("knn{k=%d,metric=%s}", k, metric)
	case RandomForest:
		trees := opts.ForestTrees
		if trees <= 0 {
			trees = 100
		}
		return fmt.Sprintf("rf{trees=%d,seed=%d}", trees, seed)
	case XGBoost:
		rounds := opts.XGBRounds
		if rounds <= 0 {
			rounds = 60
		}
		depth := opts.XGBDepth
		if depth <= 0 {
			depth = 3
		}
		return fmt.Sprintf("xgb{rounds=%d,depth=%d,eta=0.12,sub=0.9,col=0.8,seed=%d}", rounds, depth, seed)
	default:
		return m.String()
	}
}
