package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/modelstore"
)

// persistCases spans the three storable families; the CI persistence
// shard runs this file alone against a temp store.
var persistCases = []struct {
	name  string
	model Model
	opts  ModelOptions
}{
	{"knn", KNN, ModelOptions{}},
	{"forest", RandomForest, ModelOptions{ForestTrees: 12}},
	{"xgb", XGBoost, ModelOptions{XGBRounds: 10}},
}

// TestPersistenceAcrossRestart is the save -> restart -> load ->
// golden-predict exercise: a first predictor fits and persists, a
// second predictor over the same store directory (a simulated process
// restart) must answer bit-identically without a single fit on the hot
// path — enforced by a fit hook that fails the test if it fires.
func TestPersistenceAcrossRestart(t *testing.T) {
	db := testCampaign(t)
	dir := t.TempDir()
	ctx := context.Background()
	bench := db.Systems[0].Benchmarks[0].Workload.ID()
	system := db.Systems[0].SystemName

	for _, tc := range persistCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := UC1Config{Model: tc.model, NumSamples: 5, Seed: 11, Models: tc.opts}

			store, err := modelstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			warm := NewPredictor(db)
			warm.SetModelStore(modelstore.NewRegistry(store, 8))
			golden, err := warm.PredictUC1(ctx, system, bench, cfg)
			if err != nil {
				t.Fatalf("warm fit: %v", err)
			}
			if s := warm.ModelStore().Stats(); s.Misses != 1 || s.SaveErrors != 0 {
				t.Fatalf("warm store stats %+v", s)
			}

			// "Restart": a fresh predictor and registry, same directory.
			store2, err := modelstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cold := NewPredictor(db)
			cold.SetModelStore(modelstore.NewRegistry(store2, 8))
			cold.SetFitHook(func(info FitInfo) error {
				t.Errorf("fit ran on the warm-store hot path: %+v", info)
				return fmt.Errorf("unexpected fit")
			})
			got, err := cold.PredictUC1(ctx, system, bench, cfg)
			if err != nil {
				t.Fatalf("restart predict: %v", err)
			}
			if s := cold.ModelStore().Stats(); s.DiskHits != 1 || s.Misses != 0 {
				t.Fatalf("restart store stats %+v", s)
			}
			if len(got.Predicted) != len(golden.Predicted) {
				t.Fatalf("prediction length %d vs %d", len(got.Predicted), len(golden.Predicted))
			}
			for i := range got.Predicted {
				if math.Float64bits(got.Predicted[i]) != math.Float64bits(golden.Predicted[i]) {
					t.Fatalf("sample %d: loaded %v != fitted %v", i, got.Predicted[i], golden.Predicted[i])
				}
			}
		})
	}
}

// TestPersistenceMatchesStorelessPredictor pins the other direction of
// the contract: attaching a store must not change predictions relative
// to a predictor that always fits.
func TestPersistenceMatchesStorelessPredictor(t *testing.T) {
	db := testCampaign(t)
	ctx := context.Background()
	bench := db.Systems[0].Benchmarks[1].Workload.ID()
	system := db.Systems[1].SystemName
	cfg := UC1Config{Model: XGBoost, NumSamples: 5, Seed: 3, Models: ModelOptions{XGBRounds: 10}}

	plain, err := NewPredictor(db).PredictUC1(ctx, system, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two rounds against one store: the first fits and persists, the
	// second loads from disk; both must match the storeless answer.
	for round := 0; round < 2; round++ {
		p := NewPredictor(db)
		p.SetModelStore(modelstore.NewRegistry(store, 8))
		got, err := p.PredictUC1(ctx, system, bench, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range got.Predicted {
			if math.Float64bits(got.Predicted[i]) != math.Float64bits(plain.Predicted[i]) {
				t.Fatalf("round %d sample %d: stored-path %v != plain %v",
					round, i, got.Predicted[i], plain.Predicted[i])
			}
		}
	}
}

// TestPersistenceUC2AndFingerprintInvalidation checks the UC2 path and
// that a dataset change (different sample budget) misses instead of
// loading a stale model: content addressing makes invalidation
// structural.
func TestPersistenceUC2AndFingerprintInvalidation(t *testing.T) {
	db := testCampaign(t)
	ctx := context.Background()
	bench := db.Systems[0].Benchmarks[0].Workload.ID()
	src, dst := db.Systems[0].SystemName, db.Systems[1].SystemName

	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPredictor(db)
	p.SetModelStore(modelstore.NewRegistry(store, 8))
	cfg := UC2Config{Model: RandomForest, Seed: 5, Models: ModelOptions{ForestTrees: 10}}
	if _, err := p.PredictUC2(ctx, src, dst, bench, cfg); err != nil {
		t.Fatal(err)
	}
	if s := p.ModelStore().Stats(); s.Misses != 1 {
		t.Fatalf("uc2 first call stats %+v", s)
	}

	// Same config, different dataset: UC1 with another sample budget
	// under the same registry must not collide with anything stored.
	ucfg := UC1Config{Model: RandomForest, NumSamples: 7, Seed: 5, Models: ModelOptions{ForestTrees: 10}}
	if _, err := p.PredictUC1(ctx, src, bench, ucfg); err != nil {
		t.Fatal(err)
	}
	if s := p.ModelStore().Stats(); s.Misses != 2 || s.LoadErrors != 0 {
		t.Fatalf("cross-dataset stats %+v", s)
	}
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("store holds %d models, want 2 distinct addresses", len(keys))
	}
}
