package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/features"
	"repro/internal/measure"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

// Sentinel errors for request-path lookups, so serving layers can map
// them to proper HTTP status codes with errors.Is.
var (
	// ErrUnknownSystem reports a system name absent from the database.
	ErrUnknownSystem = errors.New("unknown system")
	// ErrUnknownBenchmark reports a benchmark ID absent from a system.
	ErrUnknownBenchmark = errors.New("unknown benchmark")
)

// Predictor serves use-case-1/2 predictions from a measurement database
// with the expensive state cached: the assembled learning problem
// (profiles + encoded distributions) is built once per (system, config)
// and each fitted model once per (system, config, held-out benchmark).
// The batch entry points PredictUC1/PredictUC2 rebuild and retrain on
// every call, which is fine for a one-shot CLI but turns an online
// request into an O(train) operation; a Predictor makes repeat requests
// O(predict).
//
// A Predictor is safe for concurrent use. Cache population is
// singleflight-style: concurrent requests for the same key block on one
// build instead of duplicating it. Fitted models are immutable after
// Fit, and decoding draws from a fresh seed-derived RNG per request, so
// identical requests return identical predictions whether they hit or
// miss the cache.
type Predictor struct {
	db *measure.Database

	datasets sync.Map // datasetKey -> *dataCell
	models   sync.Map // modelKey -> *modelCell

	hits, misses atomic.Uint64
}

// NewPredictor wraps a loaded measurement database in an empty cache.
func NewPredictor(db *measure.Database) *Predictor {
	return &Predictor{db: db}
}

// DB exposes the underlying database (read-only by convention).
func (p *Predictor) DB() *measure.Database { return p.db }

// CacheStats reports how many prediction requests were served from an
// already-fitted model (hits) versus had to train one (misses).
type CacheStats struct {
	Hits, Misses uint64
}

// CacheStats returns a snapshot of the hit/miss counters.
func (p *Predictor) CacheStats() CacheStats {
	return CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}

// Prediction is the outcome of one online prediction request.
type Prediction struct {
	// Predicted is the predicted relative-time sample.
	Predicted []float64
	// Actual is the measured ground-truth sample, nil when the request
	// predicted from a caller-supplied probe profile (no holdout).
	Actual []float64
	// CacheHit reports whether the fitted model was reused.
	CacheHit bool
}

// datasetKey identifies one assembled learning problem.
type datasetKey struct {
	useCase int    // 1 or 2
	system  string // UC1 system / UC2 source system
	target  string // UC2 target system ("" for UC1)
	uc1     UC1Config
	uc2     UC2Config
}

// modelKey identifies one fitted model: a dataset plus the benchmark
// held out of training ("" = trained on every benchmark, the deployment
// model for raw-profile requests).
type modelKey struct {
	data    datasetKey
	holdout string
}

type dataCell struct {
	once sync.Once
	data *uc1Data
	err  error
}

type modelCell struct {
	once sync.Once
	reg  ml.Regressor
	test int // row index of the held-out benchmark, -1 for full models
	err  error
}

// dataset returns the cached learning problem for key, building it on
// first use.
func (p *Predictor) dataset(k datasetKey) (*uc1Data, error) {
	v, _ := p.datasets.LoadOrStore(k, &dataCell{})
	c := v.(*dataCell)
	c.once.Do(func() { c.data, c.err = p.buildDataset(k) })
	return c.data, c.err
}

func (p *Predictor) buildDataset(k datasetKey) (*uc1Data, error) {
	switch k.useCase {
	case 1:
		sd, err := p.system(k.system)
		if err != nil {
			return nil, err
		}
		return buildUC1(sd, k.uc1)
	case 2:
		src, err := p.system(k.system)
		if err != nil {
			return nil, err
		}
		dst, err := p.system(k.target)
		if err != nil {
			return nil, err
		}
		return buildUC2(src, dst, k.uc2)
	default:
		return nil, fmt.Errorf("core: bad use case %d", k.useCase)
	}
}

func (p *Predictor) system(name string) (*measure.SystemData, error) {
	sd, ok := p.db.System(name)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownSystem, name)
	}
	return sd, nil
}

// model returns the cached fitted regressor for key, training it on
// first use, and reports whether the call was served from the cache.
func (p *Predictor) model(k modelKey) (*uc1Data, ml.Regressor, int, bool, error) {
	data, err := p.dataset(k.data)
	if err != nil {
		return nil, nil, 0, false, err
	}
	v, _ := p.models.LoadOrStore(k, &modelCell{})
	c := v.(*modelCell)
	built := false
	c.once.Do(func() {
		built = true
		c.reg, c.test, c.err = fitModel(data, k)
	})
	if c.err != nil {
		return nil, nil, 0, false, c.err
	}
	hit := !built
	if hit {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	return data, c.reg, c.test, hit, nil
}

// fitModel trains one regressor on the dataset, excluding the holdout
// benchmark when set.
func fitModel(data *uc1Data, k modelKey) (ml.Regressor, int, error) {
	var model Model
	var opts ModelOptions
	var seed uint64
	if k.data.useCase == 1 {
		model, opts, seed = k.data.uc1.Model, k.data.uc1.Models, k.data.uc1.Seed
	} else {
		model, opts, seed = k.data.uc2.Model, k.data.uc2.Models, k.data.uc2.Seed
	}
	test := -1
	train := make([]int, 0, len(data.ids))
	for i, id := range data.ids {
		if id == k.holdout && k.holdout != "" {
			test = i
		} else {
			train = append(train, i)
		}
	}
	if k.holdout != "" && test < 0 {
		return nil, 0, fmt.Errorf("core: %w %q", ErrUnknownBenchmark, k.holdout)
	}
	reg, err := newModel(model, seed, opts)
	if err != nil {
		return nil, 0, err
	}
	if err := reg.Fit(data.dataset.Subset(train)); err != nil {
		return nil, 0, err
	}
	return reg, test, nil
}

// PredictUC1 predicts benchmarkID's distribution on the named system
// from its few-run profile, training on the other benchmarks (cached).
// The returned Prediction carries the measured ground truth so callers
// can score the prediction. Identical to the batch PredictUC1 for the
// same seed, but O(predict) on repeat calls.
func (p *Predictor) PredictUC1(system, benchmarkID string, cfg UC1Config) (*Prediction, error) {
	k := modelKey{data: datasetKey{useCase: 1, system: system, uc1: cfg}, holdout: benchmarkID}
	if err := p.checkBenchmark(system, benchmarkID); err != nil {
		return nil, err
	}
	data, reg, test, hit, err := p.model(k)
	if err != nil {
		return nil, err
	}
	return decodeHoldout(data, reg, test, cfg.Seed, hit), nil
}

// PredictUC2 predicts benchmarkID's distribution on the target system
// from its source-system measurements, training on the other benchmarks
// (cached).
func (p *Predictor) PredictUC2(src, dst, benchmarkID string, cfg UC2Config) (*Prediction, error) {
	if err := p.checkBenchmark(src, benchmarkID); err != nil {
		return nil, err
	}
	if err := p.checkBenchmark(dst, benchmarkID); err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 2, system: src, target: dst, uc2: cfg}, holdout: benchmarkID}
	data, reg, test, hit, err := p.model(k)
	if err != nil {
		return nil, err
	}
	return decodeHoldout(data, reg, test, cfg.Seed, hit), nil
}

// checkBenchmark validates the (system, benchmark) pair up front so
// unknown IDs fail fast with a typed error instead of populating the
// cache with failure cells for arbitrary request strings.
func (p *Predictor) checkBenchmark(system, benchmarkID string) error {
	sd, err := p.system(system)
	if err != nil {
		return err
	}
	if _, ok := sd.Find(benchmarkID); !ok {
		return fmt.Errorf("core: %w %q on system %q", ErrUnknownBenchmark, benchmarkID, system)
	}
	return nil
}

// decodeHoldout turns the fitted model's output for the held-out row
// into a concrete sample, using the same seed derivation as the batch
// predictHoldout so cached and uncached answers agree bit-for-bit.
func decodeHoldout(data *uc1Data, reg ml.Regressor, test int, seed uint64, hit bool) *Prediction {
	predVec := reg.Predict(data.dataset.X[test])
	actual := data.rel[test]
	predicted := data.rep.Decode(predVec, len(actual), randx.New(seed^0xD1B54A32D192ED03))
	return &Prediction{Predicted: predicted, Actual: actual, CacheHit: hit}
}

// PredictUC1Profile predicts a distribution on the named system from a
// caller-supplied probe profile (runs of an application the database
// has never seen), using the full model trained on every benchmark —
// the paper's actual deployment scenario. n is the number of samples to
// decode (the database's runs-per-benchmark when <= 0).
func (p *Predictor) PredictUC1Profile(system string, probe []perfsim.Run, n int, cfg UC1Config) (*Prediction, error) {
	sd, err := p.system(system)
	if err != nil {
		return nil, err
	}
	prof, err := buildProfile(probe, sd.MetricNames, cfg.FeatureMeanOnly)
	if err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 1, system: system, uc1: cfg}}
	data, reg, _, hit, err := p.model(k)
	if err != nil {
		return nil, err
	}
	return p.decodeProfile(data, reg, prof.Values, n, cfg.Seed, hit)
}

// PredictUC2Profile predicts a distribution on the target system from
// an application's source-system probe runs and measured relative
// times, using the full cross-system model trained on every benchmark.
func (p *Predictor) PredictUC2Profile(src, dst string, probe []perfsim.Run, srcRelTimes []float64, n int, cfg UC2Config) (*Prediction, error) {
	srcSys, err := p.system(src)
	if err != nil {
		return nil, err
	}
	if _, err := p.system(dst); err != nil {
		return nil, err
	}
	if len(srcRelTimes) < 2 {
		return nil, fmt.Errorf("core: UC2 profile needs >= 2 source relative times, got %d", len(srcRelTimes))
	}
	prof, err := buildProfile(probe, srcSys.MetricNames, false)
	if err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 2, system: src, target: dst, uc2: cfg}}
	data, reg, _, hit, err := p.model(k)
	if err != nil {
		return nil, err
	}
	input := features.Concat(prof, features.Labeled("src-dist", data.rep.Encode(srcRelTimes)))
	return p.decodeProfile(data, reg, input.Values, n, cfg.Seed, hit)
}

func buildProfile(probe []perfsim.Run, metricNames []string, meanOnly bool) (*features.Profile, error) {
	if meanOnly {
		return features.MeanOnly(probe, metricNames)
	}
	return features.FromRuns(probe, metricNames)
}

func (p *Predictor) decodeProfile(data *uc1Data, reg ml.Regressor, input []float64, n int, seed uint64, hit bool) (*Prediction, error) {
	if got, want := len(input), len(data.dataset.X[0]); got != want {
		return nil, fmt.Errorf("core: profile has %d features, model expects %d", got, want)
	}
	if n <= 0 {
		n = p.db.RunsPerBenchmark
	}
	if n <= 0 {
		n = 1000 // the paper's campaign size
	}
	predVec := reg.Predict(input)
	predicted := data.rep.Decode(predVec, n, randx.New(seed^0xD1B54A32D192ED03))
	return &Prediction{Predicted: predicted, CacheHit: hit}, nil
}

// PredictUC1ProfileBatch predicts distributions for many caller-supplied
// probe profiles on the named system in one call. Every profile is
// scored by the same full deployment model (trained once, cached), and
// the feature rows fan out across the shared worker pool via
// ml.PredictBatch. Result i is decoded from a per-index seed stream
// whose first entry matches PredictUC1Profile exactly, so a batch of
// one is bit-identical to the single-profile path.
func (p *Predictor) PredictUC1ProfileBatch(system string, probes [][]perfsim.Run, n int, cfg UC1Config) ([]*Prediction, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("core: empty profile batch")
	}
	sd, err := p.system(system)
	if err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 1, system: system, uc1: cfg}}
	data, reg, _, hit, err := p.model(k)
	if err != nil {
		return nil, err
	}
	want := len(data.dataset.X[0])
	rows := make([][]float64, len(probes))
	for i, probe := range probes {
		prof, err := buildProfile(probe, sd.MetricNames, cfg.FeatureMeanOnly)
		if err != nil {
			return nil, fmt.Errorf("core: profile %d: %w", i, err)
		}
		if len(prof.Values) != want {
			return nil, fmt.Errorf("core: profile %d has %d features, model expects %d", i, len(prof.Values), want)
		}
		rows[i] = prof.Values
	}
	if n <= 0 {
		n = p.db.RunsPerBenchmark
	}
	if n <= 0 {
		n = 1000 // the paper's campaign size
	}
	vecs := ml.PredictBatch(reg, rows)
	out := make([]*Prediction, len(probes))
	for i, vec := range vecs {
		seed := cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		out[i] = &Prediction{
			Predicted: data.rep.Decode(vec, n, randx.New(seed^0xD1B54A32D192ED03)),
			CacheHit:  hit,
		}
	}
	return out, nil
}

// Warm pre-trains the full (no-holdout) models for the given configs on
// every system, so the first live request is already O(predict). It is
// the server's readiness hook. The models are independent, so they are
// trained concurrently on the shared worker pool; the first failure
// cancels the remaining work.
func (p *Predictor) Warm(uc1 []UC1Config, uc2 []UC2Config) error {
	type warmItem struct {
		key  modelKey
		desc string
	}
	var items []warmItem
	for _, sd := range p.db.Systems {
		for _, cfg := range uc1 {
			items = append(items, warmItem{
				key:  modelKey{data: datasetKey{useCase: 1, system: sd.SystemName, uc1: cfg}},
				desc: fmt.Sprintf("UC1 %s", sd.SystemName),
			})
		}
		for _, cfg := range uc2 {
			for _, dst := range p.db.Systems {
				if dst.SystemName == sd.SystemName {
					continue
				}
				items = append(items, warmItem{
					key:  modelKey{data: datasetKey{useCase: 2, system: sd.SystemName, target: dst.SystemName, uc2: cfg}},
					desc: fmt.Sprintf("UC2 %s->%s", sd.SystemName, dst.SystemName),
				})
			}
		}
	}
	return parallel.ForEach(context.Background(), len(items), 0, func(_ context.Context, i int) error {
		if _, _, _, _, err := p.model(items[i].key); err != nil {
			return fmt.Errorf("core: warm %s: %w", items[i].desc, err)
		}
		return nil
	})
}
