package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/measure"
	"repro/internal/ml"
	"repro/internal/modelstore"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

// Sentinel errors for request-path lookups, so serving layers can map
// them to proper HTTP status codes with errors.Is.
var (
	// ErrUnknownSystem reports a system name absent from the database.
	ErrUnknownSystem = errors.New("unknown system")
	// ErrUnknownBenchmark reports a benchmark ID absent from a system.
	ErrUnknownBenchmark = errors.New("unknown benchmark")
	// ErrBenchmarkQuarantined reports a benchmark (or whole dataset)
	// whose measurements failed ingest validation and were quarantined:
	// the data exists but is too dirty to train or predict on.
	ErrBenchmarkQuarantined = errors.New("benchmark quarantined")
	// ErrFitFailed matches (via errors.Is) errors from a failed model
	// fit — the class that trips the breaker, as opposed to
	// configuration errors.
	ErrFitFailed = errors.New("model fit failed")
)

// Predictor serves use-case-1/2 predictions from a measurement database
// with the expensive state cached: the assembled learning problem
// (profiles + encoded distributions) is built once per (system, config)
// and each fitted model once per (system, config, held-out benchmark).
// The batch entry points PredictUC1/PredictUC2 rebuild and retrain on
// every call, which is fine for a one-shot CLI but turns an online
// request into an O(train) operation; a Predictor makes repeat requests
// O(predict).
//
// A Predictor is safe for concurrent use. Cache population is
// singleflight-style: concurrent requests for the same key block on one
// build instead of duplicating it. Fitted models are immutable after
// Fit, and decoding draws from a fresh seed-derived RNG per request, so
// identical requests return identical predictions whether they hit or
// miss the cache.
//
// Fit failures degrade rather than fail: each (system, config) pair is
// guarded by a circuit breaker, and while fits are failing or the
// breaker is open, requests fall back first to the stale pre-Refresh
// model (if one exists) and then to a kNN model fitted on the same
// data — both flagged Degraded in the Prediction. Configuration errors
// (unknown system/benchmark, quarantined data) never trip the breaker
// and never fall back; they propagate to the caller unchanged.
type Predictor struct {
	// db is the measurement database, swapped copy-on-write by the
	// streaming-ingest merge path (SetBenchmarkRuns): readers load a
	// consistent snapshot once and never see a partial merge.
	db   atomic.Pointer[measure.Database]
	dbMu sync.Mutex // serializes writers (copy-on-write swaps)

	datasets  sync.Map // datasetKey -> *dataCell
	models    sync.Map // modelKey -> *modelCell
	stale     sync.Map // modelKey -> *fittedModel (pre-Refresh models)
	fallbacks sync.Map // modelKey -> *modelCell (kNN fallback models)
	breakers  sync.Map // datasetKey -> *breaker

	breakerCfg BreakerConfig
	now        func() time.Time

	// registry, when set, persists fitted primary models and loads them
	// back on later misses (and across process restarts). Nil = off.
	registry *modelstore.Registry

	hookMu  sync.RWMutex
	fitHook FitHook

	hits, misses           atomic.Uint64
	staleServed, knnServed atomic.Uint64
}

// NewPredictor wraps a loaded measurement database in an empty cache.
func NewPredictor(db *measure.Database) *Predictor {
	p := &Predictor{now: randx.SystemClock}
	p.db.Store(db)
	return p
}

// DB exposes the current database snapshot (read-only by convention;
// the ingest path replaces the whole snapshot rather than mutating it).
func (p *Predictor) DB() *measure.Database { return p.db.Load() }

// SetBreakerConfig overrides the fit-breaker tuning. Call before
// serving; breakers already created keep their old configuration.
func (p *Predictor) SetBreakerConfig(cfg BreakerConfig) { p.breakerCfg = cfg }

// SetClock overrides the breaker time source (tests only). Call before
// serving.
func (p *Predictor) SetClock(now func() time.Time) { p.now = now }

// FitInfo describes a model fit about to be attempted, passed to the
// fit hook.
type FitInfo struct {
	// UseCase is 1 or 2.
	UseCase int
	// System is the UC1 system or UC2 source; Target the UC2 target.
	System, Target string
	// Holdout is the held-out benchmark ("" for full deployment models).
	Holdout string
	// Model is the family being fitted.
	Model Model
	// Fallback marks the degraded-path kNN fit.
	Fallback bool
}

// FitHook intercepts model fits. Returning an error aborts the fit and
// counts as a fit failure (tripping the breaker) — the fault-injection
// lever behind the degraded-serving tests and drills.
type FitHook func(FitInfo) error

// SetFitHook installs (or, with nil, removes) the fit interception
// hook.
func (p *Predictor) SetFitHook(h FitHook) {
	p.hookMu.Lock()
	p.fitHook = h
	p.hookMu.Unlock()
}

func (p *Predictor) hook() FitHook {
	p.hookMu.RLock()
	defer p.hookMu.RUnlock()
	return p.fitHook
}

// CacheStats reports how many prediction requests were served from an
// already-fitted model (hits) versus had to train one (misses).
type CacheStats struct {
	Hits, Misses uint64
}

// CacheStats returns a snapshot of the hit/miss counters.
func (p *Predictor) CacheStats() CacheStats {
	return CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}

// DegradedStats counts predictions served by fallbacks and breakers
// currently open — the server's degraded-mode gauge.
type DegradedStats struct {
	// StaleServed counts predictions served from a pre-Refresh model.
	StaleServed uint64
	// KNNServed counts predictions served by the kNN fallback.
	KNNServed uint64
	// BreakersOpen is the number of breakers open right now.
	BreakersOpen int
}

// Degraded returns a snapshot of the degraded-serving counters.
func (p *Predictor) Degraded() DegradedStats {
	s := DegradedStats{StaleServed: p.staleServed.Load(), KNNServed: p.knnServed.Load()}
	now := p.now()
	p.breakers.Range(func(_, v any) bool {
		if v.(*breaker).state(now).Open {
			s.BreakersOpen++
		}
		return true
	})
	return s
}

// Breakers snapshots every breaker's state, sorted by key.
func (p *Predictor) Breakers() []BreakerState {
	now := p.now()
	var out []BreakerState
	p.breakers.Range(func(_, v any) bool {
		out = append(out, v.(*breaker).state(now))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// QuarantineReports summarizes the ingest-validation quarantine of
// every system touched by an assembled dataset, keyed by system name.
// When multiple configurations saw the same system (e.g. with and
// without Repair), the first built wins.
func (p *Predictor) QuarantineReports() map[string]measure.SystemQuarantine {
	out := map[string]measure.SystemQuarantine{}
	p.datasets.Range(func(_, value any) bool {
		c := value.(*dataCell)
		if !c.done.Load() || c.err != nil || c.data == nil {
			return true
		}
		for sys, reports := range c.data.quarantine {
			if _, seen := out[sys]; !seen {
				out[sys] = measure.Summarize(sys, reports)
			}
		}
		return true
	})
	return out
}

// Refresh drops every fitted model and assembled dataset so the next
// request re-validates the data and refits, keeping the dropped models
// as stale fallbacks: while a refit is failing or its breaker is open,
// requests are answered by the pre-Refresh model flagged Degraded
// instead of erroring.
func (p *Predictor) Refresh() {
	p.models.Range(func(key, value any) bool {
		c := value.(*modelCell)
		c.mu.Lock()
		fitted := c.fitted
		c.mu.Unlock()
		if fitted != nil {
			p.stale.Store(key, fitted)
		}
		p.models.Delete(key)
		return true
	})
	p.datasets.Range(func(key, _ any) bool {
		p.datasets.Delete(key)
		return true
	})
	p.fallbacks.Range(func(key, _ any) bool {
		p.fallbacks.Delete(key)
		return true
	})
}

// Prediction is the outcome of one online prediction request.
type Prediction struct {
	// Predicted is the predicted relative-time sample.
	Predicted []float64
	// Actual is the measured ground-truth sample, nil when the request
	// predicted from a caller-supplied probe profile (no holdout).
	Actual []float64
	// CacheHit reports whether the fitted model was reused.
	CacheHit bool
	// Degraded reports the prediction came from a fallback model
	// because the primary fit failed or its breaker is open.
	Degraded bool
	// Fallback names the degraded path ("stale" or "knn"; "" when the
	// primary model served).
	Fallback string
}

// datasetKey identifies one assembled learning problem.
type datasetKey struct {
	useCase int    // 1 or 2
	system  string // UC1 system / UC2 source system
	target  string // UC2 target system ("" for UC1)
	uc1     UC1Config
	uc2     UC2Config
}

// label renders the key for breaker states and error messages.
func (k datasetKey) label() string {
	if k.useCase == 1 {
		return fmt.Sprintf("%s %s", k.system, k.uc1)
	}
	return fmt.Sprintf("%s->%s %s", k.system, k.target, k.uc2)
}

// params extracts the model family, options, and seed from the config.
func (k datasetKey) params() (Model, ModelOptions, uint64) {
	if k.useCase == 1 {
		return k.uc1.Model, k.uc1.Models, k.uc1.Seed
	}
	return k.uc2.Model, k.uc2.Models, k.uc2.Seed
}

// modelKey identifies one fitted model: a dataset plus the benchmark
// held out of training ("" = trained on every benchmark, the deployment
// model for raw-profile requests).
type modelKey struct {
	data    datasetKey
	holdout string
}

type dataCell struct {
	once sync.Once
	done atomic.Bool
	data *uc1Data
	err  error
}

// fittedModel is one trained regressor bound to the dataset it was
// trained on (so stale models survive a dataset Refresh intact).
type fittedModel struct {
	data *uc1Data
	reg  ml.Regressor
	test int // row index of the held-out benchmark, -1 for full models
}

// modelCell holds one fit slot. Unlike a sync.Once cell, a failed fit
// leaves the cell empty so a later request can retry (gated by the
// breaker); concurrent requests for the same key still serialize on the
// mutex, so at most one fit per key runs at a time.
type modelCell struct {
	mu     sync.Mutex
	fitted *fittedModel
}

// servedModel is a fitted model plus how it was obtained.
type servedModel struct {
	*fittedModel
	hit      bool
	degraded bool
	fallback string
}

// fitError marks errors from the mechanics of fitting a model —
// distinct from configuration errors (unknown keys, quarantined data),
// which never trip the breaker and never fall back.
type fitError struct{ err error }

func (e *fitError) Error() string        { return "core: model fit failed: " + e.err.Error() }
func (e *fitError) Unwrap() error        { return e.err }
func (e *fitError) Is(target error) bool { return target == ErrFitFailed }

// dataset returns the cached learning problem for key, building it on
// first use. The build (profile assembly + ingest validation) is
// recorded as a "dataset.build" span on the building request's trace,
// annotated with how much the quarantine took.
func (p *Predictor) dataset(ctx context.Context, k datasetKey) (*uc1Data, error) {
	v, _ := p.datasets.LoadOrStore(k, &dataCell{})
	c := v.(*dataCell)
	c.once.Do(func() {
		_, span := obs.Start(ctx, "dataset.build")
		defer span.End()
		span.SetAttr("key", k.label())
		c.data, c.err = p.buildDataset(k)
		c.done.Store(true)
		if c.err != nil || c.data == nil {
			span.SetAttr("error", true)
			return
		}
		span.SetAttr("benchmarks", len(c.data.ids))
		span.SetAttr("unusable", len(c.data.unusable))
		quarantined := 0
		for _, reports := range c.data.quarantine {
			for i := range reports {
				quarantined += reports[i].Runs.Quarantined + reports[i].Probes.Quarantined
			}
		}
		span.SetAttr("quarantined_runs", quarantined)
	})
	return c.data, c.err
}

func (p *Predictor) buildDataset(k datasetKey) (*uc1Data, error) {
	switch k.useCase {
	case 1:
		sd, err := p.system(k.system)
		if err != nil {
			return nil, err
		}
		return buildUC1(sd, k.uc1)
	case 2:
		src, err := p.system(k.system)
		if err != nil {
			return nil, err
		}
		dst, err := p.system(k.target)
		if err != nil {
			return nil, err
		}
		return buildUC2(src, dst, k.uc2)
	default:
		return nil, fmt.Errorf("core: bad use case %d", k.useCase)
	}
}

func (p *Predictor) system(name string) (*measure.SystemData, error) {
	sd, ok := p.db.Load().System(name)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownSystem, name)
	}
	return sd, nil
}

// breaker returns the fit breaker guarding the dataset key.
func (p *Predictor) breaker(k datasetKey) *breaker {
	if v, ok := p.breakers.Load(k); ok {
		return v.(*breaker)
	}
	v, _ := p.breakers.LoadOrStore(k, newBreaker(k.label(), p.breakerCfg))
	return v.(*breaker)
}

// resolveHoldout maps the holdout benchmark to its dataset row and the
// training rows. An unknown holdout is a configuration error.
func resolveHoldout(data *uc1Data, holdout string) (test int, train []int, err error) {
	test = -1
	train = make([]int, 0, len(data.ids))
	for i, id := range data.ids {
		if id == holdout && holdout != "" {
			test = i
		} else {
			train = append(train, i)
		}
	}
	if holdout != "" && test < 0 {
		return 0, nil, fmt.Errorf("core: %w %q", ErrUnknownBenchmark, holdout)
	}
	return test, train, nil
}

// fitResolved obtains one regressor of the key's model family (or the
// kNN fallback family) for the training rows, under a "model.fit" span
// naming the family. Without a model store it always trains. With one,
// storable primary models resolve through the registry — resident copy,
// then disk, then fit-and-persist — and the span's "store" attribute
// records which tier answered; only an actual fit runs the fit hook, so
// a warm store serves without touching the fit path at all. Fallback
// models never go through the store: they are cheap memorization whose
// job is to work when everything else is broken. refresh forces the
// registry's atomic-swap path (always fit, persist, replace the
// resident copy) — the drift refitter's contract, where the stored
// model is known-stale by construction.
func (p *Predictor) fitResolved(ctx context.Context, data *uc1Data, k modelKey, test int, train []int, fallback, refresh bool) (*fittedModel, error) {
	model, opts, seed := k.data.params()
	if fallback {
		model = KNN
	}
	_, span := obs.Start(ctx, "model.fit")
	defer span.End()
	span.SetAttr("model", model.String())
	span.SetAttr("holdout", k.holdout)
	if fallback {
		span.SetAttr("fallback", true)
	}
	fit := func() (ml.Regressor, error) {
		if h := p.hook(); h != nil {
			if err := h(FitInfo{
				UseCase:  k.data.useCase,
				System:   k.data.system,
				Target:   k.data.target,
				Holdout:  k.holdout,
				Model:    model,
				Fallback: fallback,
			}); err != nil {
				return nil, err
			}
		}
		reg, err := newModel(model, seed, opts)
		if err != nil {
			return nil, err
		}
		if err := reg.Fit(data.dataset.Subset(train)); err != nil {
			return nil, err
		}
		return reg, nil
	}
	var reg ml.Regressor
	var err error
	switch {
	case p.registry != nil && !fallback && storable(model) && refresh:
		// Drift refit: never trust memory or disk — fit on the merged
		// data, persist, and atomically swap the resident entry.
		err = p.registry.Refresh(storeSpec(k, model, seed, opts, data.fingerprint()).Key(), data.fingerprint(), func() (ml.Regressor, error) {
			r, ferr := fit()
			if ferr == nil {
				reg = r
			}
			return r, ferr
		})
		span.SetAttr("store", "refresh")
	case p.registry != nil && !fallback && storable(model):
		var src modelstore.Source
		reg, src, err = p.registry.GetOrFit(storeSpec(k, model, seed, opts, data.fingerprint()).Key(), data.fingerprint(), fit)
		span.SetAttr("store", src.String())
	default:
		reg, err = fit()
	}
	if err != nil {
		return nil, err
	}
	return &fittedModel{data: data, reg: reg, test: test}, nil
}

// modelStrict returns the cached fitted regressor for key, training it
// on first use under the breaker. A failed fit returns *fitError and
// trips the breaker; a rejected attempt returns *BreakerOpenError.
// Configuration errors pass through untouched.
func (p *Predictor) modelStrict(ctx context.Context, k modelKey) (*fittedModel, bool, error) {
	data, err := p.dataset(ctx, k.data)
	if err != nil {
		return nil, false, err
	}
	v, _ := p.models.LoadOrStore(k, &modelCell{})
	c := v.(*modelCell)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fitted != nil {
		p.hits.Add(1)
		return c.fitted, true, nil
	}
	test, train, err := resolveHoldout(data, k.holdout)
	if err != nil {
		return nil, false, err
	}
	br := p.breaker(k.data)
	if err := br.allow(p.now()); err != nil {
		return nil, false, err
	}
	fm, err := p.fitResolved(ctx, data, k, test, train, false, false)
	if err != nil {
		ferr := &fitError{err: err}
		br.failure(p.now(), ferr)
		return nil, false, ferr
	}
	br.success()
	c.fitted = fm
	p.misses.Add(1)
	return fm, false, nil
}

// fallbackKNN returns the cached degraded-path kNN model for key,
// fitting it on first use. It bypasses the breaker: the breaker guards
// the (possibly expensive, possibly broken) primary family, while kNN
// fitting is memorization and is the escape hatch.
func (p *Predictor) fallbackKNN(ctx context.Context, k modelKey) (*fittedModel, bool, error) {
	data, err := p.dataset(ctx, k.data)
	if err != nil {
		return nil, false, err
	}
	v, _ := p.fallbacks.LoadOrStore(k, &modelCell{})
	c := v.(*modelCell)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fitted != nil {
		return c.fitted, true, nil
	}
	test, train, err := resolveHoldout(data, k.holdout)
	if err != nil {
		return nil, false, err
	}
	fm, err := p.fitResolved(ctx, data, k, test, train, true, false)
	if err != nil {
		return nil, false, err
	}
	c.fitted = fm
	return fm, false, nil
}

// modelServe is the request path: the strict model when healthy,
// otherwise the degraded fallback chain — the stale pre-Refresh model
// first, then the kNN fallback. Only fit failures and open breakers
// degrade; configuration errors propagate.
func (p *Predictor) modelServe(ctx context.Context, k modelKey) (*servedModel, error) {
	fm, hit, err := p.modelStrict(ctx, k)
	if err == nil {
		return &servedModel{fittedModel: fm, hit: hit}, nil
	}
	var ferr *fitError
	var berr *BreakerOpenError
	if !errors.As(err, &ferr) && !errors.As(err, &berr) {
		return nil, err
	}
	if v, ok := p.stale.Load(k); ok {
		p.staleServed.Add(1)
		return &servedModel{fittedModel: v.(*fittedModel), hit: true, degraded: true, fallback: "stale"}, nil
	}
	fb, fbHit, fbErr := p.fallbackKNN(ctx, k)
	if fbErr != nil {
		// The fallback failed too (e.g. the hook kills every fit):
		// report the primary error, which carries breaker semantics.
		return nil, err
	}
	p.knnServed.Add(1)
	return &servedModel{fittedModel: fb, hit: fbHit, degraded: true, fallback: "knn"}, nil
}

// PredictUC1 predicts benchmarkID's distribution on the named system
// from its few-run profile, training on the other benchmarks (cached).
// The returned Prediction carries the measured ground truth so callers
// can score the prediction. Identical to the batch PredictUC1 for the
// same seed, but O(predict) on repeat calls. When ctx carries an obs
// span, the request records a "predictor.uc1" span with fit and
// predict children.
func (p *Predictor) PredictUC1(ctx context.Context, system, benchmarkID string, cfg UC1Config) (*Prediction, error) {
	ctx, span := obs.Start(ctx, "predictor.uc1")
	defer span.End()
	span.SetAttr("system", system)
	span.SetAttr("benchmark", benchmarkID)
	if err := p.checkBenchmark(system, benchmarkID); err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 1, system: system, uc1: cfg}, holdout: benchmarkID}
	if err := p.checkUsable(ctx, k.data, benchmarkID); err != nil {
		return nil, err
	}
	m, err := p.modelServe(ctx, k)
	if err != nil {
		return nil, err
	}
	annotateServed(span, m)
	return decodeHoldout(ctx, m, cfg.Seed), nil
}

// annotateServed stamps a predictor span with how its model was
// obtained (nil-safe, like all span operations).
func annotateServed(span *obs.Span, m *servedModel) {
	span.SetAttr("cache_hit", m.hit)
	if m.degraded {
		span.SetAttr("fallback", m.fallback)
	}
}

// PredictUC2 predicts benchmarkID's distribution on the target system
// from its source-system measurements, training on the other benchmarks
// (cached).
func (p *Predictor) PredictUC2(ctx context.Context, src, dst, benchmarkID string, cfg UC2Config) (*Prediction, error) {
	ctx, span := obs.Start(ctx, "predictor.uc2")
	defer span.End()
	span.SetAttr("source", src)
	span.SetAttr("target", dst)
	span.SetAttr("benchmark", benchmarkID)
	if err := p.checkBenchmark(src, benchmarkID); err != nil {
		return nil, err
	}
	if err := p.checkBenchmark(dst, benchmarkID); err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 2, system: src, target: dst, uc2: cfg}, holdout: benchmarkID}
	if err := p.checkUsable(ctx, k.data, benchmarkID); err != nil {
		return nil, err
	}
	m, err := p.modelServe(ctx, k)
	if err != nil {
		return nil, err
	}
	annotateServed(span, m)
	return decodeHoldout(ctx, m, cfg.Seed), nil
}

// checkBenchmark validates the (system, benchmark) pair up front so
// unknown IDs fail fast with a typed error instead of populating the
// cache with failure cells for arbitrary request strings.
func (p *Predictor) checkBenchmark(system, benchmarkID string) error {
	sd, err := p.system(system)
	if err != nil {
		return err
	}
	if _, ok := sd.Find(benchmarkID); !ok {
		return fmt.Errorf("core: %w %q on system %q", ErrUnknownBenchmark, benchmarkID, system)
	}
	return nil
}

// checkUsable rejects requests for benchmarks that exist in the
// database but were quarantined out of the assembled dataset.
func (p *Predictor) checkUsable(ctx context.Context, dk datasetKey, benchmarkID string) error {
	data, err := p.dataset(ctx, dk)
	if err != nil {
		return err
	}
	if data.unusable[benchmarkID] {
		return fmt.Errorf("core: %w: %q has no usable validated data", ErrBenchmarkQuarantined, benchmarkID)
	}
	return nil
}

// decodeHoldout turns the fitted model's output for the held-out row
// into a concrete sample, using the same seed derivation as the batch
// predictHoldout so cached and uncached answers agree bit-for-bit.
func decodeHoldout(ctx context.Context, m *servedModel, seed uint64) *Prediction {
	_, span := obs.Start(ctx, "model.predict")
	defer span.End()
	predVec := m.reg.Predict(m.data.dataset.X[m.test])
	actual := m.data.rel[m.test]
	predicted := m.data.rep.Decode(predVec, len(actual), randx.New(seed^0xD1B54A32D192ED03))
	return &Prediction{
		Predicted: predicted,
		Actual:    actual,
		CacheHit:  m.hit,
		Degraded:  m.degraded,
		Fallback:  m.fallback,
	}
}

// PredictUC1Profile predicts a distribution on the named system from a
// caller-supplied probe profile (runs of an application the database
// has never seen), using the full model trained on every benchmark —
// the paper's actual deployment scenario. n is the number of samples to
// decode (the database's runs-per-benchmark when <= 0).
func (p *Predictor) PredictUC1Profile(ctx context.Context, system string, probe []perfsim.Run, n int, cfg UC1Config) (*Prediction, error) {
	ctx, span := obs.Start(ctx, "predictor.uc1_profile")
	defer span.End()
	span.SetAttr("system", system)
	sd, err := p.system(system)
	if err != nil {
		return nil, err
	}
	prof, err := buildProfile(probe, sd.MetricNames, cfg.FeatureMeanOnly)
	if err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 1, system: system, uc1: cfg}}
	m, err := p.modelServe(ctx, k)
	if err != nil {
		return nil, err
	}
	annotateServed(span, m)
	return p.decodeProfile(ctx, m, prof.Values, n, cfg.Seed)
}

// PredictUC2Profile predicts a distribution on the target system from
// an application's source-system probe runs and measured relative
// times, using the full cross-system model trained on every benchmark.
func (p *Predictor) PredictUC2Profile(ctx context.Context, src, dst string, probe []perfsim.Run, srcRelTimes []float64, n int, cfg UC2Config) (*Prediction, error) {
	ctx, span := obs.Start(ctx, "predictor.uc2_profile")
	defer span.End()
	span.SetAttr("source", src)
	span.SetAttr("target", dst)
	srcSys, err := p.system(src)
	if err != nil {
		return nil, err
	}
	if _, err := p.system(dst); err != nil {
		return nil, err
	}
	if len(srcRelTimes) < 2 {
		return nil, fmt.Errorf("core: UC2 profile needs >= 2 source relative times, got %d", len(srcRelTimes))
	}
	prof, err := buildProfile(probe, srcSys.MetricNames, false)
	if err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 2, system: src, target: dst, uc2: cfg}}
	m, err := p.modelServe(ctx, k)
	if err != nil {
		return nil, err
	}
	annotateServed(span, m)
	input := features.Concat(prof, features.Labeled("src-dist", m.data.rep.Encode(srcRelTimes)))
	return p.decodeProfile(ctx, m, input.Values, n, cfg.Seed)
}

func buildProfile(probe []perfsim.Run, metricNames []string, meanOnly bool) (*features.Profile, error) {
	if meanOnly {
		return features.MeanOnly(probe, metricNames)
	}
	return features.FromRuns(probe, metricNames)
}

func (p *Predictor) decodeProfile(ctx context.Context, m *servedModel, input []float64, n int, seed uint64) (*Prediction, error) {
	if got, want := len(input), len(m.data.dataset.X[0]); got != want {
		return nil, fmt.Errorf("core: profile has %d features, model expects %d", got, want)
	}
	if n <= 0 {
		n = p.db.Load().RunsPerBenchmark
	}
	if n <= 0 {
		n = 1000 // the paper's campaign size
	}
	_, span := obs.Start(ctx, "model.predict")
	defer span.End()
	predVec := m.reg.Predict(input)
	predicted := m.data.rep.Decode(predVec, n, randx.New(seed^0xD1B54A32D192ED03))
	return &Prediction{
		Predicted: predicted,
		CacheHit:  m.hit,
		Degraded:  m.degraded,
		Fallback:  m.fallback,
	}, nil
}

// PredictUC1ProfileBatch predicts distributions for many caller-supplied
// probe profiles on the named system in one call. Every profile is
// scored by the same full deployment model (trained once, cached), and
// the feature rows fan out across the shared worker pool via
// ml.PredictBatch. Result i is decoded from a per-index seed stream
// whose first entry matches PredictUC1Profile exactly, so a batch of
// one is bit-identical to the single-profile path.
func (p *Predictor) PredictUC1ProfileBatch(ctx context.Context, system string, probes [][]perfsim.Run, n int, cfg UC1Config) ([]*Prediction, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("core: empty profile batch")
	}
	ctx, span := obs.Start(ctx, "predictor.uc1_batch")
	defer span.End()
	span.SetAttr("system", system)
	span.SetAttr("profiles", len(probes))
	sd, err := p.system(system)
	if err != nil {
		return nil, err
	}
	k := modelKey{data: datasetKey{useCase: 1, system: system, uc1: cfg}}
	m, err := p.modelServe(ctx, k)
	if err != nil {
		return nil, err
	}
	annotateServed(span, m)
	want := len(m.data.dataset.X[0])
	rows := make([][]float64, len(probes))
	for i, probe := range probes {
		prof, err := buildProfile(probe, sd.MetricNames, cfg.FeatureMeanOnly)
		if err != nil {
			return nil, fmt.Errorf("core: profile %d: %w", i, err)
		}
		if len(prof.Values) != want {
			return nil, fmt.Errorf("core: profile %d has %d features, model expects %d", i, len(prof.Values), want)
		}
		rows[i] = prof.Values
	}
	if n <= 0 {
		n = p.db.Load().RunsPerBenchmark
	}
	if n <= 0 {
		n = 1000 // the paper's campaign size
	}
	// Models with the allocation-free batch kernel score into a pooled
	// matrix that is recycled once every row is decoded; others fall
	// back to PredictBatch's own allocation.
	var pooled [][]float64
	if bi, ok := m.reg.(ml.BatchIntoPredictor); ok {
		pooled = uc1BatchMatrices.Get(len(rows), bi.NumOutputs())
	}
	vecs := ml.PredictBatchInto(ctx, m.reg, rows, pooled)
	out := make([]*Prediction, len(probes))
	for i, vec := range vecs {
		seed := cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		out[i] = &Prediction{
			Predicted: m.data.rep.Decode(vec, n, randx.New(seed^0xD1B54A32D192ED03)),
			CacheHit:  m.hit,
			Degraded:  m.degraded,
			Fallback:  m.fallback,
		}
	}
	if pooled != nil {
		uc1BatchMatrices.Put(pooled)
	}
	return out, nil
}

// uc1BatchMatrices recycles the batch-prediction output matrices of
// PredictUC1ProfileBatch; Decode copies what it keeps, so a matrix can
// be returned as soon as its rows are decoded.
var uc1BatchMatrices ml.MatrixPool

// Warm pre-trains the full (no-holdout) models for the given configs on
// every system, so the first live request is already O(predict). It is
// the server's readiness hook. The models are independent, so they are
// trained concurrently on the shared worker pool; the first failure
// cancels the remaining work. Warming is strict: it never falls back,
// so a failure here surfaces broken configurations at startup.
func (p *Predictor) Warm(ctx context.Context, uc1 []UC1Config, uc2 []UC2Config) error {
	ctx, span := obs.Start(ctx, "predictor.warm")
	defer span.End()
	type warmItem struct {
		key  modelKey
		desc string
	}
	var items []warmItem
	db := p.db.Load()
	for _, sd := range db.Systems {
		for _, cfg := range uc1 {
			items = append(items, warmItem{
				key:  modelKey{data: datasetKey{useCase: 1, system: sd.SystemName, uc1: cfg}},
				desc: fmt.Sprintf("UC1 %s", sd.SystemName),
			})
		}
		for _, cfg := range uc2 {
			for _, dst := range db.Systems {
				if dst.SystemName == sd.SystemName {
					continue
				}
				items = append(items, warmItem{
					key:  modelKey{data: datasetKey{useCase: 2, system: sd.SystemName, target: dst.SystemName, uc2: cfg}},
					desc: fmt.Sprintf("UC2 %s->%s", sd.SystemName, dst.SystemName),
				})
			}
		}
	}
	span.SetAttr("models", len(items))
	return parallel.ForEach(ctx, len(items), 0, func(ctx context.Context, i int) error {
		if _, _, err := p.modelStrict(ctx, items[i].key); err != nil {
			return fmt.Errorf("core: warm %s: %w", items[i].desc, err)
		}
		return nil
	})
}
