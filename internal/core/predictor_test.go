package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/distrep"
	"repro/internal/perfsim"
)

func predictorConfig() UC1Config {
	return UC1Config{Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10, Seed: 7}
}

func TestPredictorMatchesBatchPredict(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	bench := db.Systems[0].Benchmarks[0].Workload.ID()
	sys := db.Systems[0].SystemName

	got, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatalf("predictor: %v", err)
	}
	sd, _ := db.System(sys)
	wantPred, wantActual, err := PredictUC1(sd, bench, cfg)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(got.Predicted) != len(wantPred) {
		t.Fatalf("predicted length %d != batch %d", len(got.Predicted), len(wantPred))
	}
	for i := range wantPred {
		if got.Predicted[i] != wantPred[i] {
			t.Fatalf("predicted[%d] = %v, batch = %v: cached predictor must agree bit-for-bit", i, got.Predicted[i], wantPred[i])
		}
	}
	for i := range wantActual {
		if got.Actual[i] != wantActual[i] {
			t.Fatalf("actual[%d] diverges from batch", i)
		}
	}
}

func TestPredictorCacheHitSkipsRefit(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	sys := db.Systems[0].SystemName
	bench := db.Systems[0].Benchmarks[1].Workload.ID()

	first, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first request must be a miss")
	}
	s0 := p.CacheStats()
	if s0.Misses != 1 || s0.Hits != 0 {
		t.Errorf("after first request: stats = %+v, want 1 miss / 0 hits", s0)
	}

	second, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical second request must be a cache hit")
	}
	s1 := p.CacheStats()
	if s1.Misses != 1 {
		t.Errorf("second identical request refit the model: misses = %d", s1.Misses)
	}
	if s1.Hits != 1 {
		t.Errorf("hit counter did not increment: hits = %d", s1.Hits)
	}
	for i := range first.Predicted {
		if first.Predicted[i] != second.Predicted[i] {
			t.Fatalf("hit and miss disagree at sample %d: identical seed must give identical output", i)
		}
	}

	// A different benchmark shares the dataset but needs its own fit.
	other := db.Systems[0].Benchmarks[2].Workload.ID()
	if _, err := p.PredictUC1(context.Background(), sys, other, cfg); err != nil {
		t.Fatal(err)
	}
	s2 := p.CacheStats()
	if s2.Misses != 2 {
		t.Errorf("distinct holdout should miss: misses = %d", s2.Misses)
	}
}

func TestPredictorUnknownIDs(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()

	if _, err := p.PredictUC1(context.Background(), "vax", "specomp/376", cfg); !errors.Is(err, ErrUnknownSystem) {
		t.Errorf("unknown system: got %v, want ErrUnknownSystem", err)
	}
	if _, err := p.PredictUC1(context.Background(), db.Systems[0].SystemName, "nosuite/nobench", cfg); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark: got %v, want ErrUnknownBenchmark", err)
	}
	if _, err := p.PredictUC2(context.Background(), "vax", "intel", "specomp/376", UC2Config{Seed: 1}); !errors.Is(err, ErrUnknownSystem) {
		t.Errorf("UC2 unknown source: got %v, want ErrUnknownSystem", err)
	}
}

func TestPredictorConcurrentIdenticalRequests(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	sys := db.Systems[0].SystemName
	bench := db.Systems[0].Benchmarks[3].Workload.ID()

	const goroutines = 8
	preds := make([]*Prediction, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			preds[g], errs[g] = p.PredictUC1(context.Background(), sys, bench, cfg)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i := range preds[0].Predicted {
			if preds[g].Predicted[i] != preds[0].Predicted[i] {
				t.Fatalf("goroutine %d diverges at sample %d", g, i)
			}
		}
	}
	// Singleflight: exactly one build regardless of contention.
	s := p.CacheStats()
	if s.Misses != 1 {
		t.Errorf("concurrent identical requests trained %d times, want 1", s.Misses)
	}
	if s.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", s.Hits, goroutines-1)
	}
}

func TestPredictorProfilePaths(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	sys := db.Systems[0].SystemName
	b := &db.Systems[0].Benchmarks[4]

	// UC1 from a raw probe profile: an "unseen" application standing in
	// via the benchmark's reserved probe runs.
	cfg := predictorConfig()
	pred, err := p.PredictUC1Profile(context.Background(), sys, b.ProbeRuns[:10], 500, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Actual != nil {
		t.Error("profile predictions carry no ground truth")
	}
	if len(pred.Predicted) != 500 {
		t.Errorf("asked for 500 samples, got %d", len(pred.Predicted))
	}
	for _, v := range pred.Predicted {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite predicted sample")
		}
	}

	// UC2 from source-system probe runs plus the measured source sample.
	src, dst := db.Systems[0].SystemName, db.Systems[1].SystemName
	pred2, err := p.PredictUC2Profile(context.Background(), src, dst, b.Runs[:50], b.RelTimes(), 300, UC2Config{Rep: distrep.PearsonRnd, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred2.Predicted) != 300 {
		t.Errorf("asked for 300 samples, got %d", len(pred2.Predicted))
	}

	// Wrong feature width must be rejected, not silently mispredicted.
	if _, err := p.PredictUC2Profile(context.Background(), src, dst, b.Runs[:50], []float64{1}, 300, UC2Config{Seed: 7}); err == nil {
		t.Error("UC2 profile with 1 source rel time should fail")
	}
}

func TestPredictorWarm(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	if err := p.Warm(context.Background(), []UC1Config{cfg}, nil); err != nil {
		t.Fatal(err)
	}
	warmMisses := p.CacheStats().Misses
	if warmMisses == 0 {
		t.Fatal("warm trained nothing")
	}
	// A profile request against the warmed full model is a pure hit.
	b := &db.Systems[0].Benchmarks[0]
	pred, err := p.PredictUC1Profile(context.Background(), db.Systems[0].SystemName, b.ProbeRuns[:10], 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.CacheHit {
		t.Error("request after Warm should hit the cache")
	}
	if p.CacheStats().Misses != warmMisses {
		t.Error("request after Warm retrained a model")
	}
}

func TestPredictorProfileBatch(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	sys := db.Systems[0].SystemName
	probes := [][]perfsim.Run{
		db.Systems[0].Benchmarks[0].ProbeRuns[:10],
		db.Systems[0].Benchmarks[1].ProbeRuns[:10],
		db.Systems[0].Benchmarks[2].ProbeRuns[:10],
	}

	batch, err := p.PredictUC1ProfileBatch(context.Background(), sys, probes, 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("got %d predictions for 3 profiles", len(batch))
	}
	for i, pred := range batch {
		if len(pred.Predicted) != 200 {
			t.Errorf("profile %d: %d samples, want 200", i, len(pred.Predicted))
		}
	}

	// Entry 0 must be bit-identical to the single-profile path (same
	// model, same decode stream).
	single, err := p.PredictUC1Profile(context.Background(), sys, probes[0], 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Predicted {
		if batch[0].Predicted[i] != single.Predicted[i] {
			t.Fatalf("batch[0] diverges from PredictUC1Profile at sample %d", i)
		}
	}

	// Repeat batches are deterministic.
	again, err := p.PredictUC1ProfileBatch(context.Background(), sys, probes, 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range batch {
		for i := range batch[k].Predicted {
			if batch[k].Predicted[i] != again[k].Predicted[i] {
				t.Fatalf("repeat batch diverges at profile %d sample %d", k, i)
			}
		}
	}

	// One model fit serves the whole batch: the second batch and the
	// single-profile call were all hits.
	if s := p.CacheStats(); s.Misses != 1 {
		t.Errorf("batch path trained %d models, want 1", s.Misses)
	}

	if _, err := p.PredictUC1ProfileBatch(context.Background(), sys, nil, 0, cfg); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := p.PredictUC1ProfileBatch(context.Background(), "vax", probes, 0, cfg); !errors.Is(err, ErrUnknownSystem) {
		t.Errorf("unknown system: got %v, want ErrUnknownSystem", err)
	}
}

// TestPredictorWarmParallelDeterministic checks that the parallel warm
// produces the same fitted models as untrained on-demand requests.
func TestPredictorWarmParallelDeterministic(t *testing.T) {
	db := testCampaign(t)
	cfg := predictorConfig()
	warmed := NewPredictor(db)
	if err := warmed.Warm(context.Background(), []UC1Config{cfg}, []UC2Config{{Rep: distrep.PearsonRnd, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	cold := NewPredictor(db)
	b := &db.Systems[0].Benchmarks[0]
	sys := db.Systems[0].SystemName
	pw, err := warmed.PredictUC1Profile(context.Background(), sys, b.ProbeRuns[:10], 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := cold.PredictUC1Profile(context.Background(), sys, b.ProbeRuns[:10], 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pw.CacheHit || pc.CacheHit {
		t.Errorf("warm hit=%v cold hit=%v, want true/false", pw.CacheHit, pc.CacheHit)
	}
	for i := range pw.Predicted {
		if pw.Predicted[i] != pc.Predicted[i] {
			t.Fatalf("warmed and cold predictions diverge at sample %d", i)
		}
	}
}
