package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/perfsim"
)

// This file is the predictor's side of the streaming-ingest drift
// loop (internal/drift): merging freshly measured runs into the
// database copy-on-write, and strictly refitting one system's models
// on the merged data while the stale models keep serving.

// SetBenchmarkRuns replaces the named benchmark's measurement runs
// with a deep copy of runs, swapping in a copy-on-write database
// snapshot: readers that loaded the old snapshot keep a consistent
// view, and a request never observes a half-merged benchmark. The
// caller supplies the full replacement set (training baseline plus
// drifted window), which makes a retried refit idempotent — re-applying
// the same merge yields the same snapshot, not a double append.
//
// Only the database changes; cached datasets and models still hold the
// old snapshot until RefitSystem (or Refresh) drops them.
func (p *Predictor) SetBenchmarkRuns(system, benchmark string, runs []perfsim.Run) error {
	if len(runs) < 2 {
		return fmt.Errorf("core: benchmark %s/%s needs >= 2 runs, got %d", system, benchmark, len(runs))
	}
	p.dbMu.Lock()
	defer p.dbMu.Unlock()
	old := p.db.Load()
	si := -1
	for i := range old.Systems {
		if old.Systems[i].SystemName == system {
			si = i
			break
		}
	}
	if si < 0 {
		return fmt.Errorf("core: %w %q", ErrUnknownSystem, system)
	}
	bi := -1
	for i := range old.Systems[si].Benchmarks {
		if old.Systems[si].Benchmarks[i].Workload.ID() == benchmark {
			bi = i
			break
		}
	}
	if bi < 0 {
		return fmt.Errorf("core: %w %q on system %q", ErrUnknownBenchmark, benchmark, system)
	}
	// Copy-on-write along the path to the one mutated benchmark; every
	// untouched system/benchmark is shared with the old snapshot.
	next := *old
	next.Systems = append([]measure.SystemData(nil), old.Systems...)
	sys := next.Systems[si]
	sys.Benchmarks = append([]measure.BenchmarkData(nil), sys.Benchmarks...)
	bench := sys.Benchmarks[bi]
	bench.Runs = perfsim.CloneRuns(runs)
	sys.Benchmarks[bi] = bench
	next.Systems[si] = sys
	p.db.Store(&next)
	return nil
}

// refreshSystem drops every cached dataset, model, and kNN fallback
// touching the named system (as UC1 system, UC2 source, or UC2
// target), keeping each dropped fitted model as a stale fallback so
// degraded serving works while the refit is in flight or failing.
// Returns the dropped model keys in deterministic order.
func (p *Predictor) refreshSystem(system string) []modelKey {
	touches := func(dk datasetKey) bool { return dk.system == system || dk.target == system }
	var dropped []modelKey
	p.models.Range(func(key, value any) bool {
		k := key.(modelKey)
		if !touches(k.data) {
			return true
		}
		c := value.(*modelCell)
		c.mu.Lock()
		fitted := c.fitted
		c.mu.Unlock()
		if fitted != nil {
			p.stale.Store(key, fitted)
		}
		p.models.Delete(key)
		dropped = append(dropped, k)
		return true
	})
	p.datasets.Range(func(key, _ any) bool {
		if touches(key.(datasetKey)) {
			p.datasets.Delete(key)
		}
		return true
	})
	p.fallbacks.Range(func(key, _ any) bool {
		if touches(key.(modelKey).data) {
			p.fallbacks.Delete(key)
		}
		return true
	})
	sort.Slice(dropped, func(i, j int) bool {
		a, b := dropped[i], dropped[j]
		if a.data.label() != b.data.label() {
			return a.data.label() < b.data.label()
		}
		return a.holdout < b.holdout
	})
	return dropped
}

// RefreshSystem is the exported single-system variant of Refresh: it
// drops the system's cached state (keeping stale fallbacks) without
// refitting, and reports how many models were dropped.
func (p *Predictor) RefreshSystem(system string) int {
	return len(p.refreshSystem(system))
}

// RefitSystem re-validates and strictly refits every model that was
// resident for the named system against the current database snapshot
// — the drift refitter's entry point after SetBenchmarkRuns swaps the
// merged data in. Refits run concurrently on the shared worker pool,
// each under the dataset's circuit breaker: the first failure cancels
// the remaining work and the error trips the breaker, leaving the
// stale pre-refresh models serving (flagged degraded) exactly like
// today's degraded path. Models nobody had requested yet are not
// eagerly fitted; they resolve lazily on first request as usual.
func (p *Predictor) RefitSystem(ctx context.Context, system string) error {
	ctx, span := obs.Start(ctx, "predictor.refit")
	defer span.End()
	span.SetAttr("system", system)
	dropped := p.refreshSystem(system)
	span.SetAttr("models", len(dropped))
	return parallel.ForEach(ctx, len(dropped), 0, func(ctx context.Context, i int) error {
		if err := p.refitOne(ctx, dropped[i]); err != nil {
			return fmt.Errorf("core: refit %s holdout=%q: %w", dropped[i].data.label(), dropped[i].holdout, err)
		}
		return nil
	})
}

// refitOne strictly refits one model key on the current snapshot,
// bypassing the memory/disk model-store tiers (registry Refresh:
// fit, persist, atomic swap). Shares the breaker and cache cells with
// the request path, so a concurrent request that already refitted the
// key is simply reused.
func (p *Predictor) refitOne(ctx context.Context, k modelKey) error {
	data, err := p.dataset(ctx, k.data)
	if err != nil {
		return err
	}
	v, _ := p.models.LoadOrStore(k, &modelCell{})
	c := v.(*modelCell)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fitted != nil {
		return nil // a concurrent request beat us to the refit
	}
	test, train, err := resolveHoldout(data, k.holdout)
	if err != nil {
		return err
	}
	br := p.breaker(k.data)
	if err := br.allow(p.now()); err != nil {
		return err
	}
	fm, err := p.fitResolved(ctx, data, k, test, train, false, true)
	if err != nil {
		ferr := &fitError{err: err}
		br.failure(p.now(), ferr)
		return ferr
	}
	br.success()
	c.fitted = fm
	p.misses.Add(1)
	return nil
}
