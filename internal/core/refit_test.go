package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/perfsim"
)

// shiftRuns returns the runs with wall time scaled by factor — an
// unambiguous distribution shift with the counters untouched.
func shiftRuns(runs []perfsim.Run, factor float64) []perfsim.Run {
	out := perfsim.CloneRuns(runs)
	for i := range out {
		out[i].Seconds *= factor
	}
	return out
}

func TestSetBenchmarkRunsCopyOnWrite(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	old := p.DB()
	sys := old.Systems[0].SystemName
	bench := old.Systems[0].Benchmarks[0].Workload.ID()
	origRuns := perfsim.CloneRuns(old.Systems[0].Benchmarks[0].Runs)
	merged := shiftRuns(origRuns, 2)

	if err := p.SetBenchmarkRuns(sys, bench, merged); err != nil {
		t.Fatal(err)
	}
	next := p.DB()
	if next == old {
		t.Fatal("SetBenchmarkRuns must swap a new snapshot")
	}
	// The old snapshot is untouched: readers holding it keep a
	// consistent view (and the shared package test campaign survives).
	if !reflect.DeepEqual(old.Systems[0].Benchmarks[0].Runs, origRuns) {
		t.Fatal("old snapshot mutated")
	}
	if !reflect.DeepEqual(next.Systems[0].Benchmarks[0].Runs, merged) {
		t.Fatal("new snapshot does not hold the replacement runs")
	}
	// The replacement is a deep copy, not an alias of the caller's
	// slice.
	merged[0].Seconds = -1
	if next.Systems[0].Benchmarks[0].Runs[0].Seconds == -1 {
		t.Error("snapshot aliases caller memory")
	}
	// Untouched systems and benchmarks share backing with the old
	// snapshot (copy-on-write along one path only).
	if &next.Systems[1].Benchmarks[0] != &old.Systems[1].Benchmarks[0] {
		t.Error("untouched system was deep-copied")
	}
	if &next.Systems[0].Benchmarks[1].Runs[0] != &old.Systems[0].Benchmarks[1].Runs[0] {
		t.Error("untouched sibling benchmark was deep-copied")
	}
	// Replace semantics: re-applying the same merge is idempotent.
	if err := p.SetBenchmarkRuns(sys, bench, next.Systems[0].Benchmarks[0].Runs); err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.DB().Systems[0].Benchmarks[0].Runs), len(origRuns); got != want {
		t.Errorf("retried merge double-appended: %d runs, want %d", got, want)
	}
}

func TestSetBenchmarkRunsValidation(t *testing.T) {
	p := NewPredictor(testCampaign(t))
	sys := p.DB().Systems[0].SystemName
	bench := p.DB().Systems[0].Benchmarks[0].Workload.ID()
	runs := p.DB().Systems[0].Benchmarks[0].Runs
	if err := p.SetBenchmarkRuns("vax", bench, runs); !errors.Is(err, ErrUnknownSystem) {
		t.Errorf("unknown system: %v", err)
	}
	if err := p.SetBenchmarkRuns(sys, "nosuite/nobench", runs); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark: %v", err)
	}
	if err := p.SetBenchmarkRuns(sys, bench, runs[:1]); err == nil {
		t.Error("a 1-run replacement must be rejected")
	}
}

// widenRuns triples the spread of the wall times around their mean —
// a shape change that survives the per-benchmark mean normalization of
// RelTimes (a pure scale shift would cancel out).
func widenRuns(runs []perfsim.Run) []perfsim.Run {
	out := perfsim.CloneRuns(runs)
	var mean float64
	for i := range out {
		mean += out[i].Seconds
	}
	mean /= float64(len(out))
	for i := range out {
		s := mean + 3*(out[i].Seconds-mean)
		if s <= 0 {
			s = mean / 10
		}
		out[i].Seconds = s
	}
	return out
}

func TestRefitSystemSwapsServingModel(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	sd := db.Systems[0]
	sys := sd.SystemName
	bench := sd.Benchmarks[0].Workload.ID()

	before, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drift every training benchmark (everything but the holdout) and
	// refit: the resident model must be retrained on the merged data.
	for i := 1; i < len(sd.Benchmarks); i++ {
		b := &sd.Benchmarks[i]
		if err := p.SetBenchmarkRuns(sys, b.Workload.ID(), widenRuns(b.Runs)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RefitSystem(context.Background(), sys); err != nil {
		t.Fatal(err)
	}
	after, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The background refit already retrained the model, so the request
	// hits the cache — and the prediction reflects the new data.
	if !after.CacheHit {
		t.Error("post-refit request must hit the eagerly refitted model")
	}
	if after.Degraded {
		t.Errorf("successful refit must not serve degraded: %+v", after)
	}
	if reflect.DeepEqual(before.Predicted, after.Predicted) {
		t.Error("prediction unchanged although the whole training set drifted")
	}
	// Determinism: a fresh predictor given the already-merged database
	// reproduces the refitted prediction bit-for-bit.
	fresh := NewPredictor(p.DB())
	again, err := fresh.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Predicted, again.Predicted) {
		t.Error("refitted prediction is not reproducible from the merged snapshot")
	}
}

func TestRefitSystemFailureLeavesStaleServing(t *testing.T) {
	db := testCampaign(t)
	p := NewPredictor(db)
	cfg := predictorConfig()
	sd := db.Systems[0]
	sys := sd.SystemName
	bench := sd.Benchmarks[0].Workload.ID()

	before, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Merge drifted data, then make every primary fit fail: the refit
	// must error out, and serving must fall back to the stale model
	// rather than going dark.
	other := sd.Benchmarks[1]
	if err := p.SetBenchmarkRuns(sys, other.Workload.ID(), widenRuns(other.Runs)); err != nil {
		t.Fatal(err)
	}
	p.SetFitHook(func(info FitInfo) error {
		if info.Fallback {
			return nil
		}
		return errors.New("drill: refit outage")
	})
	if err := p.RefitSystem(context.Background(), sys); err == nil {
		t.Fatal("failing fits must surface from RefitSystem")
	}
	after, err := p.PredictUC1(context.Background(), sys, bench, cfg)
	if err != nil {
		t.Fatalf("degraded serving must not error: %v", err)
	}
	if !after.Degraded || after.Fallback != "stale" {
		t.Fatalf("want stale fallback, got degraded=%v fallback=%q", after.Degraded, after.Fallback)
	}
	// The stale model is the pre-drift one, so its prediction matches.
	if !reflect.DeepEqual(before.Predicted, after.Predicted) {
		t.Error("stale fallback must reproduce the pre-refit prediction")
	}
}
