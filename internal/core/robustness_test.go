package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/distrep"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/perfsim"
)

var (
	robustDBOnce sync.Once
	robustDB     *measure.Database
)

// robustCampaign is a small (10-benchmark, 2-system) campaign for the
// degraded-mode tests, where per-model fit cost matters less than the
// fault machinery around it.
func robustCampaign(t *testing.T) *measure.Database {
	t.Helper()
	robustDBOnce.Do(func() {
		db, err := measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI()[:10],
			measure.Config{Runs: 50, ProbeRuns: 10, Seed: 20250806},
		)
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		robustDB = db
	})
	if robustDB == nil {
		t.Fatal("campaign unavailable")
	}
	return robustDB
}

// cloneDB deep-copies the campaign via a zero-rate injection pass.
func cloneDB(t *testing.T, db *measure.Database) *measure.Database {
	t.Helper()
	out, _, err := faults.Inject(db, faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func robustConfig() UC1Config {
	return UC1Config{Rep: distrep.PearsonRnd, Model: KNN, NumSamples: 10, Seed: 42}
}

func finite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func TestPredictorQuarantinedBenchmarkErrors(t *testing.T) {
	db := cloneDB(t, robustCampaign(t))
	intel, _ := db.System("intel")
	bad := intel.Benchmarks[0].Workload.ID()
	for i := range intel.Benchmarks[0].Runs {
		intel.Benchmarks[0].Runs[i].Seconds = math.NaN()
	}
	p := NewPredictor(db)
	_, err := p.PredictUC1(context.Background(), "intel", bad, robustConfig())
	if !errors.Is(err, ErrBenchmarkQuarantined) {
		t.Fatalf("all-runs-quarantined benchmark: err = %v, want ErrBenchmarkQuarantined", err)
	}
	// The rest of the system must keep serving.
	ok := intel.Benchmarks[1].Workload.ID()
	pred, err := p.PredictUC1(context.Background(), "intel", ok, robustConfig())
	if err != nil {
		t.Fatalf("healthy benchmark after quarantine: %v", err)
	}
	if !finite(pred.Predicted) || pred.Degraded {
		t.Error("healthy benchmark must serve a finite, non-degraded prediction")
	}
	qr := p.QuarantineReports()
	if qr["intel"].Runs.Quarantined < len(intel.Benchmarks[0].Runs) {
		t.Errorf("quarantine report missing the bad runs: %+v", qr["intel"].Runs)
	}
	if len(qr["intel"].Benchmarks) == 0 {
		t.Error("per-benchmark quarantine breakdown missing")
	}
}

func TestPredictorSingleSurvivingProbeRun(t *testing.T) {
	db := cloneDB(t, robustCampaign(t))
	intel, _ := db.System("intel")
	b := &intel.Benchmarks[1]
	for i := range b.ProbeRuns[:len(b.ProbeRuns)-1] {
		b.ProbeRuns[i].Seconds = math.NaN()
	}
	p := NewPredictor(db)
	pred, err := p.PredictUC1(context.Background(), "intel", b.Workload.ID(), robustConfig())
	if err != nil {
		t.Fatalf("single surviving probe run must stay usable: %v", err)
	}
	// A one-run profile has zero variance; its std/skew/kurt features
	// must be defined (0/0/3), never NaN, and the prediction finite.
	if !finite(pred.Predicted) {
		t.Error("prediction from a single-run profile produced non-finite values")
	}
}

func TestPredictorFaultSeedDeterminism(t *testing.T) {
	db := robustCampaign(t)
	cfg := faults.Config{Seed: 7, CorruptRate: 0.05}
	f1, _, err := faults.Inject(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := faults.Inject(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := NewPredictor(f1), NewPredictor(f2)
	for _, b := range f1.Systems[0].Benchmarks[:3] {
		id := b.Workload.ID()
		a, err1 := p1.PredictUC1(context.Background(), "intel", id, robustConfig())
		c, err2 := p2.PredictUC1(context.Background(), "intel", id, robustConfig())
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: same faults seed, different usability: %v vs %v", id, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(a.Predicted, c.Predicted) {
			t.Errorf("%s: same faults seed must give bit-identical predictions", id)
		}
	}
}

func TestPredictorSurgicalQuarantine(t *testing.T) {
	db := robustCampaign(t)
	faulted, rep, err := faults.Inject(db, faults.Config{
		Seed: 11, CorruptRate: 0.05, Systems: []string{"intel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() == 0 {
		t.Fatal("nothing injected")
	}
	clean := NewPredictor(db)
	dirty := NewPredictor(faulted)
	// Corruption confined to intel must not move any amd prediction by
	// a single bit.
	for _, b := range db.Systems[1].Benchmarks {
		id := b.Workload.ID()
		want, err := clean.PredictUC1(context.Background(), "amd", id, robustConfig())
		if err != nil {
			t.Fatalf("clean amd %s: %v", id, err)
		}
		got, err := dirty.PredictUC1(context.Background(), "amd", id, robustConfig())
		if err != nil {
			t.Fatalf("amd %s with intel-only faults: %v", id, err)
		}
		if !reflect.DeepEqual(want.Predicted, got.Predicted) {
			t.Fatalf("amd %s prediction changed under intel-only fault injection", id)
		}
	}
	// And the zero-rate clone is bit-compatible with the original:
	// validation of clean data is a pass-through.
	cloned := NewPredictor(cloneDB(t, db))
	id := db.Systems[0].Benchmarks[0].Workload.ID()
	want, _ := clean.PredictUC1(context.Background(), "intel", id, robustConfig())
	got, err := cloned.PredictUC1(context.Background(), "intel", id, robustConfig())
	if err != nil || !reflect.DeepEqual(want.Predicted, got.Predicted) {
		t.Errorf("zero-rate clone predictions diverged (err=%v)", err)
	}
}

func TestPredictorFitHookKNNFallback(t *testing.T) {
	db := robustCampaign(t)
	p := NewPredictor(db)
	p.SetFitHook(func(info FitInfo) error {
		if info.Fallback {
			return nil
		}
		return errors.New("injected fit failure")
	})
	cfg := robustConfig()
	cfg.Model = RandomForest
	id := db.Systems[0].Benchmarks[0].Workload.ID()
	pred, err := p.PredictUC1(context.Background(), "intel", id, cfg)
	if err != nil {
		t.Fatalf("killed primary fit must fall back, got error: %v", err)
	}
	if !pred.Degraded || pred.Fallback != "knn" {
		t.Fatalf("prediction = {Degraded:%v Fallback:%q}, want degraded knn", pred.Degraded, pred.Fallback)
	}
	if !finite(pred.Predicted) {
		t.Error("fallback prediction must be finite")
	}
	ds := p.Degraded()
	if ds.KNNServed == 0 || ds.BreakersOpen == 0 {
		t.Errorf("degraded stats = %+v, want knn_served > 0 and an open breaker", ds)
	}
	states := p.Breakers()
	if len(states) == 0 || !states[0].Open || states[0].Trips == 0 {
		t.Errorf("breaker states = %+v, want one open tripped breaker", states)
	}
	// Healing the fit path does not help while the breaker is open:
	// the fallback keeps serving (no thundering refit herd).
	p.SetFitHook(nil)
	pred2, err := p.PredictUC1(context.Background(), "intel", id, cfg)
	if err != nil || pred2.Fallback != "knn" {
		t.Errorf("open breaker must keep serving the fallback, got (%+v, %v)", pred2, err)
	}
}

func TestPredictorStaleFallback(t *testing.T) {
	db := robustCampaign(t)
	p := NewPredictor(db)
	cfg := robustConfig()
	id := db.Systems[0].Benchmarks[0].Workload.ID()
	want, err := p.PredictUC1(context.Background(), "intel", id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Refresh()
	p.SetFitHook(func(FitInfo) error { return errors.New("refit killed") })
	got, err := p.PredictUC1(context.Background(), "intel", id, cfg)
	if err != nil {
		t.Fatalf("stale fallback must serve, got: %v", err)
	}
	if !got.Degraded || got.Fallback != "stale" {
		t.Fatalf("prediction = {Degraded:%v Fallback:%q}, want degraded stale", got.Degraded, got.Fallback)
	}
	// The stale model is the pre-Refresh model: identical output.
	if !reflect.DeepEqual(want.Predicted, got.Predicted) {
		t.Error("stale fallback must reproduce the pre-Refresh prediction bit-for-bit")
	}
	if p.Degraded().StaleServed == 0 {
		t.Error("stale_served counter not incremented")
	}
}

func TestPredictorBreakerRecovery(t *testing.T) {
	db := robustCampaign(t)
	p := NewPredictor(db)
	p.SetBreakerConfig(BreakerConfig{FailureThreshold: 1, BaseBackoff: time.Second, MaxBackoff: time.Minute})
	now := time.Unix(1_700_000_000, 0)
	p.SetClock(func() time.Time { return now })
	// Kill every fit, fallback included: requests must error, typed.
	p.SetFitHook(func(FitInfo) error { return errors.New("total outage") })
	cfg := robustConfig()
	id := db.Systems[0].Benchmarks[0].Workload.ID()
	_, err := p.PredictUC1(context.Background(), "intel", id, cfg)
	if !errors.Is(err, ErrFitFailed) {
		t.Fatalf("first failed fit: err = %v, want ErrFitFailed", err)
	}
	// The breaker is now open: the next request is rejected up front
	// with a retry hint instead of re-attempting the fit.
	_, err = p.PredictUC1(context.Background(), "intel", id, cfg)
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("open breaker: err = %v, want *BreakerOpenError", err)
	}
	if boe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", boe.RetryAfter)
	}
	if !errors.Is(err, ErrFitFailed) {
		t.Error("BreakerOpenError must carry the fit-failure class")
	}
	// Heal the fit path and advance past the backoff: the half-open
	// probe refits and the breaker closes.
	p.SetFitHook(nil)
	now = now.Add(2 * time.Second)
	pred, err := p.PredictUC1(context.Background(), "intel", id, cfg)
	if err != nil {
		t.Fatalf("half-open probe after healing: %v", err)
	}
	if pred.Degraded {
		t.Error("recovered primary model must not be flagged degraded")
	}
	for _, st := range p.Breakers() {
		if st.Open {
			t.Errorf("breaker %q still open after recovery", st.Key)
		}
	}
}

func TestPredictorWarmIsStrict(t *testing.T) {
	db := robustCampaign(t)
	p := NewPredictor(db)
	p.SetFitHook(func(info FitInfo) error {
		if info.Fallback {
			return nil
		}
		return errors.New("killed")
	})
	if err := p.Warm(context.Background(), []UC1Config{robustConfig()}, nil); !errors.Is(err, ErrFitFailed) {
		t.Errorf("Warm must surface fit failures, not fall back: err = %v", err)
	}
}
