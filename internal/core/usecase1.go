package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cv"
	"repro/internal/distrep"
	"repro/internal/features"
	"repro/internal/measure"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/modelstore"
	"repro/internal/randx"
	"repro/internal/stats"
)

// UC1Config parameterizes use case 1: predicting an application's
// distribution on a system from a few runs on that system.
type UC1Config struct {
	// Rep selects the distribution representation.
	Rep distrep.Kind
	// Model selects the prediction model.
	Model Model
	// NumSamples is the number of runs the profile is built from (the
	// paper sweeps 1..100 in Figure 6 and uses 10 elsewhere).
	NumSamples int
	// Bins is the histogram bin count (0 = default).
	Bins int
	// Seed drives all stochastic components.
	Seed uint64
	// FeatureMeanOnly restricts profiles to per-metric means (the
	// feature-moments ablation).
	FeatureMeanOnly bool
	// Repair enables winsorize-style counter repair during ingest
	// validation (measure.ValidationPolicy.Repair): runs whose only
	// defect is a corrupt counter value are repaired by median
	// imputation instead of quarantined.
	Repair bool
	// Models tunes model hyperparameters (ablations).
	Models ModelOptions
}

func (c UC1Config) String() string {
	rep, _ := newRepresentation(c.Rep, c.Bins)
	return fmt.Sprintf("UC1{rep=%s model=%s samples=%d}", rep.Name(), c.Model, c.NumSamples)
}

// uc1Data is the assembled learning problem for one system.
type uc1Data struct {
	dataset *ml.Dataset
	rep     distrep.Representation
	// rel holds each benchmark's measured relative times (the 1,000-run
	// ground truth), aligned with dataset rows.
	rel [][]float64
	ids []string
	// quarantine holds the ingest-validation reports per system name
	// (UC2 datasets carry both the source and target systems).
	quarantine map[string][]measure.BenchmarkQuarantine
	// unusable lists benchmarks excluded from the dataset because
	// validation left them without enough clean data; requests for them
	// error with ErrBenchmarkQuarantined instead of training on dirt.
	unusable map[string]bool

	// fpOnce/fp lazily cache the model store's dataset fingerprint; the
	// dataset is immutable once assembled, so one hash serves every
	// model keyed off it.
	fpOnce sync.Once
	fp     uint64
}

// fingerprint returns the content-address fingerprint of the assembled
// dataset, computed on first use.
func (d *uc1Data) fingerprint() uint64 {
	d.fpOnce.Do(func() { d.fp = modelstore.FingerprintDataset(d.dataset) })
	return d.fp
}

// buildUC1 assembles profiles (from the first NumSamples valid probe
// runs) and targets (representation encodings of the measured
// distributions). Every run passes ingest validation first: corrupt
// runs are quarantined per benchmark, benchmarks left without enough
// clean data are excluded (and recorded in unusable), and on a fully
// clean database the assembled problem is bit-identical to validating
// nothing.
func buildUC1(sd *measure.SystemData, cfg UC1Config) (*uc1Data, error) {
	if cfg.NumSamples < 1 {
		return nil, fmt.Errorf("core: NumSamples must be >= 1, got %d", cfg.NumSamples)
	}
	rep, err := newRepresentation(cfg.Rep, cfg.Bins)
	if err != nil {
		return nil, err
	}
	clean, reports := sd.Validate(0, 0, measure.ValidationPolicy{Repair: cfg.Repair})
	d := &uc1Data{
		rep:        rep,
		dataset:    &ml.Dataset{},
		quarantine: map[string][]measure.BenchmarkQuarantine{sd.SystemName: reports},
		unusable:   map[string]bool{},
	}
	for i := range clean.Benchmarks {
		b := &clean.Benchmarks[i]
		id := b.Workload.ID()
		// The sample budget is checked against the campaign's raw probe
		// count: exceeding it is a configuration error, not a data one.
		if cfg.NumSamples > len(sd.Benchmarks[i].ProbeRuns) {
			return nil, fmt.Errorf("core: NumSamples=%d exceeds %d probe runs of %s",
				cfg.NumSamples, len(sd.Benchmarks[i].ProbeRuns), id)
		}
		if reports[i].Unusable {
			d.unusable[id] = true
			continue
		}
		window := cfg.NumSamples
		if window > len(b.ProbeRuns) {
			// Quarantine shrank the probe set below the budget: build the
			// profile from every surviving probe run rather than failing.
			window = len(b.ProbeRuns)
		}
		probe := b.ProbeRuns[:window]
		var prof *features.Profile
		if cfg.FeatureMeanOnly {
			prof, err = features.MeanOnly(probe, sd.MetricNames)
		} else {
			prof, err = features.FromRuns(probe, sd.MetricNames)
		}
		if err != nil {
			return nil, fmt.Errorf("core: profile of %s: %w", id, err)
		}
		rel := b.RelTimes()
		d.dataset.X = append(d.dataset.X, prof.Values)
		d.dataset.Y = append(d.dataset.Y, rep.Encode(rel))
		d.rel = append(d.rel, rel)
		d.ids = append(d.ids, id)
		if d.dataset.FeatureNames == nil {
			d.dataset.FeatureNames = prof.Names
		}
	}
	if len(d.ids) < 2 {
		return nil, fmt.Errorf("core: system %s has %d usable benchmarks after ingest validation quarantined %d: %w",
			sd.SystemName, len(d.ids), len(d.unusable), ErrBenchmarkQuarantined)
	}
	if err := d.dataset.Validate(); err != nil {
		return nil, fmt.Errorf("core: UC1 dataset: %w", err)
	}
	return d, nil
}

// EvaluateUC1 runs leave-one-benchmark-out cross-validation of use
// case 1 on one system's measurements and returns per-benchmark scores
// in benchmark order.
func EvaluateUC1(sd *measure.SystemData, cfg UC1Config) ([]BenchScore, error) {
	data, err := buildUC1(sd, cfg)
	if err != nil {
		return nil, err
	}
	return evaluateLOGO(data.dataset, data.rel, data.ids, data.rep, cfg.Model, cfg.Models, cfg.Seed)
}

// PredictUC1 predicts the distribution of one benchmark from its few-run
// profile, training on all other benchmarks (the deployment scenario and
// the source of the paper's Figure 1(f) and Figure 5 overlays). It
// returns the predicted and measured relative-time samples.
func PredictUC1(sd *measure.SystemData, benchmarkID string, cfg UC1Config) (predicted, actual []float64, err error) {
	data, err := buildUC1(sd, cfg)
	if err != nil {
		return nil, nil, err
	}
	if data.unusable[benchmarkID] {
		return nil, nil, fmt.Errorf("core: %w: %q has no usable validated data", ErrBenchmarkQuarantined, benchmarkID)
	}
	return predictHoldout(data.dataset, data.rel, data.ids, data.rep, benchmarkID, cfg.Model, cfg.Models, cfg.Seed)
}

// FoldError records one cross-validation fold that failed during a
// tolerant evaluation.
type FoldError struct {
	// Benchmark is the held-out benchmark of the failed fold.
	Benchmark string
	// Err is the fold's fit or prediction error.
	Err error
}

// EvaluateUC1Tolerant is EvaluateUC1 for dirty campaigns: per-fold fit
// failures are collected and reported instead of aborting the whole
// evaluation, so a single poisoned fold costs one score, not the
// sweep. Scores cover only the folds that succeeded.
func EvaluateUC1Tolerant(sd *measure.SystemData, cfg UC1Config) ([]BenchScore, []FoldError, error) {
	data, err := buildUC1(sd, cfg)
	if err != nil {
		return nil, nil, err
	}
	return evaluateLOGOTolerant(data.dataset, data.rel, data.ids, data.rep, cfg.Model, cfg.Models, cfg.Seed)
}

// evaluateLOGO is the shared LOGO evaluation loop for both use cases.
func evaluateLOGO(dataset *ml.Dataset, rel [][]float64, ids []string,
	rep distrep.Representation, model Model, opts ModelOptions, seed uint64) ([]BenchScore, error) {

	splits, err := cv.LeaveOneGroupOut(ids)
	if err != nil {
		return nil, err
	}
	// Pre-derive one RNG per fold so parallel evaluation stays
	// deterministic.
	root := randx.New(seed)
	rngs := make([]*randx.RNG, len(splits))
	seeds := make([]uint64, len(splits))
	for i := range splits {
		rngs[i] = root.Split()
		seeds[i] = seed + uint64(i)*0x9E3779B97F4A7C15
	}
	scores := make([]BenchScore, len(splits))
	idx := make(map[string]int, len(splits))
	for i, s := range splits {
		idx[s.Group] = i
	}
	//lint:allow ctxflow LOGO evaluation is a synchronous CLI workload; the fold pool owns its lifetime and no caller deadline exists
	_, err = cv.EvaluateParallel(context.Background(), splits, func(split cv.Split) ([]float64, error) {
		i := idx[split.Group]
		reg, err := newModel(model, seeds[i], opts)
		if err != nil {
			return nil, err
		}
		if err := reg.Fit(dataset.Subset(split.Train)); err != nil {
			return nil, err
		}
		test := split.Test[0]
	//lint:allow ctxflow per-fold batch predict in a synchronous CLI evaluation; no caller deadline exists to propagate
		predVec := ml.PredictBatch(context.Background(), reg, [][]float64{dataset.X[test]})[0]
		actualRel := rel[test]
		predRel := rep.Decode(predVec, len(actualRel), rngs[i])
		scores[i] = score(split.Group, predRel, actualRel)
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// evaluateLOGOTolerant mirrors evaluateLOGO but tolerates per-fold
// failures: every fold runs, failed folds come back as FoldErrors, and
// scores cover the survivors only. Successful folds score identically
// to evaluateLOGO (same pre-split RNG streams and per-fold seeds).
func evaluateLOGOTolerant(dataset *ml.Dataset, rel [][]float64, ids []string,
	rep distrep.Representation, model Model, opts ModelOptions, seed uint64) ([]BenchScore, []FoldError, error) {

	splits, err := cv.LeaveOneGroupOut(ids)
	if err != nil {
		return nil, nil, err
	}
	root := randx.New(seed)
	rngs := make([]*randx.RNG, len(splits))
	seeds := make([]uint64, len(splits))
	for i := range splits {
		rngs[i] = root.Split()
		seeds[i] = seed + uint64(i)*0x9E3779B97F4A7C15
	}
	scores := make([]BenchScore, len(splits))
	ok := make([]bool, len(splits))
	idx := make(map[string]int, len(splits))
	for i, s := range splits {
		idx[s.Group] = i
	}
	//lint:allow ctxflow LOGO evaluation is a synchronous CLI workload; the fold pool owns its lifetime and no caller deadline exists
	results := cv.EvaluateTolerant(context.Background(), splits, func(split cv.Split) ([]float64, error) {
		i := idx[split.Group]
		reg, err := newModel(model, seeds[i], opts)
		if err != nil {
			return nil, err
		}
		if err := reg.Fit(dataset.Subset(split.Train)); err != nil {
			return nil, err
		}
		test := split.Test[0]
	//lint:allow ctxflow per-fold batch predict in a synchronous CLI evaluation; no caller deadline exists to propagate
		predVec := ml.PredictBatch(context.Background(), reg, [][]float64{dataset.X[test]})[0]
		actualRel := rel[test]
		predRel := rep.Decode(predVec, len(actualRel), rngs[i])
		scores[i] = score(split.Group, predRel, actualRel)
		ok[i] = true
		return nil, nil
	})
	var kept []BenchScore
	var failed []FoldError
	for i, r := range results {
		switch {
		case r.Err != nil:
			failed = append(failed, FoldError{Benchmark: r.Group, Err: r.Err})
		case ok[i]:
			kept = append(kept, scores[i])
		}
	}
	return kept, failed, nil
}

// predictHoldout trains on every benchmark except benchmarkID and
// predicts its distribution.
func predictHoldout(dataset *ml.Dataset, rel [][]float64, ids []string,
	rep distrep.Representation, benchmarkID string, model Model, opts ModelOptions, seed uint64) (predicted, actual []float64, err error) {

	test := -1
	var train []int
	for i, id := range ids {
		if id == benchmarkID {
			test = i
		} else {
			train = append(train, i)
		}
	}
	if test < 0 {
		return nil, nil, fmt.Errorf("core: %w %q (not in dataset)", ErrUnknownBenchmark, benchmarkID)
	}
	reg, err := newModel(model, seed, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := reg.Fit(dataset.Subset(train)); err != nil {
		return nil, nil, err
	}
	predVec := reg.Predict(dataset.X[test])
	actual = rel[test]
	predicted = rep.Decode(predVec, len(actual), randx.New(seed^0xD1B54A32D192ED03))
	return predicted, actual, nil
}

// score computes the per-benchmark accuracy record.
func score(id string, predRel, actualRel []float64) BenchScore {
	return BenchScore{
		Benchmark:      id,
		KS:             stats.KSStatistic(predRel, actualRel),
		W1:             stats.Wasserstein1(predRel, actualRel),
		AD:             stats.AndersonDarling(predRel, actualRel),
		CvM:            stats.CramerVonMises(predRel, actualRel),
		Energy:         stats.EnergyDistance(predRel, actualRel),
		PredictedModes: stats.NewKDE(predRel).CountModes(512, 0.1),
		ActualModes:    stats.NewKDE(actualRel).CountModes(512, 0.1),
	}
}

// FeatureImportanceUC1 trains a random forest on the full use-case-1
// dataset (no hold-out) and returns the per-feature gain importances
// with their feature names — the "which metrics drive the prediction"
// analysis behind cmd/varimportance.
func FeatureImportanceUC1(sd *measure.SystemData, cfg UC1Config) (names []string, importance []float64, err error) {
	data, err := buildUC1(sd, cfg)
	if err != nil {
		return nil, nil, err
	}
	trees := cfg.Models.ForestTrees
	if trees <= 0 {
		trees = 100
	}
	f := forest.New(forest.Config{NumTrees: trees, Seed: cfg.Seed})
	if err := f.Fit(data.dataset); err != nil {
		return nil, nil, err
	}
	return data.dataset.FeatureNames, f.FeatureImportance(), nil
}
