package core

import (
	"fmt"

	"repro/internal/distrep"
	"repro/internal/features"
	"repro/internal/measure"
	"repro/internal/ml"
)

// UC2Config parameterizes use case 2: predicting an application's
// distribution on a target system from its profile and measured
// distribution on a source system.
type UC2Config struct {
	// Rep selects the distribution representation (used both for the
	// input-side encoding of the source distribution and for the
	// predicted target distribution).
	Rep distrep.Kind
	// Model selects the prediction model.
	Model Model
	// Bins is the histogram bin count (0 = default).
	Bins int
	// ProfileRuns is the number of source-system runs the profile part
	// of the input is built from (default 100; the source distribution
	// itself is encoded from all measured runs).
	ProfileRuns int
	// Seed drives all stochastic components.
	Seed uint64
	// Repair enables winsorize-style counter repair during ingest
	// validation (measure.ValidationPolicy.Repair).
	Repair bool
	// Models tunes model hyperparameters (ablations).
	Models ModelOptions
}

func (c UC2Config) String() string {
	rep, _ := newRepresentation(c.Rep, c.Bins)
	return fmt.Sprintf("UC2{rep=%s model=%s}", rep.Name(), c.Model)
}

// buildUC2 assembles the system-to-system learning problem: inputs are
// the source-system profile concatenated with the source-system
// distribution encoding; targets are the target-system distribution
// encoding. Both systems pass ingest validation first; a benchmark must
// keep at least two valid measurement runs on each side to stay in the
// dataset (probe runs are a UC1 concern and do not gate UC2).
func buildUC2(src, dst *measure.SystemData, cfg UC2Config) (*uc1Data, error) {
	rep, err := newRepresentation(cfg.Rep, cfg.Bins)
	if err != nil {
		return nil, err
	}
	profileRuns := cfg.ProfileRuns
	if profileRuns <= 0 {
		profileRuns = 100
	}
	pol := measure.ValidationPolicy{Repair: cfg.Repair}
	cleanSrc, srcReports := src.Validate(0, 0, pol)
	cleanDst, dstReports := dst.Validate(0, 0, pol)
	d := &uc1Data{
		rep:     rep,
		dataset: &ml.Dataset{},
		quarantine: map[string][]measure.BenchmarkQuarantine{
			src.SystemName: srcReports,
			dst.SystemName: dstReports,
		},
		unusable: map[string]bool{},
	}
	dstIdx := make(map[string]int, len(cleanDst.Benchmarks))
	for i := range cleanDst.Benchmarks {
		dstIdx[cleanDst.Benchmarks[i].Workload.ID()] = i
	}
	for i := range cleanSrc.Benchmarks {
		sb := &cleanSrc.Benchmarks[i]
		id := sb.Workload.ID()
		j, ok := dstIdx[id]
		if !ok {
			return nil, fmt.Errorf("core: benchmark %s missing on target system %s", id, dst.SystemName)
		}
		db := &cleanDst.Benchmarks[j]
		if len(sb.Runs) < 2 || len(db.Runs) < 2 {
			d.unusable[id] = true
			continue
		}
		n := profileRuns
		if n > len(sb.Runs) {
			n = len(sb.Runs)
		}
		prof, err := features.FromRuns(sb.Runs[:n], src.MetricNames)
		if err != nil {
			return nil, fmt.Errorf("core: source profile of %s: %w", id, err)
		}
		srcRel := sb.RelTimes()
		input := features.Concat(prof, features.Labeled("src-dist", rep.Encode(srcRel)))
		dstRel := db.RelTimes()
		d.dataset.X = append(d.dataset.X, input.Values)
		d.dataset.Y = append(d.dataset.Y, rep.Encode(dstRel))
		d.rel = append(d.rel, dstRel)
		d.ids = append(d.ids, id)
		if d.dataset.FeatureNames == nil {
			d.dataset.FeatureNames = input.Names
		}
	}
	if len(d.ids) < 2 {
		return nil, fmt.Errorf("core: UC2 %s->%s has %d usable benchmarks after ingest validation quarantined %d: %w",
			src.SystemName, dst.SystemName, len(d.ids), len(d.unusable), ErrBenchmarkQuarantined)
	}
	if err := d.dataset.Validate(); err != nil {
		return nil, fmt.Errorf("core: UC2 dataset: %w", err)
	}
	return d, nil
}

// EvaluateUC2 runs leave-one-benchmark-out cross-validation of use
// case 2 (source system → target system) and returns per-benchmark
// scores in benchmark order.
func EvaluateUC2(src, dst *measure.SystemData, cfg UC2Config) ([]BenchScore, error) {
	data, err := buildUC2(src, dst, cfg)
	if err != nil {
		return nil, err
	}
	return evaluateLOGO(data.dataset, data.rel, data.ids, data.rep, cfg.Model, cfg.Models, cfg.Seed)
}

// PredictUC2 predicts one benchmark's distribution on the target system
// from its source-system measurements, training on all other benchmarks
// (the paper's Figure 9 overlays). It returns the predicted and measured
// target-system relative-time samples.
func PredictUC2(src, dst *measure.SystemData, benchmarkID string, cfg UC2Config) (predicted, actual []float64, err error) {
	data, err := buildUC2(src, dst, cfg)
	if err != nil {
		return nil, nil, err
	}
	if data.unusable[benchmarkID] {
		return nil, nil, fmt.Errorf("core: %w: %q has no usable validated data", ErrBenchmarkQuarantined, benchmarkID)
	}
	return predictHoldout(data.dataset, data.rel, data.ids, data.rep, benchmarkID, cfg.Model, cfg.Models, cfg.Seed)
}
