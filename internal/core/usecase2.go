package core

import (
	"fmt"

	"repro/internal/distrep"
	"repro/internal/features"
	"repro/internal/measure"
	"repro/internal/ml"
)

// UC2Config parameterizes use case 2: predicting an application's
// distribution on a target system from its profile and measured
// distribution on a source system.
type UC2Config struct {
	// Rep selects the distribution representation (used both for the
	// input-side encoding of the source distribution and for the
	// predicted target distribution).
	Rep distrep.Kind
	// Model selects the prediction model.
	Model Model
	// Bins is the histogram bin count (0 = default).
	Bins int
	// ProfileRuns is the number of source-system runs the profile part
	// of the input is built from (default 100; the source distribution
	// itself is encoded from all measured runs).
	ProfileRuns int
	// Seed drives all stochastic components.
	Seed uint64
	// Models tunes model hyperparameters (ablations).
	Models ModelOptions
}

func (c UC2Config) String() string {
	rep, _ := newRepresentation(c.Rep, c.Bins)
	return fmt.Sprintf("UC2{rep=%s model=%s}", rep.Name(), c.Model)
}

// buildUC2 assembles the system-to-system learning problem: inputs are
// the source-system profile concatenated with the source-system
// distribution encoding; targets are the target-system distribution
// encoding.
func buildUC2(src, dst *measure.SystemData, cfg UC2Config) (*uc1Data, error) {
	rep, err := newRepresentation(cfg.Rep, cfg.Bins)
	if err != nil {
		return nil, err
	}
	profileRuns := cfg.ProfileRuns
	if profileRuns <= 0 {
		profileRuns = 100
	}
	d := &uc1Data{rep: rep, dataset: &ml.Dataset{}}
	for i := range src.Benchmarks {
		sb := &src.Benchmarks[i]
		id := sb.Workload.ID()
		db, ok := dst.Find(id)
		if !ok {
			return nil, fmt.Errorf("core: benchmark %s missing on target system %s", id, dst.SystemName)
		}
		n := profileRuns
		if n > len(sb.Runs) {
			n = len(sb.Runs)
		}
		prof, err := features.FromRuns(sb.Runs[:n], src.MetricNames)
		if err != nil {
			return nil, fmt.Errorf("core: source profile of %s: %w", id, err)
		}
		srcRel := sb.RelTimes()
		input := features.Concat(prof, features.Labeled("src-dist", rep.Encode(srcRel)))
		dstRel := db.RelTimes()
		d.dataset.X = append(d.dataset.X, input.Values)
		d.dataset.Y = append(d.dataset.Y, rep.Encode(dstRel))
		d.rel = append(d.rel, dstRel)
		d.ids = append(d.ids, id)
		if d.dataset.FeatureNames == nil {
			d.dataset.FeatureNames = input.Names
		}
	}
	if err := d.dataset.Validate(); err != nil {
		return nil, fmt.Errorf("core: UC2 dataset: %w", err)
	}
	return d, nil
}

// EvaluateUC2 runs leave-one-benchmark-out cross-validation of use
// case 2 (source system → target system) and returns per-benchmark
// scores in benchmark order.
func EvaluateUC2(src, dst *measure.SystemData, cfg UC2Config) ([]BenchScore, error) {
	data, err := buildUC2(src, dst, cfg)
	if err != nil {
		return nil, err
	}
	return evaluateLOGO(data.dataset, data.rel, data.ids, data.rep, cfg.Model, cfg.Models, cfg.Seed)
}

// PredictUC2 predicts one benchmark's distribution on the target system
// from its source-system measurements, training on all other benchmarks
// (the paper's Figure 9 overlays). It returns the predicted and measured
// target-system relative-time samples.
func PredictUC2(src, dst *measure.SystemData, benchmarkID string, cfg UC2Config) (predicted, actual []float64, err error) {
	data, err := buildUC2(src, dst, cfg)
	if err != nil {
		return nil, nil, err
	}
	return predictHoldout(data.dataset, data.rel, data.ids, data.rep, benchmarkID, cfg.Model, cfg.Models, cfg.Seed)
}
