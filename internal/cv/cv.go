// Package cv provides the cross-validation splitters used by the
// paper's evaluation: leave-one-group-out (each benchmark is a group, so
// a model is always tested on an application it never saw during
// training) and k-fold, plus a parallel fold-evaluation driver.
// It replaces scikit-learn's LeaveOneGroupOut machinery.
package cv

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Split is one train/test partition of example indices.
type Split struct {
	// Group labels the held-out group (empty for k-fold splits).
	Group string
	// Train and Test hold row indices into the original dataset.
	Train, Test []int
}

// LeaveOneGroupOut returns one split per distinct group label: the split
// whose Group is g tests on every example with label g and trains on all
// others. Splits are ordered by the first appearance of each group.
func LeaveOneGroupOut(groups []string) ([]Split, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("cv: no groups")
	}
	order := make([]string, 0)
	seen := make(map[string]bool)
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			order = append(order, g)
		}
	}
	if len(order) < 2 {
		return nil, fmt.Errorf("cv: leave-one-group-out needs >= 2 groups, got %d", len(order))
	}
	splits := make([]Split, 0, len(order))
	for _, g := range order {
		var s Split
		s.Group = g
		for i, gi := range groups {
			if gi == g {
				s.Test = append(s.Test, i)
			} else {
				s.Train = append(s.Train, i)
			}
		}
		splits = append(splits, s)
	}
	return splits, nil
}

// KFold returns k contiguous-fold splits over n examples (no shuffling;
// shuffle indices beforehand if needed). Fold sizes differ by at most 1.
func KFold(n, k int) ([]Split, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("cv: need 2 <= k <= n, got k=%d n=%d", k, n)
	}
	splits := make([]Split, k)
	base := n / k
	rem := n % k
	start := 0
	for f := 0; f < k; f++ {
		size := base
		if f < rem {
			size++
		}
		end := start + size
		for i := 0; i < n; i++ {
			if i >= start && i < end {
				splits[f].Test = append(splits[f].Test, i)
			} else {
				splits[f].Train = append(splits[f].Train, i)
			}
		}
		start = end
	}
	return splits, nil
}

// Result pairs a split's group with the per-test-example outputs the
// evaluation function produced. Err is set only by EvaluateTolerant,
// for splits whose evaluation failed.
type Result struct {
	Group  string
	Values []float64
	Err    error
}

// EvaluateParallel runs eval on every split concurrently on the shared
// worker pool (at most GOMAXPROCS goroutines exist at any moment, no
// matter how many splits there are) and returns results in split order.
// eval receives the split and must return one value per test example
// (or any summary slice). The first error cancels the evaluation:
// splits that have not started are never run, and the error is returned
// once in-flight splits finish. When ctx carries an obs span, every
// fold records a "cv.fold" child span tagged with its group.
func EvaluateParallel(ctx context.Context, splits []Split, eval func(Split) ([]float64, error)) ([]Result, error) {
	results := make([]Result, len(splits))
	err := parallel.ForEach(ctx, len(splits), 0, func(ctx context.Context, i int) error {
		s := splits[i]
		_, span := obs.Start(ctx, "cv.fold")
		span.SetAttr("group", s.Group)
		defer span.End()
		vals, err := eval(s)
		if err != nil {
			return fmt.Errorf("cv: split %q: %w", s.Group, err)
		}
		results[i] = Result{Group: s.Group, Values: vals}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// EvaluateTolerant runs eval on every split concurrently like
// EvaluateParallel, but a failing split does not cancel the others:
// its error is recorded in the corresponding Result.Err and evaluation
// continues. This is the driver for robustness sweeps over dirty
// campaigns, where one poisoned fold should cost one score rather than
// the whole evaluation.
func EvaluateTolerant(ctx context.Context, splits []Split, eval func(Split) ([]float64, error)) []Result {
	results := make([]Result, len(splits))
	// The item function never returns an error and cancellation is
	// stripped from the context (only the obs span rides along), so
	// every split runs to completion.
	_ = parallel.ForEach(context.WithoutCancel(ctx), len(splits), 0, func(ctx context.Context, i int) error {
		s := splits[i]
		_, span := obs.Start(ctx, "cv.fold")
		span.SetAttr("group", s.Group)
		defer span.End()
		vals, err := eval(s)
		results[i] = Result{Group: s.Group, Values: vals, Err: err}
		return nil
	})
	return results
}

// Failures counts results carrying an error.
func Failures(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Err != nil {
			n++
		}
	}
	return n
}

// Flatten concatenates all result values, preserving split order.
func Flatten(results []Result) []float64 {
	var out []float64
	for _, r := range results {
		out = append(out, r.Values...)
	}
	return out
}

// GroupNames returns the sorted distinct group labels.
func GroupNames(groups []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}
