package cv

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func TestLeaveOneGroupOut(t *testing.T) {
	groups := []string{"a", "b", "a", "c", "b"}
	splits, err := LeaveOneGroupOut(groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	// First-appearance order: a, b, c.
	if splits[0].Group != "a" || splits[1].Group != "b" || splits[2].Group != "c" {
		t.Errorf("split order = %v %v %v", splits[0].Group, splits[1].Group, splits[2].Group)
	}
	// Split "a": test = {0, 2}, train = {1, 3, 4}.
	if fmt.Sprint(splits[0].Test) != "[0 2]" || fmt.Sprint(splits[0].Train) != "[1 3 4]" {
		t.Errorf("split a: test=%v train=%v", splits[0].Test, splits[0].Train)
	}
	// Every split partitions all indices.
	for _, s := range splits {
		all := append(append([]int(nil), s.Train...), s.Test...)
		sort.Ints(all)
		if len(all) != len(groups) {
			t.Errorf("split %q does not cover all rows: %v", s.Group, all)
		}
		for i, v := range all {
			if v != i {
				t.Errorf("split %q covers %v", s.Group, all)
				break
			}
		}
	}
}

func TestLeaveOneGroupOutErrors(t *testing.T) {
	if _, err := LeaveOneGroupOut(nil); err == nil {
		t.Error("empty groups should fail")
	}
	if _, err := LeaveOneGroupOut([]string{"x", "x"}); err == nil {
		t.Error("single group should fail")
	}
}

func TestKFold(t *testing.T) {
	splits, err := KFold(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("got %d folds", len(splits))
	}
	sizes := []int{len(splits[0].Test), len(splits[1].Test), len(splits[2].Test)}
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Errorf("test sizes %v don't cover 10", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("unbalanced folds: %v", sizes)
		}
	}
	// Test sets are disjoint.
	seen := make(map[int]bool)
	for _, s := range splits {
		for _, i := range s.Test {
			if seen[i] {
				t.Fatalf("index %d in two test folds", i)
			}
			seen[i] = true
		}
		if len(s.Train)+len(s.Test) != 10 {
			t.Errorf("fold doesn't partition: %d + %d", len(s.Train), len(s.Test))
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(5, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := KFold(3, 5); err == nil {
		t.Error("k>n should fail")
	}
}

func TestEvaluateParallelOrderAndValues(t *testing.T) {
	splits, _ := LeaveOneGroupOut([]string{"a", "b", "c", "d"})
	results, err := EvaluateParallel(context.Background(), splits, func(s Split) ([]float64, error) {
		return []float64{float64(s.Test[0])}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Group != splits[i].Group {
			t.Errorf("result %d group %q, want %q", i, r.Group, splits[i].Group)
		}
		if r.Values[0] != float64(i) {
			t.Errorf("result %d value %v", i, r.Values[0])
		}
	}
	flat := Flatten(results)
	if fmt.Sprint(flat) != "[0 1 2 3]" {
		t.Errorf("Flatten = %v", flat)
	}
}

func TestEvaluateParallelPropagatesError(t *testing.T) {
	splits, _ := KFold(6, 3)
	boom := errors.New("boom")
	_, err := EvaluateParallel(context.Background(), splits, func(s Split) ([]float64, error) {
		if s.Test[0] == 2 {
			return nil, boom
		}
		return []float64{1}, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestGroupNames(t *testing.T) {
	got := GroupNames([]string{"z", "a", "z", "m"})
	if fmt.Sprint(got) != "[a m z]" {
		t.Errorf("GroupNames = %v", got)
	}
}

// TestEvaluateParallelBoundsGoroutines is the regression test for the
// unbounded-spawn bug: the old implementation created one goroutine per
// split before the semaphore gated execution; the pool must now keep
// the goroutine count near GOMAXPROCS no matter how many splits exist.
func TestEvaluateParallelBoundsGoroutines(t *testing.T) {
	groups := make([]string, 2000)
	for i := range groups {
		groups[i] = fmt.Sprintf("g%04d", i)
	}
	splits, err := LeaveOneGroupOut(groups)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	var peak atomic.Int64
	if _, err := EvaluateParallel(context.Background(), splits, func(s Split) ([]float64, error) {
		if g := int64(runtime.NumGoroutine()); g > peak.Load() {
			peak.Store(g)
		}
		return []float64{1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > int64(base+runtime.GOMAXPROCS(0)+16) {
		t.Errorf("peak goroutines %d for 2000 splits (base %d): spawning is not bounded", got, base)
	}
}

// TestEvaluateParallelFirstErrorCancelsRemaining checks the other half
// of the rebuild: a failed split stops the evaluation instead of
// running every remaining split to completion.
func TestEvaluateParallelFirstErrorCancelsRemaining(t *testing.T) {
	groups := make([]string, 500)
	for i := range groups {
		groups[i] = fmt.Sprintf("g%04d", i)
	}
	splits, _ := LeaveOneGroupOut(groups)
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := EvaluateParallel(context.Background(), splits, func(s Split) ([]float64, error) {
		n := ran.Add(1)
		if n == 1 {
			return nil, boom
		}
		time.Sleep(100 * time.Microsecond)
		return []float64{1}, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := ran.Load(); got > 100 {
		t.Errorf("%d of 500 splits ran after the first error, want prompt cancellation", got)
	}
}

func TestEvaluateTolerantRecordsFailuresAndContinues(t *testing.T) {
	splits, err := LeaveOneGroupOut([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	results := EvaluateTolerant(context.Background(), splits, func(s Split) ([]float64, error) {
		if s.Group == "b" {
			return nil, errors.New("poisoned fold")
		}
		return []float64{float64(len(s.Test))}, nil
	})
	if len(results) != 4 {
		t.Fatalf("got %d results, want all 4 splits evaluated", len(results))
	}
	if Failures(results) != 1 {
		t.Errorf("Failures = %d, want 1", Failures(results))
	}
	for _, r := range results {
		if r.Group == "b" {
			if r.Err == nil || r.Values != nil {
				t.Errorf("failed split: %+v, want recorded error and no values", r)
			}
			continue
		}
		if r.Err != nil || len(r.Values) != 1 {
			t.Errorf("healthy split %q harmed by a sibling failure: %+v", r.Group, r)
		}
	}
	// Flatten skips the failed split's (nil) values.
	if vals := Flatten(results); len(vals) != 3 {
		t.Errorf("Flatten kept %d values, want 3", len(vals))
	}
}
