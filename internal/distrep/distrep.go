// Package distrep implements the three distribution representations the
// paper compares (Section III-B2): how a measured relative-time
// distribution is encoded as a target vector for the prediction models,
// and how a predicted vector is decoded back into a concrete sample set
// whose ECDF can be scored against the measured distribution.
//
//   - Histogram: the bins of a fixed-support histogram of relative time
//     (a discretized PDF);
//   - MaxEnt (the paper's "PyMaxEnt"): the first four moments, decoded by
//     maximum-entropy density reconstruction;
//   - PearsonRnd: the first four moments, decoded by sampling the Pearson
//     distribution with those moments (MATLAB pearsrnd).
package distrep

import (
	"fmt"

	"repro/internal/maxent"
	"repro/internal/pearson"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Kind selects a representation family.
type Kind int

// The paper's three representations, plus the Quantile extension (not
// part of the paper's comparison; see QuantileRep).
const (
	Histogram Kind = iota
	MaxEnt
	PearsonRnd
	Quantile
)

// String names the representation as the paper does.
func (k Kind) String() string {
	switch k {
	case Histogram:
		return "Histogram"
	case MaxEnt:
		return "PyMaxEnt"
	case PearsonRnd:
		return "PearsonRnd"
	case Quantile:
		return "Quantile"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the paper's representations in paper order.
func Kinds() []Kind { return []Kind{Histogram, MaxEnt, PearsonRnd} }

// KindsExtended additionally includes the Quantile extension.
func KindsExtended() []Kind { return []Kind{Histogram, MaxEnt, PearsonRnd, Quantile} }

// Representation encodes a measured relative-time sample into a target
// vector and decodes a (predicted) target vector into a sample set.
type Representation interface {
	// Name identifies the representation.
	Name() string
	// Dim is the length of the target vector.
	Dim() int
	// Encode turns a measured relative-time sample into a target vector.
	Encode(relTimes []float64) []float64
	// Decode reconstructs n relative-time samples from a (possibly
	// model-predicted, hence imperfect) target vector. Implementations
	// must tolerate out-of-range predictions and always return a usable
	// sample set.
	Decode(vec []float64, n int, rng *randx.RNG) []float64
}

// New constructs the representation of the given kind. bins applies to
// the Histogram representation only (the moment-based representations
// always have dimension 4).
func New(kind Kind, bins int) (Representation, error) {
	switch kind {
	case Histogram:
		if bins < 2 {
			return nil, fmt.Errorf("distrep: histogram needs >= 2 bins, got %d", bins)
		}
		return &HistogramRep{Lo: DefaultLo, Hi: DefaultHi, Bins: bins}, nil
	case MaxEnt:
		return &MaxEntRep{}, nil
	case PearsonRnd:
		return &PearsonRep{}, nil
	case Quantile:
		if bins < 2 {
			return nil, fmt.Errorf("distrep: quantile representation needs >= 2 quantiles, got %d", bins)
		}
		return NewQuantile(bins)
	default:
		return nil, fmt.Errorf("distrep: unknown kind %d", int(kind))
	}
}

// DefaultLo and DefaultHi bound the shared relative-time support of the
// Histogram representation. Relative times are normalized to mean 1;
// the support covers the fastest plausible runs through moderate
// stragglers, and out-of-range observations clamp to the edge bins.
const (
	DefaultLo = 0.7
	DefaultHi = 1.7
)

// DefaultBins is the bin count used in the main evaluation (the
// histogram-bin ablation sweeps it).
const DefaultBins = 50

// HistogramRep is the paper's Histogram representation.
type HistogramRep struct {
	Lo, Hi float64
	Bins   int
}

// Name implements Representation.
func (h *HistogramRep) Name() string { return fmt.Sprintf("Histogram(%d)", h.Bins) }

// Dim implements Representation.
func (h *HistogramRep) Dim() int { return h.Bins }

// Encode bins the relative times into a normalized histogram.
func (h *HistogramRep) Encode(relTimes []float64) []float64 {
	hist := stats.HistogramFromSample(relTimes, h.Lo, h.Hi, h.Bins)
	return hist.Normalized().Counts
}

// Decode treats the predicted vector as (possibly noisy) bin weights:
// negative weights are clamped to zero, and samples are drawn uniformly
// within bins. A degenerate all-zero prediction falls back to a point
// mass at relative time 1.
func (h *HistogramRep) Decode(vec []float64, n int, rng *randx.RNG) []float64 {
	if len(vec) != h.Bins {
		panic(fmt.Sprintf("distrep: histogram decode got %d weights, want %d", len(vec), h.Bins))
	}
	hist := stats.NewHistogram(h.Lo, h.Hi, h.Bins)
	var total float64
	for i, w := range vec {
		if w > 0 {
			hist.Counts[i] = w
			total += w
		}
	}
	if total <= 0 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	return hist.SampleFromWeights(n, rng.Float64)
}

// MaxEntRep is the paper's PyMaxEnt representation: the target vector is
// the four moments; decoding reconstructs the maximum-entropy density
// with those moments and samples it.
//
// Decoding follows the PyMaxEnt workflow faithfully: the density
// exp(Σ λ_j·x^j) is solved in raw relative-time coordinates on the fixed
// shared support [DefaultLo, DefaultHi] with fixed-order quadrature and
// an undamped Newton iteration (see maxent.ReconstructRaw). This is the
// regime in which the real package operates — and the regime in which it
// struggles on very narrow "needle" distributions and extreme moment
// combinations, the weakness behind PyMaxEnt's last-place violins in the
// paper's Figures 4 and 7. When the reconstruction fails to converge,
// decoding falls back to the Gaussian matching the first two moments.
type MaxEntRep struct{}

// Name implements Representation.
func (*MaxEntRep) Name() string { return "PyMaxEnt" }

// Dim implements Representation.
func (*MaxEntRep) Dim() int { return 4 }

// Encode computes the four moments of the relative times.
func (*MaxEntRep) Encode(relTimes []float64) []float64 {
	return stats.ComputeMoments4(relTimes).Vector()
}

// Decode reconstructs and samples the maximum-entropy density.
func (*MaxEntRep) Decode(vec []float64, n int, rng *randx.RNG) []float64 {
	m := pearson.ClampFeasible(stats.Moments4FromVector(vec))
	if m.Std <= 0 {
		out := make([]float64, n)
		for i := range out {
			out[i] = m.Mean
		}
		return out
	}
	d, err := maxent.ReconstructRaw(maxent.RawMomentsFromMoments4(m), DefaultLo, DefaultHi, nil)
	if err != nil {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Normal(m.Mean, m.Std)
		}
		return out
	}
	return d.Sample(n, rng.Float64)
}

// PearsonRep is the paper's PearsonRnd representation: the target vector
// is the four moments; decoding draws samples from the Pearson-system
// distribution with those moments, after clamping them into the feasible
// region (model predictions regress each moment independently and can
// land slightly outside it).
type PearsonRep struct{}

// Name implements Representation.
func (*PearsonRep) Name() string { return "PearsonRnd" }

// Dim implements Representation.
func (*PearsonRep) Dim() int { return 4 }

// Encode computes the four moments of the relative times.
func (*PearsonRep) Encode(relTimes []float64) []float64 {
	return stats.ComputeMoments4(relTimes).Vector()
}

// Decode samples the Pearson distribution with the predicted moments.
func (*PearsonRep) Decode(vec []float64, n int, rng *randx.RNG) []float64 {
	m := pearson.ClampFeasible(stats.Moments4FromVector(vec))
	d, err := pearson.New(m)
	if err != nil {
		// ClampFeasible guarantees feasibility; reaching here means the
		// moments were degenerate — fall back to a Gaussian.
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Normal(m.Mean, m.Std)
		}
		return out
	}
	return d.SampleN(rng, n)
}
