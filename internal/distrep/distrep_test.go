package distrep

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

// bimodalSample builds a bimodal relative-time-like sample with mean ~1.
func bimodalSample(rng *randx.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.65 {
			out[i] = rng.Normal(0.97, 0.01)
		} else {
			out[i] = rng.Normal(1.06, 0.015)
		}
	}
	return stats.Normalize(out)
}

func TestNewAndNames(t *testing.T) {
	for _, k := range Kinds() {
		rep, err := New(k, DefaultBins)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if rep.Name() == "" || rep.Dim() < 1 {
			t.Errorf("%v: name=%q dim=%d", k, rep.Name(), rep.Dim())
		}
	}
	if _, err := New(Histogram, 1); err == nil {
		t.Error("1-bin histogram should fail")
	}
	if _, err := New(Kind(99), 10); err == nil {
		t.Error("unknown kind should fail")
	}
	if Histogram.String() != "Histogram" || MaxEnt.String() != "PyMaxEnt" || PearsonRnd.String() != "PearsonRnd" {
		t.Error("kind names must match the paper")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestHistogramEncodeNormalized(t *testing.T) {
	rep := &HistogramRep{Lo: DefaultLo, Hi: DefaultHi, Bins: 20}
	rng := randx.New(1)
	vec := rep.Encode(bimodalSample(rng, 5000))
	if len(vec) != 20 {
		t.Fatalf("dim = %d", len(vec))
	}
	var sum float64
	for _, v := range vec {
		if v < 0 {
			t.Fatalf("negative bin weight %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("bin weights sum to %v, want 1", sum)
	}
}

func TestRoundTripAccuracy(t *testing.T) {
	// Encoding then decoding a well-behaved sample must land close in KS
	// terms; this bounds the intrinsic loss of each representation.
	rng := randx.New(2)
	sample := bimodalSample(rng, 5000)
	maxKS := map[string]float64{
		"Histogram(50)": 0.08, // bin discretization
		"PyMaxEnt":      0.40, // 4 moments cannot hold a bimodal shape
		"PearsonRnd":    0.40,
	}
	for _, k := range Kinds() {
		rep, _ := New(k, DefaultBins)
		vec := rep.Encode(sample)
		if len(vec) != rep.Dim() {
			t.Fatalf("%s: encode dim %d != Dim() %d", rep.Name(), len(vec), rep.Dim())
		}
		decoded := rep.Decode(vec, 5000, rng.Split())
		if len(decoded) != 5000 {
			t.Fatalf("%s: decoded %d samples", rep.Name(), len(decoded))
		}
		ks := stats.KSStatistic(sample, decoded)
		if ks > maxKS[rep.Name()] {
			t.Errorf("%s: round-trip KS = %v, want <= %v", rep.Name(), ks, maxKS[rep.Name()])
		}
	}
}

func TestHistogramRoundTripBeatsMomentsOnBimodal(t *testing.T) {
	// On a sharply bimodal distribution, the histogram representation's
	// round trip must beat the 4-moment representations — the structural
	// trade-off behind the paper's Figure 4 violins.
	rng := randx.New(3)
	sample := bimodalSample(rng, 6000)
	hist, _ := New(Histogram, DefaultBins)
	pear, _ := New(PearsonRnd, 0)
	ksH := stats.KSStatistic(sample, hist.Decode(hist.Encode(sample), 6000, rng.Split()))
	ksP := stats.KSStatistic(sample, pear.Decode(pear.Encode(sample), 6000, rng.Split()))
	if ksH >= ksP {
		t.Errorf("histogram round-trip KS %v not better than Pearson %v on bimodal data", ksH, ksP)
	}
}

func TestMomentRepsRoundTripUnimodal(t *testing.T) {
	// On unimodal data the moment representations should do well.
	rng := randx.New(4)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = rng.Normal(1, 0.02)
	}
	for _, k := range []Kind{MaxEnt, PearsonRnd} {
		rep, _ := New(k, 0)
		decoded := rep.Decode(rep.Encode(sample), 5000, rng.Split())
		if ks := stats.KSStatistic(sample, decoded); ks > 0.05 {
			t.Errorf("%s: unimodal round-trip KS = %v, want <= 0.05", rep.Name(), ks)
		}
	}
}

func TestHistogramDecodeHandlesNegativePredictions(t *testing.T) {
	rep := &HistogramRep{Lo: 0.7, Hi: 1.7, Bins: 5}
	vec := []float64{-0.3, 0.5, 0.5, -0.1, 0}
	out := rep.Decode(vec, 2000, randx.New(5))
	for _, v := range out {
		if v < 0.7+0.2-1e-9 || v > 0.7+0.6+1e-9 {
			t.Fatalf("sample %v outside positive-weight bins", v)
		}
	}
}

func TestHistogramDecodeDegenerateFallsBack(t *testing.T) {
	rep := &HistogramRep{Lo: 0.7, Hi: 1.7, Bins: 4}
	out := rep.Decode([]float64{-1, 0, -2, 0}, 10, randx.New(6))
	for _, v := range out {
		if v != 1 {
			t.Fatalf("fallback sample = %v, want 1", v)
		}
	}
}

func TestHistogramDecodeWrongDimPanics(t *testing.T) {
	rep := &HistogramRep{Lo: 0.7, Hi: 1.7, Bins: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rep.Decode([]float64{1, 2}, 5, randx.New(7))
}

func TestMomentDecodesHandleInfeasiblePredictions(t *testing.T) {
	// A regression model can output kurt < skew²+1; decoding must not
	// fail and must produce samples with roughly the requested mean/std.
	bad := []float64{1.0, 0.05, 2.0, 2.0} // infeasible pair
	for _, k := range []Kind{MaxEnt, PearsonRnd} {
		rep, _ := New(k, 0)
		out := rep.Decode(bad, 20000, randx.New(8))
		m := stats.ComputeMoments4(out)
		if math.Abs(m.Mean-1) > 0.02 {
			t.Errorf("%s: mean = %v, want ~1", rep.Name(), m.Mean)
		}
		if m.Std <= 0 || m.Std > 0.12 {
			t.Errorf("%s: std = %v, want near 0.05", rep.Name(), m.Std)
		}
	}
}

func TestMomentDecodesHandleNegativeStd(t *testing.T) {
	bad := []float64{1.0, -0.5, 0, 3}
	for _, k := range []Kind{MaxEnt, PearsonRnd} {
		rep, _ := New(k, 0)
		out := rep.Decode(bad, 100, randx.New(9))
		for _, v := range out {
			if math.IsNaN(v) {
				t.Fatalf("%s produced NaN", rep.Name())
			}
		}
	}
}

func TestDecodeDeterministic(t *testing.T) {
	rng := randx.New(10)
	sample := bimodalSample(rng, 2000)
	for _, k := range Kinds() {
		rep, _ := New(k, DefaultBins)
		vec := rep.Encode(sample)
		a := rep.Decode(vec, 50, randx.New(77))
		b := rep.Decode(vec, 50, randx.New(77))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: decode not deterministic", rep.Name())
			}
		}
	}
}

func TestQuantileRepRoundTrip(t *testing.T) {
	rng := randx.New(11)
	sample := bimodalSample(rng, 6000)
	rep, err := NewQuantile(40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dim() != 40 || rep.Name() == "" {
		t.Errorf("dim=%d name=%q", rep.Dim(), rep.Name())
	}
	vec := rep.Encode(sample)
	// Encoded quantiles must be sorted.
	for i := 1; i < len(vec); i++ {
		if vec[i] < vec[i-1] {
			t.Fatalf("quantiles not monotone at %d", i)
		}
	}
	decoded := rep.Decode(vec, 6000, rng.Split())
	if ks := stats.KSStatistic(sample, decoded); ks > 0.06 {
		t.Errorf("quantile round-trip KS = %v, want <= 0.06", ks)
	}
}

func TestQuantileRepRepairsNonMonotone(t *testing.T) {
	rep, _ := NewQuantile(4)
	out := rep.Decode([]float64{1.2, 0.9, 1.0, 1.1}, 500, randx.New(12))
	for _, v := range out {
		if v < 0.9 || v > 1.2 {
			t.Fatalf("sample %v outside repaired quantile range", v)
		}
	}
}

func TestQuantileRepValidation(t *testing.T) {
	if _, err := NewQuantile(1); err == nil {
		t.Error("K=1 should fail")
	}
	rep, _ := NewQuantile(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong decode dim")
		}
	}()
	rep.Decode([]float64{1}, 5, randx.New(13))
}

func TestQuantileRepBeatsMomentsOnBimodal(t *testing.T) {
	// Like the histogram, quantiles retain multimodal structure.
	rng := randx.New(14)
	sample := bimodalSample(rng, 6000)
	qr, _ := NewQuantile(DefaultBins)
	pr, _ := New(PearsonRnd, 0)
	ksQ := stats.KSStatistic(sample, qr.Decode(qr.Encode(sample), 6000, rng.Split()))
	ksP := stats.KSStatistic(sample, pr.Decode(pr.Encode(sample), 6000, rng.Split()))
	if ksQ >= ksP {
		t.Errorf("quantile round-trip KS %v not better than Pearson %v on bimodal data", ksQ, ksP)
	}
}
