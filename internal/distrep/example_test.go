package distrep_test

import (
	"fmt"

	"repro/internal/distrep"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Example walks the encode→predict→decode cycle of a distribution
// representation (here with a perfect "prediction" — the encoded vector
// itself — to show the codec mechanics).
func Example() {
	// A narrow, slightly right-skewed measured distribution.
	rng := randx.New(3)
	measured := make([]float64, 2000)
	for i := range measured {
		measured[i] = rng.Lognormal(0, 0.02)
	}
	measured = stats.Normalize(measured)

	rep, err := distrep.New(distrep.PearsonRnd, 0)
	if err != nil {
		panic(err)
	}
	target := rep.Encode(measured) // what a model would be trained to predict
	fmt.Println("target dimension:", len(target))

	decoded := rep.Decode(target, len(measured), randx.New(4))
	fmt.Printf("round-trip KS: %.2f\n", stats.KSStatistic(measured, decoded))
	// Output:
	// target dimension: 4
	// round-trip KS: 0.02
}
