package distrep

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
	"repro/internal/randx"
)

// QuantileRep is an extension representation beyond the paper's three:
// the target vector is K evenly spaced quantiles of the relative-time
// distribution, and decoding samples the piecewise-linear inverse CDF
// through them. It is motivated by the quantile-regression methodology
// the paper cites (de Oliveira et al.) and probes whether a
// nonparametric-but-compact representation can beat both the histogram
// (same information, different parameterization) and the moments.
type QuantileRep struct {
	// K is the number of quantiles (>= 2).
	K int
}

// NewQuantile returns a K-quantile representation.
func NewQuantile(k int) (*QuantileRep, error) {
	if k < 2 {
		return nil, fmt.Errorf("distrep: quantile representation needs K >= 2, got %d", k)
	}
	return &QuantileRep{K: k}, nil
}

// Name implements Representation.
func (q *QuantileRep) Name() string { return fmt.Sprintf("Quantile(%d)", q.K) }

// Dim implements Representation.
func (q *QuantileRep) Dim() int { return q.K }

// probes returns the quantile probabilities: evenly spaced, inset from
// the endpoints so the extreme order statistics (which are high-variance)
// are not targets.
func (q *QuantileRep) probes() []float64 {
	out := make([]float64, q.K)
	for i := range out {
		//lint:allow floatcheck the division runs only inside a loop over make([]float64, q.K), so K >= 1 here
		out[i] = (float64(i) + 0.5) / float64(q.K)
	}
	return out
}

// Encode computes the quantile vector of the relative times.
func (q *QuantileRep) Encode(relTimes []float64) []float64 {
	sorted := append([]float64(nil), relTimes...)
	sort.Float64s(sorted)
	out := make([]float64, q.K)
	for i, p := range q.probes() {
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		if lo >= len(sorted)-1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
	}
	return out
}

// Decode samples the piecewise-linear inverse CDF through the predicted
// quantiles. Model predictions can violate monotonicity; the vector is
// repaired by isotonic sorting first (the standard fix in quantile
// regression).
func (q *QuantileRep) Decode(vec []float64, n int, rng *randx.RNG) []float64 {
	if len(vec) != q.K {
		panic(fmt.Sprintf("distrep: quantile decode got %d values, want %d", len(vec), q.K))
	}
	qs := append([]float64(nil), vec...)
	sort.Float64s(qs) // isotonic repair
	ps := q.probes()
	out := make([]float64, n)
	for i := range out {
		out[i] = numeric.LinearInterp(ps, qs, rng.Float64())
	}
	return out
}
