// Package drift closes the loop between streaming measurement ingest
// and model freshness: it owns a bounded per-cell ring window of
// validated runs appended by POST /v1/measurements, compares the
// window against the training-time distribution with the in-house
// two-sample KS statistic (significance-gated by its p-value) and
// 1-Wasserstein distance, and — after K consecutive breaching
// evaluations (hysteresis, so one noisy batch never flaps a model) —
// dispatches a bounded-concurrency background refit that merges the
// window into the training set and swaps the serving model without
// ever blocking the request path. Failed refits back off with
// deterministic jitter and leave the stale model serving through the
// predictor's existing degraded fallback chain.
//
// Everything is deterministic under test: time flows through an
// injected randx.Clock, jitter through a seed-derived per-cell RNG,
// and refit completion is observable via Manager.Wait.
package drift
