package drift

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Key identifies one ingest cell: the (system, benchmark) pair whose
// measurement stream is windowed and drift-checked independently.
type Key struct {
	System    string
	Benchmark string
}

// String renders the cell the way gauges and spans name it.
func (k Key) String() string { return k.System + "/" + k.Benchmark }

// Config tunes the detector and refit loop. The zero value selects
// the defaults documented on each field.
type Config struct {
	// WindowSize is the per-cell ring capacity (default 256). Once
	// full, the oldest surviving run is evicted per append.
	WindowSize int
	// MinWindow is the fill below which the detector stays silent
	// (default 32): tiny windows make the KS statistic meaningless.
	MinWindow int
	// KSThreshold is the KS distance that counts as a breach
	// (default 0.25), gated by PValueAlpha so sampling noise on small
	// windows cannot breach on distance alone.
	KSThreshold float64
	// PValueAlpha is the KS significance gate (default 0.01): a
	// breach requires KSPValue <= alpha as well as the distance.
	PValueAlpha float64
	// Hysteresis is the number of consecutive breaching evaluations
	// required to trip a cell (default 3).
	Hysteresis int
	// RefitWorkers bounds concurrent background refits (default 2).
	RefitWorkers int
	// RefitQueue bounds cells waiting for a refit slot (default 16);
	// past it new trips are shed (counted) and retried on a later
	// ingest evaluation.
	RefitQueue int
	// BaseBackoff is the delay before retrying a failed refit
	// (default 1s), doubling per failure up to MaxBackoff (default
	// 2m), always with deterministic seed-derived jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxMerged caps the merged training set a refit hands to the
	// refit hook (default 8192, newest runs win).
	MaxMerged int
	// Seed drives the per-cell backoff jitter (default 1).
	Seed uint64
	// Policy is the quarantine policy applied to ingested batches.
	Policy measure.ValidationPolicy
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 256
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 32
	}
	if c.MinWindow > c.WindowSize {
		c.MinWindow = c.WindowSize
	}
	if c.KSThreshold <= 0 {
		c.KSThreshold = 0.25
	}
	if c.PValueAlpha <= 0 {
		c.PValueAlpha = 0.01
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.RefitWorkers <= 0 {
		c.RefitWorkers = 2
	}
	if c.RefitQueue <= 0 {
		c.RefitQueue = 16
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Minute
	}
	if c.MaxMerged <= 0 {
		c.MaxMerged = 8192
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RefitFunc performs one background refit: merged is the training
// baseline plus the drifted window (newest last, already capped). A
// nil error means the serving model now reflects merged; the manager
// then promotes merged to the cell's new baseline and clears the
// window. An error leaves all cell state untouched apart from the
// backoff, so the retry re-merges the identical data (the hook must
// therefore be idempotent on its own side effects).
type RefitFunc func(ctx context.Context, key Key, merged []perfsim.Run) error

// Hooks are the manager's environment: everything that belongs to the
// embedding server rather than the detector itself.
type Hooks struct {
	// Clock is the time source (default randx.SystemClock). Tests
	// install a FixedClock/StepClock for deterministic backoff.
	Clock randx.Clock
	// Tracer, when set, roots one "refit.fit" trace per background
	// refit. Ingest/evaluate spans attach to the request context
	// instead and need no tracer here.
	Tracer *obs.Tracer
	// Baseline supplies a cell's training-time runs on first ingest
	// (>= 2 runs). Required.
	Baseline func(Key) ([]perfsim.Run, error)
	// Refit performs the background refit. Nil disables the refit
	// loop: cells still detect and report drift but never self-heal.
	Refit RefitFunc
}

// Manager owns every ingest cell: windows, detector state, counters,
// and the background refit queue. Safe for concurrent use.
type Manager struct {
	cfg   Config
	hooks Hooks

	mu          sync.Mutex
	cells       map[Key]*cell
	pending     []*cell
	dispatching bool
	jobs        sync.WaitGroup
}

// NewManager builds a manager; Hooks.Baseline is required.
func NewManager(cfg Config, hooks Hooks) *Manager {
	if hooks.Clock == nil {
		hooks.Clock = randx.SystemClock
	}
	return &Manager{cfg: cfg.withDefaults(), hooks: hooks, cells: map[Key]*cell{}}
}

// cell is one (system, benchmark) stream: the training baseline, the
// ring window of recent survivors, and all detector/refit state. All
// fields are guarded by mu.
type cell struct {
	key Key
	mu  sync.Mutex

	base     []perfsim.Run // training snapshot; replaced by merged set on refit success
	baseSecs []float64     // seconds of base, the detector's reference sample

	ring []perfsim.Run
	head int
	fill int

	report measure.QuarantineReport // running ingest-quarantine totals

	evals    int
	breaches int
	trips    int
	tripped  bool
	lastKS   float64
	lastW1   float64
	lastP    float64
	lastEval time.Time
	hasEval  bool

	refitting bool
	refitOK   int
	refitFail int
	refitShed int
	lastRefit time.Time
	hasRefit  bool
	backoff   time.Duration
	notBefore time.Time
	jrng      *randx.RNG
}

func (c *cell) push(r perfsim.Run) {
	if c.fill < len(c.ring) {
		c.ring[(c.head+c.fill)%len(c.ring)] = r
		c.fill++
		return
	}
	c.ring[c.head] = r
	c.head = (c.head + 1) % len(c.ring)
}

// window returns the ring contents oldest-first.
func (c *cell) window() []perfsim.Run {
	out := make([]perfsim.Run, c.fill)
	for i := 0; i < c.fill; i++ {
		out[i] = c.ring[(c.head+i)%len(c.ring)]
	}
	return out
}

// cell returns (building on first use) the stream's cell. The
// baseline hook runs outside both locks so a slow database read never
// blocks other streams.
func (m *Manager) cell(key Key) (*cell, error) {
	m.mu.Lock()
	c := m.cells[key]
	m.mu.Unlock()
	if c != nil {
		return c, nil
	}
	base, err := m.hooks.Baseline(key)
	if err != nil {
		return nil, fmt.Errorf("drift: baseline for %s: %w", key, err)
	}
	if len(base) < 2 {
		return nil, fmt.Errorf("drift: baseline for %s has %d runs, need >= 2", key, len(base))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.cells[key]; c != nil {
		return c, nil
	}
	// Jitter stream derived from the cell identity the same way the
	// fault injector derives per-stream RNGs, so backoff schedules are
	// reproducible regardless of which cells exist.
	h := fnv.New64a()
	_, _ = h.Write([]byte(key.String()))
	c = &cell{
		key:      key,
		base:     perfsim.CloneRuns(base),
		baseSecs: perfsim.Seconds(base),
		ring:     make([]perfsim.Run, m.cfg.WindowSize),
		jrng:     randx.NewPair(m.cfg.Seed^h.Sum64(), m.cfg.Seed+0x9E3779B97F4A7C15*h.Sum64()),
	}
	m.cells[key] = c
	return c, nil
}

// IngestResult reports what one batch did to its cell.
type IngestResult struct {
	// Report is this batch's quarantine outcome (not the running
	// total; see CellStatus for totals).
	Report measure.QuarantineReport
	// WindowFill is the ring fill after the append.
	WindowFill int
	// Evaluated is true once the window is past MinWindow and the
	// detector ran; KS/W1/PValue/Breaches then carry its outcome.
	Evaluated bool
	KS        float64
	W1        float64
	PValue    float64
	Breaches  int
	// Tripped reports the cell's post-evaluation drift state.
	Tripped bool
	// RefitScheduled is true when this batch queued a background
	// refit (first trip, or a backoff window expiring).
	RefitScheduled bool
}

// Ingest validates one batch for the cell, appends the survivors to
// its window, and runs the drift evaluation. Quarantined runs never
// enter the window; survivors are deep-copied so later caller
// mutation cannot reach the ring. The batch is never mutated.
func (m *Manager) Ingest(ctx context.Context, key Key, runs []perfsim.Run, nMetrics int) (*IngestResult, error) {
	c, err := m.cell(key)
	if err != nil {
		return nil, err
	}
	_, vspan := obs.Start(ctx, "ingest.validate")
	kept, rep := measure.ValidateRuns(runs, nMetrics, 0, m.cfg.Policy)
	vspan.SetAttr("cell", key.String())
	vspan.SetAttr("total", rep.Total)
	vspan.SetAttr("quarantined", rep.Quarantined)
	vspan.End()

	res := &IngestResult{Report: rep}
	now := m.hooks.Clock()
	schedule := false
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.report.Merge(rep)
		for i := range kept {
			c.push(kept[i].Clone())
		}
		res.WindowFill = c.fill
		if c.fill >= m.cfg.MinWindow {
			_, espan := obs.Start(ctx, "drift.evaluate")
			m.evaluateLocked(c, now)
			espan.SetAttr("cell", key.String())
			espan.SetAttr("ks", c.lastKS)
			espan.SetAttr("p_value", c.lastP)
			espan.SetAttr("tripped", c.tripped)
			espan.End()
			res.Evaluated = true
			res.KS, res.W1, res.PValue = c.lastKS, c.lastW1, c.lastP
			if c.tripped && !c.refitting && !now.Before(c.notBefore) && m.hooks.Refit != nil {
				c.refitting = true
				schedule = true
			}
		}
		res.Breaches = c.breaches
		res.Tripped = c.tripped
	}()
	if schedule {
	//lint:allow ctxflow refits run detached from the ingest request; their spans belong to the background drain, not the caller's trace
		res.RefitScheduled = m.enqueue(c)
	}
	return res, nil
}

// evaluateLocked runs one detector pass over the window (c.mu held):
// KS distance plus significance gate, W1 for the gauges, hysteresis
// on consecutive breaches.
func (m *Manager) evaluateLocked(c *cell, now time.Time) {
	ws := perfsim.Seconds(c.window())
	c.lastKS = stats.KSStatistic(ws, c.baseSecs)
	c.lastW1 = stats.Wasserstein1(ws, c.baseSecs)
	c.lastP = stats.KSPValue(c.lastKS, len(ws), len(c.baseSecs))
	c.evals++
	c.lastEval = now
	c.hasEval = true
	if c.lastKS >= m.cfg.KSThreshold && c.lastP <= m.cfg.PValueAlpha {
		c.breaches++
	} else {
		c.breaches = 0
	}
	if !c.tripped && c.breaches >= m.cfg.Hysteresis {
		c.tripped = true
		c.trips++
	}
}

// enqueue hands a tripped cell to the background dispatcher, shedding
// (and un-claiming) it when the queue is full.
func (m *Manager) enqueue(c *cell) bool {
	shed, start := false, false
	func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if len(m.pending) >= m.cfg.RefitQueue {
			shed = true
			return
		}
		m.pending = append(m.pending, c)
		m.jobs.Add(1)
		if !m.dispatching {
			m.dispatching = true
			start = true
		}
	}()
	if shed {
		c.mu.Lock()
		c.refitting = false
		c.refitShed++
		c.mu.Unlock()
		return false
	}
	if start {
		go m.dispatch()
	}
	return true
}

// dispatch drains the pending queue through a bounded worker pool and
// exits when the queue is empty; the next enqueue restarts it. An
// on-demand drainer instead of a resident goroutine keeps the manager
// inert (and leak-free) whenever no drift is happening.
func (m *Manager) dispatch() {
	for {
		var batch []*cell
		func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			batch = m.pending
			m.pending = nil
			if len(batch) == 0 {
				m.dispatching = false
			}
		}()
		if len(batch) == 0 {
			return
		}
		// Refit errors are absorbed into per-cell backoff state rather
		// than aborting the drain, so the pool error is always nil.
		//lint:allow ctxflow refit drain is detached background work owned by the manager, not by any ingest request
		_ = parallel.ForEach(context.Background(), len(batch), m.cfg.RefitWorkers, func(ctx context.Context, i int) error {
			m.runRefit(ctx, batch[i])
			return nil
		})
	}
}

// Wait blocks until every queued refit has finished — the test hook
// that makes "background" observable without sleeping. A refit that
// failed into backoff is finished for Wait's purposes; its retry is
// driven by a later ingest.
func (m *Manager) Wait() { m.jobs.Wait() }

// runRefit performs one background refit for a tripped cell.
func (m *Manager) runRefit(ctx context.Context, c *cell) {
	defer m.jobs.Done()
	var span *obs.Span
	if m.hooks.Tracer != nil {
		ctx, span = m.hooks.Tracer.Start(ctx, "refit.fit")
	} else {
		ctx, span = obs.Start(ctx, "refit.fit")
	}
	defer span.End()
	span.SetAttr("cell", c.key.String())
	merged := c.merged(m.cfg.MaxMerged)
	span.SetAttr("runs", len(merged))
	err := m.hooks.Refit(ctx, c.key, merged)
	now := m.hooks.Clock()
	if err != nil {
		delay := c.noteRefitFailure(now, m.cfg.BaseBackoff, m.cfg.MaxBackoff)
		span.SetAttr("error", err.Error())
		span.SetAttr("retry_after", delay.String())
		return
	}
	c.noteRefitSuccess(now, merged)
	span.SetAttr("ok", true)
}

// merged snapshots baseline+window as one training set, newest last,
// capped to limit (newest win).
func (c *cell) merged(limit int) []perfsim.Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]perfsim.Run, 0, len(c.base)+c.fill)
	out = append(out, perfsim.CloneRuns(c.base)...)
	for i := 0; i < c.fill; i++ {
		out = append(out, c.ring[(c.head+i)%len(c.ring)].Clone())
	}
	if len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// noteRefitFailure books a failed refit: double the backoff (capped),
// add deterministic jitter (up to +50%), and block retries until the
// deadline. Returns the chosen delay.
func (c *cell) noteRefitFailure(now time.Time, base, ceil time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refitting = false
	c.refitFail++
	if c.backoff <= 0 {
		c.backoff = base
	} else {
		c.backoff *= 2
		if c.backoff > ceil {
			c.backoff = ceil
		}
	}
	delay := c.backoff + time.Duration(c.jrng.Float64()*0.5*float64(c.backoff))
	c.notBefore = now.Add(delay)
	return delay
}

// noteRefitSuccess promotes the merged set to the cell's new baseline
// and resets the detector: the window has been absorbed into the
// model, so the cell is fresh again.
func (c *cell) noteRefitSuccess(now time.Time, merged []perfsim.Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refitting = false
	c.refitOK++
	c.tripped = false
	c.breaches = 0
	c.backoff = 0
	c.notBefore = time.Time{}
	c.lastRefit = now
	c.hasRefit = true
	c.base = merged
	c.baseSecs = perfsim.Seconds(merged)
	c.head, c.fill = 0, 0
}

// CellStatus is one cell's observable state, served by /v1/status and
// mirrored into the metrics registry.
type CellStatus struct {
	Cell       string
	System     string
	Benchmark  string
	WindowFill int
	WindowCap  int
	Baseline   int // runs in the current training baseline

	Ingested    int // runs examined across all batches
	Accepted    int
	Quarantined int
	Repaired    int
	ByClass     map[string]int

	Evals    int
	KS       float64
	W1       float64
	PValue   float64
	Breaches int
	Trips    int
	Tripped  bool
	HasEval  bool
	LastEval time.Time

	Refitting bool
	RefitOK   int
	RefitFail int
	RefitShed int
	HasRefit  bool
	LastRefit time.Time
	// RetryAt is the backoff deadline after a failed refit (zero when
	// no backoff is active).
	RetryAt time.Time
}

// Snapshot returns every cell's status, sorted by cell name so the
// output is deterministic.
func (m *Manager) Snapshot() []CellStatus {
	var cells []*cell
	func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		cells = make([]*cell, 0, len(m.cells))
		for _, c := range m.cells {
			cells = append(cells, c)
		}
		// Cell keys are immutable; sorting fixes the map-iteration order.
		sort.Slice(cells, func(i, j int) bool { return cells[i].key.String() < cells[j].key.String() })
	}()
	out := make([]CellStatus, 0, len(cells))
	for _, c := range cells {
		out = append(out, c.status())
	}
	return out
}

func (c *cell) status() CellStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CellStatus{
		Cell:        c.key.String(),
		System:      c.key.System,
		Benchmark:   c.key.Benchmark,
		WindowFill:  c.fill,
		WindowCap:   len(c.ring),
		Baseline:    len(c.base),
		Ingested:    c.report.Total,
		Accepted:    c.report.Kept,
		Quarantined: c.report.Quarantined,
		Repaired:    c.report.Repaired,
		Evals:       c.evals,
		KS:          c.lastKS,
		W1:          c.lastW1,
		PValue:      c.lastP,
		Breaches:    c.breaches,
		Trips:       c.trips,
		Tripped:     c.tripped,
		HasEval:     c.hasEval,
		LastEval:    c.lastEval,
		Refitting:   c.refitting,
		RefitOK:     c.refitOK,
		RefitFail:   c.refitFail,
		RefitShed:   c.refitShed,
		HasRefit:    c.hasRefit,
		LastRefit:   c.lastRefit,
		RetryAt:     c.notBefore,
	}
	if len(c.report.ByClass) > 0 {
		st.ByClass = make(map[string]int, len(c.report.ByClass))
		for class, n := range c.report.ByClass {
			st.ByClass[class] += n
		}
	}
	return st
}

// State renders a cell's one-word posture for status endpoints.
func (s *CellStatus) State() string {
	switch {
	case s.Refitting:
		return "refitting"
	case s.Tripped:
		return "drifted"
	case !s.HasEval:
		return "filling"
	default:
		return "fresh"
	}
}

// Window returns a copy of the cell's current window (test hook for
// the bit-identity property: quarantined runs never reach it).
func (m *Manager) Window(key Key) []perfsim.Run {
	m.mu.Lock()
	c := m.cells[key]
	m.mu.Unlock()
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return perfsim.CloneRuns(c.window())
}
