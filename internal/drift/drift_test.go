package drift

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/perfsim"
	"repro/internal/randx"
)

const nMetrics = 2

// sample draws n valid runs whose seconds are uniform on
// [0.9*mean, 1.1*mean] — tight enough that two samples from the same
// mean are statistically indistinguishable and two means 2x apart have
// disjoint supports.
func sample(rng *randx.RNG, n int, mean float64) []perfsim.Run {
	out := make([]perfsim.Run, n)
	for i := range out {
		out[i] = perfsim.Run{
			Seconds: mean * (0.9 + 0.2*rng.Float64()),
			Metrics: []float64{rng.Float64() * 100, rng.Float64() * 1e6},
		}
	}
	return out
}

// newTestManager builds a manager over a fixed 80-run baseline at
// mean 1.0, recording every refit call.
type refitRecorder struct {
	mu     sync.Mutex
	calls  int
	merged [][]perfsim.Run
	err    error
}

func (r *refitRecorder) refit(_ context.Context, _ Key, merged []perfsim.Run) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	r.merged = append(r.merged, merged)
	return r.err
}

func (r *refitRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func newTestManager(cfg Config, clock randx.Clock, rec *refitRecorder) *Manager {
	base := sample(randx.New(1), 80, 1.0)
	hooks := Hooks{
		Clock:    clock,
		Baseline: func(Key) ([]perfsim.Run, error) { return base, nil },
	}
	if rec != nil {
		hooks.Refit = rec.refit
	}
	return NewManager(cfg, hooks)
}

var testKey = Key{System: "intel", Benchmark: "npb/bt"}

// TestCleanStreamNeverTrips is the first detector property: a stream
// drawn from the training distribution never trips the detector or
// schedules a refit, across several stream seeds.
func TestCleanStreamNeverTrips(t *testing.T) {
	for seed := uint64(2); seed < 8; seed++ {
		rec := &refitRecorder{}
		m := newTestManager(Config{WindowSize: 64, MinWindow: 32}, randx.FixedClock(time.Unix(0, 0)), rec)
		rng := randx.New(seed)
		for batch := 0; batch < 20; batch++ {
			res, err := m.Ingest(context.Background(), testKey, sample(rng, 16, 1.0), nMetrics)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tripped || res.RefitScheduled {
				t.Fatalf("seed %d batch %d: clean stream tripped (ks=%.3f p=%.3g)", seed, batch, res.KS, res.PValue)
			}
		}
		m.Wait()
		if rec.count() != 0 {
			t.Fatalf("seed %d: clean stream caused %d refits", seed, rec.count())
		}
		st := m.Snapshot()[0]
		if st.Trips != 0 || st.RefitOK+st.RefitFail+st.RefitShed != 0 {
			t.Fatalf("seed %d: refit activity without drift: %+v", seed, st)
		}
		if st.State() != "fresh" {
			t.Errorf("seed %d: evaluated clean cell state = %q, want fresh", seed, st.State())
		}
	}
}

// TestMeanShiftTripsWithinHysteresisBound is the second property: a
// mean shift with disjoint support trips the detector on exactly the
// Hysteresis-th evaluation — no earlier (no flapping past the gate) and
// no later (no missed detections).
func TestMeanShiftTripsWithinHysteresisBound(t *testing.T) {
	const hyst = 3
	rec := &refitRecorder{}
	m := newTestManager(Config{WindowSize: 64, MinWindow: 32, Hysteresis: hyst}, randx.FixedClock(time.Unix(0, 0)), rec)
	rng := randx.New(11)
	evals := 0
	for batch := 0; batch < 8; batch++ {
		res, err := m.Ingest(context.Background(), testKey, sample(rng, 16, 2.0), nMetrics)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Evaluated {
			if res.Tripped {
				t.Fatalf("batch %d: tripped before the window reached MinWindow", batch)
			}
			continue
		}
		evals++
		if res.KS < 0.99 {
			t.Fatalf("disjoint supports must give KS ~ 1, got %.3f", res.KS)
		}
		if evals < hyst && res.Tripped {
			t.Fatalf("eval %d: tripped before %d consecutive breaches", evals, hyst)
		}
		if evals == hyst {
			if !res.Tripped || !res.RefitScheduled {
				t.Fatalf("eval %d: want trip + refit schedule, got %+v", evals, res)
			}
			break
		}
	}
	if evals != hyst {
		t.Fatalf("stream ended after %d evaluations without tripping", evals)
	}
	m.Wait()
	if rec.count() != 1 {
		t.Fatalf("refit calls = %d, want 1", rec.count())
	}
	// The merged set is baseline + full window, oldest first.
	if got, want := len(rec.merged[0]), 80+64; got != want {
		t.Errorf("merged size = %d, want %d", got, want)
	}
	st := m.Snapshot()[0]
	if st.State() != "fresh" || st.Tripped || st.RefitOK != 1 {
		t.Errorf("post-refit cell: %+v", st)
	}
	if st.WindowFill != 0 {
		t.Errorf("window not absorbed after refit: fill = %d", st.WindowFill)
	}
	if st.Baseline != 80+64 {
		t.Errorf("baseline not promoted: %d runs, want %d", st.Baseline, 80+64)
	}
}

// TestQuarantinedRunsNeverEnterWindow is the third property: a batch
// mixing valid and defective runs lands in the window as exactly the
// valid runs, bit-identical and in order — and the input batch is
// never mutated.
func TestQuarantinedRunsNeverEnterWindow(t *testing.T) {
	m := newTestManager(Config{WindowSize: 64, MinWindow: 32}, randx.FixedClock(time.Unix(0, 0)), nil)
	valid := sample(randx.New(3), 4, 1.0)
	batch := []perfsim.Run{
		valid[0],
		{Seconds: math.Inf(1), Metrics: []float64{1, 2}}, // non-finite duration
		valid[1],
		{Seconds: 1, Metrics: []float64{1}},     // truncated schema
		{Seconds: -2, Metrics: []float64{1, 2}}, // non-positive duration
		valid[2],
		{Seconds: 1, Metrics: []float64{math.Inf(1), 2}}, // non-finite counter
		{Seconds: 1, Metrics: []float64{1, 2, 3}},        // schema drift
		valid[3],
	}
	backup := perfsim.CloneRuns(batch)
	res, err := m.Ingest(context.Background(), testKey, batch, nMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Kept != 4 || res.Report.Quarantined != 5 {
		t.Fatalf("kept=%d quarantined=%d, want 4/5", res.Report.Kept, res.Report.Quarantined)
	}
	if !reflect.DeepEqual(batch, backup) {
		t.Error("Ingest mutated its input batch")
	}
	want := perfsim.CloneRuns(valid)
	window := m.Window(testKey)
	if !reflect.DeepEqual(window, want) {
		t.Fatalf("window is not bit-identical to the valid runs:\n got %+v\nwant %+v", window, want)
	}
	// Mutating the caller's runs after ingest must not reach the ring
	// (batch[0] shares its Metrics slice with valid[0], so compare
	// against the pre-mutation deep copy).
	batch[0].Metrics[0] = -1e9
	if !reflect.DeepEqual(m.Window(testKey), want) {
		t.Error("window aliases caller memory")
	}
}

// TestRefitFailureBackoffThenRecovery drives the breaker-guarded
// retry loop on a step clock: a failing refit books backoff and keeps
// the cell tripped, a later ingest past the deadline retries, and a
// succeeding retry finally absorbs the window.
func TestRefitFailureBackoffThenRecovery(t *testing.T) {
	rec := &refitRecorder{err: errors.New("drill: refit outage")}
	// 4s steps: even the doubled-and-jittered backoff (<= 3s) is always
	// expired by the time the next ingest reads the clock.
	clock := randx.StepClock(time.Unix(1000, 0), 4*time.Second)
	m := newTestManager(Config{
		WindowSize: 64, MinWindow: 32, Hysteresis: 1,
		BaseBackoff: time.Second, MaxBackoff: 4 * time.Second,
	}, clock, rec)
	rng := randx.New(17)
	res, err := m.Ingest(context.Background(), testKey, sample(rng, 32, 2.0), nMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped || !res.RefitScheduled {
		t.Fatalf("want immediate trip with hysteresis 1, got %+v", res)
	}
	m.Wait()
	st := m.Snapshot()[0]
	if st.RefitFail != 1 || st.RefitOK != 0 || !st.Tripped || st.Refitting {
		t.Fatalf("after failed refit: %+v", st)
	}
	if st.RetryAt.IsZero() {
		t.Fatal("failed refit must book a retry deadline")
	}
	if st.State() != "drifted" {
		t.Errorf("state = %q, want drifted while in backoff", st.State())
	}
	// The window survives a failed refit: the retry re-merges it.
	if st.WindowFill != 32 {
		t.Errorf("window fill = %d after failure, want 32", st.WindowFill)
	}
	// Next ingest lands past the deadline (4s steps vs <= 1.5s delay)
	// and retries; still failing, the backoff doubles.
	res, err = m.Ingest(context.Background(), testKey, sample(rng, 16, 2.0), nMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RefitScheduled {
		t.Fatalf("post-backoff ingest must reschedule the refit: %+v", res)
	}
	m.Wait()
	if st = m.Snapshot()[0]; st.RefitFail != 2 {
		t.Fatalf("refit failures = %d, want 2", st.RefitFail)
	}
	// Outage over: the next retry succeeds and resets the cell.
	rec.mu.Lock()
	rec.err = nil
	rec.mu.Unlock()
	if _, err = m.Ingest(context.Background(), testKey, sample(rng, 16, 2.0), nMetrics); err != nil {
		t.Fatal(err)
	}
	m.Wait()
	st = m.Snapshot()[0]
	if st.RefitOK != 1 || st.Tripped || st.WindowFill != 0 || !st.RetryAt.IsZero() {
		t.Fatalf("after recovery: %+v", st)
	}
	if st.State() != "fresh" {
		t.Errorf("state = %q, want fresh after recovery", st.State())
	}
}

// TestRefitQueueShed fills the refit queue with a blocked worker and
// verifies the overflow trip is shed (counted, un-claimed) rather than
// queued unboundedly, and that a shed cell can reschedule later.
func TestRefitQueueShed(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan Key, 8)
	var rec refitRecorder
	base := sample(randx.New(1), 80, 1.0)
	m := NewManager(Config{
		WindowSize: 64, MinWindow: 32, Hysteresis: 1,
		RefitWorkers: 1, RefitQueue: 1,
	}, Hooks{
		Clock:    randx.FixedClock(time.Unix(0, 0)),
		Baseline: func(Key) ([]perfsim.Run, error) { return base, nil },
		Refit: func(ctx context.Context, k Key, merged []perfsim.Run) error {
			started <- k
			<-gate
			return rec.refit(ctx, k, merged)
		},
	})
	rng := randx.New(23)
	keys := []Key{
		{System: "intel", Benchmark: "npb/a"},
		{System: "intel", Benchmark: "npb/b"},
		{System: "intel", Benchmark: "npb/c"},
	}
	// First trip occupies the single worker (blocked on the gate).
	res, err := m.Ingest(context.Background(), keys[0], sample(rng, 32, 2.0), nMetrics)
	if err != nil || !res.RefitScheduled {
		t.Fatalf("first trip: %+v, %v", res, err)
	}
	<-started // the worker is now inside the refit hook
	// Second trip queues; third finds the queue full and is shed.
	if res, err = m.Ingest(context.Background(), keys[1], sample(rng, 32, 2.0), nMetrics); err != nil || !res.RefitScheduled {
		t.Fatalf("second trip: %+v, %v", res, err)
	}
	res, err = m.Ingest(context.Background(), keys[2], sample(rng, 32, 2.0), nMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if res.RefitScheduled {
		t.Fatal("third trip must be shed, not scheduled")
	}
	close(gate)
	m.Wait()
	byCell := map[string]CellStatus{}
	for _, st := range m.Snapshot() {
		byCell[st.Cell] = st
	}
	if st := byCell[keys[2].String()]; st.RefitShed != 1 || st.RefitOK != 0 {
		t.Fatalf("shed cell: %+v", st)
	}
	if byCell[keys[0].String()].RefitOK != 1 || byCell[keys[1].String()].RefitOK != 1 {
		t.Fatalf("queued cells must refit once the worker frees: %+v", byCell)
	}
	// The shed cell is un-claimed: its next ingest reschedules.
	res, err = m.Ingest(context.Background(), keys[2], sample(rng, 16, 2.0), nMetrics)
	if err != nil || !res.RefitScheduled {
		t.Fatalf("shed cell must reschedule: %+v, %v", res, err)
	}
	m.Wait()
	if st := m.Window(keys[2]); len(st) != 0 {
		t.Errorf("shed cell window not absorbed after its refit: %d runs", len(st))
	}
}

// TestBaselineErrors covers cell construction failures: a failing
// baseline hook and a too-small baseline both surface as errors, and
// nothing is cached for the key.
func TestBaselineErrors(t *testing.T) {
	m := NewManager(Config{}, Hooks{
		Clock:    randx.FixedClock(time.Unix(0, 0)),
		Baseline: func(Key) ([]perfsim.Run, error) { return nil, errors.New("no such cell") },
	})
	if _, err := m.Ingest(context.Background(), testKey, sample(randx.New(1), 4, 1.0), nMetrics); err == nil {
		t.Fatal("failing baseline hook must fail ingest")
	}
	m = NewManager(Config{}, Hooks{
		Clock:    randx.FixedClock(time.Unix(0, 0)),
		Baseline: func(Key) ([]perfsim.Run, error) { return sample(randx.New(1), 1, 1.0), nil },
	})
	if _, err := m.Ingest(context.Background(), testKey, sample(randx.New(1), 4, 1.0), nMetrics); err == nil {
		t.Fatal("single-run baseline must be rejected")
	}
	if len(m.Snapshot()) != 0 {
		t.Error("failed cell construction must not cache a cell")
	}
}
