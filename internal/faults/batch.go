package faults

import (
	"fmt"
	"math"

	"repro/internal/perfsim"
)

// This file is the streaming counterpart of the campaign injector:
// transport-level faults of a measurement stream (POST
// /v1/measurements batches) rather than corrupt run contents. A
// collector that replays on retry duplicates runs, a fan-in of
// per-node shippers reorders them, and a connection cut mid-batch
// truncates the tail — all are normal life for an ingest path and all
// must be injectable deterministically.

// BatchConfig parameterizes streaming-batch fault injection. Each rate
// is an independent probability in [0, 1]; the zero value injects
// nothing.
type BatchConfig struct {
	// Seed drives every decision through the same per-stream FNV
	// derivation as the campaign injector: identical seeds fault
	// identical batches, independent of which other streams exist.
	Seed uint64

	// DuplicateRate is the per-run probability of a replayed
	// (duplicated) run — the at-least-once delivery failure mode.
	DuplicateRate float64
	// ReorderRate is the per-batch probability of a deterministic
	// shuffle — out-of-order arrival from a fan-in of shippers.
	ReorderRate float64
	// TruncateRate is the per-batch probability of dropping a random
	// non-empty prefix-preserving tail — a connection cut mid-batch.
	TruncateRate float64
}

func (c BatchConfig) validate() error {
	for _, r := range []float64{c.DuplicateRate, c.ReorderRate, c.TruncateRate} {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("faults: batch rate outside [0,1] in %+v", c)
		}
	}
	return nil
}

// BatchReport tallies what the batch injector actually did.
type BatchReport struct {
	// Batches is the number of batches examined; the rest count
	// affected batches (Duplicated counts duplicated runs).
	Batches    int
	Duplicated int
	Reordered  int
	Truncated  int
	// Dropped is the total number of runs cut by truncation.
	Dropped int
}

// BatchInjector applies one BatchConfig to measurement batches.
// Methods are not safe for concurrent use; callers serialize (the
// ingest handler does) or derive one injector per goroutine.
type BatchInjector struct {
	cfg    BatchConfig
	report BatchReport
}

// NewBatch returns a streaming-batch injector for the configuration.
func NewBatch(cfg BatchConfig) (*BatchInjector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &BatchInjector{cfg: cfg}, nil
}

// Report returns the accumulated tally.
func (b *BatchInjector) Report() *BatchReport { return &b.report }

// Apply returns a faulted deep copy of one batch; the input is never
// mutated. stream names the batch (e.g. "intel/npb/bt/batch/17") and,
// with the seed, fully determines the outcome. Faults compose in a
// fixed order — truncate, then duplicate, then reorder — mirroring a
// real pipeline: the wire cuts the tail, the retry layer replays, and
// the fan-in scrambles arrival order.
func (b *BatchInjector) Apply(stream string, runs []perfsim.Run) []perfsim.Run {
	rng := StreamRNG(b.cfg.Seed, stream)
	b.report.Batches++
	out := perfsim.CloneRuns(runs)
	if len(out) > 1 && rng.Float64() < b.cfg.TruncateRate {
		keep := 1 + rng.IntN(len(out)-1) // always keep a non-empty prefix
		b.report.Dropped += len(out) - keep
		b.report.Truncated++
		out = out[:keep]
	}
	if b.cfg.DuplicateRate > 0 {
		dup := make([]perfsim.Run, 0, len(out))
		for i := range out {
			dup = append(dup, out[i])
			if rng.Float64() < b.cfg.DuplicateRate {
				dup = append(dup, out[i].Clone())
				b.report.Duplicated++
			}
		}
		out = dup
	}
	if len(out) > 1 && rng.Float64() < b.cfg.ReorderRate {
		// Deterministic Fisher–Yates on the stream RNG.
		for i := len(out) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			out[i], out[j] = out[j], out[i]
		}
		b.report.Reordered++
	}
	return out
}
