package faults

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/perfsim"
)

func TestBatchConfigValidation(t *testing.T) {
	for _, cfg := range []BatchConfig{
		{DuplicateRate: -0.1},
		{ReorderRate: 1.1},
		{TruncateRate: 2},
	} {
		if _, err := NewBatch(cfg); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
	if _, err := NewBatch(BatchConfig{DuplicateRate: 1, ReorderRate: 1, TruncateRate: 1}); err != nil {
		t.Errorf("rates of exactly 1 are valid: %v", err)
	}
}

func TestBatchApplyDeterministicPerStream(t *testing.T) {
	runs := makeRuns(60)
	cfg := BatchConfig{Seed: 7, DuplicateRate: 0.3, ReorderRate: 0.5, TruncateRate: 0.4}
	a, _ := NewBatch(cfg)
	b, _ := NewBatch(cfg)
	// b faults an unrelated stream first; the target stream must come
	// out identical anyway (per-stream RNG derivation, like the
	// campaign injector).
	_ = b.Apply("amd/npb/lu/batch/0", makeRuns(25))
	const stream = "intel/npb/bt/batch/17"
	got := b.Apply(stream, runs)
	want := a.Apply(stream, runs)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("same seed+stream must fault identically regardless of other streams")
	}
	// A different seed faults differently (the lever actually works).
	c, _ := NewBatch(BatchConfig{Seed: 8, DuplicateRate: 0.3, ReorderRate: 0.5, TruncateRate: 0.4})
	if reflect.DeepEqual(c.Apply(stream, runs), want) {
		t.Error("different seeds should not produce identical faults (60-run batch)")
	}
}

func TestBatchApplyNeverMutatesInput(t *testing.T) {
	runs := makeRuns(80)
	backup := perfsim.CloneRuns(runs)
	inj, _ := NewBatch(BatchConfig{Seed: 3, DuplicateRate: 0.5, ReorderRate: 1, TruncateRate: 0.5})
	for i := 0; i < 10; i++ {
		out := inj.Apply("s/npb/bt/batch/0", runs)
		if len(out) > 0 {
			out[0].Seconds = -1
			if len(out[0].Metrics) > 0 {
				out[0].Metrics[0] = -1
			}
		}
	}
	if !reflect.DeepEqual(runs, backup) {
		t.Error("Apply mutated its input (or aliased it into the output)")
	}
}

func TestBatchTruncationKeepsNonEmptyPrefix(t *testing.T) {
	runs := makeRuns(40)
	inj, _ := NewBatch(BatchConfig{Seed: 11, TruncateRate: 1})
	for i := 0; i < 20; i++ {
		out := inj.Apply("s/npb/bt/batch/x", runs)
		if len(out) == 0 || len(out) >= len(runs) {
			t.Fatalf("truncation kept %d of %d runs, want a proper non-empty prefix", len(out), len(runs))
		}
		if !reflect.DeepEqual(out, perfsim.CloneRuns(runs[:len(out)])) {
			t.Fatal("truncation must keep a prefix, not an arbitrary subset")
		}
	}
	rep := inj.Report()
	if rep.Truncated != 20 || rep.Dropped == 0 {
		t.Errorf("report: %+v, want 20 truncated batches with dropped runs", rep)
	}
	// Single-run batches cannot be truncated to empty.
	if out := inj.Apply("s/one", runs[:1]); len(out) != 1 {
		t.Errorf("single-run batch truncated to %d runs", len(out))
	}
}

func TestBatchDuplicationCountsAndAdjacency(t *testing.T) {
	runs := makeRuns(50)
	inj, _ := NewBatch(BatchConfig{Seed: 5, DuplicateRate: 0.4})
	out := inj.Apply("s/npb/bt/batch/1", runs)
	rep := inj.Report()
	if rep.Duplicated == 0 {
		t.Fatal("rate 0.4 over 50 runs produced no duplicates")
	}
	if len(out) != len(runs)+rep.Duplicated {
		t.Errorf("output length %d != input %d + duplicated %d", len(out), len(runs), rep.Duplicated)
	}
	// Without reordering, a replay lands adjacent to its original.
	dups := 0
	for i := 1; i < len(out); i++ {
		if reflect.DeepEqual(out[i], out[i-1]) {
			dups++
		}
	}
	if dups != rep.Duplicated {
		t.Errorf("found %d adjacent replays, report says %d", dups, rep.Duplicated)
	}
}

func TestBatchReorderIsPermutation(t *testing.T) {
	runs := makeRuns(30)
	inj, _ := NewBatch(BatchConfig{Seed: 9, ReorderRate: 1})
	out := inj.Apply("s/npb/bt/batch/2", runs)
	if len(out) != len(runs) {
		t.Fatalf("reorder changed the run count: %d != %d", len(out), len(runs))
	}
	if reflect.DeepEqual(out, runs) {
		t.Error("forced reorder left a 30-run batch in order")
	}
	key := func(rs []perfsim.Run) []float64 {
		ks := perfsim.Seconds(rs)
		sort.Float64s(ks)
		return ks
	}
	if !reflect.DeepEqual(key(out), key(runs)) {
		t.Error("reorder must be a permutation (multiset of seconds changed)")
	}
	if inj.Report().Reordered != 1 {
		t.Errorf("report: %+v", inj.Report())
	}
}

func TestBatchZeroConfigIsIdentity(t *testing.T) {
	runs := makeRuns(20)
	inj, _ := NewBatch(BatchConfig{Seed: 1})
	out := inj.Apply("s/npb/bt/batch/3", runs)
	if !reflect.DeepEqual(out, runs) {
		t.Error("zero rates must pass the batch through unchanged")
	}
	if &out[0].Metrics[0] == &runs[0].Metrics[0] {
		t.Error("even the identity path must deep-copy")
	}
	rep := inj.Report()
	if rep.Batches != 1 || rep.Duplicated+rep.Reordered+rep.Truncated+rep.Dropped != 0 {
		t.Errorf("report: %+v", rep)
	}
}
