// Package faults is a deterministic, seedable fault injector for the
// measurement pipeline: it corrupts perfsim run sets — and whole
// measure.Database campaigns — on purpose, so the feature, training,
// and serving layers can be tested against dirty data instead of
// assuming every perf-counter sample is clean.
//
// The injector models the fault classes longitudinal counter-stream
// studies actually observe:
//
//   - stragglers: heavy-tail (Pareto) run-time multipliers, the
//     contaminated-duration case;
//   - dropped runs: records missing from the campaign entirely;
//   - corrupt counters: NaN, ±Inf, or negative counter totals;
//   - truncated profiles: counter vectors cut short mid-record;
//   - schema drift: counter vectors longer than the schema they were
//     supposedly written under.
//
// Every decision derives from Config.Seed hashed with the (system,
// benchmark) identity, so the same configuration corrupts the same
// runs in the same way regardless of iteration order or which subset
// of the database is injected — the property the quarantine
// determinism tests rely on. Injection never mutates its input: Inject
// returns a corrupted deep copy, and Injector.Apply copies the run set
// before touching it.
//
// The validation counterpart lives in internal/measure (ValidateRuns
// and friends): internal/core consumes only validated data, so these
// two packages together bound how much injected dirt reaches a trained
// model. The fault-rate sweep in cmd/experiments (-ext, ext6)
// quantifies exactly that.
//
// Downstream, the serving layer treats fault-induced fit failures as a
// degraded-mode trigger (breakers, stale fallbacks — see
// internal/core's Predictor), and because injection is deterministic,
// the whole failure path is replayable: the same seed produces the same
// quarantine decisions, the same breaker trips, and — with the model
// store attached — the same content addresses for the surviving models.
package faults
