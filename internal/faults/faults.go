package faults

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

// Class names one injected fault kind. The corrupt-counter classes are
// split by the value written so quarantine reports can be checked
// class-by-class.
type Class string

// The injectable fault classes.
const (
	Straggler   Class = "straggler"
	Drop        Class = "drop"
	CorruptNaN  Class = "corrupt_nan"
	CorruptInf  Class = "corrupt_inf"
	CorruptNeg  Class = "corrupt_negative"
	Truncate    Class = "truncate"
	SchemaDrift Class = "schema_drift"
)

// Config parameterizes an injection pass. Each rate is the independent
// per-run probability of that fault class; their sum must stay <= 1.
// The zero value injects nothing.
type Config struct {
	// Seed drives every injection decision. The same seed corrupts the
	// same runs in the same way, independent of iteration order.
	Seed uint64

	// StragglerRate multiplies the run time of selected runs by a
	// Pareto(StragglerAlpha) factor of at least StragglerScale —
	// contaminated durations that are finite and positive, hence
	// invisible to schema validation.
	StragglerRate float64
	// DropRate removes selected runs from the set entirely.
	DropRate float64
	// CorruptRate overwrites one counter of selected runs with NaN,
	// ±Inf, or a negated value (chosen uniformly).
	CorruptRate float64
	// TruncateRate cuts selected runs' counter vectors short.
	TruncateRate float64
	// DriftRate appends spurious extra counters to selected runs.
	DriftRate float64

	// StragglerScale is the minimum straggler multiplier (default 4).
	StragglerScale float64
	// StragglerAlpha is the Pareto tail exponent (default 1.5).
	StragglerAlpha float64

	// Systems restricts injection to the named systems (nil = all).
	Systems []string
	// SkipRuns / SkipProbes exempt the distribution-measurement runs
	// or the probe runs from injection.
	SkipRuns, SkipProbes bool
}

func (c Config) withDefaults() Config {
	if c.StragglerScale <= 1 {
		c.StragglerScale = 4
	}
	if c.StragglerAlpha <= 0 {
		c.StragglerAlpha = 1.5
	}
	return c
}

// rate returns the total per-run fault probability.
func (c Config) rate() float64 {
	return c.StragglerRate + c.DropRate + c.CorruptRate + c.TruncateRate + c.DriftRate
}

func (c Config) validate() error {
	for _, r := range []float64{c.StragglerRate, c.DropRate, c.CorruptRate, c.TruncateRate, c.DriftRate} {
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("faults: negative or NaN rate in %+v", c)
		}
	}
	if c.rate() > 1 {
		return fmt.Errorf("faults: class rates sum to %.3f > 1", c.rate())
	}
	return nil
}

// Report tallies what an injection pass actually did.
type Report struct {
	// Examined is the number of runs considered; Injected counts
	// faulted runs by class.
	Examined int
	Injected map[Class]int
	// ByBenchmark counts faulted runs per "system/suite/name" key, so
	// tests can tell exactly which benchmarks were left clean.
	ByBenchmark map[string]int
}

// Total is the number of faulted runs across classes.
func (r *Report) Total() int {
	n := 0
	for _, v := range r.Injected {
		n += v
	}
	return n
}

func (r *Report) add(bench string, class Class) {
	if r.Injected == nil {
		r.Injected = make(map[Class]int)
	}
	if r.ByBenchmark == nil {
		r.ByBenchmark = make(map[string]int)
	}
	r.Injected[class]++
	r.ByBenchmark[bench]++
}

// Injector applies one Config to run sets. Methods are not safe for
// concurrent use; derive one injector per goroutine.
type Injector struct {
	cfg    Config
	report Report
}

// New returns an injector for the configuration.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg.withDefaults()}, nil
}

// Report returns the accumulated injection tally.
func (inj *Injector) Report() *Report { return &inj.report }

// StreamRNG derives the deterministic per-stream RNG: the seed hashed
// with the stream's identity (e.g. "intel/npb/bt/runs"), so injection
// outcomes do not depend on which other streams were processed. The
// campaign injector, the streaming-batch injector, and the cluster
// simulation's per-replica latency/outage schedules all share this
// derivation, which is what lets a single scenario seed fault every
// stream identically regardless of replica count or request order.
func StreamRNG(seed uint64, stream string) *randx.RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(stream))
	return randx.NewPair(seed^h.Sum64(), seed+0x9E3779B97F4A7C15*h.Sum64())
}

// Apply returns a faulted deep copy of runs; the input is never
// mutated. stream names the run set ("system/suite/bench/runs") and,
// with the seed, fully determines which runs are faulted and how.
// benchKey labels the report entries (usually stream minus the
// trailing set name).
func (inj *Injector) Apply(stream, benchKey string, runs []perfsim.Run) []perfsim.Run {
	rng := StreamRNG(inj.cfg.Seed, stream)
	out := make([]perfsim.Run, 0, len(runs))
	c := inj.cfg
	for i := range runs {
		inj.report.Examined++
		// One classification draw per run, partitioning [0,1) into the
		// class intervals; the remainder is "clean". Class-specific
		// draws follow, so the stream stays deterministic per run.
		u := rng.Float64()
		switch {
		case u < c.DropRate:
			inj.report.add(benchKey, Drop)
			continue
		case u < c.DropRate+c.CorruptRate:
			r := runs[i].Clone()
			inj.corruptCounter(rng, benchKey, &r)
			out = append(out, r)
		case u < c.DropRate+c.CorruptRate+c.TruncateRate:
			r := runs[i].Clone()
			if len(r.Metrics) > 0 {
				r.Metrics = r.Metrics[:rng.IntN(len(r.Metrics))]
			}
			inj.report.add(benchKey, Truncate)
			out = append(out, r)
		case u < c.DropRate+c.CorruptRate+c.TruncateRate+c.DriftRate:
			r := runs[i].Clone()
			for extra := 1 + rng.IntN(2); extra > 0; extra-- {
				r.Metrics = append(r.Metrics, rng.Float64()*1e9)
			}
			inj.report.add(benchKey, SchemaDrift)
			out = append(out, r)
		case u < c.DropRate+c.CorruptRate+c.TruncateRate+c.DriftRate+c.StragglerRate:
			r := runs[i].Clone()
			r.Seconds *= c.StragglerScale * paretoFactor(rng, c.StragglerAlpha)
			inj.report.add(benchKey, Straggler)
			out = append(out, r)
		default:
			out = append(out, runs[i].Clone())
		}
	}
	return out
}

// corruptCounter overwrites one counter of r with a corrupt value.
func (inj *Injector) corruptCounter(rng *randx.RNG, benchKey string, r *perfsim.Run) {
	if len(r.Metrics) == 0 {
		inj.report.add(benchKey, CorruptNaN)
		return
	}
	m := rng.IntN(len(r.Metrics))
	switch rng.IntN(4) {
	case 0:
		r.Metrics[m] = math.NaN()
		inj.report.add(benchKey, CorruptNaN)
	case 1:
		r.Metrics[m] = math.Inf(1)
		inj.report.add(benchKey, CorruptInf)
	case 2:
		r.Metrics[m] = math.Inf(-1)
		inj.report.add(benchKey, CorruptInf)
	default:
		r.Metrics[m] = -math.Abs(r.Metrics[m]) - 1
		inj.report.add(benchKey, CorruptNeg)
	}
}

// paretoFactor draws the heavy-tail multiplier u^(-1/alpha) >= 1.
func paretoFactor(rng *randx.RNG, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	//lint:allow floatcheck Config defaulting pins StragglerAlpha to 1.5 when non-positive before any draw
	return math.Pow(u, -1/alpha)
}

// targets reports whether the configuration injects into this system.
func (c Config) targets(system string) bool {
	if len(c.Systems) == 0 {
		return true
	}
	for _, s := range c.Systems {
		if s == system {
			return true
		}
	}
	return false
}

// Inject returns a faulted deep copy of the database plus the report
// of everything that was injected. The input database is not mutated.
// Which runs are faulted depends only on cfg (seed, rates, targeting)
// and each run's (system, benchmark, set, index) identity.
func Inject(db *measure.Database, cfg Config) (*measure.Database, *Report, error) {
	inj, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	out := &measure.Database{
		Seed:                  db.Seed,
		RunsPerBenchmark:      db.RunsPerBenchmark,
		ProbeRunsPerBenchmark: db.ProbeRunsPerBenchmark,
		Systems:               make([]measure.SystemData, len(db.Systems)),
	}
	for si := range db.Systems {
		sd := &db.Systems[si]
		clone := measure.SystemData{
			SystemName:  sd.SystemName,
			MetricNames: append([]string(nil), sd.MetricNames...),
			Benchmarks:  make([]measure.BenchmarkData, len(sd.Benchmarks)),
		}
		hit := inj.cfg.targets(sd.SystemName)
		for bi := range sd.Benchmarks {
			b := &sd.Benchmarks[bi]
			key := sd.SystemName + "/" + b.Workload.ID()
			nb := measure.BenchmarkData{Workload: b.Workload}
			if hit && !inj.cfg.SkipRuns {
				nb.Runs = inj.Apply(key+"/runs", key, b.Runs)
			} else {
				nb.Runs = perfsim.CloneRuns(b.Runs)
			}
			if hit && !inj.cfg.SkipProbes {
				nb.ProbeRuns = inj.Apply(key+"/probes", key, b.ProbeRuns)
			} else {
				nb.ProbeRuns = perfsim.CloneRuns(b.ProbeRuns)
			}
			clone.Benchmarks[bi] = nb
		}
		out.Systems[si] = clone
	}
	return out, inj.Report(), nil
}
