package faults

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

// makeRuns builds n valid runs with a 3-metric schema.
func makeRuns(n int) []perfsim.Run {
	rng := randx.New(42)
	out := make([]perfsim.Run, n)
	for i := range out {
		out[i] = perfsim.Run{
			Seconds: 1 + rng.Float64(),
			Metrics: []float64{rng.Float64() * 100, rng.Float64() * 1e6, rng.Float64() * 1e3},
		}
	}
	return out
}

func makeDB(t *testing.T) *measure.Database {
	t.Helper()
	mkSystem := func(name string) measure.SystemData {
		sd := measure.SystemData{
			SystemName:  name,
			MetricNames: []string{"a", "b", "c"},
		}
		for _, bench := range []string{"bt", "lu", "cg"} {
			sd.Benchmarks = append(sd.Benchmarks, measure.BenchmarkData{
				Workload:  perfsim.Workload{Suite: "npb", Name: bench},
				Runs:      makeRuns(50),
				ProbeRuns: makeRuns(10),
			})
		}
		return sd
	}
	return &measure.Database{
		Seed: 1, RunsPerBenchmark: 50, ProbeRunsPerBenchmark: 10,
		Systems: []measure.SystemData{mkSystem("intel"), mkSystem("amd")},
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{CorruptRate: -0.1}); err == nil {
		t.Error("negative rate must be rejected")
	}
	if _, err := New(Config{CorruptRate: 0.6, DropRate: 0.6}); err == nil {
		t.Error("rates summing past 1 must be rejected")
	}
	if _, err := New(Config{CorruptRate: 0.5, DropRate: 0.5}); err != nil {
		t.Errorf("rates summing to exactly 1: %v", err)
	}
}

func TestApplyNeverMutatesInput(t *testing.T) {
	runs := makeRuns(200)
	backup := perfsim.CloneRuns(runs)
	inj, err := New(Config{Seed: 7, CorruptRate: 0.3, TruncateRate: 0.2, DropRate: 0.2, StragglerRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_ = inj.Apply("s/npb/bt/runs", "s/npb/bt", runs)
	if !reflect.DeepEqual(runs, backup) {
		t.Error("Apply mutated its input")
	}
}

func TestApplyDeterministicAndOrderIndependent(t *testing.T) {
	runs := makeRuns(300)
	cfg := Config{Seed: 99, CorruptRate: 0.1, DropRate: 0.05, TruncateRate: 0.05, DriftRate: 0.05, StragglerRate: 0.05}
	injA, _ := New(cfg)
	injB, _ := New(cfg)
	// B processes an unrelated stream first; the target stream must come
	// out identical anyway (per-stream RNG derivation).
	_ = injB.Apply("other/suite/x/runs", "other/suite/x", makeRuns(40))
	a := injA.Apply("intel/npb/bt/runs", "intel/npb/bt", runs)
	b := injB.Apply("intel/npb/bt/runs", "intel/npb/bt", runs)
	if len(a) == len(runs) {
		t.Error("expected some dropped runs at these rates")
	}
	if !equalRuns(a, b) {
		t.Error("same seed + stream must fault identically regardless of other streams")
	}
}

// equalRuns compares runs treating NaN == NaN.
func equalRuns(a, b []perfsim.Run) bool {
	if len(a) != len(b) {
		return false
	}
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	for i := range a {
		if !eq(a[i].Seconds, b[i].Seconds) || len(a[i].Metrics) != len(b[i].Metrics) {
			return false
		}
		for j := range a[i].Metrics {
			if !eq(a[i].Metrics[j], b[i].Metrics[j]) {
				return false
			}
		}
	}
	return true
}

func TestApplyClassRatesAndReport(t *testing.T) {
	runs := makeRuns(2000)
	inj, _ := New(Config{Seed: 5, CorruptRate: 0.10, TruncateRate: 0.05, DriftRate: 0.05, DropRate: 0.05, StragglerRate: 0.05})
	out := inj.Apply("s/b/x/runs", "s/b/x", runs)
	rep := inj.Report()
	if rep.Examined != 2000 {
		t.Errorf("Examined = %d", rep.Examined)
	}
	total := rep.Total()
	// ~30% fault rate over 2000 runs: expect roughly 600, loosely bounded.
	if total < 450 || total > 750 {
		t.Errorf("injected %d faults, want ~600", total)
	}
	if len(out)+rep.Injected[Drop] != 2000 {
		t.Errorf("dropped runs unaccounted: %d out + %d dropped", len(out), rep.Injected[Drop])
	}
	corrupt := rep.Injected[CorruptNaN] + rep.Injected[CorruptInf] + rep.Injected[CorruptNeg]
	if corrupt == 0 || rep.Injected[Truncate] == 0 || rep.Injected[SchemaDrift] == 0 || rep.Injected[Straggler] == 0 {
		t.Errorf("all classes should appear at these rates: %+v", rep.Injected)
	}
	if rep.ByBenchmark["s/b/x"] != total {
		t.Errorf("ByBenchmark = %v, want %d under one key", rep.ByBenchmark, total)
	}
}

func TestStragglersAreValidButSlow(t *testing.T) {
	runs := makeRuns(500)
	inj, _ := New(Config{Seed: 11, StragglerRate: 0.2, StragglerScale: 4})
	out := inj.Apply("s/b/x/runs", "s/b/x", runs)
	if len(out) != len(runs) {
		t.Fatal("stragglers must not drop runs")
	}
	slower := 0
	for i := range out {
		if out[i].Seconds > runs[i].Seconds {
			if out[i].Seconds < 4*runs[i].Seconds {
				t.Errorf("straggler multiplier below scale: %v -> %v", runs[i].Seconds, out[i].Seconds)
			}
			slower++
		}
		if cs := measure.ValidateRun(out[i], 3); len(cs) != 0 {
			t.Errorf("straggler run must stay schema-valid, got %v", cs)
		}
	}
	if slower == 0 {
		t.Error("no stragglers injected at 20% rate")
	}
}

func TestInjectTargetsSystemsAndIsDeterministic(t *testing.T) {
	db := makeDB(t)
	cfg := Config{Seed: 123, CorruptRate: 0.2, Systems: []string{"intel"}}
	f1, rep1, err := Inject(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, rep2, err := Inject(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Total() == 0 {
		t.Fatal("nothing injected")
	}
	if rep1.Total() != rep2.Total() {
		t.Errorf("same seed, different totals: %d vs %d", rep1.Total(), rep2.Total())
	}
	// The untargeted system must be byte-identical to the original.
	amd1, _ := f1.System("amd")
	amdOrig, _ := db.System("amd")
	for i := range amdOrig.Benchmarks {
		if !equalRuns(amd1.Benchmarks[i].Runs, amdOrig.Benchmarks[i].Runs) ||
			!equalRuns(amd1.Benchmarks[i].ProbeRuns, amdOrig.Benchmarks[i].ProbeRuns) {
			t.Fatal("untargeted system was touched")
		}
	}
	// Determinism run-for-run on the targeted system.
	i1, _ := f1.System("intel")
	i2, _ := f2.System("intel")
	for i := range i1.Benchmarks {
		if !equalRuns(i1.Benchmarks[i].Runs, i2.Benchmarks[i].Runs) {
			t.Fatal("same seed must corrupt identically")
		}
	}
	// And the input database was never mutated.
	intelOrig, _ := db.System("intel")
	clean := 0
	for i := range intelOrig.Benchmarks {
		for _, r := range intelOrig.Benchmarks[i].Runs {
			if len(measure.ValidateRun(r, 3)) == 0 {
				clean++
			}
		}
	}
	if clean != 3*50 {
		t.Error("Inject mutated the input database")
	}
}

func TestSkipRunsAndProbes(t *testing.T) {
	db := makeDB(t)
	f, rep, err := Inject(db, Config{Seed: 9, CorruptRate: 0.5, SkipProbes: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() == 0 {
		t.Fatal("nothing injected")
	}
	for si := range f.Systems {
		for bi := range f.Systems[si].Benchmarks {
			for _, r := range f.Systems[si].Benchmarks[bi].ProbeRuns {
				if len(measure.ValidateRun(r, 3)) != 0 {
					t.Fatal("SkipProbes must leave probe runs clean")
				}
			}
		}
	}
}
