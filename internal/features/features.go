// Package features builds the application profiles the paper feeds its
// prediction models (Section III-B1): application-independent perf
// metrics normalized per second, and — when a profile is built from
// multiple runs — the mean, standard deviation, skewness, and kurtosis
// of each normalized metric across the runs.
package features

import (
	"fmt"

	"repro/internal/perfsim"
	"repro/internal/stats"
)

// Profile is the input feature vector of one application on one system,
// together with the generated feature names (for reports and debugging).
type Profile struct {
	Values []float64
	Names  []string
}

// FromRuns builds a profile from n runs following the paper's recipe:
// each raw counter total is divided by the run's duration ("relative
// metrics normalized per second to ensure that the metrics have the
// same scale across applications"), then the first four moments of each
// normalized metric across the runs become the features. With a single
// run the std/skew/kurt moments are degenerate (0/0/3) but retained so
// the feature layout is identical for every sample count.
func FromRuns(runs []perfsim.Run, metricNames []string) (*Profile, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("features: no runs")
	}
	nm := len(metricNames)
	for i, r := range runs {
		if len(r.Metrics) != nm {
			return nil, fmt.Errorf("features: run %d has %d metrics, schema has %d", i, len(r.Metrics), nm)
		}
		if r.Seconds <= 0 {
			return nil, fmt.Errorf("features: run %d has non-positive duration %v", i, r.Seconds)
		}
	}
	p := &Profile{
		Values: make([]float64, 0, nm*4),
		Names:  make([]string, 0, nm*4),
	}
	perSec := make([]float64, len(runs))
	for m := 0; m < nm; m++ {
		for ri, r := range runs {
			perSec[ri] = r.Metrics[m] / r.Seconds
		}
		mom := stats.ComputeMoments4(perSec)
		p.Values = append(p.Values, mom.Mean, mom.Std, mom.Skew, mom.Kurt)
		p.Names = append(p.Names,
			metricNames[m]+"/sec:mean",
			metricNames[m]+"/sec:std",
			metricNames[m]+"/sec:skew",
			metricNames[m]+"/sec:kurt",
		)
	}
	return p, nil
}

// MeanOnly builds the reduced profile used by the feature-moments
// ablation: just the mean per-second value of each metric.
func MeanOnly(runs []perfsim.Run, metricNames []string) (*Profile, error) {
	full, err := FromRuns(runs, metricNames)
	if err != nil {
		return nil, err
	}
	nm := len(metricNames)
	p := &Profile{
		Values: make([]float64, nm),
		Names:  make([]string, nm),
	}
	for m := 0; m < nm; m++ {
		p.Values[m] = full.Values[m*4]
		p.Names[m] = full.Names[m*4]
	}
	return p, nil
}

// Concat joins profiles (used by use case 2 to append the source-system
// distribution representation to the source-system profile).
func Concat(profiles ...*Profile) *Profile {
	out := &Profile{}
	for _, p := range profiles {
		out.Values = append(out.Values, p.Values...)
		out.Names = append(out.Names, p.Names...)
	}
	return out
}

// Labeled wraps a raw vector as a profile with a name prefix, for
// concatenating non-metric features (e.g. distribution representations).
func Labeled(prefix string, values []float64) *Profile {
	p := &Profile{
		Values: append([]float64(nil), values...),
		Names:  make([]string, len(values)),
	}
	for i := range values {
		p.Names[i] = fmt.Sprintf("%s[%d]", prefix, i)
	}
	return p
}
