package features

import (
	"math"
	"strings"
	"testing"

	"repro/internal/perfsim"
	"repro/internal/randx"
)

func sampleRuns(t *testing.T, n int) ([]perfsim.Run, []string) {
	t.Helper()
	sys := perfsim.NewIntelSystem()
	m := perfsim.NewMachine(sys)
	w, ok := perfsim.FindWorkload("npb/cg")
	if !ok {
		t.Fatal("npb/cg missing")
	}
	return m.Bench(w).RunN(randx.New(1), n), sys.MetricNames
}

func TestFromRunsLayout(t *testing.T) {
	runs, names := sampleRuns(t, 10)
	p, err := FromRuns(runs, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != 68*4 {
		t.Fatalf("feature count = %d, want %d", len(p.Values), 68*4)
	}
	if len(p.Names) != len(p.Values) {
		t.Fatalf("names %d != values %d", len(p.Names), len(p.Values))
	}
	if !strings.HasSuffix(p.Names[0], ":mean") || !strings.HasSuffix(p.Names[3], ":kurt") {
		t.Errorf("name layout wrong: %v", p.Names[:4])
	}
	for i, v := range p.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %s = %v", p.Names[i], v)
		}
	}
}

func TestFromRunsSingleRunDegenerateMoments(t *testing.T) {
	runs, names := sampleRuns(t, 1)
	p, err := FromRuns(runs, names)
	if err != nil {
		t.Fatal(err)
	}
	// For one run: std = 0, skew = 0, kurt = 3 for every metric.
	for m := 0; m < 68; m++ {
		if p.Values[m*4+1] != 0 || p.Values[m*4+2] != 0 || p.Values[m*4+3] != 3 {
			t.Fatalf("metric %d: degenerate moments = %v", m, p.Values[m*4:m*4+4])
		}
	}
}

func TestFromRunsPerSecondNormalization(t *testing.T) {
	// Two synthetic runs with different durations but identical rates:
	// the std features must be ~0 because the per-second values agree.
	runs := []perfsim.Run{
		{Seconds: 2, Metrics: []float64{200}},
		{Seconds: 5, Metrics: []float64{500}},
	}
	p, err := FromRuns(runs, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Values[0] != 100 {
		t.Errorf("mean per-second = %v, want 100", p.Values[0])
	}
	if p.Values[1] != 0 {
		t.Errorf("std = %v, want 0 (identical rates)", p.Values[1])
	}
}

func TestFromRunsErrors(t *testing.T) {
	if _, err := FromRuns(nil, []string{"x"}); err == nil {
		t.Error("no runs should fail")
	}
	if _, err := FromRuns([]perfsim.Run{{Seconds: 1, Metrics: []float64{1, 2}}}, []string{"x"}); err == nil {
		t.Error("metric/schema mismatch should fail")
	}
	if _, err := FromRuns([]perfsim.Run{{Seconds: 0, Metrics: []float64{1}}}, []string{"x"}); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestMeanOnly(t *testing.T) {
	runs, names := sampleRuns(t, 8)
	full, _ := FromRuns(runs, names)
	mean, err := MeanOnly(runs, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean.Values) != 68 {
		t.Fatalf("mean-only feature count = %d", len(mean.Values))
	}
	for m := 0; m < 68; m++ {
		if mean.Values[m] != full.Values[m*4] {
			t.Fatalf("metric %d mean mismatch", m)
		}
	}
}

func TestConcatAndLabeled(t *testing.T) {
	a := Labeled("rep", []float64{1, 2})
	b := Labeled("extra", []float64{3})
	c := Concat(a, b)
	if len(c.Values) != 3 || c.Values[2] != 3 {
		t.Errorf("Concat values = %v", c.Values)
	}
	if c.Names[0] != "rep[0]" || c.Names[2] != "extra[0]" {
		t.Errorf("Concat names = %v", c.Names)
	}
	// Labeled must copy, not alias.
	src := []float64{9}
	l := Labeled("x", src)
	src[0] = 0
	if l.Values[0] != 9 {
		t.Error("Labeled aliased its input")
	}
}

func TestProfilesStabilizeWithMoreRuns(t *testing.T) {
	// The std of the profile's mean features across repeated samplings
	// should shrink as the number of runs grows — the mechanism behind
	// Figure 6's accuracy improvement.
	sys := perfsim.NewIntelSystem()
	m := perfsim.NewMachine(sys)
	w, _ := perfsim.FindWorkload("parsec/canneal")
	bench := m.Bench(w)
	spread := func(nRuns int) float64 {
		rng := randx.New(42)
		var vals []float64
		for trial := 0; trial < 20; trial++ {
			p, err := FromRuns(bench.RunN(rng, nRuns), sys.MetricNames)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, p.Values[4*6]) // instructions/sec:mean
		}
		var mean, variance float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		for _, v := range vals {
			variance += (v - mean) * (v - mean)
		}
		return math.Sqrt(variance / float64(len(vals)))
	}
	if s1, s25 := spread(1), spread(25); s25 >= s1 {
		t.Errorf("profile spread with 25 runs (%v) not below 1 run (%v)", s25, s1)
	}
}
