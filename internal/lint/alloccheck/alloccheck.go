package alloccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer statically enforces the zero-allocation contract on every
// function reachable from a //perf:hotpath root. It is the
// compile-time twin of the AllocsPerRun tests: the dynamic tests prove
// the pinned benchmarks allocation-free, this check proves nobody adds
// an allocating construct anywhere in the hot call graph between those
// benchmark runs.
var Analyzer = &analysis.Analyzer{
	Name:    "alloccheck",
	Version: "v1",
	Doc: "flag allocation-inducing constructs (fmt calls, string concatenation, " +
		"un-capped append growth, map/slice literals, make/new, interface boxing of " +
		"scalars, escaping closures and method values) in functions reachable from " +
		"//perf:hotpath roots; //perf:pooled functions are exempt (pool-miss cold path)",
	RunGraph: run,
}

func run(gp *analysis.GraphPass) error {
	for _, n := range gp.Graph.HotSet() {
		if n.Pooled {
			continue // pool acquisition: allocates only on the cold path
		}
		checkNode(gp, n)
	}
	return nil
}

// root names the hot root a node is reachable from, for the finding
// message.
func root(gp *analysis.GraphPass, n *callgraph.Node) string {
	chain := gp.Graph.HotChain(n)
	if len(chain) == 0 {
		return "?"
	}
	return chain[0].Name
}

// checkNode walks the node's own statements (nested literals are their
// own hot nodes) and reports every allocation-inducing construct.
func checkNode(gp *analysis.GraphPass, n *callgraph.Node) {
	body := n.Body()
	if body == nil {
		return // assembly stub or extern: nothing to inspect
	}
	info := n.Pkg.Info
	w := &walker{gp: gp, node: n, info: info, capBacked: make(map[types.Object]bool), callees: make(map[*ast.Ident]bool)}
	w.prepassCapBacked(body)
	w.walk(body, nil)
}

type walker struct {
	gp   *analysis.GraphPass
	node *callgraph.Node
	info *types.Info
	// capBacked marks slice variables whose backing provably has
	// capacity managed by the caller: carved from a slice expression
	// (pooled scratch reuse, s.buf[:0]) or make'd with an explicit cap.
	// Appends to them stay within capacity in steady state.
	capBacked map[types.Object]bool
	// callees marks identifiers consumed in callee position (pre-order),
	// so method references used as values can be told apart from calls.
	callees map[*ast.Ident]bool
	// allowedLits marks literals judged non-escaping before their
	// pre-order visit: immediately invoked, or handed to a //perf:pooled
	// dispatcher that amortizes them.
	allowedLits map[*ast.FuncLit]bool
}

// prepassCapBacked records which local slice vars are capacity-backed.
// One linear pass in source order is enough: Go requires definition
// before use within a body.
func (w *walker) prepassCapBacked(body *ast.BlockStmt) {
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.info.Defs[id]
			if obj == nil {
				obj = w.info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if w.capacityBackedExpr(ast.Unparen(rhs)) {
				w.capBacked[obj] = true
			}
		}
		return true
	})
}

// capacityBackedExpr reports whether e yields a slice whose capacity is
// already owned: a slice expression, a cap-carrying make, or an append
// to something itself capacity-backed.
func (w *walker) capacityBackedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch {
			case id.Name == "make" && len(e.Args) == 3:
				return true
			case id.Name == "append" && len(e.Args) > 0:
				return w.firstArgBacked(e)
			}
		}
	}
	return false
}

func (w *walker) firstArgBacked(call *ast.CallExpr) bool {
	first := ast.Unparen(call.Args[0])
	if _, ok := first.(*ast.SliceExpr); ok {
		return true
	}
	if id, ok := first.(*ast.Ident); ok {
		obj := w.info.Uses[id]
		return obj != nil && w.capBacked[obj]
	}
	return false
}

// walk inspects the node's own syntax; rangeStack tracks enclosing
// range statements so un-capped appends can suggest a concrete
// pre-sizing fix.
func (w *walker) walk(nd ast.Node, rangeStack []*ast.RangeStmt) {
	ast.Inspect(nd, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// The literal's body is its own hot node; here only the
			// closure value's allocation is at issue, and that was
			// already judged at its parent call site (checkCall marks
			// allowed literals before descending pre-order).
			if !w.allowedLits[x] {
				w.gp.Reportf(x.Pos(), "closure allocates on the hot path (reachable from %s): hoist it, or pass it through a //perf:pooled dispatcher like parallel.ForEach", root(w.gp, w.node))
			}
			return false
		case *ast.RangeStmt:
			// Recurse manually so the stack reflects nesting.
			if x.Key != nil {
				w.walk(x.Key, rangeStack)
			}
			if x.Value != nil {
				w.walk(x.Value, rangeStack)
			}
			w.walk(x.X, rangeStack)
			w.walk(x.Body, append(rangeStack, x))
			return false
		case *ast.CallExpr:
			w.checkCall(x, rangeStack)
		case *ast.BinaryExpr:
			w.checkStringConcat(x)
		case *ast.AssignStmt:
			w.checkAssign(x)
		case *ast.CompositeLit:
			w.checkCompositeLit(x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					w.gp.Reportf(x.Pos(), "&composite literal escapes to the heap on the hot path (reachable from %s): reuse a pooled value", root(w.gp, w.node))
					return false // the literal itself needs no second finding
				}
			}
		case *ast.SelectorExpr:
			w.checkMethodValue(x)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, rangeStack []*ast.RangeStmt) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.allow(lit) // immediately-invoked: no escaping closure value
	}
	id := callIdent(call)
	if id != nil {
		w.callees[id] = true
	}
	fn := funcOf(w.info, id)
	// fmt anywhere on a hot path allocates (boxing + buffer growth).
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		w.gp.Reportf(call.Pos(), "fmt.%s allocates on the hot path (reachable from %s): precompute the string off the hot path or drop it", fn.Name(), root(w.gp, w.node))
	}
	// Literals handed to a pooled dispatcher are amortized by the pool.
	if pooled := w.pooledCallee(fn); pooled {
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				w.allow(lit)
			}
		}
	}
	// Builtins: append growth and make/new.
	if bid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.info.Uses[bid].(*types.Builtin); isBuiltin {
			switch bid.Name {
			case "append":
				w.checkAppend(call, rangeStack)
			case "make":
				w.gp.Reportf(call.Pos(), "make allocates on the hot path (reachable from %s): hoist the buffer into pooled scratch (//perf:pooled acquisition)", root(w.gp, w.node))
			case "new":
				w.gp.Reportf(call.Pos(), "new allocates on the hot path (reachable from %s): reuse a pooled value", root(w.gp, w.node))
			}
			return
		}
	}
	w.checkBoxing(call)
}

func (w *walker) pooledCallee(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	n := w.gp.Graph.NodeOf(fn)
	return n != nil && n.Pooled
}

// checkAppend flags appends whose destination is not provably
// capacity-backed; growth reallocates and copies on the hot path.
func (w *walker) checkAppend(call *ast.CallExpr, rangeStack []*ast.RangeStmt) {
	if len(call.Args) == 0 || w.firstArgBacked(call) {
		return
	}
	dest := types.ExprString(ast.Unparen(call.Args[0]))
	fix := fmt.Sprintf("pre-size the destination (%s := make(T, 0, n) before the loop, or slice pooled scratch to [:0]) so append stays within capacity", dest)
	if len(rangeStack) > 0 {
		if over, ok := ast.Unparen(rangeStack[len(rangeStack)-1].X).(*ast.Ident); ok {
			fix = fmt.Sprintf("length is known: %s := make(T, 0, len(%s)) before the loop, then append stays within capacity", dest, over.Name)
		}
	}
	w.gp.ReportFix(call.Pos(), fix, "un-capped append to %s may grow and reallocate on the hot path (reachable from %s)", dest, root(w.gp, w.node))
}

// checkStringConcat flags non-constant string + on hot paths.
func (w *walker) checkStringConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := w.info.Types[be]
	if !ok || tv.Value != nil { // constant-folded: free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	w.gp.Reportf(be.Pos(), "string concatenation allocates on the hot path (reachable from %s): precompute or pool the buffer", root(w.gp, w.node))
}

// checkAssign flags += on strings and scalar-into-interface stores.
func (w *walker) checkAssign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t := w.info.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				w.gp.Reportf(as.Pos(), "string += allocates on the hot path (reachable from %s): precompute or pool the buffer", root(w.gp, w.node))
			}
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Rhs {
		lt, rt := w.info.TypeOf(as.Lhs[i]), w.info.TypeOf(as.Rhs[i])
		if w.boxesScalar(lt, rt, as.Rhs[i]) {
			w.gp.Reportf(as.Rhs[i].Pos(), "assignment boxes a scalar into an interface on the hot path (reachable from %s): keep the concrete type", root(w.gp, w.node))
		}
	}
}

// checkCompositeLit flags map and slice composite literals: both
// allocate their backing store. Array and struct literals are
// stack-friendly values and stay legal, as are empty slice literals —
// zero-size allocations resolve to the runtime's shared zero base and
// cost nothing.
func (w *walker) checkCompositeLit(cl *ast.CompositeLit) {
	t := w.info.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		w.gp.Reportf(cl.Pos(), "map literal allocates on the hot path (reachable from %s): hoist it to init or pooled state", root(w.gp, w.node))
	case *types.Slice:
		if len(cl.Elts) == 0 {
			return
		}
		w.gp.Reportf(cl.Pos(), "slice literal allocates on the hot path (reachable from %s): hoist it to a package var or pooled scratch", root(w.gp, w.node))
	}
}

// checkBoxing flags scalar arguments passed to interface-typed
// parameters: each one heap-boxes the value.
func (w *walker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				continue
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if w.boxesScalar(pt, w.info.TypeOf(arg), arg) {
			w.gp.Reportf(arg.Pos(), "argument boxes a scalar into an interface on the hot path (reachable from %s): avoid the any-typed parameter here", root(w.gp, w.node))
		}
	}
}

// boxesScalar reports whether storing an expression of type rt into a
// location of type lt heap-boxes a scalar: interface destination,
// basic-typed non-constant source.
func (w *walker) boxesScalar(lt, rt types.Type, rhs ast.Expr) bool {
	if lt == nil || rt == nil || !types.IsInterface(lt) {
		return false
	}
	b, ok := rt.Underlying().(*types.Basic)
	if !ok || b.Kind() == types.UntypedNil {
		return false
	}
	if tv, ok := w.info.Types[ast.Unparen(rhs)]; ok && tv.Value != nil {
		return false // constants convert to interfaces via static data
	}
	return b.Info()&(types.IsNumeric|types.IsString|types.IsBoolean) != 0
}

// checkMethodValue flags method values (x.M used as a value): each one
// allocates a bound closure. Plain function references are free.
func (w *walker) checkMethodValue(sel *ast.SelectorExpr) {
	if w.callees[sel.Sel] {
		return
	}
	fn, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return // package-qualified function reference: static, no alloc
	}
	// Only a value context allocates; selections that are part of a
	// method *expression* (T.M) have no receiver binding. The Selections
	// map tells them apart.
	if s, ok := w.info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return
	}
	w.gp.Reportf(sel.Pos(), "method value %s allocates a bound closure on the hot path (reachable from %s): call it directly or hoist the binding", types.ExprString(sel), root(w.gp, w.node))
}

func (w *walker) allow(lit *ast.FuncLit) {
	if w.allowedLits == nil {
		w.allowedLits = make(map[*ast.FuncLit]bool)
	}
	w.allowedLits[lit] = true
}

func callIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func funcOf(info *types.Info, id *ast.Ident) *types.Func {
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
