package alloccheck_test

import (
	"strings"
	"testing"

	"repro/internal/lint/alloccheck"
	"repro/internal/lint/linttest"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, alloccheck.Analyzer, "testdata/flag", "example.com/hot")
}

// TestInterfaceInheritance pins //perf:hotpath inheritance through
// interface methods: annotating the interface makes the implementation
// a root and its callees hot.
func TestInterfaceInheritance(t *testing.T) {
	linttest.Run(t, alloccheck.Analyzer, "testdata/iface", "example.com/iface")
}

// TestProvenanceInMessage pins that findings name the root they are
// reachable from, so a reader can trace why a helper is hot.
func TestProvenanceInMessage(t *testing.T) {
	diags, _ := linttest.Findings(t, alloccheck.Analyzer, "testdata/flag", "example.com/hot")
	if len(diags) == 0 {
		t.Fatal("expected findings in testdata/flag")
	}
	for _, d := range diags {
		if !strings.Contains(d, "hot.Kernel") {
			t.Errorf("finding does not carry root provenance: %s", d)
		}
	}
}
