// Package alloccheck is the static zero-allocation gate for the
// serving hot paths: every function reachable in the cross-package call
// graph from a //perf:hotpath root (the flattened tree/forest/xgb/knn
// kernels behind ml.BatchIntoPredictor) is checked for
// allocation-inducing constructs — fmt calls, string concatenation,
// un-capped append growth, map/slice literals, make/new, interface
// boxing of scalars, escaping closures and method values.
//
// //perf:pooled functions (sync.Pool acquisition, the bounded worker
// pool) are exempt and stop hotness propagation: their allocations run
// only on the cold pool-miss path. Closure literals handed directly to
// a pooled dispatcher (parallel.ForEach) are likewise accepted — the
// pool amortizes them, which is what the AllocsPerRun tests' small
// slack measures.
//
// The check is the compile-time twin of the dynamic AllocsPerRun tests
// (DESIGN.md §9 holds the dynamic contract, §11 this static one): the
// benchmarks prove the pinned kernels allocation-free today, alloccheck
// proves no PR adds an allocating construct anywhere in the hot call
// graph without a reasoned //lint:allow.
//
// Findings are suppressed with `//lint:allow alloccheck <reason>` on
// the finding's line or the line above.
package alloccheck
