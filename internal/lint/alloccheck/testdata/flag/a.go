// Package hot exercises alloccheck: allocation-inducing constructs are
// flagged only inside the //perf:hotpath-reachable set; //perf:pooled
// functions, closures handed to pooled dispatchers, and
// capacity-backed appends stay clean; cold functions allocate freely.
package hot

import "fmt"

// Sink is an interface-typed destination for the boxing case.
var Sink any

type T struct{ n int }

func (T) M() {}

// Kernel is deliberately allocating: the dynamic AllocsPerRun twin of
// this suite would measure it nonzero, and alloccheck must agree.
//
//perf:hotpath
func Kernel(xs, out []float64) {
	transform(xs, out)
	m := map[string]int{} // want "map literal allocates"
	_ = m
	b := make([]byte, 8) // want "make allocates"
	_ = b
	fmt.Println(xs) // want "fmt.Println allocates"
	box(xs[0])
	_ = concat("a", "b")
	closures(xs)
	methodval(T{})
	_ = escape()
	_ = fresh()
	_ = reuse(acquire(), xs)
	fanout(xs)
}

// transform is hot by reachability from Kernel.
func transform(xs, out []float64) {
	for i, x := range xs {
		out[i] = x * 2
	}
	grow(xs)
}

func grow(xs []float64) {
	var dst []float64
	for _, x := range xs {
		dst = append(dst, x) // want "un-capped append to dst"
	}
	_ = dst
}

func box(v float64) {
	Sink = v // want "assignment boxes a scalar"
}

func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

func closures(xs []float64) {
	f := func(i int) float64 { return xs[i] } // want "closure allocates"
	_ = f(0)
	func() { _ = xs }() // immediately invoked: no escaping closure value
}

func methodval(t T) {
	f := t.M // want "method value t.M allocates"
	f()
}

func escape() *T {
	return &T{n: 1} // want "composite literal escapes"
}

func fresh() *T {
	return new(T) // want "new allocates"
}

// reuse shows the capacity-backed negative: appends into a slice carved
// from caller-owned backing stay within capacity.
func reuse(scratch, xs []float64) []float64 {
	dst := scratch[:0]
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// acquire stands in for pool acquisition: exempt, and hotness stops
// here.
//
//perf:pooled sync.Pool acquisition; allocates only on pool miss
func acquire() []float64 {
	return make([]float64, 64)
}

// foreach stands in for parallel.ForEach: closures handed to it are
// amortized by the pool.
//
//perf:pooled bounded dispatcher amortizes the closure
func foreach(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

func fanout(xs []float64) {
	foreach(len(xs), func(i int) { xs[i] *= 2 })
}

// cold is unreachable from any root: allocate freely.
func cold() []string {
	out := []string{}
	out = append(out, fmt.Sprint("x"))
	return out
}

var _ = cold
