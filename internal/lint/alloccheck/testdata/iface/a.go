// Package iface pins //perf:hotpath inheritance through interfaces:
// annotating the interface method makes every module-internal
// implementation a hot root, and hotness flows into its callees.
package iface

// Predictor mirrors ml.BatchIntoPredictor: the annotation lives on the
// interface method, not on any one implementation.
type Predictor interface {
	//perf:hotpath
	PredictInto(xs, out []float64)
}

type Linear struct{ w float64 }

func (l *Linear) PredictInto(xs, out []float64) {
	for i, x := range xs {
		out[i] = l.w * x
	}
	note()
}

// note is hot only because (*Linear).PredictInto inherited the root
// annotation from Predictor.
func note() {
	s := "a"
	s += sfx() // want "string += allocates"
	_ = s
}

// sfx keeps the concatenation non-constant.
func sfx() string {
	var b [1]byte
	b[0] = 'b'
	return str(b)
}

func str(b [1]byte) string {
	if b[0] == 0 {
		return ""
	}
	return "b"
}

// Use ties the interface to the implementation the way the serving path
// does, without being a root itself.
func Use(p Predictor, xs, out []float64) {
	p.PredictInto(xs, out)
}

var _ Predictor = (*Linear)(nil)
