// Package analysis is the minimal analyzer framework behind varlint.
//
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer
// owns a name, a doc string, and a Run function over a type-checked
// Pass — but is built entirely on the standard library so the module
// stays dependency-free. Analyzers receive fully type-checked syntax
// for one package at a time and report Diagnostics through the Pass;
// drivers (cmd/varlint, internal/lint/linttest) own loading, suppression,
// baselines, and exit codes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings, //lint:allow directives,
	// and the driver's -analyzers flag. It must be a valid identifier.
	Name string
	// Version fingerprints the analyzer's logic for the findings cache:
	// cached findings are keyed on Name@Version, so bumping Version when
	// the rules change invalidates every stale entry. Editing an
	// analyzer without bumping it serves stale findings from warm
	// caches.
	Version string
	// Doc is the one-paragraph description printed by varlint -list.
	Doc string
	// Run executes the check over one package. Exactly one of Run and
	// RunGraph is set.
	Run func(*Pass) error
	// RunGraph executes a whole-program check over every loaded package
	// plus the cross-package call graph. Graph analyzers cannot be
	// cached per package (an edit anywhere can change reachability), so
	// the driver caches their findings under one program-wide key
	// instead.
	RunGraph func(*GraphPass) error
}

// GraphPass carries the whole program through a graph analyzer.
type GraphPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs is every analyzed package, in load order.
	Pkgs []*callgraph.Package
	// Graph is the program's call graph (hot-path annotations resolved).
	Graph *callgraph.Graph
	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *GraphPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ReportFix reports a finding that carries a mechanical suggested
// rewrite, surfaced by `varlint -fix` as a dry-run listing.
func (p *GraphPass) ReportFix(pos token.Pos, fix, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...), Fix: fix})
}

// Pass carries one package's type-checked syntax through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Fix, when non-empty, is a mechanical suggested rewrite for the
	// finding — report-only, printed by `varlint -fix`.
	Fix string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ReportFix reports a finding that carries a mechanical suggested
// rewrite, surfaced by `varlint -fix` as a dry-run listing.
func (p *Pass) ReportFix(pos token.Pos, fix, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...), Fix: fix})
}

// FuncObj resolves the called function object of call, or nil when the
// callee is not a simple identifier or selector (method values through
// interfaces still resolve; computed function values do not).
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether obj is the package-level function (not a
// method) pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// IsFloat reports whether t's underlying type is a floating-point basic
// type (or an untyped float constant type). A nil type is not a float.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ReturnsError reports whether t (a call's result type) is error or a
// tuple containing an error.
func ReturnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if IsErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return IsErrorType(t)
}

// IsErrorType reports whether t is the built-in error interface (or a
// type that implements it and is declared as error-typed; the check is
// identity with the universe error, which is what result signatures
// use).
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ImplementsError reports whether t implements the error interface.
func ImplementsError(t types.Type) bool {
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

// StmtLists returns every []ast.Stmt list nested under root: block
// bodies, case clauses, and comm clauses. It is the traversal primitive
// for checks that need statement ordering within one scope.
func StmtLists(root ast.Node) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	})
	return lists
}
