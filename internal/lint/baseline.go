package lint

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// The baseline file tracks legacy findings that predate an analyzer so
// new code can be held to the full standard while the debt burns down.
// One finding per line, in the stable key format
//
//	<pkg> :: <analyzer> :: <message>
//
// (no file/line, so unrelated edits do not churn the file). Blank lines
// and '#' comments are ignored. The file in this repository is empty —
// every finding the suite ever raised has been fixed or suppressed with
// a reasoned //lint:allow — and the CI lint shard keeps it that way.

// readBaseline loads the baseline as a multiset of finding keys. A
// missing file is an empty baseline.
func readBaseline(path string) (map[string]int, error) {
	out := make(map[string]int)
	if path == "" {
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	return out, nil
}

// writeBaseline renders the current findings as a fresh baseline.
func writeBaseline(path string, findings []Finding) error {
	if path == "" {
		return fmt.Errorf("lint: -write-baseline needs a -baseline path")
	}
	var b strings.Builder
	b.WriteString("# varlint baseline — legacy findings tolerated until fixed.\n")
	b.WriteString("# Format: <pkg> :: <analyzer> :: <message>   (regenerate: varlint -write-baseline)\n")
	for _, f := range findings {
		b.WriteString(f.key())
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
