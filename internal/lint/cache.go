package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/lint/load"
)

// findingCache persists post-suppression findings keyed by content
// hashes. Per-package analyzer findings are keyed by a hash of the
// package, its module-internal dependency closure, the analyzer labels
// (Name@Version), and the Go version; graph analyzer findings are keyed
// by one program-wide hash over every package. A warm cache turns the
// lint pass for an unchanged tree into JSON reads — no parsing, no
// type-checking — which is what keeps the CI lint shard under a minute
// (the CI workflow restores the directory across runs).
//
// The Name@Version labels are load-bearing: editing an analyzer's logic
// without changing its inputs would otherwise serve stale findings from
// warm caches. Bumping Version rolls every key.
//
// Suppression comments live in the hashed files, so cached findings are
// exactly what a fresh run would produce. Packages whose directives are
// malformed are never cached: the error must resurface every run.
type findingCache struct {
	dir    string
	loader *load.Loader
	labels []string          // analyzer Name@Version labels
	hashes map[string]string // path -> content hash (memo)
}

func newFindingCache(dir string, loader *load.Loader, labels []string) *findingCache {
	return &findingCache{dir: dir, loader: loader, labels: labels, hashes: make(map[string]string)}
}

// file returns the cache entry path for a package, or "" when hashing
// failed (unreadable file mid-edit: treat as a miss). The entry key is
// the package's content hash plus the per-package analyzer labels, so
// a Version bump rolls exactly this scope's entries.
func (c *findingCache) file(m *load.Meta) string {
	ph, err := hashPackage(c.loader, m, c.hashes)
	if err != nil {
		return ""
	}
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "scope=pkg\n")
	for _, label := range c.labels {
		_, _ = fmt.Fprintf(h, "analyzer=%s\n", label)
	}
	_, _ = fmt.Fprintf(h, "pkg=%s\n", ph)
	return c.path(hex.EncodeToString(h.Sum(nil)))
}

// path maps a content hash to its entry location.
func (c *findingCache) path(h string) string {
	if h == "" {
		return ""
	}
	return filepath.Join(c.dir, h[:2], h[2:]+".json")
}

// graphKey hashes the whole program plus the graph analyzer labels: the
// program-wide cache identity for whole-program findings. Empty on any
// hashing failure (treat as a miss).
func (c *findingCache) graphKey(metas []*load.Meta, labels []string) string {
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "go=%s\nscope=graph\n", runtime.Version())
	for _, label := range labels {
		_, _ = fmt.Fprintf(h, "analyzer=%s\n", label)
	}
	for _, m := range metas {
		ph, err := hashPackage(c.loader, m, c.hashes)
		if err != nil {
			return ""
		}
		_, _ = fmt.Fprintf(h, "pkg=%s hash=%s\n", m.Path, ph)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (c *findingCache) get(m *load.Meta) ([]Finding, bool) {
	return c.read(c.file(m))
}

func (c *findingCache) put(m *load.Meta, fs []Finding) {
	c.write(c.file(m), fs)
}

// getKey and putKey address an entry by a precomputed hash (the
// program-wide graph key).
func (c *findingCache) getKey(key string) ([]Finding, bool) {
	return c.read(c.path(key))
}

func (c *findingCache) putKey(key string, fs []Finding) {
	c.write(c.path(key), fs)
}

func (c *findingCache) read(path string) ([]Finding, bool) {
	if path == "" {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var fs []Finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, false // corrupt entry: recompute and overwrite
	}
	return fs, true
}

func (c *findingCache) write(path string, fs []Finding) {
	if path == "" {
		return
	}
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.Marshal(fs)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	// Best-effort cache: a failed write just means a cold entry.
	_ = os.WriteFile(path, data, 0o644)
}
