package lint

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// findingCache persists per-package post-suppression findings keyed by
// a content hash of the package, its module-internal dependency
// closure, the analyzer set, and the Go version. A warm cache turns the
// lint pass for an unchanged package into one JSON read — no parsing,
// no type-checking — which is what keeps the CI lint shard under a
// minute (the CI workflow restores the directory across runs).
//
// Suppression comments live in the hashed files, so cached findings are
// exactly what a fresh run would produce. Packages whose directives are
// malformed are never cached: the error must resurface every run.
type findingCache struct {
	dir       string
	loader    *load.Loader
	analyzers []*analysis.Analyzer
	hashes    map[string]string // path -> content hash (memo)
}

func newFindingCache(dir string, loader *load.Loader, analyzers []*analysis.Analyzer) *findingCache {
	return &findingCache{dir: dir, loader: loader, analyzers: analyzers, hashes: make(map[string]string)}
}

// file returns the cache entry path for a package, or "" when hashing
// failed (unreadable file mid-edit: treat as a miss).
func (c *findingCache) file(m *load.Meta) string {
	h, err := hashPackage(c.loader, m, c.analyzers, c.hashes)
	if err != nil {
		return ""
	}
	return filepath.Join(c.dir, h[:2], h[2:]+".json")
}

func (c *findingCache) get(m *load.Meta) ([]Finding, bool) {
	path := c.file(m)
	if path == "" {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var fs []Finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, false // corrupt entry: recompute and overwrite
	}
	return fs, true
}

func (c *findingCache) put(m *load.Meta, fs []Finding) {
	path := c.file(m)
	if path == "" {
		return
	}
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.Marshal(fs)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	// Best-effort cache: a failed write just means a cold entry.
	_ = os.WriteFile(path, data, 0o644)
}
