// Package callgraph builds a whole-program static call graph over the
// module's packages so analyzers can reason across package boundaries:
// which functions are reachable from annotated hot-path roots, which
// spawn goroutines, which start spans.
//
// The graph has one node per function declaration plus one per function
// literal (closures are first-class: their bodies execute wherever the
// closure is called, so hotness must flow into them). Edges cover
//
//   - static calls (identifier and selector callees),
//   - interface dispatch: a call through an interface method adds edges
//     to every module-internal concrete method that implements it,
//   - function values: referencing a function without calling it
//     (method values, callbacks passed as arguments) adds a may-call
//     edge, since the referenced function can run wherever the value
//     flows,
//   - closures: an enclosing function gets an edge into each literal it
//     defines.
//
// Two source annotations drive the hot-path queries:
//
//	//perf:hotpath — on a func/method declaration or an interface
//	    method: this function (or, for interfaces, every module-internal
//	    implementation) is a serving hot-path root.
//	//perf:pooled — this function amortizes allocation through a pool
//	    (sync.Pool acquisition, bounded-worker machinery). It stays in
//	    the hot set but is exempt from allocation checks and does not
//	    propagate hotness into its callees: its allocations happen only
//	    on the cold (pool-miss) path.
//
// The engine is deliberately conservative: it over-approximates the
// call relation (function values may never be called; interface
// dispatch lists every implementer) because the analyzers built on top
// enforce "must hold everywhere it could run" contracts.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package handed to Build. It mirrors the
// loader's view (production files only, no tests).
type Package struct {
	Path  string // import path
	Dir   string // directory on disk
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// EdgeKind classifies how control can flow from one node to another.
type EdgeKind int

const (
	// EdgeCall is a direct static call.
	EdgeCall EdgeKind = iota
	// EdgeDispatch is a call through an interface method, resolved to a
	// concrete implementation.
	EdgeDispatch
	// EdgeRef is a function value reference: the target may be called
	// wherever the value flows.
	EdgeRef
	// EdgeClosure links a function to a literal it defines.
	EdgeClosure
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDispatch:
		return "dispatch"
	case EdgeRef:
		return "ref"
	case EdgeClosure:
		return "closure"
	}
	return "?"
}

// Edge is one directed may-call edge.
type Edge struct {
	From, To int
	Pos      token.Pos
	Kind     EdgeKind
}

// Node is one function in the graph: a declaration or a literal.
type Node struct {
	ID   int
	Name string      // qualified display name; closures get parent.func#N
	Func *types.Func // nil for closures
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package

	// HotRoot marks a //perf:hotpath annotation, direct or inherited
	// from an annotated interface method; RootVia says which.
	HotRoot bool
	RootVia string
	// Pooled marks a //perf:pooled annotation.
	Pooled bool
	// PooledReason is the rest of the annotation line, kept for reports.
	PooledReason string
}

// Body returns the node's statement block (declaration body or literal
// body); nil for bodyless declarations (assembly stubs, externs).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return token.NoPos
}

// Graph is the whole-program call graph.
type Graph struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Nodes []*Node

	out    [][]Edge
	byFunc map[*types.Func]int
	byLit  map[*ast.FuncLit]int

	// callees marks identifiers consumed as a call's callee, so the
	// reference pass does not double-edge them. Filled before the
	// identifier is visited: ast.Inspect is pre-order, parents first.
	callees map[*ast.Ident]bool

	// ifaceMethods lists every annotated interface method (hot roots
	// propagate to implementations).
	ifaceHot []*types.Func

	// implMemo caches interface-method -> implementing-node resolution.
	implMemo map[*types.Func][]int

	hot       map[int]int // node -> BFS predecessor (-1 for roots)
	hotSorted []*Node
}

const (
	hotpathDirective = "//perf:hotpath"
	pooledDirective  = "//perf:pooled"
)

// Build constructs the graph for pkgs. The packages must share fset and
// be fully type-checked.
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		Fset:     fset,
		Pkgs:     pkgs,
		byFunc:   make(map[*types.Func]int),
		byLit:    make(map[*ast.FuncLit]int),
		callees:  make(map[*ast.Ident]bool),
		implMemo: make(map[*types.Func][]int),
	}
	// Pass 1: declaration nodes and annotations.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					g.addDecl(p, d)
				case *ast.GenDecl:
					g.scanInterfaceAnnotations(p, d)
				}
			}
		}
	}
	// Pass 2: edges (and closure nodes, created as they are found).
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				g.walkBody(g.byFunc[obj], p, fd.Body)
			}
		}
	}
	// Annotated interface methods make every implementation a root.
	for _, im := range g.ifaceHot {
		for _, id := range g.implementers(im) {
			n := g.Nodes[id]
			if !n.HotRoot {
				n.HotRoot = true
				n.RootVia = "implements " + qualifiedName(im)
			}
		}
	}
	g.computeHot()
	return g
}

func (g *Graph) addDecl(p *Package, fd *ast.FuncDecl) {
	obj, _ := p.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	n := &Node{
		ID:   len(g.Nodes),
		Name: qualifiedName(obj),
		Func: obj,
		Decl: fd,
		Pkg:  p,
	}
	if dir, rest := directive(fd.Doc, hotpathDirective); dir {
		n.HotRoot = true
		n.RootVia = "annotated"
		_ = rest
	}
	if dir, rest := directive(fd.Doc, pooledDirective); dir {
		n.Pooled = true
		n.PooledReason = rest
	}
	g.Nodes = append(g.Nodes, n)
	g.out = append(g.out, nil)
	g.byFunc[obj] = n.ID
}

// scanInterfaceAnnotations records //perf:hotpath annotations on
// interface method declarations: every module-internal implementation
// of an annotated method becomes a hot root.
func (g *Graph) scanInterfaceAnnotations(p *Package, gd *ast.GenDecl) {
	if gd.Tok != token.TYPE {
		return
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok || it.Methods == nil {
			continue
		}
		for _, field := range it.Methods.List {
			if len(field.Names) == 0 {
				continue // embedded interface
			}
			hot, _ := directive(field.Doc, hotpathDirective)
			if !hot {
				continue
			}
			for _, name := range field.Names {
				if m, ok := p.Info.Defs[name].(*types.Func); ok {
					g.ifaceHot = append(g.ifaceHot, m)
				}
			}
		}
	}
}

// directive reports whether the comment group carries the given
// //perf: directive and returns the rest of that line (the reason).
func directive(doc *ast.CommentGroup, name string) (bool, string) {
	if doc == nil {
		return false, ""
	}
	for _, c := range doc.List {
		if c.Text == name || strings.HasPrefix(c.Text, name+" ") {
			return true, strings.TrimSpace(strings.TrimPrefix(c.Text, name))
		}
	}
	return false, ""
}

// closureNode creates (or returns) the node for a literal.
func (g *Graph) closureNode(parent int, p *Package, lit *ast.FuncLit) int {
	if id, ok := g.byLit[lit]; ok {
		return id
	}
	n := &Node{
		ID:   len(g.Nodes),
		Name: fmt.Sprintf("%s.func#%d", g.Nodes[parent].Name, len(g.out[parent])+1),
		Lit:  lit,
		Pkg:  p,
	}
	g.Nodes = append(g.Nodes, n)
	g.out = append(g.out, nil)
	g.byLit[lit] = n.ID
	return n.ID
}

func (g *Graph) addEdge(from, to int, pos token.Pos, kind EdgeKind) {
	g.out[from] = append(g.out[from], Edge{From: from, To: to, Pos: pos, Kind: kind})
}

// walkBody attributes every call, reference, and literal under body to
// node `from`, descending into literals with the literal's own node as
// the new owner.
func (g *Graph) walkBody(from int, p *Package, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			id := g.closureNode(from, p, n)
			g.addEdge(from, id, n.Pos(), EdgeClosure)
			g.walkBody(id, p, n.Body)
			return false // the literal's body belongs to its own node
		case *ast.CallExpr:
			g.edgeForCall(from, p, n)
			// Arguments (which may reference functions) are visited by
			// the ongoing inspection; the callee expression is marked
			// handled via callFunIdent below.
		case *ast.Ident:
			g.edgeForRef(from, p, n)
		}
		return true
	})
}

// callIdent returns the identifier a call resolves through, or nil.
func callIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// edgeForCall adds the edge(s) for one call expression.
func (g *Graph) edgeForCall(from int, p *Package, call *ast.CallExpr) {
	id := callIdent(call)
	if id == nil {
		return // computed callee: any target it may hold was edged at its reference site
	}
	g.callees[id] = true
	fn, _ := p.Info.Uses[id].(*types.Func)
	if fn == nil {
		return // builtin, conversion, or func-typed variable
	}
	fn = origin(fn)
	if recv := recvOf(fn); recv != nil && types.IsInterface(recv.Type()) {
		for _, impl := range g.implementers(fn) {
			g.addEdge(from, impl, call.Pos(), EdgeDispatch)
		}
		return
	}
	if to, ok := g.byFunc[fn]; ok {
		g.addEdge(from, to, call.Pos(), EdgeCall)
	}
}

// edgeForRef adds a may-call edge when ident references a function as a
// value (not as the callee of an enclosing call — those are handled by
// edgeForCall; a duplicate edge is harmless but noisy, so calls mark
// their identifier via position comparison).
func (g *Graph) edgeForRef(from int, p *Package, ident *ast.Ident) {
	if g.callees[ident] {
		return // the callee of a call: edgeForCall owns it
	}
	fn, _ := p.Info.Uses[ident].(*types.Func)
	if fn == nil {
		return
	}
	fn = origin(fn)
	if recv := recvOf(fn); recv != nil && types.IsInterface(recv.Type()) {
		for _, impl := range g.implementers(fn) {
			g.addEdge(from, impl, ident.Pos(), EdgeDispatch)
		}
		return
	}
	if to, ok := g.byFunc[fn]; ok {
		g.addEdge(from, to, ident.Pos(), EdgeRef)
	}
}

// recvOf returns fn's receiver variable, nil for package-level funcs.
func recvOf(fn *types.Func) *types.Var {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	return sig.Recv()
}

func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// implementers resolves an interface method to the module-internal
// concrete methods that implement it, memoized.
func (g *Graph) implementers(im *types.Func) []int {
	if ids, ok := g.implMemo[im]; ok {
		return ids
	}
	var ids []int
	recv := recvOf(im)
	if recv == nil {
		g.implMemo[im] = nil
		return nil
	}
	iface, _ := recv.Type().Underlying().(*types.Interface)
	if iface == nil {
		g.implMemo[im] = nil
		return nil
	}
	for _, p := range g.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			for _, t := range []types.Type{named, types.NewPointer(named)} {
				if !types.Implements(t, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(t, true, im.Pkg(), im.Name())
				if m, ok := obj.(*types.Func); ok {
					if id, ok := g.byFunc[origin(m)]; ok {
						ids = append(ids, id)
					}
				}
				break // pointer set ⊇ value set; one resolution is enough
			}
		}
	}
	sort.Ints(ids)
	ids = dedupInts(ids)
	g.implMemo[im] = ids
	return ids
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// computeHot runs the reachability BFS from the annotated roots.
// Pooled nodes join the hot set but are not expanded: their
// allocations (and their callees') run only on the cold pool-miss
// path.
func (g *Graph) computeHot() {
	g.hot = make(map[int]int)
	var queue []int
	for _, n := range g.Nodes {
		if n.HotRoot {
			g.hot[n.ID] = -1
			queue = append(queue, n.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if g.Nodes[id].Pooled {
			continue
		}
		for _, e := range g.out[id] {
			if _, seen := g.hot[e.To]; seen {
				continue
			}
			g.hot[e.To] = id
			queue = append(queue, e.To)
		}
	}
	g.hotSorted = nil
	for id := range g.hot {
		g.hotSorted = append(g.hotSorted, g.Nodes[id])
	}
	sort.Slice(g.hotSorted, func(i, j int) bool { return g.hotSorted[i].Name < g.hotSorted[j].Name })
}

// NodeOf returns the node for fn, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	if id, ok := g.byFunc[origin(fn)]; ok {
		return g.Nodes[id]
	}
	return nil
}

// LitNode returns the node for a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node {
	if id, ok := g.byLit[lit]; ok {
		return g.Nodes[id]
	}
	return nil
}

// DeclOf returns the syntax and package of fn's declaration inside the
// module, or nil when fn is external or bodyless.
func (g *Graph) DeclOf(fn *types.Func) (*ast.FuncDecl, *Package) {
	n := g.NodeOf(fn)
	if n == nil {
		return nil, nil
	}
	return n.Decl, n.Pkg
}

// Out returns the node's outgoing edges.
func (g *Graph) Out(id int) []Edge { return g.out[id] }

// Roots returns the annotated hot-path roots, sorted by name.
func (g *Graph) Roots() []*Node {
	var roots []*Node
	for _, n := range g.Nodes {
		if n.HotRoot {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name < roots[j].Name })
	return roots
}

// Hot reports whether n is in the hot set (reachable from a root).
func (g *Graph) Hot(n *Node) bool {
	if n == nil {
		return false
	}
	_, ok := g.hot[n.ID]
	return ok
}

// HotSet returns every node reachable from a //perf:hotpath root
// (including pooled frontier nodes), sorted by name.
func (g *Graph) HotSet() []*Node { return g.hotSorted }

// HotChain returns the provenance path root -> ... -> n that put n in
// the hot set, or nil when n is not hot.
func (g *Graph) HotChain(n *Node) []*Node {
	if n == nil {
		return nil
	}
	if _, ok := g.hot[n.ID]; !ok {
		return nil
	}
	var rev []*Node
	for id := n.ID; id != -1; id = g.hot[id] {
		rev = append(rev, g.Nodes[id])
	}
	out := make([]*Node, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}

// Reachable returns the set of nodes reachable from the given node IDs
// (following every edge kind, not stopping at pooled nodes). It backs
// ad-hoc queries and tests; the hot set uses the pooled-aware BFS.
func (g *Graph) Reachable(roots ...int) map[int]bool {
	seen := make(map[int]bool)
	queue := append([]int(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, e := range g.out[id] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// qualifiedName renders pkgpath.Func or pkgpath.(*Recv).Method.
func qualifiedName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := recvOf(fn); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			if named, ok := p.Elem().(*types.Named); ok {
				return fmt.Sprintf("%s.(*%s).%s", pkg, named.Obj().Name(), fn.Name())
			}
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.%s.%s", pkg, named.Obj().Name(), fn.Name())
		}
		if types.IsInterface(t) {
			return fmt.Sprintf("%s.%s.%s", pkg, interfaceName(t), fn.Name())
		}
		return fmt.Sprintf("%s.%s.%s", pkg, t.String(), fn.Name())
	}
	return pkg + "." + fn.Name()
}

func interfaceName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
