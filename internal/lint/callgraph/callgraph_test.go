package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/callgraph"
)

// buildProgram type-checks the given single-file packages (path ->
// source) in the listed order (dependencies first) and returns the
// graph. Imports between the given packages resolve in-memory; anything
// else falls back to the source importer (stdlib).
func buildProgram(t *testing.T, order []string, srcs map[string]string) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	built := make(map[string]*types.Package)
	var pkgs []*callgraph.Package
	imp := &mapImporter{built: built, fallback: importer.ForCompiler(fset, "source", nil)}
	for _, path := range order {
		src, ok := srcs[path]
		if !ok {
			t.Fatalf("no source for %s", path)
		}
		f, err := parser.ParseFile(fset, path+"/a.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		built[path] = pkg
		pkgs = append(pkgs, &callgraph.Package{Path: path, Dir: path, Files: []*ast.File{f}, Types: pkg, Info: info})
	}
	return callgraph.Build(fset, pkgs)
}

type mapImporter struct {
	built    map[string]*types.Package
	fallback types.Importer
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.built[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// nodeByName finds a node whose qualified name ends with suffix.
func nodeByName(t *testing.T, g *callgraph.Graph, suffix string) *callgraph.Node {
	t.Helper()
	var found *callgraph.Node
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.Name, suffix) {
			if found != nil {
				t.Fatalf("ambiguous node suffix %q (%s and %s)", suffix, found.Name, n.Name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node matching %q; have %v", suffix, names(g))
	}
	return found
}

func names(g *callgraph.Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}

// hasEdge reports whether from has any edge to to.
func hasEdge(g *callgraph.Graph, from, to *callgraph.Node) bool {
	for _, e := range g.Out(from.ID) {
		if e.To == to.ID {
			return true
		}
	}
	return false
}

func TestCrossPackageCallEdge(t *testing.T) {
	g := buildProgram(t, []string{"example.com/b", "example.com/a"}, map[string]string{
		"example.com/b": `package b
func G() int { return 1 }
`,
		"example.com/a": `package a
import "example.com/b"
func F() int { return b.G() }
`,
	})
	f := nodeByName(t, g, "example.com/a.F")
	gg := nodeByName(t, g, "example.com/b.G")
	if !hasEdge(g, f, gg) {
		t.Fatalf("missing cross-package call edge a.F -> b.G")
	}
}

func TestMethodValueAndClosureEdges(t *testing.T) {
	g := buildProgram(t, []string{"example.com/m"}, map[string]string{
		"example.com/m": `package m
type T struct{}
func (T) M() {}
func helper() {}
func F() {
	t := T{}
	h := t.M       // method value: may run wherever h flows
	use(h)
	fn := func() { // closure node, body owns the helper call
		helper()
	}
	fn()
}
func use(func()) {}
`,
	})
	f := nodeByName(t, g, "m.F")
	m := nodeByName(t, g, "m.T.M")
	if !hasEdge(g, f, m) {
		t.Fatalf("missing method-value reference edge F -> T.M")
	}
	helper := nodeByName(t, g, "m.helper")
	if hasEdge(g, f, helper) {
		t.Fatalf("helper call belongs to the closure node, not to F directly")
	}
	// F reaches helper through the closure node.
	if !g.Reachable(f.ID)[helper.ID] {
		t.Fatalf("F should reach helper through its closure")
	}
	var closure *callgraph.Node
	for _, e := range g.Out(f.ID) {
		if g.Nodes[e.To].Lit != nil && e.Kind == callgraph.EdgeClosure {
			closure = g.Nodes[e.To]
		}
	}
	if closure == nil {
		t.Fatalf("no closure edge out of F")
	}
	if !hasEdge(g, closure, helper) {
		t.Fatalf("closure node should own the helper() call edge")
	}
}

func TestInterfaceDispatchEdges(t *testing.T) {
	g := buildProgram(t, []string{"example.com/b", "example.com/a"}, map[string]string{
		"example.com/b": `package b
type Doer interface{ Do() }
type Impl struct{}
func (Impl) Do() {}
`,
		"example.com/a": `package a
import "example.com/b"
func F(d b.Doer) { d.Do() }
`,
	})
	f := nodeByName(t, g, "a.F")
	impl := nodeByName(t, g, "b.Impl.Do")
	if !hasEdge(g, f, impl) {
		t.Fatalf("interface call should dispatch to the concrete implementation across packages")
	}
}

func TestReachabilityFromMultipleRoots(t *testing.T) {
	g := buildProgram(t, []string{"example.com/r"}, map[string]string{
		"example.com/r": `package r
//perf:hotpath
func RootA() { shared() }

//perf:hotpath
func RootB() { onlyB() }

func shared() {}
func onlyB()  {}
func cold()   {}
`,
	})
	if got := len(g.Roots()); got != 2 {
		t.Fatalf("want 2 roots, got %d", got)
	}
	hot := map[string]bool{}
	for _, n := range g.HotSet() {
		hot[n.Name] = true
	}
	for _, want := range []string{"example.com/r.RootA", "example.com/r.RootB", "example.com/r.shared", "example.com/r.onlyB"} {
		if !hot[want] {
			t.Errorf("%s missing from hot set %v", want, hot)
		}
	}
	if hot["example.com/r.cold"] {
		t.Errorf("cold function must not be hot")
	}
	// Provenance chain for a non-root hot node leads back to its root.
	shared := nodeByName(t, g, "r.shared")
	chain := g.HotChain(shared)
	if len(chain) != 2 || chain[0].Name != "example.com/r.RootA" {
		t.Errorf("unexpected provenance chain for shared: %v", chain)
	}
}

func TestPooledStopsPropagation(t *testing.T) {
	g := buildProgram(t, []string{"example.com/p"}, map[string]string{
		"example.com/p": `package p
//perf:hotpath
func Root() { Acquire() }

// Acquire amortizes allocation through a pool.
//
//perf:pooled cold-path allocation only
func Acquire() { slowNew() }

func slowNew() {}
`,
	})
	acquire := nodeByName(t, g, "p.Acquire")
	if !g.Hot(acquire) || !acquire.Pooled {
		t.Fatalf("pooled function should be in the hot set and marked pooled")
	}
	if acquire.PooledReason != "cold-path allocation only" {
		t.Fatalf("pooled reason not captured: %q", acquire.PooledReason)
	}
	slow := nodeByName(t, g, "p.slowNew")
	if g.Hot(slow) {
		t.Fatalf("hotness must not propagate through a //perf:pooled function")
	}
}

// TestInterfaceHotpathInheritance pins the annotation-inheritance
// contract: //perf:hotpath on an interface method makes every
// module-internal implementation a root, even across packages.
func TestInterfaceHotpathInheritance(t *testing.T) {
	g := buildProgram(t, []string{"example.com/iface", "example.com/impl"}, map[string]string{
		"example.com/iface": `package iface
type Kernel interface {
	//perf:hotpath
	PredictInto(x []float64)
}
`,
		"example.com/impl": `package impl
import "example.com/iface"
type Fast struct{}
func (Fast) PredictInto(x []float64) { inner() }
func inner() {}
var _ iface.Kernel = Fast{}
`,
	})
	m := nodeByName(t, g, "impl.Fast.PredictInto")
	if !m.HotRoot {
		t.Fatalf("implementation of an annotated interface method must be a hot root")
	}
	if !strings.Contains(m.RootVia, "iface.Kernel.PredictInto") {
		t.Fatalf("RootVia should name the interface method, got %q", m.RootVia)
	}
	if !g.Hot(nodeByName(t, g, "impl.inner")) {
		t.Fatalf("hotness must flow from the inherited root into its callees")
	}
}
