package callgraph

import (
	"fmt"
	"io"
)

// WriteHotReport renders the hot-path reachability report: every
// annotated root, then every function in the hot set with the
// provenance chain that put it there. CI uploads this as an artifact so
// a reviewer can see exactly which functions a PR adds to the
// statically-enforced zero-allocation surface.
func (g *Graph) WriteHotReport(w io.Writer) {
	roots := g.Roots()
	hot := g.HotSet()
	_, _ = fmt.Fprintf(w, "hot-path reachability: %d root(s), %d function(s) in the hot set\n", len(roots), len(hot))
	_, _ = fmt.Fprintf(w, "\nroots (//perf:hotpath):\n")
	if len(roots) == 0 {
		_, _ = fmt.Fprintf(w, "  (none)\n")
	}
	for _, r := range roots {
		_, _ = fmt.Fprintf(w, "  %s  [%s]\n", r.Name, r.RootVia)
	}
	_, _ = fmt.Fprintf(w, "\nhot set:\n")
	for _, n := range hot {
		tag := ""
		switch {
		case n.Pooled && n.PooledReason != "":
			tag = "  [pooled: " + n.PooledReason + "]"
		case n.Pooled:
			tag = "  [pooled]"
		case n.HotRoot:
			tag = "  [root]"
		}
		_, _ = fmt.Fprintf(w, "  %s%s\n", n.Name, tag)
		if !n.HotRoot {
			chain := g.HotChain(n)
			if len(chain) > 1 {
				_, _ = fmt.Fprintf(w, "      via %s\n", chainString(chain))
			}
		}
	}
}

func chainString(chain []*Node) string {
	s := ""
	for i, n := range chain {
		if i > 0 {
			s += " -> "
		}
		s += n.Name
	}
	return s
}
