package ctxflow

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer enforces the context-propagation discipline PR 8 threaded
// through ingest and refit: contexts come first in signatures, flow to
// every context-aware callee, and are never silently re-rooted with
// context.Background()/TODO() outside process entry points. Ambient
// time.Sleep is forbidden in favor of the injectable randx.Clock.
var Analyzer = &analysis.Analyzer{
	Name:    "ctxflow",
	Version: "v1",
	Doc: "flag context.Context parameters that are not first, context.Background()/TODO() " +
		"outside package main, a caller with a ctx in scope re-rooting a context-aware " +
		"callee with Background/TODO, callees that start spans but cannot receive the " +
		"caller's context, and ambient time.Sleep (use randx.Clock)",
	RunGraph: run,
}

// ClockExemptPattern selects packages allowed to touch the ambient
// clock: the deterministic clock shim itself lives there.
var ClockExemptPattern = regexp.MustCompile(`internal/randx$`)

// SpanPackagePath and SpanFuncName locate the span constructor whose
// transitive callers form the spanning set; vars so the linttest suite
// can point them at a testdata package.
var (
	SpanPackagePath = "repro/internal/obs"
	SpanFuncName    = "Start"
)

func run(gp *analysis.GraphPass) error {
	spanning := spanningSet(gp)
	for _, p := range gp.Pkgs {
		isMain := p.Types.Name() == "main"
		clockExempt := ClockExemptPattern.MatchString(p.Path)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkCtxFirst(gp, p, fd)
				if fd.Body == nil {
					continue
				}
				c := &checker{gp: gp, pkg: p, isMain: isMain, clockExempt: clockExempt, spanning: spanning}
				c.walk(fd.Body, hasCtxParam(p, fd))
			}
		}
	}
	return nil
}

// spanningSet computes the module functions that transitively start
// obs spans but take no context themselves: calling one of these from a
// context-carrying function orphans its spans from the caller's trace.
func spanningSet(gp *analysis.GraphPass) map[*callgraph.Node]bool {
	g := gp.Graph
	// Find obs.Start.
	var start *callgraph.Node
	for _, n := range g.Nodes {
		if n.Func != nil && n.Pkg.Path == SpanPackagePath && n.Func.Name() == SpanFuncName && recvOf(n.Func) == nil {
			start = n
			break
		}
	}
	if start == nil {
		return nil
	}
	// Reverse reachability to obs.Start.
	reaches := map[int]bool{start.ID: true}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if reaches[n.ID] {
				continue
			}
			for _, e := range g.Out(n.ID) {
				if reaches[e.To] {
					reaches[n.ID] = true
					changed = true
					break
				}
			}
		}
	}
	out := make(map[*callgraph.Node]bool)
	for id := range reaches {
		out[g.Nodes[id]] = true
	}
	return out
}

// checkCtxFirst flags a context.Context parameter that is not the
// first parameter.
func checkCtxFirst(gp *analysis.GraphPass, p *callgraph.Package, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(p.Info.TypeOf(field.Type)) && pos != 0 {
			gp.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
		}
		pos += n
	}
}

func hasCtxParam(p *callgraph.Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isCtxType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

type checker struct {
	gp          *analysis.GraphPass
	pkg         *callgraph.Package
	isMain      bool
	clockExempt bool
	spanning    map[*callgraph.Node]bool
}

// walk inspects a body; ctxInScope says whether the enclosing function
// (or an enclosing closure's captures) carries a context parameter.
func (c *checker) walk(nd ast.Node, ctxInScope bool) {
	ast.Inspect(nd, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			inner := ctxInScope || litHasCtxParam(c.pkg, x)
			c.walk(x.Body, inner)
			return false
		case *ast.CallExpr:
			c.checkCall(x, ctxInScope)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, ctxInScope bool) {
	fn := funcOf(c.pkg.Info, call)
	if fn == nil {
		return
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case pkgPath == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
		if !c.isMain {
			c.gp.Reportf(call.Pos(), "context.%s outside package main re-roots the context tree: accept a ctx parameter and propagate it (//lint:allow ctxflow with a reason for genuinely lifecycle-scoped work)", fn.Name())
		}
	case pkgPath == "time" && fn.Name() == "Sleep":
		if !c.clockExempt {
			c.gp.Reportf(call.Pos(), "ambient time.Sleep is untestable and nondeterministic: sleep on the injected randx.Clock instead")
		}
	}
	// A context-aware callee must get the caller's context, not a fresh
	// root, whenever the caller has one in scope.
	if ctxInScope && len(call.Args) > 0 && calleeTakesCtx(fn) {
		if isBackgroundOrTODO(c.pkg.Info, call.Args[0]) {
			c.gp.Reportf(call.Args[0].Pos(), "caller has a context in scope but re-roots %s with context.%s: propagate the caller's ctx", fn.Name(), backgroundName(c.pkg.Info, call.Args[0]))
		}
	}
	// Spanning callees that cannot receive a context orphan their spans
	// from the caller's trace tree.
	if ctxInScope && !calleeTakesCtx(fn) && c.spanning != nil {
		if n := c.gp.Graph.NodeOf(fn); n != nil && c.spanning[n] && !hasCtxAnywhere(fn) {
			c.gp.Reportf(call.Pos(), "%s starts spans but takes no context: its trace is orphaned from the caller's; add a ctx parameter", fn.Name())
		}
	}
}

// calleeTakesCtx reports whether fn's first parameter is a context.
func calleeTakesCtx(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	return isCtxType(sig.Params().At(0).Type())
}

func hasCtxAnywhere(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isBackgroundOrTODO(info *types.Info, e ast.Expr) bool {
	return backgroundName(info, e) != ""
}

func backgroundName(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := funcOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

func isCtxType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func litHasCtxParam(p *callgraph.Package, lit *ast.FuncLit) bool {
	if lit.Type.Params == nil {
		return false
	}
	for _, field := range lit.Type.Params.List {
		if isCtxType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func recvOf(fn *types.Func) *types.Var {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	return sig.Recv()
}

func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
