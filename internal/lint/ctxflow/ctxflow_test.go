package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/linttest"
)

func TestFlagged(t *testing.T) {
	old := ctxflow.SpanPackagePath
	ctxflow.SpanPackagePath = "example.com/flow"
	defer func() { ctxflow.SpanPackagePath = old }()
	linttest.Run(t, ctxflow.Analyzer, "testdata/flag", "example.com/flow")
}

// TestMainExempt pins that process entry points may root the context
// tree with context.Background.
func TestMainExempt(t *testing.T) {
	diags, _ := linttest.Findings(t, ctxflow.Analyzer, "testdata/mainpkg", "example.com/cmd/mainpkg")
	if len(diags) != 0 {
		t.Fatalf("package main must be exempt from the Background rule, got: %v", diags)
	}
}
