// Package ctxflow enforces the context-propagation discipline:
//
//   - context.Context is the first parameter of any signature that
//     carries one;
//   - context.Background() / context.TODO() appear only in package
//     main (process entry points own the root context) — library code
//     accepts and propagates a caller's ctx, or justifies a detached
//     lifetime with //lint:allow;
//   - a caller with a ctx in scope never re-roots a context-aware
//     callee with Background/TODO;
//   - callees that transitively start obs spans (resolved through the
//     call graph) but take no context are flagged: their traces are
//     orphaned from the caller's tree;
//   - ambient time.Sleep is forbidden outside internal/randx — blocking
//     sleeps go through the injectable randx.Clock so tests and the
//     deterministic simulations control time.
//
// Findings are suppressed with `//lint:allow ctxflow <reason>` on the
// finding's line or the line above.
package ctxflow
