// Package flow exercises ctxflow: misplaced context parameters,
// re-rooted context trees, ambient sleeps, and spanning callees that
// cannot receive the caller's context.
package flow

import (
	"context"
	"time"
)

func backgroundUser() {
	ctx := context.Background() // want "context.Background outside package main"
	_ = ctx
}

func notFirst(name string, ctx context.Context) { // want "context.Context must be the first parameter of notFirst"
	_ = name
	_ = ctx
}

func sleepy() {
	time.Sleep(time.Second) // want "ambient time.Sleep"
}

func reroot(ctx context.Context) {
	use(context.TODO()) // want "context.TODO outside package main" "re-roots use with context.TODO"
}

func use(ctx context.Context) { _ = ctx }

// Span machinery: the linttest suite points SpanPackagePath at this
// package so Start anchors the spanning set.
type Span struct{}

func (Span) End() {}

func Start(ctx context.Context, name string) (context.Context, Span) {
	_ = name
	return ctx, Span{}
}

// startsSpan transitively starts spans but takes no context: its traces
// are orphaned from any caller's tree.
func startsSpan() {
	_, s := Start(context.Background(), "op") // want "context.Background outside package main"
	s.End()
}

func caller(ctx context.Context) {
	_ = ctx
	startsSpan() // want "startsSpan starts spans but takes no context"
}

// propagates is the clean shape: ctx first, handed straight through.
func propagates(ctx context.Context, name string) {
	ctx2, s := Start(ctx, name)
	defer s.End()
	use(ctx2)
}

var (
	_ = backgroundUser
	_ = notFirst
	_ = sleepy
	_ = reroot
	_ = caller
	_ = propagates
)
