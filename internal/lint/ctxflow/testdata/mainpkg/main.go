// Command mainpkg pins the package-main exemption: process entry
// points own the root context, so Background is legal here.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) { _ = ctx }
