// Package errflow enforces the repository's error discipline along the
// measure → fit → serve pipeline, where a swallowed or stringified
// error turns into a silently wrong model:
//
//   - Dropped errors: a call whose (last) result is an error used as a
//     bare expression statement discards the failure. `_ = f()` is an
//     explicit, visible discard and stays legal, as do deferred
//     cleanups (the Close convention) and goroutine bodies.
//   - Stringified wrapping: fmt.Errorf with an error argument but no %w
//     verb flattens the chain, so errors.Is can no longer match
//     sentinels like ErrBenchmarkQuarantined behind it.
//   - Sentinel comparison: err == ErrX (or !=) bypasses unwrapping;
//     errors.Is is the sanctioned comparison. Comparisons against nil
//     are fine, and the bodies of `Is(error) bool` methods are exempt —
//     the == inside them is the errors.Is protocol itself.
//
// Findings are suppressed with `//lint:allow errflow <reason>` on the
// finding's line or the line above; the reason is mandatory.
package errflow
