package errflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer enforces the project's error discipline: no silently
// dropped error returns, no fmt.Errorf that stringifies an error it
// should wrap with %w, and no == comparison against error sentinels
// that errors.Is must see through wrapped chains.
var Analyzer = &analysis.Analyzer{
	Name:    "errflow",
	Version: "v2",
	Doc: "flag dropped error returns, fmt.Errorf calls that carry an error argument " +
		"without a %w verb (breaking errors.Is on sentinel paths like " +
		"ErrBenchmarkQuarantined), and == / != comparisons between errors that bypass " +
		"errors.Is",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		isMethods := isMethodSpans(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDropped(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n, isMethods)
			case *ast.DeferStmt:
				// Deferred cleanup (Close, Unlock) follows the Close
				// convention; skip the whole subtree.
				return false
			case *ast.GoStmt:
				return false
			}
			return true
		})
	}
	return nil
}

// checkDropped flags an expression statement that discards an error
// result. `_ = f()` is explicit and legal; so are the documented
// exemptions in droppedExempt.
func checkDropped(pass *analysis.Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	t := pass.TypesInfo.TypeOf(call)
	if !analysis.ReturnsError(t) {
		return
	}
	if droppedExempt(pass, call) {
		return
	}
	name := types.ExprString(call.Fun)
	pass.Reportf(stmt.Pos(), "%s returns an error that is silently dropped: handle it or discard explicitly with _ =", name)
}

// droppedExempt whitelists calls whose error is unactionable by
// convention:
//   - Close (resource teardown; double-close and network-close errors
//     have no recovery path at the call site),
//   - fmt.Print/Printf/Println (CLI stdout),
//   - fmt.Fprint* into a *strings.Builder, *bytes.Buffer, os.Stdout, or
//     os.Stderr (the first two are documented to never fail),
//   - any method on *strings.Builder / *bytes.Buffer.
func droppedExempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.FuncObj(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Close" {
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return infallibleWriter(sig.Recv().Type())
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			w := ast.Unparen(call.Args[0])
			if infallibleWriter(pass.TypesInfo.TypeOf(w)) {
				return true
			}
			switch types.ExprString(w) {
			case "os.Stdout", "os.Stderr":
				return true
			}
		}
	}
	return false
}

// infallibleWriter reports whether t is *strings.Builder or
// *bytes.Buffer (possibly behind one pointer), whose Write methods are
// documented to never return an error.
func infallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// checkErrorfWrap flags fmt.Errorf("...", err) where the constant
// format string has no %w: the produced error hides err from
// errors.Is/As, which breaks every sentinel-based dispatch path.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.FuncObj(pass.TypesInfo, call)
	if !analysis.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Args[0])]
	if !ok || tv.Value == nil {
		return // non-constant format: cannot reason about verbs
	}
	format := tv.Value.ExactString()
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !analysis.ImplementsError(t) {
			continue
		}
		argName := types.ExprString(ast.Unparen(arg))
		if fixed, ok := rewriteLastVerb(format); ok {
			pass.ReportFix(call.Pos(), fmt.Sprintf("change the format string to %s so %s stays visible to errors.Is/As", fixed, argName),
				"fmt.Errorf carries error %s without %%w: the chain is cut and errors.Is/As cannot see through it", argName)
		} else {
			pass.Reportf(call.Pos(), "fmt.Errorf carries error %s without %%w: the chain is cut and errors.Is/As cannot see through it", argName)
		}
		return
	}
}

// rewriteLastVerb rewrites the final %v or %s in a quoted format string
// to %w — the mechanical fix for the common trailing-error shape. Other
// shapes (the error formatted mid-string among several verbs) get no
// suggestion: rewriting them safely needs verb-to-argument matching.
func rewriteLastVerb(format string) (string, bool) {
	idx := strings.LastIndex(format, "%v")
	if i := strings.LastIndex(format, "%s"); i > idx {
		idx = i
	}
	if idx < 0 {
		return "", false
	}
	return format[:idx] + "%w" + format[idx+2:], true
}

// isMethodSpans returns the body spans of `Is(error) bool` methods in
// f. Inside such a method the == comparison against a sentinel IS the
// errors.Is protocol implementation — errors.Is itself calls it — so
// checkSentinelCompare must not flag it.
func isMethodSpans(pass *analysis.Pass, f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Name.Name != "Is" || fd.Body == nil {
			continue
		}
		sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
			continue
		}
		if analysis.IsErrorType(sig.Params().At(0).Type()) {
			spans = append(spans, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
		}
	}
	return spans
}

// checkSentinelCompare flags err == sentinel / err != sentinel between
// two error values; wrapped errors (every fmt.Errorf("...: %w") path in
// this repo) make the comparison silently false, so errors.Is is
// mandatory. Comparisons against nil stay legal, as do comparisons
// inside an `Is(error) bool` method (the protocol implementation).
func checkSentinelCompare(pass *analysis.Pass, be *ast.BinaryExpr, isMethods [][2]token.Pos) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, s := range isMethods {
		if be.Pos() >= s[0] && be.Pos() < s[1] {
			return
		}
	}
	if isNil(pass, be.X) || isNil(pass, be.Y) {
		return
	}
	xt, yt := pass.TypesInfo.TypeOf(be.X), pass.TypesInfo.TypeOf(be.Y)
	if xt == nil || yt == nil || !analysis.ImplementsError(xt) || !analysis.ImplementsError(yt) {
		return
	}
	pass.Reportf(be.Pos(), "error compared with %s: use errors.Is so wrapped chains still match", be.Op)
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
