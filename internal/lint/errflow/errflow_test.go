package errflow_test

import (
	"testing"

	"repro/internal/lint/errflow"
	"repro/internal/lint/linttest"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, errflow.Analyzer, "testdata/flag", "example.com/a")
}
