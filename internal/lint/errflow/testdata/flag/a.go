// Positive and negative cases for the errflow analyzer.
package a

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errSentinel = errors.New("sentinel")

func mayFail() error { return errSentinel }

func dropped() {
	mayFail() // want "mayFail returns an error that is silently dropped"
}

func discarded() {
	_ = mayFail() // explicit discard is legal
}

func closed(f *os.File) {
	f.Close() // Close convention: teardown errors are unactionable here
}

func printed(b *strings.Builder) {
	fmt.Fprintf(b, "builders never fail")
	fmt.Println("stdout convention")
	b.WriteString("builder methods are infallible")
}

func wrapBad(err error) error {
	return fmt.Errorf("fit failed: %v", err) // want "without %w"
}

func wrapGood(err error) error {
	return fmt.Errorf("fit failed: %w", err)
}

func cmpBad(err error) bool {
	return err == errSentinel // want "error compared with =="
}

func cmpGood(err error) bool {
	return errors.Is(err, errSentinel)
}

func cmpNil(err error) bool {
	return err != nil // nil checks stay legal
}

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return w.inner.Error() }

// Is implements the errors.Is protocol; the == here IS the protocol.
func (w *wrapped) Is(target error) bool { return target == errSentinel }
