// Package floatcheck enforces the repository's float hygiene — the
// habits that keep NaN and Inf from leaking into fitted models and
// report tables:
//
//   - Unchecked division: a float division whose divisor the enclosing
//     function never validates (no comparison, no math.IsNaN/IsInf/Abs
//     probe, no loop-length guard) is flagged. Validation is textual
//     and function-scoped — the analyzer forces *a* guard into the
//     function rather than proving dominance.
//   - NaN factories: math.Log, Log2, Log10, and Sqrt mint NaN from
//     negative inputs; calls on unvalidated arguments are flagged.
//   - Float equality: == / != between two computed float expressions is
//     almost always a rounding bug. Comparisons against literals and
//     sentinel probes stay legal.
//   - Bare summation: `sum += v` accumulation loops over float slices
//     lose low-order bits in a length- and order-dependent way; the
//     compensated numeric.Sum / numeric.Mean / numeric.Accumulator
//     helpers are the sanctioned form. Elementwise vector adds
//     (`out[j] += v`) are not summations and are not flagged.
//
// Findings are suppressed with `//lint:allow floatcheck <reason>` on
// the finding's line or the line above; the reason is mandatory and
// should name the constructor or validator that enforces the invariant
// the analyzer cannot see.
package floatcheck
