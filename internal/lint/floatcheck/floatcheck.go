package floatcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer enforces the project's float hygiene: no division by a
// value the function never validates, no math.Log/Sqrt on unvalidated
// inputs (the NaN factories of this codebase), no bitwise equality
// between computed floats, and no bare summation loops that should use
// the compensated numeric.Sum.
var Analyzer = &analysis.Analyzer{
	Name:    "floatcheck",
	Version: "v1",
	Doc: "flag unchecked float division, math.Log/Sqrt on unvalidated inputs, " +
		"float equality between computed values, and bare summation loops that " +
		"should use the compensated numeric.Sum / numeric.Accumulator helpers",
	Run: run,
}

// nanFuncs are the math functions whose domain edges mint NaN/Inf from
// otherwise-healthy inputs.
var nanFuncs = map[string]bool{"Log": true, "Log2": true, "Log10": true, "Sqrt": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

func insideAny(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}

// checkFunc runs all per-function checks. "Validated" is a textual,
// function-scoped notion: an expression counts as validated if it (or,
// through one-hop definition propagation, what it was assigned from)
// appears anywhere in the function inside a comparison, or as the
// argument of math.IsNaN/IsInf/Abs, or ranges a loop the division sits
// in. This deliberately ignores control flow; the goal is to force *a*
// guard into the function, not to prove dominance.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	guarded := guardedExprs(pass, fd)
	defs := simpleDefs(pass, fd)
	comparators := comparatorRanges(pass, fd)
	var validated func(e ast.Expr, depth int) bool
	validated = func(e ast.Expr, depth int) bool {
		e = stripConversions(pass, e)
		if isConst(pass, e) || obviouslySafe(pass, e) {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			// Composite arithmetic is beyond a textual check; stay quiet
			// rather than guess.
			return true
		}
		if guarded[types.ExprString(e)] {
			return true
		}
		// Definition propagation: n := float64(len(xs)) is validated
		// when len(xs) is.
		if id, ok := e.(*ast.Ident); ok && depth < 4 {
			if def, ok := defs[id.Name]; ok {
				return validated(def, depth+1)
			}
		}
		return false
	}
	reportDiv := func(pos token.Pos, denom ast.Expr) {
		pass.Reportf(pos, "division by %s, which this function never validates: guard it (== 0 / <= 0 check) before dividing", types.ExprString(ast.Unparen(denom)))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.QUO:
				if analysis.IsFloat(exprType(pass, n.X)) && !validated(n.Y, 0) {
					reportDiv(n.Pos(), n.Y)
				}
			case token.EQL, token.NEQ:
				checkFloatEq(pass, n, comparators)
			}
		case *ast.AssignStmt:
			if n.Tok == token.QUO_ASSIGN && len(n.Lhs) == 1 && analysis.IsFloat(exprType(pass, n.Lhs[0])) && !validated(n.Rhs[0], 0) {
				reportDiv(n.Pos(), n.Rhs[0])
			}
		case *ast.CallExpr:
			fn := analysis.FuncObj(pass.TypesInfo, n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && nanFuncs[fn.Name()] && len(n.Args) == 1 {
				if !validated(n.Args[0], 0) {
					pass.Reportf(n.Pos(), "math.%s(%s) without a domain check in this function: negative or zero inputs mint NaN/-Inf that propagate silently", fn.Name(), types.ExprString(ast.Unparen(n.Args[0])))
				}
			}
		case *ast.RangeStmt:
			checkBareSum(pass, n)
		}
		return true
	})
}

// checkFloatEq flags == / != between two computed (non-constant)
// floats. Exemptions, each semantically necessary:
//   - comparison against a constant (sentinel checks like == 0),
//   - x != x (the NaN probe),
//   - sort/heap comparators (deterministic tie-breaking requires exact
//     comparison; a tolerance would break strict weak ordering),
//   - conditions of early-exit ifs (`if a == b { return ... }` is
//     itself a degenerate-input guard, usually for a division below).
func checkFloatEq(pass *analysis.Pass, be *ast.BinaryExpr, comparators []span) {
	xt, yt := exprType(pass, be.X), exprType(pass, be.Y)
	if !analysis.IsFloat(xt) || !analysis.IsFloat(yt) {
		return
	}
	if isConst(pass, be.X) || isConst(pass, be.Y) {
		return
	}
	if types.ExprString(ast.Unparen(be.X)) == types.ExprString(ast.Unparen(be.Y)) {
		return // x != x is the NaN check
	}
	if insideAny(comparators, be.Pos()) {
		return
	}
	pass.Reportf(be.Pos(), "bitwise float comparison %s %s %s: compare against a tolerance or use math.Nextafter-aware logic", types.ExprString(be.X), be.Op, types.ExprString(be.Y))
}

// comparatorRanges collects position ranges where exact float
// comparison is the correct tool: bodies of Less/less methods and of
// function literals passed to sort/slices ordering helpers, plus
// early-exit if-conditions.
func comparatorRanges(pass *analysis.Pass, fd *ast.FuncDecl) []span {
	var spans []span
	if fd.Name != nil && (fd.Name.Name == "Less" || fd.Name.Name == "less") {
		spans = append(spans, span{fd.Body.Pos(), fd.Body.End()})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.FuncObj(pass.TypesInfo, n)
			if fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					for _, arg := range n.Args {
						if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							spans = append(spans, span{fl.Pos(), fl.End()})
						}
					}
				}
			}
		case *ast.IfStmt:
			if n.Cond != nil && earlyExit(n.Body) {
				spans = append(spans, span{n.Cond.Pos(), n.Cond.End()})
			}
		}
		return true
	})
	return spans
}

// earlyExit reports whether a block's last statement leaves the
// surrounding flow.
func earlyExit(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkBareSum flags `for _, v := range xs { s += v }` over a float
// slice: exactly the loop numeric.Sum replaces with a compensated
// version.
func checkBareSum(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := exprType(pass, rs.X)
	if t == nil {
		return
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok || !analysis.IsFloat(slice.Elem()) {
		return
	}
	if len(rs.Body.List) != 1 {
		return
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
		return
	}
	if _, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); !ok {
		// out[j] += v is an elementwise vector add, not a scalar
		// reduction; numeric.Sum is not a drop-in there.
		return
	}
	v, ok := rs.Value.(*ast.Ident)
	if !ok {
		return
	}
	rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident)
	if !ok || rhs.Name != v.Name {
		return
	}
	pass.Reportf(rs.Pos(), "bare float summation loop: use the compensated numeric.Sum(%s) so long accumulations do not drift", types.ExprString(rs.X))
}

// guardedExprs collects the textual form of every expression the
// function compares or NaN/Inf-probes anywhere, plus len(X) for every
// slice X the function ranges over with a non-empty body (executing the
// body proves len(X) > 0 at least once).
func guardedExprs(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	guarded := make(map[string]bool)
	add := func(e ast.Expr) {
		e = stripConversions(pass, e)
		guarded[types.ExprString(e)] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				add(n.X)
				add(n.Y)
			}
		case *ast.CallExpr:
			fn := analysis.FuncObj(pass.TypesInfo, n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && len(n.Args) >= 1 {
				switch fn.Name() {
				case "IsNaN", "IsInf", "Abs":
					add(n.Args[0])
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				add(n.Tag)
			}
		case *ast.RangeStmt:
			guarded["len("+types.ExprString(ast.Unparen(n.X))+")"] = true
		}
		return true
	})
	return guarded
}

// simpleDefs maps each identifier defined exactly once by a simple
// `x := expr` (or single `x = expr`) in the function to that expr, the
// substrate of definition propagation. Identifiers assigned more than
// once are dropped: their value is path-dependent.
func simpleDefs(pass *analysis.Pass, fd *ast.FuncDecl) map[string]ast.Expr {
	defs := make(map[string]ast.Expr)
	dead := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if _, seen := defs[id.Name]; seen || dead[id.Name] || as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
				dead[id.Name] = true
				delete(defs, id.Name)
				continue
			}
			defs[id.Name] = as.Rhs[i]
		}
		return true
	})
	return defs
}

// stripConversions unwraps parens and numeric conversions so that
// float64(len(xs)) and len(xs) guard each other.
func stripConversions(pass *analysis.Pass, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		// A conversion's Fun denotes a type, not a value.
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			e = call.Args[0]
			continue
		}
		return e
	}
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// obviouslySafe recognizes expressions whose range is safe by
// construction: x*x (non-negative) and math.Abs(...).
func obviouslySafe(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.MUL && types.ExprString(ast.Unparen(e.X)) == types.ExprString(ast.Unparen(e.Y)) {
			return true
		}
	case *ast.CallExpr:
		fn := analysis.FuncObj(pass.TypesInfo, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Abs" {
			return true
		}
	}
	return false
}

func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.TypeOf(e)
}
