package floatcheck_test

import (
	"testing"

	"repro/internal/lint/floatcheck"
	"repro/internal/lint/linttest"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, floatcheck.Analyzer, "testdata/flag", "example.com/a")
}
