// Positive and negative cases for the floatcheck analyzer.
package a

import "math"

func div(a, b float64) float64 {
	return a / b // want "division by b"
}

func divGuarded(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func divByConst(a float64) float64 {
	return a / 2
}

func logUnchecked(x float64) float64 {
	return math.Log(x) // want "math.Log"
}

func logChecked(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

func sqrtOfSquare(x float64) float64 {
	return math.Sqrt(x * x) // non-negative by construction
}

func eq(a, b float64) bool {
	return a == b // want "bitwise float comparison"
}

func nanProbe(x float64) bool {
	return x != x // the canonical NaN check
}

func eqConst(x float64) bool {
	return x == 0 // sentinel comparison against a constant
}

type byVal []float64

func (s byVal) Len() int      { return len(s) }
func (s byVal) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Less needs exact comparison for a strict weak ordering; a tolerance
// here would corrupt sorting.
func (s byVal) Less(i, j int) bool {
	if s[i] == s[j] {
		return i < j
	}
	return s[i] < s[j]
}

func bareSum(xs []float64) float64 {
	var s float64
	for _, v := range xs { // want "bare float summation loop"
		s += v
	}
	return s
}

func vecAdd(rows [][]float64, out []float64) {
	for _, r := range rows {
		for j, v := range r {
			out[j] += v // elementwise vector add, not a scalar reduction
		}
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for i := range xs {
		total += xs[i]
	}
	return total / float64(len(xs)) // len(xs) > 0 was checked above
}
