// Package goroutinecheck enforces goroutine lifecycle discipline
// repo-wide, extending the serve/core-only rule that used to live in
// lockcheck:
//
//   - in server paths (internal/serve, internal/core) raw `go`
//     statements are forbidden outright: request work fans out through
//     internal/parallel so concurrency stays bounded and first-error
//     semantics hold;
//   - everywhere else (outside the concurrency substrates
//     internal/parallel and internal/drift) a raw goroutine must be
//     visibly lifecycle-bound: a WaitGroup Done (with the spawner
//     holding the Wait side), a <-ctx.Done() bound, or a body that is
//     exactly one channel send (the join handle the spawner receives
//     on). Named spawn targets (`go m.dispatch()`) resolve through the
//     call graph so the callee's body is judged wherever it lives.
//
// Findings are suppressed with `//lint:allow goroutinecheck <reason>`
// on the finding's line or the line above.
package goroutinecheck
