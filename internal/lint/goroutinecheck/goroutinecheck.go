package goroutinecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer extends lockcheck's old serve/core-only raw-goroutine rule
// repo-wide: every `go` statement outside the concurrency substrates
// (internal/parallel's bounded pool, internal/drift's lifecycle-managed
// refit workers) must be visibly lifecycle-bound — joined through a
// WaitGroup, bounded by a context's Done channel, or handed a channel
// join handle — so no goroutine can outlive its owner. In server paths
// (internal/serve, internal/core) raw goroutines stay forbidden
// outright: request work fans out through internal/parallel. The
// cluster router (internal/cluster) sits in the default class: its
// hedged attempts and probe loops are allowed goroutines, but each
// must show its bound (the hedge bodies select on the hedge context's
// Done; the probe loop is WaitGroup-joined by cmd/varroute).
var Analyzer = &analysis.Analyzer{
	Name:    "goroutinecheck",
	Version: "v1",
	Doc: "flag raw go statements that are not lifecycle-bound (no WaitGroup Done/Wait " +
		"pair, no ctx.Done() bound, no channel join handle) outside internal/parallel " +
		"and internal/drift; in server paths (internal/serve, internal/core) every raw " +
		"goroutine is flagged — fan out through internal/parallel",
	RunGraph: run,
}

// ExemptPattern selects the packages that ARE the concurrency
// substrate: the bounded worker pool and the drift manager's
// lifecycle-owned refit workers.
var ExemptPattern = regexp.MustCompile(`internal/(parallel|drift)$`)

// ServerPathPattern selects the packages where raw `go` statements are
// forbidden regardless of lifecycle binding: request-serving code must
// fan out through internal/parallel so concurrency stays bounded and
// first-error semantics hold. (Moved here from lockcheck.)
var ServerPathPattern = regexp.MustCompile(`(^|/)(serve|core)$`)

func run(gp *analysis.GraphPass) error {
	for _, p := range gp.Pkgs {
		if ExemptPattern.MatchString(p.Path) {
			continue
		}
		server := ServerPathPattern.MatchString(p.Path)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if server {
					gp.Reportf(gs.Pos(), "raw goroutine in a server path: fan out through internal/parallel (ForEach) so concurrency stays bounded, or justify with //lint:allow")
					return true
				}
				if !lifecycleBound(gp, p, gs) {
					gp.Reportf(gs.Pos(), "raw goroutine without a visible lifecycle bound: join it (WaitGroup Add/Done/Wait), bound it on ctx.Done(), or hand it a channel join handle — or justify with //lint:allow")
				}
				return true
			})
		}
	}
	return nil
}

// lifecycleBound reports whether the spawned function's body shows a
// recognized lifecycle binding. Named callees resolve through the call
// graph so a `go m.dispatch()` in one file is judged by dispatch's body
// in another.
func lifecycleBound(gp *analysis.GraphPass, p *callgraph.Package, gs *ast.GoStmt) bool {
	body, bodyPkg := spawnedBody(gp, p, gs)
	if body == nil {
		return false // external or computed callee: cannot verify, flag it
	}
	return boundBody(bodyPkg, body)
}

// spawnedBody resolves the goroutine's function body: a literal's own
// body, or the declaration body of a named module function.
func spawnedBody(gp *analysis.GraphPass, p *callgraph.Package, gs *ast.GoStmt) (*ast.BlockStmt, *callgraph.Package) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, p
	}
	var id *ast.Ident
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	if fn == nil {
		return nil, nil
	}
	decl, declPkg := gp.Graph.DeclOf(fn)
	if decl == nil {
		return nil, nil
	}
	return decl.Body, declPkg
}

// boundBody recognizes the three lifecycle-binding shapes:
//
//  1. a WaitGroup release — defer wg.Done() or wg.Done() — whose Wait
//     side is the spawner's to hold;
//  2. a receive from some ctx.Done() channel (the goroutine exits when
//     its owner's context is canceled);
//  3. a body that is exactly one channel send: the channel is the join
//     handle the spawner receives on.
func boundBody(p *callgraph.Package, body *ast.BlockStmt) bool {
	if len(body.List) == 1 {
		if _, ok := body.List[0].(*ast.SendStmt); ok {
			return true
		}
	}
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bound {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(p, n) {
				bound = true
				return false
			}
		case *ast.UnaryExpr:
			if isCtxDoneRecv(p, n) {
				bound = true
				return false
			}
		}
		return true
	})
	return bound
}

// isWaitGroupDone matches wg.Done() where wg is a sync.WaitGroup.
func isWaitGroupDone(p *callgraph.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// isCtxDoneRecv matches <-ctx.Done() where ctx is a context.Context.
func isCtxDoneRecv(p *callgraph.Package, ue *ast.UnaryExpr) bool {
	if ue.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(ue.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "context"
}
