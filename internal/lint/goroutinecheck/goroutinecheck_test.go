package goroutinecheck_test

import (
	"testing"

	"repro/internal/lint/goroutinecheck"
	"repro/internal/lint/linttest"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, goroutinecheck.Analyzer, "testdata/flag", "example.com/worker")
}

// TestServerPath pins the stricter server-path rule (moved here from
// lockcheck): under a serve package path even a bound goroutine is
// flagged.
func TestServerPath(t *testing.T) {
	linttest.Run(t, goroutinecheck.Analyzer, "testdata/serve", "example.com/serve")
}

// TestServePathNegative runs the serve testdata under a non-server
// path: the single-send body is a join handle, so nothing is flagged.
func TestServePathNegative(t *testing.T) {
	diags, _ := linttest.Findings(t, goroutinecheck.Analyzer, "testdata/serve", "example.com/notaserver")
	if len(diags) != 0 {
		t.Fatalf("server-path rule leaked outside server paths: %v", diags)
	}
}

// TestClusterPath pins the sharded-serving-tier policy: under
// internal/cluster the lifecycle-bound rule applies (the hedged-attempt
// select shape passes, fire-and-forget is flagged) — the package is
// neither a banned server path nor an exempt substrate.
func TestClusterPath(t *testing.T) {
	linttest.Run(t, goroutinecheck.Analyzer, "testdata/cluster", "example.com/internal/cluster")
}

// TestExemptPaths pins that the concurrency substrates own their raw
// goroutines: under internal/parallel or internal/drift nothing is
// flagged.
func TestExemptPaths(t *testing.T) {
	for _, path := range []string{"example.com/internal/parallel", "example.com/internal/drift"} {
		diags, _ := linttest.Findings(t, goroutinecheck.Analyzer, "testdata/flag", path)
		if len(diags) != 0 {
			t.Fatalf("exempt path %s still flagged: %v", path, diags)
		}
	}
}
