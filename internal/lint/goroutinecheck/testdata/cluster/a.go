// Package cluster pins the policy for the sharded serving tier:
// internal/cluster is NOT a server path (the router may spawn hedged
// attempts) and NOT an exempt substrate — its goroutines must carry a
// visible lifecycle bound like everyone else's. The hedge shape (a
// result send raced against the hedge context's cancellation) is the
// sanctioned pattern.
package cluster

import "context"

type result struct{ err error }

// hedge is the router's doHedged spawn shape: the body selects between
// delivering its result and the hedge context's cancellation, so a
// losing attempt can never block or leak.
func hedge(ctx context.Context, ch chan result) {
	go func() {
		select {
		case ch <- result{}:
		case <-ctx.Done():
		}
	}()
}

// fireAndForget is what the policy forbids: a probe refresher with no
// join handle would outlive the router that spawned it.
func fireAndForget() {
	go func() { // want "raw goroutine without a visible lifecycle bound"
		println("probe")
	}()
}

var (
	_ = hedge
	_ = fireAndForget
)
