// Package worker exercises goroutinecheck outside server paths: raw
// goroutines must show a lifecycle bound — WaitGroup join, ctx.Done()
// bound, or a channel join handle — whether spawned as a literal or as
// a named function resolved through the call graph.
package worker

import (
	"context"
	"sync"
)

func unbound() {
	go func() { // want "raw goroutine without a visible lifecycle bound"
		println("work")
	}()
}

func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("work")
	}()
	wg.Wait()
}

func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func handle() <-chan error {
	done := make(chan error, 1)
	go func() {
		done <- nil
	}()
	return done
}

// dispatch spawns a named function: the callee's body decides, via the
// call graph, whether the spawn is bound.
func dispatch() {
	go loop() // want "raw goroutine without a visible lifecycle bound"
}

func loop() {
	for {
		println("tick")
	}
}

func dispatchBound(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

var (
	_ = unbound
	_ = joined
	_ = ctxBound
	_ = handle
	_ = dispatch
	_ = dispatchBound
)
