// In a package whose import path matches ServerPathPattern, raw `go`
// statements are forbidden outright — even lifecycle-bound ones:
// request-path concurrency must go through the bounded pool.
package serve

func spawn(done chan struct{}) {
	go func() { // want "raw goroutine in a server path"
		done <- struct{}{}
	}()
}

var _ = spawn
