// Package lint is the varlint driver: it loads packages, runs the
// analyzer suite, applies //lint:allow suppressions, subtracts the
// baseline, and renders findings.
//
// The suite machine-checks the invariants this repository's results
// rest on — bit-reproducible randomness and clocks (nondeterminism),
// NaN-free numerics (floatcheck), wrapped error chains (errflow),
// copy-free, branch-safe locking (lockcheck), and atomic-only file
// replacement (pathpolicy) — plus three whole-program checks built on
// the cross-package call graph: static zero-allocation discipline on
// //perf:hotpath-reachable code (alloccheck), context propagation
// (ctxflow), and goroutine lifecycle binding (goroutinecheck).
//
// Per-package analyzers run (and cache) package by package; graph
// analyzers run once over the whole program after every package is
// type-checked, and their findings cache under one program-wide key
// (an edit anywhere can change reachability).
// See README "Static analysis" for the policy and cmd/varlint for the
// CLI.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/alloccheck"
	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/errflow"
	"repro/internal/lint/floatcheck"
	"repro/internal/lint/goroutinecheck"
	"repro/internal/lint/load"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/nondeterminism"
	"repro/internal/lint/pathpolicy"
)

// Suite is the default analyzer set, in report order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nondeterminism.Analyzer,
		floatcheck.Analyzer,
		errflow.Analyzer,
		lockcheck.Analyzer,
		pathpolicy.Analyzer,
		alloccheck.Analyzer,
		ctxflow.Analyzer,
		goroutinecheck.Analyzer,
	}
}

// Config tunes one Run.
type Config struct {
	// Analyzers is the suite to run (default: Suite()).
	Analyzers []*analysis.Analyzer
	// Dir is the module root to run `go list` in ("" = cwd).
	Dir string
	// Baseline is the path of the baseline file; missing files mean an
	// empty baseline. Entries match findings by package, analyzer, and
	// message (not line numbers, so unrelated edits do not churn it).
	Baseline string
	// CacheDir, when non-empty, caches post-suppression findings:
	// per-package analyzers under a content hash of the package and its
	// module-internal dependencies, graph analyzers under one
	// program-wide hash. Keys include each analyzer's Name@Version, so
	// bumping an analyzer's Version invalidates its stale entries.
	CacheDir string
	// WriteBaseline rewrites Baseline with the current findings instead
	// of failing on them.
	WriteBaseline bool
	// Format selects the rendering: "text" (default), "json" (the
	// Finding array), or "github" (GitHub Actions workflow commands, one
	// ::error per finding).
	Format string
	// Fix, in text format, prints the mechanical suggested rewrite under
	// each finding that carries one — a dry-run listing; nothing is
	// applied.
	Fix bool
}

// Finding is one rendered diagnostic.
type Finding struct {
	Pkg      string `json:"pkg"`
	File     string `json:"file"` // path relative to the package dir
	Path     string `json:"path"` // path relative to the module root
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Fix is a mechanical suggested rewrite, when the analyzer offers
	// one (report-only; printed by varlint -fix).
	Fix string `json:"fix,omitempty"`
}

// key is the baseline identity of a finding: stable across line-number
// churn.
func (f Finding) key() string { return f.Pkg + " :: " + f.Analyzer + " :: " + f.Message }

func (f Finding) String() string {
	return fmt.Sprintf("%s/%s:%d:%d: %s: %s", f.Pkg, f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// splitSuite partitions analyzers into per-package and whole-program
// sets.
func splitSuite(analyzers []*analysis.Analyzer) (perPkg, graph []*analysis.Analyzer) {
	for _, a := range analyzers {
		if a.RunGraph != nil {
			graph = append(graph, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	return perPkg, graph
}

// analyzerLabels renders the cache identity of an analyzer set:
// Name@Version per analyzer, in suite order.
func analyzerLabels(analyzers []*analysis.Analyzer) []string {
	labels := make([]string, len(analyzers))
	for i, a := range analyzers {
		labels[i] = a.Name + "@" + a.Version
	}
	return labels
}

// Run executes the suite over the packages matching patterns, printing
// findings to w. It returns the number of unsuppressed, non-baselined
// findings; err is reserved for operational failures (load errors,
// malformed directives, unreadable baseline).
func Run(w io.Writer, patterns []string, cfg Config) (int, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = Suite()
	}
	perPkg, graph := splitSuite(analyzers)
	loader, err := load.New(cfg.Dir, patterns...)
	if err != nil {
		return 0, err
	}
	root := moduleRoot(cfg.Dir)
	var cache *findingCache
	if cfg.CacheDir != "" {
		cache = newFindingCache(cfg.CacheDir, loader, analyzerLabels(perPkg))
	}

	var metas []*load.Meta
	for _, m := range loader.Metas() {
		if strings.Contains(m.Path, "/lint/") && strings.Contains(m.Dir, "testdata") {
			continue
		}
		metas = append(metas, m)
	}

	var all []Finding
	var directiveErrs []string
	for _, m := range metas {
		if cache != nil {
			if fs, ok := cache.get(m); ok {
				all = append(all, fs...)
				continue
			}
		}
		fs, derrs, err := analyzePackage(loader, m, perPkg, root)
		if err != nil {
			return 0, err
		}
		directiveErrs = append(directiveErrs, derrs...)
		all = append(all, fs...)
		if cache != nil && len(derrs) == 0 {
			cache.put(m, fs)
		}
	}
	if len(directiveErrs) > 0 {
		return 0, fmt.Errorf("malformed //lint:allow directives (a reason is mandatory):\n  %s", strings.Join(directiveErrs, "\n  "))
	}

	if len(graph) > 0 {
		fs, err := runGraphAnalyzers(loader, metas, graph, cache, root)
		if err != nil {
			return 0, err
		}
		all = append(all, fs...)
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})

	if cfg.WriteBaseline {
		if err := writeBaseline(cfg.Baseline, all); err != nil {
			return 0, err
		}
		_, _ = fmt.Fprintf(w, "varlint: wrote %d finding(s) to %s\n", len(all), cfg.Baseline)
		return 0, nil
	}

	baseline, err := readBaseline(cfg.Baseline)
	if err != nil {
		return 0, err
	}
	kept := all[:0]
	for _, f := range all {
		if baseline[f.key()] > 0 {
			baseline[f.key()]--
			continue
		}
		kept = append(kept, f)
	}
	if err := render(w, kept, cfg); err != nil {
		return 0, err
	}
	return len(kept), nil
}

// render writes the kept findings in the configured format.
func render(w io.Writer, kept []Finding, cfg Config) error {
	switch cfg.Format {
	case "", "text":
		fixes := 0
		for _, f := range kept {
			_, _ = fmt.Fprintln(w, f.String())
			if cfg.Fix && f.Fix != "" {
				_, _ = fmt.Fprintf(w, "    fix (dry run): %s\n", f.Fix)
				fixes++
			}
		}
		if cfg.Fix {
			_, _ = fmt.Fprintf(w, "varlint: %d finding(s) carry a mechanical fix (dry run; nothing applied)\n", fixes)
		}
	case "json":
		if kept == nil {
			kept = []Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(kept)
	case "github":
		for _, f := range kept {
			_, _ = fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=varlint/%s::%s\n",
				githubEscapeProp(f.Path), f.Line, f.Col, githubEscapeProp(f.Analyzer), githubEscapeData(f.Message))
		}
	default:
		return fmt.Errorf("lint: unknown format %q (want text, json, or github)", cfg.Format)
	}
	return nil
}

// githubEscapeData escapes a workflow-command message value.
func githubEscapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// githubEscapeProp escapes a workflow-command property value.
func githubEscapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

// moduleRoot resolves cfg.Dir to an absolute module root for
// module-relative finding paths.
func moduleRoot(dir string) string {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	return abs
}

// analyzePackage type-checks one package and runs every per-package
// analyzer, returning post-suppression findings plus any
// malformed-directive errors.
func analyzePackage(loader *load.Loader, m *load.Meta, analyzers []*analysis.Analyzer, root string) ([]Finding, []string, error) {
	pkg, err := loader.Check(m.Path)
	if err != nil {
		return nil, nil, err
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, m.Path, err)
		}
	}
	kept, derrs := FilterSuppressed(loader.Fset, pkg.Files, diags)
	return findingsFrom(loader, m, kept, root), derrs, nil
}

// findingsFrom converts post-suppression diagnostics into Findings
// anchored to package m.
func findingsFrom(loader *load.Loader, m *load.Meta, kept []analysis.Diagnostic, root string) []Finding {
	var out []Finding
	for _, d := range kept {
		pos := loader.Fset.Position(d.Pos)
		file, err := filepath.Rel(m.Dir, pos.Filename)
		if err != nil {
			file = filepath.Base(pos.Filename)
		}
		path, err := filepath.Rel(root, pos.Filename)
		if err != nil {
			path = file
		}
		out = append(out, Finding{
			Pkg:      m.Path,
			File:     file,
			Path:     filepath.ToSlash(path),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fix:      d.Fix,
		})
	}
	return out
}

// runGraphAnalyzers type-checks every package, builds the program call
// graph, and runs the whole-program analyzers. Findings are attributed
// to packages by position and suppressed with each package's own
// directives; the cache entry (when enabled) is program-wide.
func runGraphAnalyzers(loader *load.Loader, metas []*load.Meta, graph []*analysis.Analyzer, cache *findingCache, root string) ([]Finding, error) {
	var key string
	if cache != nil {
		key = cache.graphKey(metas, analyzerLabels(graph))
		if fs, ok := cache.getKey(key); ok {
			return fs, nil
		}
	}
	pkgs, byPath, err := checkAll(loader, metas)
	if err != nil {
		return nil, err
	}
	g := callgraph.Build(loader.Fset, pkgs)
	fileOwner := make(map[string]*load.Meta)
	for _, m := range metas {
		for _, name := range m.GoFiles {
			fileOwner[filepath.Join(m.Dir, name)] = m
		}
	}
	perPkgDiags := make(map[string][]analysis.Diagnostic)
	for _, a := range graph {
		gp := &analysis.GraphPass{
			Analyzer: a,
			Fset:     loader.Fset,
			Pkgs:     pkgs,
			Graph:    g,
			Report: func(d analysis.Diagnostic) {
				pos := loader.Fset.Position(d.Pos)
				if m := fileOwner[pos.Filename]; m != nil {
					perPkgDiags[m.Path] = append(perPkgDiags[m.Path], d)
				}
			},
		}
		if err := a.RunGraph(gp); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	var out []Finding
	for _, m := range metas {
		diags := perPkgDiags[m.Path]
		if len(diags) == 0 {
			continue
		}
		// Malformed directives are ignored here: the per-package phase
		// already surfaced them for every non-cached package, and cache
		// entries are only written for clean ones.
		kept, _ := FilterSuppressed(loader.Fset, byPath[m.Path].Files, diags)
		out = append(out, findingsFrom(loader, m, kept, root)...)
	}
	if cache != nil {
		cache.putKey(key, out)
	}
	return out, nil
}

// checkAll type-checks every package and wraps the results for the call
// graph builder.
func checkAll(loader *load.Loader, metas []*load.Meta) ([]*callgraph.Package, map[string]*load.Package, error) {
	pkgs := make([]*callgraph.Package, 0, len(metas))
	byPath := make(map[string]*load.Package, len(metas))
	for _, m := range metas {
		pkg, err := loader.Check(m.Path)
		if err != nil {
			return nil, nil, err
		}
		byPath[m.Path] = pkg
		pkgs = append(pkgs, &callgraph.Package{Path: m.Path, Dir: m.Dir, Files: pkg.Files, Types: pkg.Types, Info: pkg.Info})
	}
	return pkgs, byPath, nil
}

// HotReport loads the module, builds the call graph, and writes the
// hot-path reachability report (roots, the reachable hot set, pooled
// boundaries, and one provenance chain per function).
func HotReport(w io.Writer, patterns []string, cfg Config) error {
	loader, err := load.New(cfg.Dir, patterns...)
	if err != nil {
		return err
	}
	var metas []*load.Meta
	for _, m := range loader.Metas() {
		if strings.Contains(m.Path, "/lint/") && strings.Contains(m.Dir, "testdata") {
			continue
		}
		metas = append(metas, m)
	}
	pkgs, _, err := checkAll(loader, metas)
	if err != nil {
		return err
	}
	callgraph.Build(loader.Fset, pkgs).WriteHotReport(w)
	return nil
}

// hashPackage computes the content identity of a package: its own file
// contents plus the recursive hash of every module-internal import and
// the Go version. Analyzer labels are deliberately NOT part of this
// hash — each cache scope mixes its own analyzer set in on top, so a
// per-package analyzer bump cannot roll the whole-program graph key.
func hashPackage(loader *load.Loader, m *load.Meta, memo map[string]string) (string, error) {
	if h, ok := memo[m.Path]; ok {
		return h, nil
	}
	memo[m.Path] = "" // cycle guard; package cycles cannot compile anyway
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "go=%s\n", runtime.Version())
	for _, name := range m.GoFiles {
		data, err := os.ReadFile(filepath.Join(m.Dir, name))
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "file=%s len=%d\n", name, len(data))
		_, _ = h.Write(data)
	}
	byPath := make(map[string]*load.Meta)
	for _, mm := range loader.Metas() {
		byPath[mm.Path] = mm
	}
	imports := append([]string(nil), m.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		dep, ok := byPath[imp]
		if !ok {
			continue // standard library: covered by the Go version
		}
		dh, err := hashPackage(loader, dep, memo)
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "dep=%s hash=%s\n", imp, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	memo[m.Path] = sum
	return sum, nil
}
