// Package lint is the varlint driver: it loads packages, runs the
// analyzer suite, applies //lint:allow suppressions, subtracts the
// baseline, and renders findings.
//
// The suite machine-checks the invariants this repository's results
// rest on — bit-reproducible randomness and clocks (nondeterminism),
// NaN-free numerics (floatcheck), wrapped error chains (errflow),
// copy-free, branch-safe locking plus pooled goroutines (lockcheck),
// and atomic-only file replacement (pathpolicy).
// See README "Static analysis" for the policy and cmd/varlint for the
// CLI.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/errflow"
	"repro/internal/lint/floatcheck"
	"repro/internal/lint/load"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/nondeterminism"
	"repro/internal/lint/pathpolicy"
)

// Suite is the default analyzer set, in report order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nondeterminism.Analyzer,
		floatcheck.Analyzer,
		errflow.Analyzer,
		lockcheck.Analyzer,
		pathpolicy.Analyzer,
	}
}

// Config tunes one Run.
type Config struct {
	// Analyzers is the suite to run (default: Suite()).
	Analyzers []*analysis.Analyzer
	// Dir is the module root to run `go list` in ("" = cwd).
	Dir string
	// Baseline is the path of the baseline file; missing files mean an
	// empty baseline. Entries match findings by package, analyzer, and
	// message (not line numbers, so unrelated edits do not churn it).
	Baseline string
	// CacheDir, when non-empty, caches per-package post-suppression
	// findings keyed by the content hash of the package and its
	// module-internal dependencies, so unchanged packages skip parsing
	// and type-checking entirely.
	CacheDir string
	// WriteBaseline rewrites Baseline with the current findings instead
	// of failing on them.
	WriteBaseline bool
}

// Finding is one rendered diagnostic.
type Finding struct {
	Pkg      string `json:"pkg"`
	File     string `json:"file"` // path relative to the package dir
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// key is the baseline identity of a finding: stable across line-number
// churn.
func (f Finding) key() string { return f.Pkg + " :: " + f.Analyzer + " :: " + f.Message }

func (f Finding) String() string {
	return fmt.Sprintf("%s/%s:%d:%d: %s: %s", f.Pkg, f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Run executes the suite over the packages matching patterns, printing
// findings to w. It returns the number of unsuppressed, non-baselined
// findings; err is reserved for operational failures (load errors,
// malformed directives, unreadable baseline).
func Run(w io.Writer, patterns []string, cfg Config) (int, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = Suite()
	}
	loader, err := load.New(cfg.Dir, patterns...)
	if err != nil {
		return 0, err
	}
	var cache *findingCache
	if cfg.CacheDir != "" {
		cache = newFindingCache(cfg.CacheDir, loader, analyzers)
	}

	var all []Finding
	var directiveErrs []string
	for _, m := range loader.Metas() {
		if strings.Contains(m.Path, "/lint/") && strings.Contains(m.Dir, "testdata") {
			continue
		}
		if cache != nil {
			if fs, ok := cache.get(m); ok {
				all = append(all, fs...)
				continue
			}
		}
		fs, derrs, err := analyzePackage(loader, m, analyzers)
		if err != nil {
			return 0, err
		}
		directiveErrs = append(directiveErrs, derrs...)
		all = append(all, fs...)
		if cache != nil && len(derrs) == 0 {
			cache.put(m, fs)
		}
	}
	if len(directiveErrs) > 0 {
		return 0, fmt.Errorf("malformed //lint:allow directives (a reason is mandatory):\n  %s", strings.Join(directiveErrs, "\n  "))
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})

	if cfg.WriteBaseline {
		if err := writeBaseline(cfg.Baseline, all); err != nil {
			return 0, err
		}
		_, _ = fmt.Fprintf(w, "varlint: wrote %d finding(s) to %s\n", len(all), cfg.Baseline)
		return 0, nil
	}

	baseline, err := readBaseline(cfg.Baseline)
	if err != nil {
		return 0, err
	}
	kept := all[:0]
	for _, f := range all {
		if baseline[f.key()] > 0 {
			baseline[f.key()]--
			continue
		}
		kept = append(kept, f)
	}
	for _, f := range kept {
		_, _ = fmt.Fprintln(w, f.String())
	}
	return len(kept), nil
}

// analyzePackage type-checks one package and runs every analyzer,
// returning post-suppression findings plus any malformed-directive
// errors.
func analyzePackage(loader *load.Loader, m *load.Meta, analyzers []*analysis.Analyzer) ([]Finding, []string, error) {
	pkg, err := loader.Check(m.Path)
	if err != nil {
		return nil, nil, err
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, m.Path, err)
		}
	}
	kept, derrs := FilterSuppressed(loader.Fset, pkg.Files, diags)
	var out []Finding
	for _, d := range kept {
		pos := loader.Fset.Position(d.Pos)
		file, err := filepath.Rel(m.Dir, pos.Filename)
		if err != nil {
			file = filepath.Base(pos.Filename)
		}
		out = append(out, Finding{
			Pkg:      m.Path,
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out, derrs, nil
}

// hashPackage computes the cache identity of a package: its own file
// contents plus the recursive hash of every module-internal import,
// the analyzer names, and the Go version.
func hashPackage(loader *load.Loader, m *load.Meta, analyzers []*analysis.Analyzer, memo map[string]string) (string, error) {
	if h, ok := memo[m.Path]; ok {
		return h, nil
	}
	memo[m.Path] = "" // cycle guard; package cycles cannot compile anyway
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "go=%s\n", runtime.Version())
	for _, a := range analyzers {
		_, _ = fmt.Fprintf(h, "analyzer=%s\n", a.Name)
	}
	for _, name := range m.GoFiles {
		data, err := os.ReadFile(filepath.Join(m.Dir, name))
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "file=%s len=%d\n", name, len(data))
		_, _ = h.Write(data)
	}
	byPath := make(map[string]*load.Meta)
	for _, mm := range loader.Metas() {
		byPath[mm.Path] = mm
	}
	imports := append([]string(nil), m.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		dep, ok := byPath[imp]
		if !ok {
			continue // standard library: covered by the Go version
		}
		dh, err := hashPackage(loader, dep, analyzers, memo)
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "dep=%s hash=%s\n", imp, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	memo[m.Path] = sum
	return sum, nil
}
