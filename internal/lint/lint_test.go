package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// writeProbeModule lays down a minimal single-package module for the
// driver to analyze and returns its root.
func writeProbeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module probe\n\ngo 1.22\n",
		"a.go":   "package a\n\nfunc A() int { return 1 }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCacheInvalidationOnVersionBump is the regression test for the
// analyzer-version half of the cache key: a warm cache must keep
// serving findings without re-running analyzers while nothing changed,
// and bumping an analyzer's Version — per-package or whole-program —
// must roll its key and force re-analysis, without disturbing the
// other scope's entries.
func TestCacheInvalidationOnVersionBump(t *testing.T) {
	dir := writeProbeModule(t)
	cacheDir := filepath.Join(dir, "cache")

	var pkgRuns, graphRuns int
	pkgProbe := &analysis.Analyzer{
		Name:    "pkgprobe",
		Version: "v1",
		Doc:     "test per-package analyzer",
		Run: func(pass *analysis.Pass) error {
			pkgRuns++
			pass.Reportf(pass.Files[0].Pos(), "per-package probe finding")
			return nil
		},
	}
	graphProbe := &analysis.Analyzer{
		Name:    "graphprobe",
		Version: "v1",
		Doc:     "test whole-program analyzer",
		RunGraph: func(gp *analysis.GraphPass) error {
			graphRuns++
			gp.Reportf(gp.Pkgs[0].Files[0].Pos(), "graph probe finding")
			return nil
		},
	}

	run := func() int {
		var buf bytes.Buffer
		n, err := lint.Run(&buf, []string{"./..."}, lint.Config{
			Analyzers: []*analysis.Analyzer{pkgProbe, graphProbe},
			Dir:       dir,
			CacheDir:  cacheDir,
		})
		if err != nil {
			t.Fatalf("lint.Run: %v\n%s", err, buf.String())
		}
		return n
	}

	if n := run(); n != 2 {
		t.Fatalf("cold run: %d finding(s), want 2", n)
	}
	if pkgRuns != 1 || graphRuns != 1 {
		t.Fatalf("cold run: pkgRuns=%d graphRuns=%d, want 1/1", pkgRuns, graphRuns)
	}

	// Warm cache, nothing changed: both scopes replay cached findings.
	if n := run(); n != 2 {
		t.Fatalf("warm run: %d finding(s), want 2 from cache", n)
	}
	if pkgRuns != 1 || graphRuns != 1 {
		t.Fatalf("warm run re-analyzed: pkgRuns=%d graphRuns=%d, want 1/1", pkgRuns, graphRuns)
	}

	// Bumping the per-package analyzer's version rolls the per-package
	// key (and with it the program-wide graph key, which hashes the same
	// package entries only through its own labels — the graph scope keys
	// on graph-analyzer labels, so it must stay cached).
	pkgProbe.Version = "v2"
	if n := run(); n != 2 {
		t.Fatalf("after pkg version bump: %d finding(s), want 2", n)
	}
	if pkgRuns != 2 {
		t.Fatalf("pkg version bump did not invalidate: pkgRuns=%d, want 2", pkgRuns)
	}
	if graphRuns != 1 {
		t.Fatalf("pkg version bump rolled the graph key: graphRuns=%d, want 1", graphRuns)
	}

	// Bumping the graph analyzer's version rolls only the graph key.
	graphProbe.Version = "v2"
	if n := run(); n != 2 {
		t.Fatalf("after graph version bump: %d finding(s), want 2", n)
	}
	if pkgRuns != 2 {
		t.Fatalf("graph version bump invalidated per-package entries: pkgRuns=%d, want 2", pkgRuns)
	}
	if graphRuns != 2 {
		t.Fatalf("graph version bump did not invalidate: graphRuns=%d, want 2", graphRuns)
	}

	// Editing a source file invalidates both scopes.
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package a\n\nfunc A() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := run(); n != 2 {
		t.Fatalf("after edit: %d finding(s), want 2", n)
	}
	if pkgRuns != 3 || graphRuns != 3 {
		t.Fatalf("edit did not invalidate: pkgRuns=%d graphRuns=%d, want 3/3", pkgRuns, graphRuns)
	}
}

// TestFormats pins the json and github renderings of a finding so the
// CI consumer contract cannot drift silently.
func TestFormats(t *testing.T) {
	dir := writeProbeModule(t)
	probe := &analysis.Analyzer{
		Name:    "probe",
		Version: "v1",
		Doc:     "test analyzer",
		Run: func(pass *analysis.Pass) error {
			pass.Reportf(pass.Files[0].Pos(), "%s", "message with 100% certainty")
			return nil
		},
	}
	run := func(format string) string {
		var buf bytes.Buffer
		n, err := lint.Run(&buf, []string{"./..."}, lint.Config{
			Analyzers: []*analysis.Analyzer{probe},
			Dir:       dir,
			Format:    format,
		})
		if err != nil {
			t.Fatalf("lint.Run(%s): %v", format, err)
		}
		if n != 1 {
			t.Fatalf("lint.Run(%s): %d finding(s), want 1", format, n)
		}
		return buf.String()
	}

	github := run("github")
	want := "::error file=a.go,line=1,col=1,title=varlint/probe::message with 100%25 certainty\n"
	if github != want {
		t.Errorf("github format:\n got %q\nwant %q", github, want)
	}

	jsonOut := run("json")
	for _, frag := range []string{`"pkg": "probe"`, `"path": "a.go"`, `"analyzer": "probe"`, `"message": "message with 100% certainty"`} {
		if !bytes.Contains([]byte(jsonOut), []byte(frag)) {
			t.Errorf("json format missing %s:\n%s", frag, jsonOut)
		}
	}
}
