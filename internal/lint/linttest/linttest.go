// Package linttest is the repository's analysistest harness: it
// type-checks a self-contained testdata package, runs one analyzer over
// it, applies the //lint:allow suppression filter, and matches the
// surviving diagnostics against `// want "substring"` markers in the
// source.
//
// A marker asserts that the analyzer reports a finding on its line
// whose message contains the quoted substring; several markers may sit
// on one line. A finding with no marker, or a marker with no finding,
// fails the test. Testdata packages import only the standard library so
// that type-checking needs no module resolution.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// wantRE matches one `// want "..."` marker clause. Markers may stack:
// `// want "a" "b"`.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run type-checks the .go files in dir as a package with import path
// pkgPath, runs a over it, filters suppressions, and diffs the result
// against the `// want` markers. pkgPath matters: path-scoped analyzer
// policy (the internal/randx exemption, goroutinecheck's server-path
// rule) keys off it. Graph analyzers (RunGraph) get a single-package
// call graph built from the same files.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	diags, malformed := Findings(t, a, dir, pkgPath)
	if len(malformed) > 0 {
		t.Fatalf("malformed //lint:allow directives:\n%s", strings.Join(malformed, "\n"))
	}
	checkExpectations(t, diags, dir)
}

// Findings is the low-level entry point: it returns the
// post-suppression diagnostics (as "file:line: message" strings sorted
// by position) and the malformed-directive descriptions, letting tests
// assert on suppression mechanics directly.
func Findings(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) (diags []string, malformed []string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	var raw []analysis.Diagnostic
	if a.RunGraph != nil {
		cp := &callgraph.Package{Path: pkgPath, Dir: dir, Files: files, Types: pkg, Info: info}
		pkgs := []*callgraph.Package{cp}
		gp := &analysis.GraphPass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     pkgs,
			Graph:    callgraph.Build(fset, pkgs),
			Report:   func(d analysis.Diagnostic) { raw = append(raw, d) },
		}
		if err := a.RunGraph(gp); err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, dir, err)
		}
	} else {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, dir, err)
		}
	}
	kept, malformed := lint.FilterSuppressed(fset, files, raw)
	for _, d := range kept {
		pos := fset.Position(d.Pos)
		diags = append(diags, fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
	}
	sort.Strings(diags)
	return diags, malformed
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

// checkExpectations diffs diagnostics (as rendered by Findings) against
// the // want markers found in dir's sources.
func checkExpectations(t *testing.T, diags []string, dir string) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	want := make(map[key][]string)
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("reparse %s: %v", dir, err)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					want[k] = append(want[k], m[1])
				}
			}
		}
	}
	unmatched := make(map[key][]string, len(want))
	for k, v := range want {
		unmatched[k] = append([]string(nil), v...)
	}
	for _, d := range diags {
		parts := strings.SplitN(d, ":", 3)
		var line int
		_, _ = fmt.Sscanf(parts[1], "%d", &line)
		k := key{parts[0], line}
		matched := false
		for i, w := range unmatched[k] {
			if strings.Contains(parts[2], w) {
				unmatched[k] = append(unmatched[k][:i], unmatched[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for k, ws := range unmatched {
		for _, w := range ws {
			t.Errorf("%s:%d: expected a finding containing %q, got none", k.file, k.line, w)
		}
	}
}
