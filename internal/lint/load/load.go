// Package load locates, parses, and type-checks the packages varlint
// analyzes.
//
// Package discovery shells out to `go list -json` (the only reliable
// arbiter of build constraints and module paths), while type-checking
// runs in-process: packages inside this module are checked from their
// parsed syntax in dependency order, and imports that leave the module
// (the standard library — the module has no external dependencies) fall
// back to the compiler's source importer. Test files are excluded on
// purpose: the analyzers guard production invariants, and tests
// legitimately use wall clocks, ad-hoc randomness, and float literals.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Meta is one `go list` package record, before type-checking.
type Meta struct {
	Path    string // import path
	Name    string // package name
	Dir     string // directory on disk
	GoFiles []string
	Imports []string
}

// Package is a parsed, type-checked package ready for analysis.
type Package struct {
	Meta  *Meta
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages on demand, memoizing both
// the module-internal results and the source-importer fallback so each
// package is checked at most once per process.
type Loader struct {
	Fset    *token.FileSet
	metas   []*Meta
	byPath  map[string]*Meta
	checked map[string]*Package
	failed  map[string]error
	srcImp  types.ImporterFrom
}

// New runs `go list` in dir (the module root; "" means the process
// working directory) over the given patterns and returns a Loader for
// the matched packages.
func New(dir string, patterns ...string) (*Loader, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		metas:   metas,
		byPath:  make(map[string]*Meta, len(metas)),
		checked: make(map[string]*Package),
		failed:  make(map[string]error),
		srcImp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	for _, m := range metas {
		l.byPath[m.Path] = m
	}
	return l, nil
}

// Metas lists the matched packages in `go list` order.
func (l *Loader) Metas() []*Meta { return l.metas }

// Check parses and type-checks the package at path (which must be one
// of the matched packages), memoized.
func (l *Loader) Check(path string) (*Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if err, ok := l.failed[path]; ok {
		return nil, err
	}
	m, ok := l.byPath[path]
	if !ok {
		return nil, fmt.Errorf("load: package %s was not matched by the loader's patterns", path)
	}
	p, err := l.check(m)
	if err != nil {
		l.failed[path] = err
		return nil, err
	}
	l.checked[path] = p
	return p, nil
}

func (l *Loader) check(m *Meta) (*Package, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(m.Path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", m.Path, err)
	}
	return &Package{Meta: m, Files: files, Types: pkg, Info: info}, nil
}

// loaderImporter routes module-internal imports through the Loader
// (sharing syntax, FileSet, and results with the analysis passes) and
// everything else through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.byPath[path]; ok {
		p, err := l.Check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.srcImp.ImportFrom(path, srcDir, mode)
}

// goList shells out to the go command for package metadata.
func goList(dir string, patterns []string) ([]*Meta, error) {
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Imports", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var metas []*Meta
	dec := json.NewDecoder(&out)
	for dec.More() {
		var rec struct {
			ImportPath string
			Name       string
			Dir        string
			GoFiles    []string
			Imports    []string
		}
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		if len(rec.GoFiles) == 0 {
			continue // test-only or empty package: nothing to analyze
		}
		sort.Strings(rec.GoFiles)
		metas = append(metas, &Meta{
			Path:    rec.ImportPath,
			Name:    rec.Name,
			Dir:     rec.Dir,
			GoFiles: rec.GoFiles,
			Imports: rec.Imports,
		})
	}
	return metas, nil
}
