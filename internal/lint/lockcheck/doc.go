// Package lockcheck enforces the concurrency discipline the serving
// and training paths rely on:
//
//   - No copied locks: value receivers, value parameters, assignments,
//     and range values whose type (transitively, through struct and
//     array composition) carries a sync.Mutex, RWMutex, WaitGroup,
//     Once, Cond, Map, or Pool are flagged — every copy forks the lock
//     state. Pointer fields stop the walk, fresh composite literals and
//     constructor results hand over never-locked values, and blank
//     discards retain no copy.
//   - Lock/Unlock shape: after a Lock or RLock, the critical section
//     must either be straight-line code ending in the matching release,
//     or be covered by a deferred release. A branch, loop, return, or
//     go statement between Lock and a non-deferred Unlock means one
//     early return or panic strands the lock.
//
// The raw-goroutine rule for server paths moved to goroutinecheck
// (lockcheck v2), which enforces it repo-wide with call-graph-resolved
// lifecycle binding.
//
// Findings are suppressed with `//lint:allow lockcheck <reason>` on the
// finding's line or the line above; the reason is mandatory.
package lockcheck
