package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer enforces the lock discipline the serving and training
// paths rely on: no copied locks and no critical section that branches
// between Lock and a non-deferred Unlock. (The raw-goroutine rule that
// used to live here moved to goroutinecheck in v2, where it applies
// repo-wide with call-graph-resolved lifecycle binding.)
var Analyzer = &analysis.Analyzer{
	Name:    "lockcheck",
	Version: "v2",
	Doc: "flag copies of lock-bearing values (value receivers, value params, " +
		"assignments, range values) and Lock/Unlock pairs where the critical section " +
		"branches without a deferred Unlock",
	Run: run,
}

// lockNames are the sync types whose values must never be copied after
// first use.
var lockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true, "Map": true, "Pool": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n)
				if n.Body != nil {
					checkLockDiscipline(pass, n.Body)
				}
			case *ast.AssignStmt:
				checkCopyAssign(pass, n)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			}
			return true
		})
	}
	return nil
}

// containsLock walks t's struct composition (fields, arrays, embedded
// structs) for a sync lock type. Pointers stop the walk: a *Mutex field
// is shareable.
func containsLock(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockNames[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return false
}

// checkSignature flags value receivers and value parameters whose type
// carries a lock: every call copies the lock state.
func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(field *ast.Field, what string) {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if containsLock(t, 0) {
			pass.Reportf(field.Pos(), "%s passes a lock-bearing %s by value: every call copies the lock; use a pointer", what, t.String())
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			report(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			report(field, "parameter")
		}
	}
}

// checkCopyAssign flags `x := y` / `x = y` where y is an existing
// lock-bearing value (not a fresh composite literal or call result —
// constructors hand over ownership of a never-locked value).
func checkCopyAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue // blank discard retains no copy
		}
		if containsLock(t, 0) {
			pass.Reportf(as.Pos(), "assignment copies lock-bearing value %s (%s): share it through a pointer", types.ExprString(ast.Unparen(as.Lhs[i])), t.String())
		}
	}
}

// checkRangeCopy flags `for _, v := range xs` where the element type
// carries a lock: v is a copy per iteration.
func checkRangeCopy(pass *analysis.Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	id, ok := rs.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	t := pass.TypesInfo.TypeOf(rs.Value)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(t, 0) {
		pass.Reportf(rs.Pos(), "range value %s copies a lock-bearing %s each iteration: range over indices and take pointers", id.Name, t.String())
	}
}

// lockCall matches <recv>.Lock / RLock / Unlock / RUnlock and returns
// the textual receiver and the method name.
func lockCall(stmt ast.Stmt) (recv, method string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	return lockCallExpr(es.X)
}

func lockCallExpr(e ast.Expr) (recv, method string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// unlockFor maps a lock method to its release.
func unlockFor(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// checkLockDiscipline walks every statement list in the function. For
// each Lock it requires one of:
//   - a deferred matching Unlock reachable through straight-line
//     statements, or
//   - a matching non-deferred Unlock with only straight-line statements
//     (no if/for/switch/select/return/go) in between.
//
// Anything else — a branch inside the critical section without a
// deferred release, or no release in the same list at all — is flagged,
// because one early return or panic then strands the lock.
func checkLockDiscipline(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, list := range analysis.StmtLists(body) {
		for i, stmt := range list {
			recv, method, ok := lockCall(stmt)
			if !ok || (method != "Lock" && method != "RLock") {
				continue
			}
			checkCriticalSection(pass, stmt.Pos(), recv, unlockFor(method), list[i+1:], body)
		}
	}
}

func checkCriticalSection(pass *analysis.Pass, lockPos token.Pos, recv, unlock string, rest []ast.Stmt, body *ast.BlockStmt) {
	for _, stmt := range rest {
		// Deferred release: everything after is covered, done.
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if r, m, ok := lockCallExpr(ds.Call); ok && r == recv && m == unlock {
				return
			}
		}
		if r, m, ok := lockCall(stmt); ok && r == recv && m == unlock {
			return // straight-line critical section
		}
		if !straightLine(stmt) {
			pass.Reportf(lockPos, "%s.%s critical section branches before %s: defer the %s (or hoist the branch out) so early returns and panics cannot strand the lock", recv, lockOf(unlock), unlock, unlock)
			return
		}
	}
	// No release in this statement list; accept a deferred release
	// anywhere in the function (Lock in a helper-free getter pattern),
	// otherwise flag.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			if r, m, ok := lockCallExpr(ds.Call); ok && r == recv && m == unlock {
				found = true
			}
		}
		return !found
	})
	if !found {
		pass.Reportf(lockPos, "%s.%s has no matching %s on this path: release the lock before leaving the block or defer it", recv, lockOf(unlock), unlock)
	}
}

func lockOf(unlock string) string {
	if unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// straightLine reports whether stmt cannot redirect control flow out of
// or around the critical section.
func straightLine(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		return true
	}
	return false
}
