package lockcheck_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockcheck"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "testdata/flag", "example.com/a")
}

// TestServerPath pins the path scoping of the raw-goroutine rule: the
// same statement is flagged under a serve package path and ignored
// under an ordinary one (covered by goOutsideServer in testdata/flag).
func TestServerPath(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "testdata/serve", "example.com/serve")
}

// TestServePathNegative runs the serve testdata under a non-server
// path, where the goroutine must NOT be flagged.
func TestServePathNegative(t *testing.T) {
	diags, _ := linttest.Findings(t, lockcheck.Analyzer, "testdata/serve", "example.com/notaserver")
	if len(diags) != 0 {
		t.Fatalf("raw-goroutine rule leaked outside server paths: %v", diags)
	}
}
