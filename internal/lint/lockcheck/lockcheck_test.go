package lockcheck_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockcheck"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "testdata/flag", "example.com/a")
}
