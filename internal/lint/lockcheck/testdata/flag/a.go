// Positive and negative cases for the lockcheck analyzer in an
// ordinary (non-server) package: the lock-copy and lock-discipline
// rules apply, the raw-goroutine rule does not.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func byValue(c counter) int { // want "passes a lock-bearing"
	return c.n
}

func byPointer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func copyAssign(c *counter) {
	d := *c // want "copies lock-bearing value d"
	_ = d
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want "range value c copies a lock-bearing"
		total += c.n
	}
	return total
}

func branchy(c *counter, cond bool) {
	c.mu.Lock() // want "critical section branches"
	if cond {
		c.n++
	}
	c.mu.Unlock()
}

func leaky(c *counter) {
	c.mu.Lock() // want "has no matching Unlock"
	c.n++
}

func straight(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func goOutsideServer(done chan struct{}) {
	go func() { // goroutine lifecycle is goroutinecheck's concern, not lockcheck's
		done <- struct{}{}
	}()
}
