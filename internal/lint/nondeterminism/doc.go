// Package nondeterminism flags the three sources of run-to-run
// variation that break this repository's bit-reproducibility contract:
//
//   - Ambient clocks: time.Now, time.Since, and time.Until read wall
//     time that no seed controls. Code takes a randx.Clock instead —
//     randx.SystemClock at process edges, FixedClock/StepClock (via the
//     SetClock levers) in tests.
//   - The global math/rand source: package-level rand.IntN, Float64,
//     Shuffle, … draw from a process-global, seed-ambient stream.
//     Seeded *randx.RNG values (or local rand.New(rand.NewPCG(...))
//     sources) are the sanctioned replacement; the package-level
//     constructors (New, NewPCG, NewChaCha8, NewSource, NewZipf) and
//     methods on local sources are exempt.
//   - Order-sensitive map iteration: appending to a slice or
//     accumulating a float inside `for ... range m` bakes Go's
//     randomized iteration order into the output. Integer accumulation,
//     writes keyed by the range key, and loops whose slice is sorted
//     immediately after are all recognized as order-free and left
//     alone.
//
// Packages whose import path ends in internal/randx are exempt
// wholesale: randx is the wrapper that owns the one legal time.Now
// reference (SystemClock) and the raw rand constructors.
//
// Findings are suppressed with `//lint:allow nondeterminism <reason>`
// on the finding's line or the line above; the reason is mandatory.
package nondeterminism
