package nondeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags the three nondeterminism sources that break this
// project's bit-reproducibility contract: ambient clocks, the global
// math/rand source, and order-sensitive iteration over maps.
var Analyzer = &analysis.Analyzer{
	Name:    "nondeterminism",
	Version: "v1",
	Doc: "forbid ambient clocks (time.Now/Since/Until), the global math/rand source, " +
		"and map iteration that feeds order-sensitive output (slice append or float " +
		"accumulation); the sanctioned escape hatches are internal/randx (RNG, Clock, " +
		"SystemClock) and the SetClock levers",
	Run: run,
}

// randCtors are the math/rand package-level constructors that build a
// *local* seeded source — the raw material internal/randx wraps — and
// therefore stay legal; every other package-level function draws from
// the global, seed-ambient source.
var randCtors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/randx") {
		// randx is the sanctioned wrapper: it owns the one legal
		// time.Now reference (SystemClock) and the rand constructors.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on a local *rand.Rand etc. are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(), "ambient clock time.%s: route through a randx.Clock (randx.SystemClock at the edges, SetClock in tests)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randCtors[fn.Name()] {
					pass.Reportf(sel.Pos(), "global math/rand source rand.%s: use a seeded *randx.RNG so the draw is reproducible", fn.Name())
				}
			}
			return true
		})
	}
	checkMapRanges(pass)
	return nil
}

// checkMapRanges flags `for k, v := range m` over a map when the loop
// body appends to a slice declared outside the loop (element order then
// depends on map iteration order) or accumulates into an outer
// floating-point location (float addition is not associative, so the
// sum's bits depend on iteration order). Integer accumulation and
// writes keyed by the range key are exact or order-free and stay legal,
// as does an append whose slice is sorted immediately after the loop.
func checkMapRanges(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, list := range analysis.StmtLists(f) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRangeBody(pass, rs, list[i+1:])
			}
		}
	}
}

func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
					continue
				}
				target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || !declaredOutside(pass, target, rs) {
					continue
				}
				if sortedAfter(pass, target.Name, after) {
					continue
				}
				pass.Reportf(as.Pos(), "append to %s inside a map-range loop: element order follows map iteration order; collect and sort the keys first (or sort %s right after the loop)", target.Name, target.Name)
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := as.Lhs[0]
			lt := pass.TypesInfo.TypeOf(lhs)
			if lt == nil || !analysis.IsFloat(lt) {
				return true // integer accumulation is exact in any order
			}
			// m2[k] op= v — indexed by the range key — lands each map
			// entry in its own slot, so iteration order cannot matter.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyObj != nil && usesObj(pass, ix.Index, keyObj) {
				return true
			}
			if !exprDeclaredOutside(pass, lhs, rs) {
				return true
			}
			pass.Reportf(as.Pos(), "float accumulation (%s) inside a map-range loop: float addition is order-sensitive, so the result depends on map iteration order; iterate sorted keys", as.Tok)
		}
		return true
	})
}

// rangeVarObj resolves the object of a `k` or `_, v :=` range variable.
func rangeVarObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// usesObj reports whether expr mentions obj.
func usesObj(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// declaredOutside reports whether id's object is declared outside the
// range statement (i.e. the loop mutates surviving state).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// exprDeclaredOutside extends declaredOutside to the base identifier of
// selector/index chains (s.total, acc[i], ...).
func exprDeclaredOutside(pass *analysis.Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return declaredOutside(pass, e, rs)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether one of the statements following the loop
// in the same block sorts the named slice, which restores a
// deterministic order.
func sortedAfter(pass *analysis.Pass, name string, after []ast.Stmt) bool {
	for _, stmt := range after {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := analysis.FuncObj(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			continue
		}
		if types.ExprString(ast.Unparen(call.Args[0])) == name {
			return true
		}
	}
	return false
}
