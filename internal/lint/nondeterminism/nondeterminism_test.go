package nondeterminism_test

import (
	"strings"
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nondeterminism"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, nondeterminism.Analyzer, "testdata/flag", "example.com/a")
}

// TestRandxExempt pins the sanctioned escape hatch: a package whose
// import path ends in internal/randx may touch the ambient clock.
func TestRandxExempt(t *testing.T) {
	linttest.Run(t, nondeterminism.Analyzer, "testdata/randx", "example.com/internal/randx")
}

// TestNoFalseExempt makes sure the exemption really keys off the import
// path: the same source under a non-randx path is flagged.
func TestNoFalseExempt(t *testing.T) {
	diags, _ := linttest.Findings(t, nondeterminism.Analyzer, "testdata/randx", "example.com/randxish")
	if len(diags) != 1 || !strings.Contains(diags[0], "time.Now") {
		t.Fatalf("want exactly the time.Now finding under a non-exempt path, got %v", diags)
	}
}

func TestSuppression(t *testing.T) {
	linttest.Run(t, nondeterminism.Analyzer, "testdata/suppress", "example.com/s")
}

func TestMissingReasonIsError(t *testing.T) {
	diags, malformed := linttest.Findings(t, nondeterminism.Analyzer, "testdata/badallow", "example.com/s")
	if len(malformed) != 1 {
		t.Fatalf("want 1 malformed directive, got %d: %v", len(malformed), malformed)
	}
	if len(diags) != 1 || !strings.Contains(diags[0], "time.Now") {
		t.Fatalf("a malformed directive must not suppress its finding; got %v", diags)
	}
}
