// A directive without a reason is malformed: it must be reported as an
// error and must NOT suppress the finding it covers.
package s

import "time"

func stamp() time.Time {
	//lint:allow nondeterminism
	return time.Now()
}
