// Positive and negative cases for the nondeterminism analyzer in an
// ordinary (non-exempt) package.
package a

import (
	"math/rand/v2"
	"sort"
	"time"
)

func clocks() time.Duration {
	t0 := time.Now()      // want "ambient clock time.Now"
	_ = time.Since(t0)    // want "ambient clock time.Since"
	return time.Until(t0) // want "ambient clock time.Until"
}

func globalRand() int {
	return rand.IntN(10) // want "global math/rand source rand.IntN"
}

func localRand(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, 1)) // seeded local source: legal
	return r.Float64()
}

func mapOrder(m map[string]float64) ([]string, float64) {
	var keys []string
	var sum float64
	for k, v := range m {
		keys = append(keys, k) // want "append to keys inside a map-range loop"
		sum += v               // want "float accumulation"
	}
	return keys, sum
}

func sortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // sorting right after erases the iteration order
	return keys
}

func intAccumulate(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition is exact in any order
	}
	return n
}

func keyedWrite(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v // keyed by the range key: order-free
	}
	return out
}
