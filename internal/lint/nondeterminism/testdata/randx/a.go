// The analyzer must stay silent here: this package's import path ends
// in internal/randx, the sanctioned home of ambient time and the
// project RNG.
package randx

import "time"

func now() time.Time { return time.Now() }
