// A well-formed //lint:allow directive (analyzer plus reason) silences
// the finding on the next line.
package s

import "time"

func stamp() time.Time {
	//lint:allow nondeterminism process start stamp is wall-clock by design
	return time.Now()
}

func stampSameLine() time.Time {
	return time.Now() //lint:allow nondeterminism report header carries real time on purpose
}
