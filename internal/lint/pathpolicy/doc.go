// Package pathpolicy enforces the repository's file-mutation
// discipline: destructive filesystem operations — os.Remove,
// os.RemoveAll, os.Rename — are confined to internal/modelstore, whose
// write-temp-then-rename helper is the one sanctioned way to replace a
// file on disk.
//
// The rule exists because a bare os.Rename over a live artifact (a
// model file, a campaign database) is only atomic when the temp file
// sits on the same filesystem and fsync/cleanup are handled; scattering
// ad-hoc rename/remove calls across packages is how half-written model
// files end up being served after a crash. Code that needs to replace a
// file should go through the model store's atomic helper or add its own
// equally careful helper inside an exempted package.
//
// Findings are suppressed with `//lint:allow pathpolicy <reason>` on
// the finding's line or the line above; the reason is mandatory.
package pathpolicy
