package pathpolicy

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// Analyzer confines destructive filesystem calls to the packages that
// own an atomic write-rename helper.
var Analyzer = &analysis.Analyzer{
	Name:    "pathpolicy",
	Version: "v1",
	Doc: "flag os.Remove / os.RemoveAll / os.Rename outside internal/modelstore: " +
		"file replacement must go through the model store's atomic " +
		"write-temp-then-rename helper so a crash never leaves a half-written " +
		"artifact behind",
	Run: run,
}

// ExemptPathPattern selects the packages allowed to call the
// destructive trio directly: the model store owns the one sanctioned
// write-temp-then-rename helper (and the cleanup of its own temp
// files).
var ExemptPathPattern = regexp.MustCompile(`(^|/)modelstore$`)

// banned is the set of os functions confined by the policy.
var banned = map[string]bool{
	"Remove": true, "RemoveAll": true, "Rename": true,
}

func run(pass *analysis.Pass) error {
	if ExemptPathPattern.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			if !isOSPackage(pass, sel.X) {
				return true
			}
			pass.Reportf(call.Pos(), "os.%s outside internal/modelstore: replace files through the model store's atomic write-rename helper (or justify with //lint:allow)", sel.Sel.Name)
			return true
		})
	}
	return nil
}

// isOSPackage reports whether expr names the standard os package,
// resolving through import aliases.
func isOSPackage(pass *analysis.Pass, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}
