package pathpolicy_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/pathpolicy"
)

func TestFlagged(t *testing.T) {
	linttest.Run(t, pathpolicy.Analyzer, "testdata/flag", "example.com/a")
}

// TestModelstoreExempt pins the path scoping: the same calls are legal
// under a modelstore package path.
func TestModelstoreExempt(t *testing.T) {
	diags, _ := linttest.Findings(t, pathpolicy.Analyzer, "testdata/modelstore", "example.com/modelstore")
	if len(diags) != 0 {
		t.Fatalf("pathpolicy leaked into the exempt modelstore path: %v", diags)
	}
}

// TestModelstoreNameMustBeSuffix ensures the exemption keys off the
// final path element only: a package merely containing "modelstore" in
// the middle of its path is still policed.
func TestModelstoreNameMustBeSuffix(t *testing.T) {
	diags, _ := linttest.Findings(t, pathpolicy.Analyzer, "testdata/modelstore", "example.com/modelstore/sub")
	if len(diags) == 0 {
		t.Fatal("expected findings under a non-modelstore path, got none")
	}
}
