// Destructive filesystem calls outside the modelstore path are
// flagged; reads, writes, and aliased imports are resolved through the
// type checker, not by spelling.
package a

import (
	"os"
	stdos "os"
)

func mutate(dir string) error {
	if err := os.Remove(dir + "/model.pvm"); err != nil { // want "os.Remove outside internal/modelstore"
		return err
	}
	if err := os.RemoveAll(dir); err != nil { // want "os.RemoveAll outside internal/modelstore"
		return err
	}
	return os.Rename(dir+"/a", dir+"/b") // want "os.Rename outside internal/modelstore"
}

func aliased(dir string) error {
	return stdos.Rename(dir+"/a", dir+"/b") // want "os.Rename outside internal/modelstore"
}

func suppressed(dir string) error {
	//lint:allow pathpolicy temp dir owned exclusively by this test helper
	return os.RemoveAll(dir)
}

// reads and plain writes are not the policy's business.
func fine(dir string) error {
	if _, err := os.ReadFile(dir + "/model.pvm"); err != nil {
		return err
	}
	return os.WriteFile(dir+"/note.txt", []byte("x"), 0o644)
}

// a local type named os is not the os package.
type osLike struct{}

func (osLike) Remove(string) error { return nil }

func notThePackage() error {
	var o osLike
	return o.Remove("x")
}
