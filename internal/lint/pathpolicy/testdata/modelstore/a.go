// The same destructive calls are legal when the package path ends in
// /modelstore — this is where the atomic write-rename helper lives.
package modelstore

import "os"

func writeFileAtomic(tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func deleteEntry(path string) error { return os.Remove(path) }
