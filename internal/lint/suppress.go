package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// directivePrefix is the suppression comment form:
//
//	//lint:allow <analyzer> <reason...>
//
// The directive silences findings of <analyzer> on its own line and on
// the line directly below it (so it can sit above the offending
// statement). The reason is mandatory: a suppression without a
// documented justification is itself an error.
const directivePrefix = "//lint:allow"

type directive struct {
	line     int
	analyzer string
	reason   string
	raw      string
	pos      string
}

// FilterSuppressed drops diagnostics covered by a well-formed
// //lint:allow directive and returns the survivors plus a description
// of every malformed directive (missing analyzer or reason).
func FilterSuppressed(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) ([]analysis.Diagnostic, []string) {
	// file -> line -> directives
	byFile := make(map[string]map[int][]directive)
	var malformed []string
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, pos.String()+": "+c.Text)
					continue
				}
				d := directive{
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					raw:      c.Text,
					pos:      pos.String(),
				}
				m := byFile[pos.Filename]
				if m == nil {
					m = make(map[int][]directive)
					byFile[pos.Filename] = m
				}
				// Cover the directive's own line and the next line.
				m[pos.Line] = append(m[pos.Line], d)
				m[pos.Line+1] = append(m[pos.Line+1], d)
			}
		}
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range byFile[pos.Filename][pos.Line] {
			if dir.analyzer == d.Analyzer || dir.analyzer == "all" {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept, malformed
}
