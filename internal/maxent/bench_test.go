package maxent

import (
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

func BenchmarkReconstructStandardizedGaussian(b *testing.B) {
	m := stats.Moments4{Mean: 1, Std: 0.05, Skew: 0, Kurt: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructMoments4(m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructStandardizedSkewed(b *testing.B) {
	m := stats.Moments4{Mean: 1, Std: 0.05, Skew: 1.0, Kurt: 4.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructMoments4(m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRawWideSupport(b *testing.B) {
	// The PyMaxEnt-faithful raw solve on the shared [0.7, 1.7] support;
	// a moderately wide target that the undamped solver converges on.
	mu := RawMomentsFromMoments4(stats.Moments4{Mean: 1.1, Std: 0.15, Skew: 0.2, Kurt: 2.9})
	if _, err := ReconstructRaw(mu, 0.7, 1.7, nil); err != nil {
		b.Skipf("raw solve does not converge for this target: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructRaw(mu, 0.7, 1.7, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstructRawNeedleFailure times the failure path on a
// narrow "needle" distribution — the fragile regime that degrades the
// PyMaxEnt representation in the paper's comparison (the decode pays
// this cost before falling back to a Gaussian).
func BenchmarkReconstructRawNeedleFailure(b *testing.B) {
	mu := RawMomentsFromMoments4(stats.Moments4{Mean: 1, Std: 0.01, Skew: 0.3, Kurt: 3.2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructRaw(mu, 0.7, 1.7, nil); err == nil {
			b.Fatal("expected the needle target to fail")
		}
	}
}

func BenchmarkDensitySample1000(b *testing.B) {
	d, err := ReconstructMoments4(stats.Moments4{Mean: 1, Std: 0.05, Skew: 0.5, Kurt: 3.5}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(1000, rng.Float64)
	}
}
