// Package maxent reconstructs a probability density from its first few
// moments using the principle of maximum entropy, mirroring the PyMaxEnt
// software the paper evaluates as its second distribution representation.
//
// Given raw moments μ0..μN, the maximum-entropy density has the form
//
//	p(x) = exp(Σ_{j=0..N} λ_j·x^j),
//
// and the Lagrange multipliers λ are found by solving the nonlinear
// system ∫ x^k·p(x) dx = μ_k with a damped Newton iteration whose
// Jacobian entries J_{kj} = ∫ x^{k+j}·p(x) dx are computed with
// Gauss–Legendre quadrature (the same approach PyMaxEnt uses).
//
// For numerical robustness the solve is performed in standardized
// coordinates z = (x − mean)/std; callers pass standardized moments via
// ReconstructStandardized or the convenience ReconstructMoments4.
package maxent

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// ErrNoConverge is returned when the Newton iteration fails to reach the
// moment-matching tolerance. The 4-moment maximum-entropy problem is
// genuinely fragile for strongly non-Gaussian targets — a failure mode
// the paper observes as PyMaxEnt's lower accuracy.
var ErrNoConverge = errors.New("maxent: moment matching did not converge")

// Options tunes the reconstruction.
type Options struct {
	// QuadratureNodes is the size of the Gauss–Legendre rule (default 96).
	QuadratureNodes int
	// MaxIter bounds the Newton iterations (default 200).
	MaxIter int
	// Tol is the max-norm moment residual tolerance (default 1e-8).
	Tol float64
}

func (o *Options) withDefaults() Options {
	out := Options{QuadratureNodes: 96, MaxIter: 200, Tol: 1e-8}
	if o == nil {
		return out
	}
	if o.QuadratureNodes > 0 {
		out.QuadratureNodes = o.QuadratureNodes
	}
	if o.MaxIter > 0 {
		out.MaxIter = o.MaxIter
	}
	if o.Tol > 0 {
		out.Tol = o.Tol
	}
	return out
}

// Density is a reconstructed maximum-entropy density on a finite support.
type Density struct {
	// Lambda holds the Lagrange multipliers of exp(Σ λ_j·z^j) in the
	// standardized coordinate z.
	Lambda []float64
	// Lo, Hi bound the standardized support used in the solve.
	Lo, Hi float64
	// Mean, Std transform standardized coordinates back to data space:
	// x = Mean + Std·z.
	Mean, Std float64

	// Tabulated CDF in z for inverse-transform sampling.
	zGrid, cdf []float64
}

// ReconstructMoments4 builds the maximum-entropy density matching the
// four moments in m, the quantity the paper's PyMaxEnt representation
// predicts. The support is fixed at ±support standardized deviations
// (the paper's relative-time distributions comfortably fit in ±8σ).
func ReconstructMoments4(m stats.Moments4, opts *Options) (*Density, error) {
	if m.Std <= 0 {
		return nil, fmt.Errorf("maxent: need positive std, got %v", m.Std)
	}
	if math.IsNaN(m.Skew) || math.IsNaN(m.Kurt) {
		return nil, fmt.Errorf("maxent: NaN in target moments %+v", m)
	}
	// Standardized raw moments: E[z^0..z^4] = 1, 0, 1, skew, kurt.
	mu := []float64{1, 0, 1, m.Skew, m.Kurt}
	d, err := ReconstructStandardized(mu, -8, 8, opts)
	if err != nil {
		return nil, err
	}
	d.Mean, d.Std = m.Mean, m.Std
	return d, nil
}

// ReconstructStandardized solves the maximum-entropy problem for raw
// moments mu (mu[0] must be 1) of a standardized variable on [lo, hi].
// The returned density has Mean 0 and Std 1; adjust the fields to
// translate into data space.
func ReconstructStandardized(mu []float64, lo, hi float64, opts *Options) (*Density, error) {
	o := opts.withDefaults()
	n := len(mu)
	if n < 2 {
		return nil, fmt.Errorf("maxent: need at least 2 moments, got %d", n)
	}
	if math.Abs(mu[0]-1) > 1e-9 {
		return nil, fmt.Errorf("maxent: mu[0] must be 1 (got %v)", mu[0])
	}
	nodes, weights := numeric.GaussLegendre(o.QuadratureNodes, lo, hi)

	// Initial guess: the Gaussian that matches the first two moments.
	lambda := make([]float64, n)
	mean := mu[1]
	variance := mu[2] - mu[1]*mu[1]
	if variance <= 0 {
		return nil, fmt.Errorf("maxent: non-positive variance %v", variance)
	}
	lambda[0] = -mean*mean/(2*variance) - 0.5*math.Log(2*math.Pi*variance)
	if n > 1 {
		lambda[1] = mean / variance
	}
	if n > 2 {
		lambda[2] = -1 / (2 * variance)
	}

	evalP := func(lam []float64, x float64) float64 {
		// Horner evaluation of the exponent polynomial.
		e := lam[len(lam)-1]
		for j := len(lam) - 2; j >= 0; j-- {
			e = e*x + lam[j]
		}
		if e > 700 { // exp overflow guard; treated as divergence below
			return math.Inf(1)
		}
		return math.Exp(e)
	}

	residualAndMoments := func(lam []float64) (resid []float64, pmoms []float64, ok bool) {
		// pmoms[k] = ∫ x^k p(x) dx for k = 0..2(n-1).
		pmoms = make([]float64, 2*n-1)
		for i, x := range nodes {
			p := evalP(lam, x)
			if math.IsInf(p, 1) || math.IsNaN(p) {
				return nil, nil, false
			}
			w := weights[i] * p
			xk := 1.0
			for k := range pmoms {
				pmoms[k] += w * xk
				xk *= x
			}
		}
		resid = make([]float64, n)
		for k := 0; k < n; k++ {
			resid[k] = pmoms[k] - mu[k]
		}
		return resid, pmoms, true
	}

	resid, pmoms, ok := residualAndMoments(lambda)
	if !ok {
		return nil, ErrNoConverge
	}
	for iter := 0; iter < o.MaxIter; iter++ {
		if numeric.NormInf(resid) < o.Tol {
			break
		}
		// Newton system: J_{kj} = ∂resid_k/∂λ_j = ∫ x^{k+j} p dx.
		jac := numeric.NewMatrix(n, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				jac.Set(k, j, pmoms[k+j])
			}
		}
		rhs := make([]float64, n)
		for k := range rhs {
			rhs[k] = -resid[k]
		}
		step, err := numeric.SolveLinear(jac, rhs)
		if err != nil {
			return nil, fmt.Errorf("maxent: Newton system singular at iteration %d: %w", iter, err)
		}
		// Damped update: back off until the residual norm improves.
		base := numeric.NormInf(resid)
		alpha := 1.0
		improved := false
		for backoff := 0; backoff < 30; backoff++ {
			trial := make([]float64, n)
			for j := range trial {
				trial[j] = lambda[j] + alpha*step[j]
			}
			tResid, tMoms, tOK := residualAndMoments(trial)
			if tOK && numeric.NormInf(tResid) < base {
				lambda, resid, pmoms = trial, tResid, tMoms
				improved = true
				break
			}
			alpha /= 2
		}
		if !improved {
			return nil, ErrNoConverge
		}
	}
	if numeric.NormInf(resid) >= o.Tol*100 {
		// Accept mild residuals (the damped iteration stalls just above
		// tolerance for extreme kurtosis) but reject real failures.
		return nil, ErrNoConverge
	}

	d := &Density{Lambda: lambda, Lo: lo, Hi: hi, Mean: 0, Std: 1}
	// Tabulate the CDF on a fine uniform grid for sampling.
	const gridN = 2049
	d.zGrid = numeric.Linspace(lo, hi, gridN)
	pdf := make([]float64, gridN)
	for i, z := range d.zGrid {
		pdf[i] = evalP(lambda, z)
	}
	d.cdf = numeric.CumTrapezoid(d.zGrid, pdf)
	total := d.cdf[gridN-1]
	if total <= 0 || math.IsNaN(total) {
		return nil, ErrNoConverge
	}
	numeric.Scale(1/total, d.cdf)
	return d, nil
}

// At evaluates the reconstructed density at data-space point x.
func (d *Density) At(x float64) float64 {
	//lint:allow floatcheck Fit rejects non-positive Std and the internal solver sets Std = 1
	z := (x - d.Mean) / d.Std
	if z < d.Lo || z > d.Hi {
		return 0
	}
	e := d.Lambda[len(d.Lambda)-1]
	for j := len(d.Lambda) - 2; j >= 0; j-- {
		e = e*z + d.Lambda[j]
	}
	//lint:allow floatcheck Fit rejects non-positive Std and the internal solver sets Std = 1
	return math.Exp(e) / d.Std
}

// Sample draws n values by inverse-transform sampling of the tabulated
// CDF. uniform must return values in [0, 1).
func (d *Density) Sample(n int, uniform func() float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		z := numeric.InverseMonotone(d.zGrid, d.cdf, uniform())
		out[i] = d.Mean + d.Std*z
	}
	return out
}
