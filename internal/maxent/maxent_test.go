package maxent

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

func TestReconstructGaussian(t *testing.T) {
	d, err := ReconstructMoments4(stats.Moments4{Mean: 0, Std: 1, Skew: 0, Kurt: 3}, nil)
	if err != nil {
		t.Fatalf("ReconstructMoments4: %v", err)
	}
	// The reconstructed density must match the standard normal pdf.
	for _, x := range []float64{-2, -1, 0, 0.5, 1, 2} {
		want := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		got := d.At(x)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("density(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestReconstructScaledShifted(t *testing.T) {
	m := stats.Moments4{Mean: 10, Std: 2, Skew: 0, Kurt: 3}
	d, err := ReconstructMoments4(m, nil)
	if err != nil {
		t.Fatalf("ReconstructMoments4: %v", err)
	}
	want := math.Exp(-0.5) / (2 * math.Sqrt(2*math.Pi)) // N(10,2) at x=12
	if got := d.At(12); math.Abs(got-want) > 1e-3 {
		t.Errorf("density(12) = %v, want %v", got, want)
	}
	if d.At(-100) != 0 || d.At(1000) != 0 {
		t.Error("density outside support must be 0")
	}
}

func TestReconstructMatchesMoments(t *testing.T) {
	targets := []stats.Moments4{
		{Mean: 1, Std: 0.1, Skew: 0, Kurt: 3},
		{Mean: 1, Std: 0.2, Skew: 0.8, Kurt: 3.5},
		{Mean: 0, Std: 1, Skew: -0.5, Kurt: 2.8},
		{Mean: 2, Std: 0.5, Skew: 0, Kurt: 2.2},
		{Mean: 1, Std: 0.3, Skew: 1.2, Kurt: 5},
	}
	r := randx.New(41)
	for _, target := range targets {
		d, err := ReconstructMoments4(target, nil)
		if err != nil {
			t.Errorf("ReconstructMoments4(%+v): %v", target, err)
			continue
		}
		xs := d.Sample(300000, r.Float64)
		got := stats.ComputeMoments4(xs)
		if math.Abs(got.Mean-target.Mean) > 0.02*(1+math.Abs(target.Mean)) {
			t.Errorf("%+v: mean = %v", target, got.Mean)
		}
		if math.Abs(got.Std-target.Std) > 0.05*target.Std+0.01 {
			t.Errorf("%+v: std = %v", target, got.Std)
		}
		if math.Abs(got.Skew-target.Skew) > 0.1+0.05*math.Abs(target.Skew) {
			t.Errorf("%+v: skew = %v", target, got.Skew)
		}
		if math.Abs(got.Kurt-target.Kurt) > 0.15*target.Kurt {
			t.Errorf("%+v: kurt = %v", target, got.Kurt)
		}
	}
}

func TestReconstructStandardizedValidation(t *testing.T) {
	if _, err := ReconstructStandardized([]float64{2, 0, 1}, -8, 8, nil); err == nil {
		t.Error("mu[0] != 1 should fail")
	}
	if _, err := ReconstructStandardized([]float64{1}, -8, 8, nil); err == nil {
		t.Error("single moment should fail")
	}
	if _, err := ReconstructStandardized([]float64{1, 0, 0}, -8, 8, nil); err == nil {
		t.Error("zero variance should fail")
	}
	if _, err := ReconstructMoments4(stats.Moments4{Mean: 1, Std: 0, Skew: 0, Kurt: 3}, nil); err == nil {
		t.Error("zero std should fail")
	}
	if _, err := ReconstructMoments4(stats.Moments4{Mean: 1, Std: 1, Skew: math.NaN(), Kurt: 3}, nil); err == nil {
		t.Error("NaN skew should fail")
	}
}

func TestReconstructInfeasibleFails(t *testing.T) {
	// kurt < skew²+1 cannot be matched by any density.
	if _, err := ReconstructMoments4(stats.Moments4{Mean: 0, Std: 1, Skew: 2, Kurt: 2}, nil); err == nil {
		t.Error("infeasible moments should not converge")
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	d, err := ReconstructMoments4(stats.Moments4{Mean: 1, Std: 0.25, Skew: 0.6, Kurt: 3.4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid over the support in data space.
	lo := d.Mean + d.Std*d.Lo
	hi := d.Mean + d.Std*d.Hi
	n := 4000
	var integral float64
	step := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		integral += w * d.At(lo+float64(i)*step) * step
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("density integral = %v, want ~1", integral)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	d, err := ReconstructMoments4(stats.Moments4{Mean: 1, Std: 0.1, Skew: 0, Kurt: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(99)
	for _, x := range d.Sample(10000, r.Float64) {
		if x < 1-0.81 || x > 1+0.81 {
			t.Fatalf("sample %v outside ±8σ support", x)
		}
	}
}

func TestUnimodalityOfFourMomentReconstruction(t *testing.T) {
	// A key qualitative property behind PyMaxEnt's weakness in the paper:
	// exp(quartic) with 4 moments cannot produce well-separated bimodal
	// shapes for moderate moment values; it yields a smooth (at most
	// weakly bimodal) density. Reconstruct from the moments of a strongly
	// bimodal sample and verify the KS distance remains substantial.
	r := randx.New(123)
	bimodal := make([]float64, 20000)
	for i := range bimodal {
		if r.Float64() < 0.6 {
			bimodal[i] = r.Normal(0.95, 0.01)
		} else {
			bimodal[i] = r.Normal(1.12, 0.01)
		}
	}
	m := stats.ComputeMoments4(bimodal)
	d, err := ReconstructMoments4(m, nil)
	if err != nil {
		t.Skipf("reconstruction did not converge for bimodal moments: %v", err)
	}
	recon := d.Sample(20000, r.Float64)
	ks := stats.KSStatistic(bimodal, recon)
	if ks < 0.05 {
		t.Errorf("KS = %v; expected maxent to visibly miss a sharply bimodal target", ks)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := (&Options{}).withDefaults()
	if o.QuadratureNodes != 96 || o.MaxIter != 200 || o.Tol != 1e-8 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := (&Options{QuadratureNodes: 32, MaxIter: 10, Tol: 1e-3}).withDefaults()
	if o2.QuadratureNodes != 32 || o2.MaxIter != 10 || o2.Tol != 1e-3 {
		t.Errorf("overrides = %+v", o2)
	}
	var nilOpts *Options
	if nilOpts.withDefaults().QuadratureNodes != 96 {
		t.Error("nil options should yield defaults")
	}
}
