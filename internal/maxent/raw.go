package maxent

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// RawMomentsFromMoments4 converts (mean, std, skew, kurt) to the raw
// moments E[x^0..x^4] that PyMaxEnt-style reconstruction consumes:
//
//	m1 = μ
//	m2 = σ² + μ²
//	m3 = γ1·σ³ + 3μσ² + μ³
//	m4 = β2·σ⁴ + 4μ·γ1·σ³ + 6μ²σ² + μ⁴
func RawMomentsFromMoments4(m stats.Moments4) [5]float64 {
	mu, s := m.Mean, m.Std
	c2 := s * s
	c3 := m.Skew * s * s * s
	c4 := m.Kurt * s * s * s * s
	return [5]float64{
		1,
		mu,
		c2 + mu*mu,
		c3 + 3*mu*c2 + mu*mu*mu,
		c4 + 4*mu*c3 + 6*mu*mu*c2 + mu*mu*mu*mu,
	}
}

// ReconstructRaw reproduces the PyMaxEnt workflow faithfully: the
// maximum-entropy density exp(Σ λ_j·x^j) is solved in *raw* data
// coordinates on a caller-fixed support [lo, hi] with a fixed-order
// quadrature and an undamped Newton iteration from the Gaussian initial
// guess — exactly the regime the original package operates in.
//
// This fidelity matters: for performance distributions whose width is
// tiny relative to the shared support (a "needle" on [0.7, 1.7]), the
// fixed quadrature cannot resolve the density and the iteration fails
// or converges poorly. The paper's PyMaxEnt representation inherits
// exactly this weakness (its Figure 4/7 violins are the worst of the
// three representations); see internal/distrep.MaxEntRep for the
// fallback behavior on failure.
//
// For robust reconstruction in standardized coordinates, use
// ReconstructMoments4 instead.
func ReconstructRaw(mu [5]float64, lo, hi float64, opts *Options) (*Density, error) {
	o := opts.withDefaults()
	if !(hi > lo) {
		return nil, fmt.Errorf("maxent: invalid support [%v, %v]", lo, hi)
	}
	if math.Abs(mu[0]-1) > 1e-9 {
		return nil, fmt.Errorf("maxent: mu[0] must be 1 (got %v)", mu[0])
	}
	n := len(mu)
	nodes, weights := numeric.GaussLegendre(o.QuadratureNodes, lo, hi)

	mean := mu[1]
	variance := mu[2] - mu[1]*mu[1]
	if variance <= 0 {
		return nil, fmt.Errorf("maxent: non-positive variance %v", variance)
	}
	lambda := make([]float64, n)
	lambda[0] = -mean*mean/(2*variance) - 0.5*math.Log(2*math.Pi*variance)
	lambda[1] = mean / variance
	lambda[2] = -1 / (2 * variance)

	evalP := func(lam []float64, x float64) float64 {
		e := lam[n-1]
		for j := n - 2; j >= 0; j-- {
			e = e*x + lam[j]
		}
		if e > 700 {
			return math.Inf(1)
		}
		return math.Exp(e)
	}
	moments := func(lam []float64) ([]float64, bool) {
		pm := make([]float64, 2*n-1)
		for i, x := range nodes {
			p := evalP(lam, x)
			if math.IsInf(p, 1) || math.IsNaN(p) {
				return nil, false
			}
			w := weights[i] * p
			xk := 1.0
			for k := range pm {
				pm[k] += w * xk
				xk *= x
			}
		}
		return pm, true
	}

	var pm []float64
	var ok bool
	converged := false
	for iter := 0; iter < o.MaxIter; iter++ {
		pm, ok = moments(lambda)
		if !ok {
			return nil, ErrNoConverge
		}
		resid := make([]float64, n)
		var rnorm float64
		for k := 0; k < n; k++ {
			resid[k] = pm[k] - mu[k]
			if a := math.Abs(resid[k]); a > rnorm {
				rnorm = a
			}
		}
		// Tolerance is relative to the moment scale: raw moments of
		// relative time are all O(1).
		if rnorm < o.Tol*(1+math.Abs(mu[n-1])) {
			converged = true
			break
		}
		jac := numeric.NewMatrix(n, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				jac.Set(k, j, pm[k+j])
			}
		}
		rhs := make([]float64, n)
		for k := range rhs {
			rhs[k] = -resid[k]
		}
		step, err := numeric.SolveLinear(jac, rhs)
		if err != nil {
			return nil, fmt.Errorf("maxent: raw Newton singular: %w", err)
		}
		// Undamped full Newton step, as in the original solver.
		for j := range lambda {
			lambda[j] += step[j]
			if math.IsNaN(lambda[j]) || math.IsInf(lambda[j], 0) {
				return nil, ErrNoConverge
			}
		}
	}
	if !converged {
		return nil, ErrNoConverge
	}

	d := &Density{Lambda: lambda, Lo: lo, Hi: hi, Mean: 0, Std: 1}
	const gridN = 2049
	d.zGrid = numeric.Linspace(lo, hi, gridN)
	pdf := make([]float64, gridN)
	for i, z := range d.zGrid {
		pdf[i] = evalP(lambda, z)
		if math.IsInf(pdf[i], 1) {
			return nil, ErrNoConverge
		}
	}
	d.cdf = numeric.CumTrapezoid(d.zGrid, pdf)
	total := d.cdf[gridN-1]
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, ErrNoConverge
	}
	numeric.Scale(1/total, d.cdf)
	return d, nil
}
