package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ExportRelTimesCSV writes every benchmark's relative run times on one
// system as long-format CSV (system, suite, benchmark, run, rel_time) —
// the raw material of the paper's Figure 3, consumable by external
// plotting tools.
func (s *SystemData) ExportRelTimesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "suite", "benchmark", "run", "rel_time"}); err != nil {
		return fmt.Errorf("measure: csv: %w", err)
	}
	for i := range s.Benchmarks {
		b := &s.Benchmarks[i]
		for ri, rt := range b.RelTimes() {
			rec := []string{
				s.SystemName,
				b.Workload.Suite,
				b.Workload.Name,
				strconv.Itoa(ri),
				strconv.FormatFloat(rt, 'g', 10, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("measure: csv: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("measure: csv flush: %w", err)
	}
	return nil
}

// ExportProfileCSV writes the raw per-run counter totals of one
// benchmark as CSV, one row per run with a duration column followed by
// the system's metric schema.
func (s *SystemData) ExportProfileCSV(w io.Writer, benchmarkID string) error {
	if len(s.MetricNames) == 0 {
		return fmt.Errorf("measure: system %s has an empty metric schema; refusing to write a counter-less profile CSV", s.SystemName)
	}
	b, ok := s.Find(benchmarkID)
	if !ok {
		return fmt.Errorf("measure: benchmark %q not in system %s", benchmarkID, s.SystemName)
	}
	cw := csv.NewWriter(w)
	header := append([]string{"run", "seconds"}, s.MetricNames...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("measure: csv: %w", err)
	}
	for ri, run := range b.Runs {
		rec := make([]string, 0, len(header))
		rec = append(rec, strconv.Itoa(ri), strconv.FormatFloat(run.Seconds, 'g', 10, 64))
		for _, v := range run.Metrics {
			rec = append(rec, strconv.FormatFloat(v, 'g', 10, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("measure: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("measure: csv flush: %w", err)
	}
	return nil
}
