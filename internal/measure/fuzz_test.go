package measure

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/perfsim"
)

// decodeFuzzRuns deterministically expands a fuzz blob into a run set:
// byte 0 picks the schema width, byte 1 the promised count, byte 2 the
// policy, and the rest is consumed as float64 bits, eight bytes per
// value. The decoder hits every defect class the validator knows about
// because raw bit patterns include NaNs, infinities, negatives, and
// zero, and ragged tails produce truncated/drifted schemas.
func decodeFuzzRuns(data []byte) (runs []perfsim.Run, nMetrics, expected int, pol ValidationPolicy) {
	if len(data) < 3 {
		return nil, 1, 0, ValidationPolicy{}
	}
	nMetrics = int(data[0]%8) + 1
	expected = int(data[1] % 32)
	pol = ValidationPolicy{Repair: data[2]%2 == 1}
	data = data[3:]
	vals := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	// One run consumes 1 (seconds) + k values where k varies around the
	// schema width so truncation and drift both occur.
	for i := 0; i < len(vals); {
		sec := vals[i]
		i++
		k := nMetrics + int(math.Abs(sec))%3 - 1 // nMetrics-1 .. nMetrics+1
		if k < 0 {
			k = 0
		}
		if i+k > len(vals) {
			k = len(vals) - i
		}
		runs = append(runs, perfsim.Run{Seconds: sec, Metrics: vals[i : i+k]})
		i += k
	}
	return runs, nMetrics, expected, pol
}

// FuzzValidateRuns checks the ingest validator's invariants on
// arbitrary run sets: it never panics, its counters add up, every
// survivor passes ValidateRun, revalidation is a fixed point, and the
// input is never mutated.
func FuzzValidateRuns(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := []byte{3, 10, 1}
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(mk(1.5, 10, 20, 30, 2.5, 11, 21, 31))                // clean pair
	f.Add(mk(math.NaN(), 1, 2, 3, 1.0, 4, 5, 6))               // NaN duration
	f.Add(mk(-1, 1, 2, 3))                                     // negative duration
	f.Add(mk(1, math.Inf(1), 2, 3, 1, 1, 2, 3, 1, 1, 2, 3))    // Inf counter (repairable)
	f.Add(mk(1, -5, 2, 3, 1, 1, 2, 3))                         // negative counter
	f.Add([]byte{1, 31, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}) // ragged tail

	f.Fuzz(func(t *testing.T, data []byte) {
		runs, nMetrics, expected, pol := decodeFuzzRuns(data)
		orig := make([]perfsim.Run, len(runs))
		for i, r := range runs {
			orig[i] = perfsim.Run{Seconds: r.Seconds, Metrics: append([]float64(nil), r.Metrics...)}
		}

		kept, rep := ValidateRuns(runs, nMetrics, expected, pol)

		if rep.Total != len(runs) {
			t.Fatalf("Total = %d, want %d", rep.Total, len(runs))
		}
		if rep.Kept+rep.Quarantined != rep.Total {
			t.Fatalf("Kept %d + Quarantined %d != Total %d", rep.Kept, rep.Quarantined, rep.Total)
		}
		if rep.Kept != len(kept) {
			t.Fatalf("Kept = %d but %d runs returned", rep.Kept, len(kept))
		}
		if rep.Repaired > rep.Kept {
			t.Fatalf("Repaired %d > Kept %d", rep.Repaired, rep.Kept)
		}
		wantMissing := 0
		if expected > len(runs) {
			wantMissing = expected - len(runs)
		}
		if rep.Missing != wantMissing {
			t.Fatalf("Missing = %d, want %d", rep.Missing, wantMissing)
		}
		for i, r := range kept {
			if defects := ValidateRun(r, nMetrics); defects != nil {
				t.Fatalf("survivor %d still defective (%v): %+v", i, defects, r)
			}
		}
		// Validation is a fixed point: the survivors revalidate clean.
		again, rep2 := ValidateRuns(kept, nMetrics, 0, pol)
		if rep2.Quarantined != 0 || rep2.Repaired != 0 || len(again) != len(kept) {
			t.Fatalf("revalidation not a fixed point: %+v", rep2)
		}
		// The input slice was not mutated.
		for i := range runs {
			if runs[i].Seconds != orig[i].Seconds && !(math.IsNaN(runs[i].Seconds) && math.IsNaN(orig[i].Seconds)) {
				t.Fatalf("input run %d seconds mutated", i)
			}
			for m := range runs[i].Metrics {
				a, b := runs[i].Metrics[m], orig[i].Metrics[m]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("input run %d metric %d mutated: %v != %v", i, m, a, b)
				}
			}
		}
	})
}
