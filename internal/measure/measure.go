// Package measure drives the measurement campaign: executing every
// Table I benchmark many times on each system, recording run times and
// perf-counter totals, and persisting the resulting database. It plays
// the role of the paper's data-collection scripts (1,000 repetitions
// per benchmark per system).
package measure

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/numeric"
	"repro/internal/perfsim"
	"repro/internal/randx"
)

// BenchmarkData holds one benchmark's measurements on one system.
type BenchmarkData struct {
	Workload perfsim.Workload
	// Runs are the distribution-measurement runs (the paper's 1,000).
	Runs []perfsim.Run
	// ProbeRuns are extra runs reserved for building few-run profiles in
	// use case 1, kept separate so the profile and the ground-truth
	// distribution never share samples.
	ProbeRuns []perfsim.Run
}

// RelTimes returns the measured relative times (run time normalized to
// the mean), the quantity whose distribution the paper predicts. With
// no recorded runs it returns nil instead of dividing by a zero-length
// mean (which would yield a NaN-filled sample).
func (b *BenchmarkData) RelTimes() []float64 {
	secs := perfsim.Seconds(b.Runs)
	if len(secs) == 0 {
		return nil
	}
	mean := numeric.Mean(secs)
	if mean <= 0 {
		// All-zero (or pathological) timings: nothing to normalize by.
		return nil
	}
	out := make([]float64, len(secs))
	for i, s := range secs {
		out[i] = s / mean
	}
	return out
}

// SystemData holds all benchmarks measured on one system.
type SystemData struct {
	SystemName  string
	MetricNames []string
	Benchmarks  []BenchmarkData
}

// Find returns the benchmark data with the given "suite/name" ID.
func (s *SystemData) Find(id string) (*BenchmarkData, bool) {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Workload.ID() == id {
			return &s.Benchmarks[i], true
		}
	}
	return nil, false
}

// Database is the full measurement campaign across systems.
type Database struct {
	// Seed reproduces the campaign.
	Seed uint64
	// RunsPerBenchmark and ProbeRuns record campaign parameters.
	RunsPerBenchmark, ProbeRunsPerBenchmark int
	Systems                                 []SystemData
}

// System returns the named system's data.
func (d *Database) System(name string) (*SystemData, bool) {
	for i := range d.Systems {
		if d.Systems[i].SystemName == name {
			return &d.Systems[i], true
		}
	}
	return nil, false
}

// Config parameterizes a campaign.
type Config struct {
	// Runs is the number of distribution-measurement runs per benchmark
	// (the paper uses 1,000).
	Runs int
	// ProbeRuns is the number of extra runs reserved for few-run
	// profiles (must cover the largest sample count swept in Figure 6).
	ProbeRuns int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds collection parallelism (default GOMAXPROCS).
	Workers int
}

// Collect runs the campaign for the given systems over the given
// benchmark population. Each (system, benchmark) pair gets its own
// deterministic RNG stream derived from the seed, so the database is
// reproducible regardless of scheduling.
func Collect(systems []*perfsim.System, workloads []perfsim.Workload, cfg Config) (*Database, error) {
	if cfg.Runs < 2 {
		return nil, fmt.Errorf("measure: need at least 2 runs, got %d", cfg.Runs)
	}
	if cfg.ProbeRuns < 1 {
		return nil, fmt.Errorf("measure: need at least 1 probe run, got %d", cfg.ProbeRuns)
	}
	if len(systems) == 0 || len(workloads) == 0 {
		return nil, fmt.Errorf("measure: empty systems or workloads")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	db := &Database{
		Seed:                  cfg.Seed,
		RunsPerBenchmark:      cfg.Runs,
		ProbeRunsPerBenchmark: cfg.ProbeRuns,
		Systems:               make([]SystemData, len(systems)),
	}
	type job struct{ si, wi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	machines := make([]*perfsim.Machine, len(systems))
	for si, s := range systems {
		machines[si] = perfsim.NewMachine(s)
		db.Systems[si] = SystemData{
			SystemName:  s.Name,
			MetricNames: append([]string(nil), s.MetricNames...),
			Benchmarks:  make([]BenchmarkData, len(workloads)),
		}
	}
	root := randx.New(cfg.Seed)
	// Pre-derive one RNG per (system, benchmark) in deterministic order.
	rngs := make([][]*randx.RNG, len(systems))
	for si := range systems {
		rngs[si] = make([]*randx.RNG, len(workloads))
		for wi := range workloads {
			rngs[si][wi] = root.Split()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				bench := machines[j.si].Bench(workloads[j.wi])
				rng := rngs[j.si][j.wi]
				db.Systems[j.si].Benchmarks[j.wi] = BenchmarkData{
					Workload:  workloads[j.wi],
					Runs:      bench.RunN(rng, cfg.Runs),
					ProbeRuns: bench.RunN(rng, cfg.ProbeRuns),
				}
			}
		}()
	}
	for si := range systems {
		for wi := range workloads {
			jobs <- job{si, wi}
		}
	}
	close(jobs)
	wg.Wait()
	return db, nil
}

// Save persists the database as gzipped gob.
func (d *Database) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("measure: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(d); err != nil {
		return fmt.Errorf("measure: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("measure: compress: %w", err)
	}
	return f.Close()
}

// Load reads a database saved with Save.
func Load(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("measure: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("measure: decompress: %w", err)
	}
	defer zr.Close()
	var d Database
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("measure: decode: %w", err)
	}
	return &d, nil
}
