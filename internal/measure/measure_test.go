package measure

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perfsim"
)

func smallCampaign(t *testing.T, seed uint64) *Database {
	t.Helper()
	db, err := Collect(
		[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
		perfsim.TableI()[:6],
		Config{Runs: 50, ProbeRuns: 10, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCollectShapes(t *testing.T) {
	db := smallCampaign(t, 1)
	if len(db.Systems) != 2 {
		t.Fatalf("systems = %d", len(db.Systems))
	}
	intel, ok := db.System("intel")
	if !ok {
		t.Fatal("intel system missing")
	}
	if len(intel.Benchmarks) != 6 {
		t.Fatalf("benchmarks = %d", len(intel.Benchmarks))
	}
	for _, b := range intel.Benchmarks {
		if len(b.Runs) != 50 || len(b.ProbeRuns) != 10 {
			t.Errorf("%s: runs=%d probes=%d", b.Workload.ID(), len(b.Runs), len(b.ProbeRuns))
		}
		for _, r := range b.Runs {
			if len(r.Metrics) != 68 {
				t.Fatalf("%s: metric vector %d", b.Workload.ID(), len(r.Metrics))
			}
		}
	}
	amd, _ := db.System("amd")
	if len(amd.Benchmarks[0].Runs[0].Metrics) != 75 {
		t.Errorf("amd metrics = %d, want 75", len(amd.Benchmarks[0].Runs[0].Metrics))
	}
	if _, ok := db.System("sparc"); ok {
		t.Error("found nonexistent system")
	}
}

func TestCollectDeterministicAcrossWorkerCounts(t *testing.T) {
	db1, err := Collect([]*perfsim.System{perfsim.NewIntelSystem()}, perfsim.TableI()[:4],
		Config{Runs: 20, ProbeRuns: 5, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	db8, err := Collect([]*perfsim.System{perfsim.NewIntelSystem()}, perfsim.TableI()[:4],
		Config{Runs: 20, ProbeRuns: 5, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for bi := range db1.Systems[0].Benchmarks {
		a := db1.Systems[0].Benchmarks[bi]
		b := db8.Systems[0].Benchmarks[bi]
		for ri := range a.Runs {
			if a.Runs[ri].Seconds != b.Runs[ri].Seconds {
				t.Fatalf("worker count changed results for %s run %d", a.Workload.ID(), ri)
			}
		}
	}
}

func TestRelTimesMeanOne(t *testing.T) {
	db := smallCampaign(t, 2)
	intel, _ := db.System("intel")
	for _, b := range intel.Benchmarks {
		rel := b.RelTimes()
		var mean float64
		for _, v := range rel {
			mean += v
		}
		mean /= float64(len(rel))
		if math.Abs(mean-1) > 1e-12 {
			t.Errorf("%s: relative-time mean = %v, want 1", b.Workload.ID(), mean)
		}
	}
}

func TestFind(t *testing.T) {
	db := smallCampaign(t, 3)
	intel, _ := db.System("intel")
	id := perfsim.TableI()[2].ID()
	b, ok := intel.Find(id)
	if !ok || b.Workload.ID() != id {
		t.Fatalf("Find(%s) failed", id)
	}
	if _, ok := intel.Find("nope/none"); ok {
		t.Error("found nonexistent benchmark")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := smallCampaign(t, 4)
	path := filepath.Join(t.TempDir(), "campaign.gob.gz")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != db.Seed || len(got.Systems) != len(db.Systems) {
		t.Fatal("metadata mismatch after round trip")
	}
	a := db.Systems[1].Benchmarks[3]
	b := got.Systems[1].Benchmarks[3]
	if a.Workload.ID() != b.Workload.ID() {
		t.Fatal("workload mismatch")
	}
	for ri := range a.Runs {
		if a.Runs[ri].Seconds != b.Runs[ri].Seconds {
			t.Fatal("run data mismatch")
		}
		for mi := range a.Runs[ri].Metrics {
			if a.Runs[ri].Metrics[mi] != b.Runs[ri].Metrics[mi] {
				t.Fatal("metric data mismatch")
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob.gz")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestCollectValidation(t *testing.T) {
	systems := []*perfsim.System{perfsim.NewIntelSystem()}
	ws := perfsim.TableI()[:2]
	if _, err := Collect(systems, ws, Config{Runs: 1, ProbeRuns: 5, Seed: 1}); err == nil {
		t.Error("Runs < 2 should fail")
	}
	if _, err := Collect(systems, ws, Config{Runs: 10, ProbeRuns: 0, Seed: 1}); err == nil {
		t.Error("ProbeRuns < 1 should fail")
	}
	if _, err := Collect(nil, ws, Config{Runs: 10, ProbeRuns: 5, Seed: 1}); err == nil {
		t.Error("no systems should fail")
	}
	if _, err := Collect(systems, nil, Config{Runs: 10, ProbeRuns: 5, Seed: 1}); err == nil {
		t.Error("no workloads should fail")
	}
}

func TestExportRelTimesCSV(t *testing.T) {
	db := smallCampaign(t, 5)
	intel, _ := db.System("intel")
	var buf bytes.Buffer
	if err := intel.ExportRelTimesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 6 benchmarks x 50 runs
	if len(lines) != 1+6*50 {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+6*50)
	}
	if lines[0] != "system,suite,benchmark,run,rel_time" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "intel,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestExportProfileCSV(t *testing.T) {
	db := smallCampaign(t, 6)
	intel, _ := db.System("intel")
	id := intel.Benchmarks[0].Workload.ID()
	var buf bytes.Buffer
	if err := intel.ExportProfileCSV(&buf, id); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+50 {
		t.Fatalf("csv lines = %d, want 51", len(lines))
	}
	if !strings.HasPrefix(lines[0], "run,seconds,branch-instructions") {
		t.Errorf("header = %q", lines[0])
	}
	if err := intel.ExportProfileCSV(&buf, "nope/none"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestRelTimesZeroRuns(t *testing.T) {
	b := &BenchmarkData{}
	rel := b.RelTimes()
	if rel != nil {
		t.Fatalf("RelTimes with no runs = %v, want nil", rel)
	}
	// Regression: the old division by len(secs)==0 produced NaNs.
	b.Runs = []perfsim.Run{{Seconds: 1.0}, {Seconds: 3.0}}
	for _, v := range b.RelTimes() {
		if math.IsNaN(v) {
			t.Fatal("RelTimes produced NaN")
		}
	}
}
