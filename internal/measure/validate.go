package measure

import (
	"math"

	"repro/internal/perfsim"
)

// This file is the ingest-validation layer: every Run entering the
// feature/training pipeline is checked against the system's metric
// schema, and runs that fail are quarantined (counted by fault class)
// instead of silently flowing NaNs or misaligned counters into
// profiles and trained models. Real counter streams routinely contain
// gaps and corrupt records (Costello & Bhatele's longitudinal
// monitoring study), and distributional predictors are acutely
// sensitive to contaminated samples, so validation is always on in
// internal/core; the optional repair mode additionally salvages runs
// whose only defect is a corrupt counter value.

// Fault classes reported by run validation.
const (
	// DefectNonFiniteDuration marks a NaN or infinite wall time.
	DefectNonFiniteDuration = "nonfinite_duration"
	// DefectNonPositiveDuration marks a zero or negative wall time.
	DefectNonPositiveDuration = "nonpositive_duration"
	// DefectTruncated marks a counter vector shorter than the schema
	// (a truncated profile record).
	DefectTruncated = "truncated_profile"
	// DefectSchemaDrift marks a counter vector longer than the schema
	// (a record written under a drifted schema).
	DefectSchemaDrift = "schema_drift"
	// DefectNonFiniteCounter marks a NaN or infinite counter total.
	DefectNonFiniteCounter = "nonfinite_counter"
	// DefectNegativeCounter marks a negative counter total (raw perf
	// totals are counts; negative values are corruption).
	DefectNegativeCounter = "negative_counter"
)

// ValidationPolicy tunes ingest validation. The zero value quarantines
// every defective run.
type ValidationPolicy struct {
	// Repair enables winsorize-style repair: a run whose only defects
	// are corrupt counter values (NaN/Inf/negative) keeps its slot,
	// with each bad value replaced by the per-metric median over the
	// fully valid runs, clamped to their p1–p99 range. Runs with
	// duration or schema defects are always quarantined — there is
	// nothing trustworthy to repair against.
	Repair bool
}

// QuarantineReport counts the outcome of validating one run set.
type QuarantineReport struct {
	// Total is the number of runs examined; Kept is how many survived
	// (including repaired ones); Quarantined is how many were dropped;
	// Repaired counts kept runs that needed counter repair.
	Total, Kept, Quarantined, Repaired int
	// Missing is how many runs the campaign promised but the set does
	// not contain (dropped records), when the expectation is known.
	Missing int
	// ByClass counts defects per fault class. A run with several
	// defects is counted once per class, so the sum can exceed
	// Quarantined.
	ByClass map[string]int
}

// Clean reports whether validation passed every run untouched.
func (r *QuarantineReport) Clean() bool {
	return r.Quarantined == 0 && r.Repaired == 0 && r.Missing == 0
}

func (r *QuarantineReport) addClass(class string) {
	if r.ByClass == nil {
		r.ByClass = make(map[string]int)
	}
	r.ByClass[class]++
}

// Merge folds another report into this one — system totals here, and
// the per-cell running quarantine counters of the streaming ingest
// path (internal/drift) which accumulates one report per batch.
func (r *QuarantineReport) Merge(o QuarantineReport) {
	r.Total += o.Total
	r.Kept += o.Kept
	r.Quarantined += o.Quarantined
	r.Repaired += o.Repaired
	r.Missing += o.Missing
	for class, n := range o.ByClass {
		if r.ByClass == nil {
			r.ByClass = make(map[string]int)
		}
		r.ByClass[class] += n
	}
}

// BenchmarkQuarantine is the per-benchmark validation outcome: one
// report for the distribution-measurement runs and one for the probe
// runs, plus whether the benchmark survives with enough data to be
// used at all.
type BenchmarkQuarantine struct {
	// Benchmark is the "suite/name" workload ID.
	Benchmark string
	// Runs and Probes report on the two run sets separately.
	Runs, Probes QuarantineReport
	// Unusable is true when fewer than 2 measurement runs or no probe
	// runs survived: no trustworthy distribution or profile can be
	// built, and consumers must error on (or exclude) this benchmark
	// rather than emit an empty distribution.
	Unusable bool
}

// Clean reports whether both run sets validated untouched.
func (b *BenchmarkQuarantine) Clean() bool {
	return b.Runs.Clean() && b.Probes.Clean()
}

// classifyRun returns the defect classes of one run against an
// nMetrics-wide schema (nil for a valid run), and whether the defects
// are confined to counter values (and therefore repairable).
func classifyRun(r *perfsim.Run, nMetrics int) (classes []string, counterOnly bool) {
	switch {
	case math.IsNaN(r.Seconds) || math.IsInf(r.Seconds, 0):
		classes = append(classes, DefectNonFiniteDuration)
	case r.Seconds <= 0:
		classes = append(classes, DefectNonPositiveDuration)
	}
	switch {
	case len(r.Metrics) < nMetrics:
		classes = append(classes, DefectTruncated)
	case len(r.Metrics) > nMetrics:
		classes = append(classes, DefectSchemaDrift)
	}
	counterOnly = len(classes) == 0
	seenNonFinite, seenNegative := false, false
	for _, v := range r.Metrics {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			seenNonFinite = true
		case v < 0:
			seenNegative = true
		}
	}
	if seenNonFinite {
		classes = append(classes, DefectNonFiniteCounter)
	}
	if seenNegative {
		classes = append(classes, DefectNegativeCounter)
	}
	return classes, counterOnly && (seenNonFinite || seenNegative)
}

// ValidateRun reports the defect classes of one run against an
// nMetrics-wide schema; a valid run yields nil.
func ValidateRun(r perfsim.Run, nMetrics int) []string {
	classes, _ := classifyRun(&r, nMetrics)
	return classes
}

// ValidateRuns partitions runs into the valid survivors and the
// quarantine, never mutating the input. expected is the campaign's
// promised run count (0 when unknown) and only feeds the Missing
// counter. Under ValidationPolicy.Repair, runs whose only defects are
// corrupt counter values are repaired in a copy (median imputation
// clamped to the valid runs' p1–p99 range) and kept; when no fully
// valid run exists to repair against, they are quarantined like
// everything else.
func ValidateRuns(runs []perfsim.Run, nMetrics, expected int, pol ValidationPolicy) ([]perfsim.Run, QuarantineReport) {
	rep := QuarantineReport{Total: len(runs)}
	if expected > len(runs) {
		rep.Missing = expected - len(runs)
	}
	valid := make([]perfsim.Run, 0, len(runs))
	type repairable struct {
		at  int // insertion position among survivors, for stable order
		run perfsim.Run
	}
	var toRepair []repairable
	for i := range runs {
		classes, counterOnly := classifyRun(&runs[i], nMetrics)
		if len(classes) == 0 {
			valid = append(valid, runs[i])
			continue
		}
		for _, c := range classes {
			rep.addClass(c)
		}
		if pol.Repair && counterOnly {
			toRepair = append(toRepair, repairable{at: len(valid) + len(toRepair), run: runs[i]})
			continue
		}
		rep.Quarantined++
	}
	if len(toRepair) > 0 && len(valid) > 0 {
		med, lo, hi := repairBounds(valid, nMetrics)
		out := make([]perfsim.Run, 0, len(valid)+len(toRepair))
		out = append(out, valid...)
		for _, r := range toRepair {
			fixed := r.run
			fixed.Metrics = append([]float64(nil), r.run.Metrics...)
			for m, v := range fixed.Metrics {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					fixed.Metrics[m] = math.Min(math.Max(med[m], lo[m]), hi[m])
				}
			}
			// Re-insert at the run's original relative position so a
			// repaired campaign keeps its run order.
			out = append(out, perfsim.Run{})
			copy(out[r.at+1:], out[r.at:])
			out[r.at] = fixed
			rep.Repaired++
		}
		valid = out
	} else {
		// No reference runs to repair against: quarantine the rest.
		rep.Quarantined += len(toRepair)
	}
	rep.Kept = len(valid)
	return valid, rep
}

// repairBounds computes the per-metric median and p1/p99 clamp range
// over fully valid runs.
func repairBounds(valid []perfsim.Run, nMetrics int) (med, lo, hi []float64) {
	med = make([]float64, nMetrics)
	lo = make([]float64, nMetrics)
	hi = make([]float64, nMetrics)
	col := make([]float64, len(valid))
	for m := 0; m < nMetrics; m++ {
		for i := range valid {
			col[i] = valid[i].Metrics[m]
		}
		sorted := append([]float64(nil), col...)
		insertionSort(sorted)
		med[m] = sortedQuantile(sorted, 0.5)
		lo[m] = sortedQuantile(sorted, 0.01)
		hi[m] = sortedQuantile(sorted, 0.99)
	}
	return med, lo, hi
}

// insertionSort avoids importing sort for the small per-metric columns.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// sortedQuantile is the linear-interpolation quantile of a sorted slice.
func sortedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// ValidateBenchmark validates one benchmark's measurement and probe
// runs against the schema, returning the cleaned copy and its report.
// expectedRuns/expectedProbes are the campaign's promised counts (0
// when unknown).
func ValidateBenchmark(b *BenchmarkData, nMetrics, expectedRuns, expectedProbes int, pol ValidationPolicy) (BenchmarkData, BenchmarkQuarantine) {
	runs, runRep := ValidateRuns(b.Runs, nMetrics, expectedRuns, pol)
	probes, probeRep := ValidateRuns(b.ProbeRuns, nMetrics, expectedProbes, pol)
	q := BenchmarkQuarantine{
		Benchmark: b.Workload.ID(),
		Runs:      runRep,
		Probes:    probeRep,
		Unusable:  len(runs) < 2 || len(probes) < 1,
	}
	return BenchmarkData{Workload: b.Workload, Runs: runs, ProbeRuns: probes}, q
}

// Validate checks every benchmark of the system against its metric
// schema and returns a cleaned copy plus the per-benchmark quarantine
// reports (aligned with s.Benchmarks). Benchmarks left without enough
// valid data are retained in the copy but flagged Unusable — consumers
// must exclude them from training and error on direct requests rather
// than emit an empty distribution. expectedRuns/expectedProbes are the
// campaign parameters (0 when unknown).
func (s *SystemData) Validate(expectedRuns, expectedProbes int, pol ValidationPolicy) (*SystemData, []BenchmarkQuarantine) {
	clean := &SystemData{
		SystemName:  s.SystemName,
		MetricNames: append([]string(nil), s.MetricNames...),
		Benchmarks:  make([]BenchmarkData, len(s.Benchmarks)),
	}
	reports := make([]BenchmarkQuarantine, len(s.Benchmarks))
	for i := range s.Benchmarks {
		clean.Benchmarks[i], reports[i] = ValidateBenchmark(
			&s.Benchmarks[i], len(s.MetricNames), expectedRuns, expectedProbes, pol)
	}
	return clean, reports
}

// SystemQuarantine aggregates one system's validation outcome.
type SystemQuarantine struct {
	System string
	// Runs and Probes are the system-wide totals.
	Runs, Probes QuarantineReport
	// Benchmarks holds the per-benchmark reports.
	Benchmarks []BenchmarkQuarantine
}

// Summarize rolls per-benchmark reports up into system totals.
func Summarize(system string, reports []BenchmarkQuarantine) SystemQuarantine {
	out := SystemQuarantine{System: system, Benchmarks: reports}
	for i := range reports {
		out.Runs.Merge(reports[i].Runs)
		out.Probes.Merge(reports[i].Probes)
	}
	return out
}
