package measure

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/perfsim"
)

// run builds a valid 3-metric run.
func run(secs float64, metrics ...float64) perfsim.Run {
	if metrics == nil {
		metrics = []float64{100, 200, 300}
	}
	return perfsim.Run{Seconds: secs, Metrics: metrics}
}

func TestValidateRunClasses(t *testing.T) {
	cases := []struct {
		name string
		r    perfsim.Run
		want []string
	}{
		{"valid", run(1.5), nil},
		{"nan duration", run(math.NaN()), []string{DefectNonFiniteDuration}},
		{"inf duration", run(math.Inf(1)), []string{DefectNonFiniteDuration}},
		{"zero duration", run(0), []string{DefectNonPositiveDuration}},
		{"negative duration", run(-3), []string{DefectNonPositiveDuration}},
		{"truncated", run(1, 100, 200), []string{DefectTruncated}},
		{"drifted", run(1, 100, 200, 300, 400), []string{DefectSchemaDrift}},
		{"nan counter", run(1, 100, math.NaN(), 300), []string{DefectNonFiniteCounter}},
		{"inf counter", run(1, 100, math.Inf(-1), 300), []string{DefectNonFiniteCounter}},
		{"negative counter", run(1, 100, -5, 300), []string{DefectNegativeCounter}},
		{"multi", run(-1, 100, math.NaN(), -2),
			[]string{DefectNonPositiveDuration, DefectNonFiniteCounter, DefectNegativeCounter}},
	}
	for _, c := range cases {
		if got := ValidateRun(c.r, 3); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: classes = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidateRunsQuarantine(t *testing.T) {
	runs := []perfsim.Run{
		run(1.0),
		run(math.NaN()),
		run(1.1),
		run(1.2, 100, 200), // truncated
		run(1.3),
	}
	valid, rep := ValidateRuns(runs, 3, 6, ValidationPolicy{})
	if len(valid) != 3 {
		t.Fatalf("kept %d runs, want 3", len(valid))
	}
	if rep.Total != 5 || rep.Kept != 3 || rep.Quarantined != 2 || rep.Repaired != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Missing != 1 {
		t.Errorf("Missing = %d, want 1 (expected 6, saw 5)", rep.Missing)
	}
	if rep.ByClass[DefectNonFiniteDuration] != 1 || rep.ByClass[DefectTruncated] != 1 {
		t.Errorf("ByClass = %v", rep.ByClass)
	}
	if rep.Clean() {
		t.Error("dirty set must not report Clean")
	}
	// The input must never be mutated.
	if !math.IsNaN(runs[1].Seconds) || len(runs[3].Metrics) != 2 {
		t.Error("ValidateRuns mutated its input")
	}
}

func TestValidateRunsRepair(t *testing.T) {
	runs := []perfsim.Run{
		run(1.0, 100, 200, 300),
		run(1.1, 110, math.NaN(), 310), // repairable: counter-only defect
		run(1.2, 120, 220, 320),
		run(math.NaN(), 130, math.Inf(1), 330), // NOT repairable: bad duration too
	}
	valid, rep := ValidateRuns(runs, 3, 0, ValidationPolicy{Repair: true})
	if len(valid) != 3 {
		t.Fatalf("kept %d runs, want 3 (2 valid + 1 repaired)", len(valid))
	}
	if rep.Repaired != 1 || rep.Quarantined != 1 {
		t.Errorf("report = %+v, want 1 repaired / 1 quarantined", rep)
	}
	// The repaired run keeps its original position and valid counters.
	fixed := valid[1]
	if fixed.Seconds != 1.1 || fixed.Metrics[0] != 110 || fixed.Metrics[2] != 310 {
		t.Errorf("repaired run altered beyond the bad counter: %+v", fixed)
	}
	// The imputed value is the valid-run median, inside the p1–p99 range.
	if got := fixed.Metrics[1]; got < 200 || got > 220 {
		t.Errorf("imputed counter = %v, want within [200, 220]", got)
	}
	// Without any fully valid reference run, repair must quarantine.
	bad := []perfsim.Run{run(1.0, 1, math.NaN(), 3), run(1.1, 1, math.NaN(), 3)}
	kept, rep2 := ValidateRuns(bad, 3, 0, ValidationPolicy{Repair: true})
	if len(kept) != 0 || rep2.Quarantined != 2 {
		t.Errorf("repair without reference runs: kept=%d report=%+v", len(kept), rep2)
	}
}

func TestSystemValidate(t *testing.T) {
	wl := perfsim.Workload{Suite: "npb", Name: "bt"}
	sd := &SystemData{
		SystemName:  "test",
		MetricNames: []string{"a", "b", "c"},
		Benchmarks: []BenchmarkData{
			{
				Workload:  wl,
				Runs:      []perfsim.Run{run(1.0), run(1.1), run(math.NaN())},
				ProbeRuns: []perfsim.Run{run(0.9)},
			},
			{
				Workload:  perfsim.Workload{Suite: "npb", Name: "lu"},
				Runs:      []perfsim.Run{run(1.0), run(math.NaN())}, // 1 valid -> unusable
				ProbeRuns: []perfsim.Run{run(0.9)},
			},
		},
	}
	clean, reports := sd.Validate(3, 1, ValidationPolicy{})
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	if reports[0].Unusable {
		t.Error("benchmark 0 has 2 valid runs + 1 probe; must be usable")
	}
	if !reports[1].Unusable {
		t.Error("benchmark 1 has 1 valid run; must be unusable")
	}
	if len(clean.Benchmarks[0].Runs) != 2 || len(clean.Benchmarks[1].Runs) != 1 {
		t.Errorf("cleaned run counts = %d/%d",
			len(clean.Benchmarks[0].Runs), len(clean.Benchmarks[1].Runs))
	}
	sq := Summarize("test", reports)
	if sq.Runs.Total != 5 || sq.Runs.Quarantined != 2 {
		t.Errorf("summary totals = %+v", sq.Runs)
	}
}

func TestValidateCleanSystemIsIdentity(t *testing.T) {
	wl := perfsim.Workload{Suite: "npb", Name: "bt"}
	sd := &SystemData{
		SystemName:  "test",
		MetricNames: []string{"a", "b", "c"},
		Benchmarks: []BenchmarkData{{
			Workload:  wl,
			Runs:      []perfsim.Run{run(1.0), run(1.1), run(1.2)},
			ProbeRuns: []perfsim.Run{run(0.9), run(1.05)},
		}},
	}
	clean, reports := sd.Validate(3, 2, ValidationPolicy{})
	if !reports[0].Clean() || reports[0].Unusable {
		t.Fatalf("clean data flagged: %+v", reports[0])
	}
	if !reflect.DeepEqual(clean.Benchmarks[0].Runs, sd.Benchmarks[0].Runs) ||
		!reflect.DeepEqual(clean.Benchmarks[0].ProbeRuns, sd.Benchmarks[0].ProbeRuns) {
		t.Error("validation must pass clean data through bit-identically")
	}
}

func TestExportRejectsEmptySchema(t *testing.T) {
	sd := &SystemData{SystemName: "noschema", Benchmarks: []BenchmarkData{{
		Workload: perfsim.Workload{Suite: "npb", Name: "bt"},
		Runs:     []perfsim.Run{{Seconds: 1}},
	}}}
	var sb strings.Builder
	err := sd.ExportProfileCSV(&sb, "npb/bt")
	if err == nil || !strings.Contains(err.Error(), "metric schema") {
		t.Errorf("empty-schema export: err = %v, want schema refusal", err)
	}
}
