package ml_test

import (
	"context"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/knn"
	"repro/internal/ml/xgb"
)

// allocSteadyState warms pools with a few batch passes, then measures
// allocations per PredictBatchInto call with a caller-owned output
// matrix — the serving steady state.
func allocSteadyState(t *testing.T, r ml.Regressor) float64 {
	t.Helper()
	bi, ok := r.(ml.BatchIntoPredictor)
	if !ok {
		t.Fatalf("%T does not implement ml.BatchIntoPredictor", r)
	}
	d := uc1Shaped(1)
	ctx := context.Background()
	out := ml.NewMatrix(len(d.X), bi.NumOutputs())
	for i := 0; i < 3; i++ {
		bi.PredictBatchInto(ctx, d.X, out)
	}
	return testing.AllocsPerRun(10, func() {
		bi.PredictBatchInto(ctx, d.X, out)
	})
}

// TestPredictBatchIntoSteadyStateAllocs pins the zero-allocation
// contract of the flattened serving kernels: once scratch pools are
// warm, a whole 59-row batch through PredictBatchInto must not allocate
// on the prediction path. A small slack (4 allocs per batch) absorbs
// the worker-pool bookkeeping in parallel.ForEach; the per-row kernels
// themselves must stay at zero.
func TestPredictBatchIntoSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector defeats sync.Pool caching; alloc counts are meaningless")
	}
	d := uc1Shaped(1)
	models := []struct {
		name string
		fit  func() ml.Regressor
	}{
		{"knn", func() ml.Regressor { return knn.New(15) }},
		{"forest", func() ml.Regressor { return forest.New(forest.Config{NumTrees: 20, Seed: 1}) }},
		{"xgb", func() ml.Regressor { return xgb.New(xgb.Config{NumRounds: 20, MaxDepth: 3, Seed: 1}) }},
	}
	for _, m := range models {
		t.Run(m.name, func(t *testing.T) {
			r := m.fit()
			if err := r.Fit(d); err != nil {
				t.Fatal(err)
			}
			got := allocSteadyState(t, r)
			t.Logf("steady-state allocs per 59-row batch: %.1f", got)
			if got > 4 {
				t.Errorf("steady-state PredictBatchInto allocated %.1f times per 59-row batch, want <= 4", got)
			}
		})
	}
}
