package ml

import (
	"context"
	"sync"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// BatchPredictor is an optional Regressor extension for models that can
// predict many rows more efficiently than a row-at-a-time loop.
type BatchPredictor interface {
	// PredictBatch returns one prediction row per input row.
	PredictBatch(X [][]float64) [][]float64
}

// BatchIntoPredictor is the allocation-free batch extension: models
// that own a flattened inference kernel implement it to fill a
// caller-provided output matrix without allocating per call. The tree
// ensembles (forest, xgb) and kNN all implement it; PredictBatch and
// PredictBatchInto route through it automatically.
type BatchIntoPredictor interface {
	// NumOutputs returns the fitted output arity (columns of out).
	NumOutputs() int
	// PredictBatchInto writes the prediction for X[i] into out[i].
	// out must have len(X) rows of NumOutputs columns. Implementations
	// must be read-only on the model state and safe for concurrent
	// calls.
	//
	// The //perf:hotpath annotation makes every module-internal
	// implementation an alloccheck root: the flattened kernels behind
	// this method are the statically enforced zero-allocation surface.
	//
	//perf:hotpath
	PredictBatchInto(ctx context.Context, X, out [][]float64)
}

// NewMatrix allocates a rows×cols matrix in a single contiguous
// backing array (two allocations total, independent of rows). The rows
// deliberately keep the full backing capacity so MatrixPool.Put can
// recover the block for reuse.
func NewMatrix(rows, cols int) [][]float64 {
	//lint:allow alloccheck documented two-allocation fallback when the caller supplies no pooled buffer; cost is independent of rows (DESIGN §9)
	flat := make([]float64, rows*cols)
	//lint:allow alloccheck second half of the same documented fallback pair
	out := make([][]float64, rows)
	for i := range out {
		out[i] = flat[i*cols : (i+1)*cols]
	}
	return out
}

// MatrixPool recycles prediction output matrices across requests so the
// steady-state batch path does not allocate. Get returns a matrix with
// exactly the requested shape, reusing a pooled backing when its
// capacity suffices; Put returns one for reuse. The zero value is
// ready to use and safe for concurrent use.
type MatrixPool struct {
	pool sync.Pool
}

// pooledMatrix keeps the row headers and flat backing together so a
// reshaped Get can rebuild rows without allocating the backing again.
type pooledMatrix struct {
	rows [][]float64
	flat []float64
}

// Get returns a rows×cols matrix. Cells are not zeroed — the predict
// kernels overwrite every cell before it is read.
//
//perf:pooled sync.Pool acquisition; the makes run only on pool miss or reshape-up
func (p *MatrixPool) Get(rows, cols int) [][]float64 {
	m, _ := p.pool.Get().(*pooledMatrix)
	if m == nil {
		m = &pooledMatrix{}
	}
	need := rows * cols
	if cap(m.flat) < need {
		m.flat = make([]float64, need)
	}
	if cap(m.rows) < rows {
		m.rows = make([][]float64, rows)
	}
	m.flat = m.flat[:need]
	m.rows = m.rows[:rows]
	for i := range m.rows {
		m.rows[i] = m.flat[i*cols : (i+1)*cols]
	}
	return m.rows
}

// Put recycles a matrix previously returned by Get or NewMatrix. The
// caller must not retain any row afterwards. Matrices whose rows were
// not carved from one contiguous block are silently dropped.
func (p *MatrixPool) Put(m [][]float64) {
	if len(m) == 0 || len(m[0]) == 0 {
		return
	}
	backing := m[0][:cap(m[0])]
	if len(backing) < len(m)*len(m[0]) {
		return // not a single-block matrix; let the GC have it
	}
	p.pool.Put(&pooledMatrix{rows: m[:0], flat: backing[:0]})
}

// PredictBatch predicts every row of X with r. Models that implement
// BatchIntoPredictor run their flattened kernel into a freshly shaped
// output matrix (two allocations, independent of batch size); legacy
// BatchPredictor implementations are used directly; for everything else
// the row-level Predict fans out across the shared worker pool (bounded
// by GOMAXPROCS), which is safe because fitted Regressors are immutable
// and Predict is read-only.
//
// An empty X short-circuits to a non-nil empty slice — no span, no pool
// dispatch — so callers marshaling the result never emit null rows.
//
// The context propagates the obs span, if any, into a
// "model.predict_batch" child span; cancellation is deliberately NOT
// honored — a batch always fills every output row, exactly as before
// the context parameter existed, so callers never see partial results.
// Row order is preserved and results are identical to a sequential
// Predict loop.
func PredictBatch(ctx context.Context, r Regressor, X [][]float64) [][]float64 {
	return PredictBatchInto(ctx, r, X, nil)
}

// PredictBatchInto is PredictBatch with a caller-owned output matrix:
// when out has len(X) rows it is filled in place and returned, so a
// pooled buffer makes the steady-state batch path allocation-free. A
// nil or mis-shaped out falls back to allocating. The returned matrix
// is always the one that was filled.
//
//perf:hotpath
func PredictBatchInto(ctx context.Context, r Regressor, X, out [][]float64) [][]float64 {
	if len(X) == 0 {
		return [][]float64{}
	}
	ctx, span := obs.Start(context.WithoutCancel(ctx), "model.predict_batch")
	//lint:allow alloccheck one bounded attr box per batch span, not per row; tracing-off still pays only this single interface conversion
	span.SetAttr("rows", len(X))
	defer span.End()
	if bi, ok := r.(BatchIntoPredictor); ok {
		if !shaped(out, len(X), bi.NumOutputs()) {
			out = NewMatrix(len(X), bi.NumOutputs())
		}
		bi.PredictBatchInto(ctx, X, out)
		return out
	}
	if bp, ok := r.(BatchPredictor); ok {
		return bp.PredictBatch(X)
	}
	if len(X) == 1 {
		//lint:allow alloccheck legacy single-row fallback for models without a flattened kernel; the zero-alloc contract covers the BatchIntoPredictor branch above
		return [][]float64{r.Predict(X[0])}
	}
	if len(out) != len(X) {
		//lint:allow alloccheck legacy row-header fallback for models without a flattened kernel; shaped callers skip it
		out = make([][]float64, len(X))
	}
	// Predict never fails, so fn returns nil and the pool cannot abort.
	_ = parallel.ForEach(ctx, len(X), 0, func(_ context.Context, i int) error {
		out[i] = r.Predict(X[i])
		return nil
	})
	return out
}

// shaped reports whether out is a ready-to-fill rows×cols matrix.
func shaped(out [][]float64, rows, cols int) bool {
	if len(out) != rows {
		return false
	}
	for _, row := range out {
		if len(row) != cols {
			return false
		}
	}
	return true
}
