package ml

import (
	"context"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// BatchPredictor is an optional Regressor extension for models that can
// predict many rows more efficiently than a row-at-a-time loop.
type BatchPredictor interface {
	// PredictBatch returns one prediction row per input row.
	PredictBatch(X [][]float64) [][]float64
}

// PredictBatch predicts every row of X with r, fanning the rows out
// across the shared worker pool (bounded by GOMAXPROCS). Models that
// implement BatchPredictor are used directly; for everything else the
// row-level Predict is invoked concurrently, which is safe because
// fitted Regressors are immutable and Predict is read-only.
//
// The context propagates the obs span, if any, into a
// "model.predict_batch" child span; cancellation is deliberately NOT
// honored — a batch always fills every output row, exactly as before
// the context parameter existed, so callers never see partial results.
// Row order is preserved and results are identical to a sequential
// Predict loop.
func PredictBatch(ctx context.Context, r Regressor, X [][]float64) [][]float64 {
	ctx, span := obs.Start(context.WithoutCancel(ctx), "model.predict_batch")
	span.SetAttr("rows", len(X))
	defer span.End()
	if bp, ok := r.(BatchPredictor); ok {
		return bp.PredictBatch(X)
	}
	if len(X) == 1 {
		return [][]float64{r.Predict(X[0])}
	}
	out := make([][]float64, len(X))
	// Predict never fails, so fn returns nil and the pool cannot abort.
	_ = parallel.ForEach(ctx, len(X), 0, func(_ context.Context, i int) error {
		out[i] = r.Predict(X[i])
		return nil
	})
	return out
}
