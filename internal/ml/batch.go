package ml

import (
	"context"

	"repro/internal/parallel"
)

// BatchPredictor is an optional Regressor extension for models that can
// predict many rows more efficiently than a row-at-a-time loop.
type BatchPredictor interface {
	// PredictBatch returns one prediction row per input row.
	PredictBatch(X [][]float64) [][]float64
}

// PredictBatch predicts every row of X with r, fanning the rows out
// across the shared worker pool (bounded by GOMAXPROCS). Models that
// implement BatchPredictor are used directly; for everything else the
// row-level Predict is invoked concurrently, which is safe because
// fitted Regressors are immutable and Predict is read-only.
//
// Row order is preserved and results are identical to a sequential
// Predict loop.
func PredictBatch(r Regressor, X [][]float64) [][]float64 {
	if bp, ok := r.(BatchPredictor); ok {
		return bp.PredictBatch(X)
	}
	if len(X) == 1 {
		return [][]float64{r.Predict(X[0])}
	}
	out := make([][]float64, len(X))
	// Predict never fails, so fn returns nil and the pool cannot abort.
	_ = parallel.ForEach(context.Background(), len(X), 0, func(_ context.Context, i int) error {
		out[i] = r.Predict(X[i])
		return nil
	})
	return out
}
