package ml

import (
	"context"
	"math"
	"testing"
)

// affine is a minimal deterministic Regressor for exercising the
// generic fan-out path.
type affine struct{}

func (affine) Fit(*Dataset) error { return nil }
func (affine) Name() string       { return "affine" }
func (affine) Predict(x []float64) []float64 {
	return []float64{2*x[0] + 1, math.Sin(x[0])}
}

// batchMarker implements BatchPredictor; PredictBatch must dispatch to
// it instead of the row-level fan-out.
type batchMarker struct{ affine }

func (batchMarker) PredictBatch(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i := range out {
		out[i] = []float64{-1} // recognizable marker
	}
	return out
}

func TestPredictBatchMatchesSequentialLoop(t *testing.T) {
	X := make([][]float64, 237) // deliberately not a multiple of the pool size
	for i := range X {
		X[i] = []float64{float64(i) * 0.1}
	}
	got := PredictBatch(context.Background(), affine{}, X)
	if len(got) != len(X) {
		t.Fatalf("got %d rows, want %d", len(got), len(X))
	}
	for i, x := range X {
		want := affine{}.Predict(x)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("row %d output %d: %v != sequential %v", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestPredictBatchSingleRowAndEmpty(t *testing.T) {
	got := PredictBatch(context.Background(), affine{}, [][]float64{{3}})
	if len(got) != 1 || got[0][0] != 7 {
		t.Fatalf("single-row batch = %v, want [[7 ...]]", got)
	}
	// Empty input short-circuits before span/pool dispatch and must
	// still return a non-nil, zero-length slice so callers can range
	// and json-encode it without nil checks.
	for _, X := range [][][]float64{nil, {}} {
		got := PredictBatch(context.Background(), affine{}, X)
		if got == nil {
			t.Fatalf("empty batch (X=%v) returned nil, want non-nil empty slice", X)
		}
		if len(got) != 0 {
			t.Fatalf("empty batch returned %d rows", len(got))
		}
	}
}

func TestPredictBatchPrefersBatchPredictor(t *testing.T) {
	got := PredictBatch(context.Background(), batchMarker{}, [][]float64{{1}, {2}})
	if len(got) != 2 || got[0][0] != -1 || got[1][0] != -1 {
		t.Fatalf("BatchPredictor not used: %v", got)
	}
}
