package ml_test

import (
	"context"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
	"repro/internal/ml/xgb"
	"repro/internal/obs"
	"repro/internal/randx"
)

// uc1Shaped builds a dataset shaped like the paper's use case 1:
// 59 training benchmarks, 272 profile features, 4 moment targets.
func uc1Shaped(seed uint64) *ml.Dataset {
	rng := randx.New(seed)
	n, p, q := 59, 272, 4
	d := &ml.Dataset{X: make([][]float64, n), Y: make([][]float64, n)}
	for i := range d.X {
		d.X[i] = make([]float64, p)
		for j := range d.X[i] {
			d.X[i][j] = rng.StdNormal()
		}
		d.Y[i] = make([]float64, q)
		for j := range d.Y[i] {
			d.Y[i][j] = d.X[i][j%p] + 0.1*rng.StdNormal()
		}
	}
	return d
}

func BenchmarkKNNFitPredict(b *testing.B) {
	d := uc1Shaped(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := knn.New(15)
		if err := r.Fit(d); err != nil {
			b.Fatal(err)
		}
		_ = r.Predict(d.X[0])
	}
}

func BenchmarkForestFit(b *testing.B) {
	d := uc1Shaped(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := forest.New(forest.Config{NumTrees: 20, Seed: 3})
		if err := f.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXGBFit(b *testing.B) {
	d := uc1Shaped(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := xgb.New(xgb.Config{NumRounds: 10, MaxDepth: 2, Seed: 4})
		if err := m.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRidgeFit(b *testing.B) {
	d := uc1Shaped(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := linreg.New(10)
		if err := r.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch is the tier-1 serving hot path: a fitted model
// pushed through the parallel batch predictor. benchcheck guards its
// ns/op against BENCH_baseline.json.
func BenchmarkPredictBatch(b *testing.B) {
	d := uc1Shaped(5)
	r := knn.New(15)
	if err := r.Fit(d); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ml.PredictBatch(ctx, r, d.X); len(out) != len(d.X) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkPredictBatchForest covers the flattened forest kernel on
// the same UC1-shaped batch; benchcheck guards it alongside the kNN
// path so a regression in the node-table traversal can't hide behind
// the distance kernel.
func BenchmarkPredictBatchForest(b *testing.B) {
	d := uc1Shaped(5)
	r := forest.New(forest.Config{NumTrees: 50, Seed: 1})
	if err := r.Fit(d); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ml.PredictBatch(ctx, r, d.X); len(out) != len(d.X) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkPredictBatchXGB covers the flattened boosted-ensemble
// kernel on the same batch shape.
func BenchmarkPredictBatchXGB(b *testing.B) {
	d := uc1Shaped(5)
	r := xgb.New(xgb.Config{NumRounds: 50, MaxDepth: 3, Seed: 1})
	if err := r.Fit(d); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ml.PredictBatch(ctx, r, d.X); len(out) != len(d.X) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkPredictBatchTraced is the same path under an active obs
// trace — the pair quantifies the instrumentation overhead recorded in
// EXPERIMENTS.md (acceptance bar: <= 5%).
func BenchmarkPredictBatchTraced(b *testing.B) {
	d := uc1Shaped(5)
	r := knn.New(15)
	if err := r.Fit(d); err != nil {
		b.Fatal(err)
	}
	tracer := obs.NewTracer(obs.Config{BufferSize: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, span := tracer.Start(context.Background(), "bench.predict_batch")
		if out := ml.PredictBatch(ctx, r, d.X); len(out) != len(d.X) {
			b.Fatal("short batch")
		}
		span.End()
	}
}
