// Package ml defines the shared machine-learning plumbing for the
// prediction models the paper compares (Section III-B3): a dataset
// container, the multi-output Regressor interface, feature scaling, and
// regression metrics.
//
// The concrete models live in the subpackages, each a pure-Go,
// standard-library-only replacement for the original stack:
//
//   - knn: k-nearest-neighbors (scikit-learn KNeighborsRegressor; the
//     paper's best model at k = 15 with cosine distance)
//   - tree: CART regression trees, the shared base learner
//   - forest: random forests (scikit-learn RandomForestRegressor)
//   - xgb: gradient-boosted trees (the paper's XGBoost)
//   - linreg: ridge regression, an extension baseline showing the
//     profile-to-distribution map is nonlinear
//
// Every Regressor is multi-output (the targets are whole distribution
// representations, not scalars), deterministic for a fixed seed, and
// immutable after Fit — which is what lets core.Predictor share one
// fitted model across concurrent serving requests.
package ml
