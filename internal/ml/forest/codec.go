package forest

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

// AppendWire serializes the fitted forest: the (defaulted)
// configuration, output arity, and every tree in ensemble order. The
// prediction is the tree average accumulated in that order, so a
// decoded forest predicts bit-identically to the original.
func (f *Regressor) AppendWire(e *ml.WireEnc) error {
	if len(f.trees) == 0 {
		return fmt.Errorf("forest: encode before Fit")
	}
	e.Int(f.cfg.NumTrees)
	e.Int(f.cfg.MaxDepth)
	e.Int(f.cfg.MinSamplesLeaf)
	e.Int(f.cfg.MaxFeatures)
	e.U64(f.cfg.Seed)
	e.Int(f.nOut)
	e.Int(len(f.trees))
	for t, tr := range f.trees {
		if err := tr.AppendWire(e); err != nil {
			return fmt.Errorf("forest: tree %d: %w", t, err)
		}
	}
	return nil
}

// DecodeWire reconstructs a fitted forest written by AppendWire.
func DecodeWire(d *ml.WireDec) (*Regressor, error) {
	f := &Regressor{}
	f.cfg.NumTrees = d.Int()
	f.cfg.MaxDepth = d.Int()
	f.cfg.MinSamplesLeaf = d.Int()
	f.cfg.MaxFeatures = d.Int()
	f.cfg.Seed = d.U64()
	f.nOut = d.Int()
	// Every encoded tree occupies at least one tag byte, so the count
	// check in Len keeps corrupt buffers from allocating wildly.
	n := d.Len(1)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("forest: decode: %w", err)
	}
	if n == 0 || f.nOut <= 0 {
		return nil, fmt.Errorf("%w: forest with %d trees, %d outputs", ml.ErrWire, n, f.nOut)
	}
	f.trees = make([]*tree.Tree, n)
	for t := range f.trees {
		tr, err := tree.DecodeWire(d)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", t, err)
		}
		f.trees[t] = tr
	}
	return f, nil
}
