// Package forest implements a random-forest regressor (Breiman 2001) on
// top of the CART trees in internal/ml/tree: bootstrap-resampled trees
// with per-split feature subsampling, predictions averaged across the
// ensemble. It replaces scikit-learn's RandomForestRegressor in the
// paper's model comparison.
package forest

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/ml/tree"
	"repro/internal/numeric"
	"repro/internal/parallel"
	"repro/internal/randx"
)

// Config controls the ensemble.
type Config struct {
	// NumTrees is the ensemble size (default 100).
	NumTrees int
	// MaxDepth bounds each tree (<= 0: unlimited).
	MaxDepth int
	// MinSamplesLeaf per tree leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures sampled per split; 0 selects ceil(p/3), the classic
	// regression-forest heuristic; negative uses all features.
	MaxFeatures int
	// Seed makes training deterministic.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// Regressor is a fitted random forest.
type Regressor struct {
	cfg   Config
	trees []*tree.Tree
	nOut  int
}

// New returns an unfitted forest.
func New(cfg Config) *Regressor { return &Regressor{cfg: cfg.withDefaults()} }

// Name implements ml.Regressor.
func (f *Regressor) Name() string { return fmt.Sprintf("RandomForest(n=%d)", f.cfg.NumTrees) }

// Fit trains the ensemble, growing trees concurrently on the shared
// worker pool (bounded by GOMAXPROCS). The per-tree random streams are
// split from the seed before dispatch, so the fitted forest is
// bit-identical to a sequential fit regardless of worker count. On
// error the regressor is reset to its unfitted state.
func (f *Regressor) Fit(d *ml.Dataset) error {
	f.trees, f.nOut = nil, 0
	if err := d.Validate(); err != nil {
		return fmt.Errorf("forest: %w", err)
	}
	maxFeatures := f.cfg.MaxFeatures
	if maxFeatures == 0 {
		maxFeatures = int(math.Ceil(float64(d.NumFeatures()) / 3))
	}
	if maxFeatures < 0 || maxFeatures > d.NumFeatures() {
		maxFeatures = d.NumFeatures()
	}
	rng := randx.New(f.cfg.Seed ^ 0xF0123456789ABCDE)
	n := d.NumExamples()
	// Tree t's bootstrap and feature subsampling depend only on stream t,
	// never on what the other workers consume.
	treeRNGs := rng.SplitN(f.cfg.NumTrees)
	trees := make([]*tree.Tree, f.cfg.NumTrees)
	//lint:allow ctxflow Fit is synchronous and bit-reproducible; a caller deadline would make training results depend on timing
	err := parallel.ForEach(context.Background(), f.cfg.NumTrees, 0, func(_ context.Context, t int) error {
		treeRNG := treeRNGs[t]
		boot := treeRNG.SampleWithReplacement(n, n)
		tr := tree.New(tree.Config{
			MaxDepth:       f.cfg.MaxDepth,
			MinSamplesLeaf: f.cfg.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
			Rand:           treeRNG,
		})
		if err := tr.FitIndices(d, boot); err != nil {
			return fmt.Errorf("forest: tree %d: %w", t, err)
		}
		trees[t] = tr
		return nil
	})
	if err != nil {
		return err
	}
	f.trees = trees
	f.nOut = d.NumOutputs()
	return nil
}

// FeatureImportance returns the per-feature gain importance averaged
// over the ensemble, normalized to sum to 1 (all zeros when no tree ever
// split). The result identifies which profile metrics drive the
// distribution prediction.
func (f *Regressor) FeatureImportance() []float64 {
	if len(f.trees) == 0 {
		panic("forest: FeatureImportance before Fit")
	}
	out := f.trees[0].FeatureImportance() // a fresh copy; accumulate in place
	for _, tr := range f.trees[1:] {
		for i, v := range tr.FeatureImportance() {
			out[i] += v
		}
	}
	total := numeric.Sum(out)
	if total <= 0 {
		return make([]float64, len(out))
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Predict averages the trees' predictions.
func (f *Regressor) Predict(x []float64) []float64 {
	//lint:allow alloccheck row API allocates only the returned vector by contract; the batch path fills caller buffers via PredictBatchInto
	out := make([]float64, f.nOut)
	f.PredictInto(x, out)
	return out
}

// PredictInto writes the ensemble average for x into out (len
// NumOutputs) without allocating: every tree contributes its leaf via
// the flattened kernel, accumulated in ensemble order, so the result is
// bit-identical to Predict.
func (f *Regressor) PredictInto(x, out []float64) {
	if len(f.trees) == 0 {
		panic("forest: Predict before Fit")
	}
	for j := range out {
		out[j] = 0
	}
	for _, tr := range f.trees {
		tr.AddLeafInto(x, out)
	}
	inv := 1 / float64(len(f.trees))
	for j := range out {
		out[j] *= inv
	}
}

// NumOutputs implements ml.BatchIntoPredictor.
func (f *Regressor) NumOutputs() int { return f.nOut }

// PredictBatchInto implements ml.BatchIntoPredictor: rows fan out
// across the shared worker pool (bounded by GOMAXPROCS) and each is
// filled in place by the allocation-free kernel. Row results are
// independent, so the output is bit-identical at any worker count.
func (f *Regressor) PredictBatchInto(ctx context.Context, X, out [][]float64) {
	if len(f.trees) == 0 {
		panic("forest: Predict before Fit")
	}
	_ = parallel.ForEach(ctx, len(X), 0, func(_ context.Context, i int) error {
		f.PredictInto(X[i], out[i])
		return nil
	})
}

// PredictReference averages the trees' pointer-walking reference
// kernels — the implementation the flat-vs-pointer equivalence suite
// compares against Predict bit for bit.
func (f *Regressor) PredictReference(x []float64) []float64 {
	if len(f.trees) == 0 {
		panic("forest: Predict before Fit")
	}
	out := make([]float64, f.nOut)
	for _, tr := range f.trees {
		p := tr.PredictReference(x)
		for j, v := range p {
			out[j] += v
		}
	}
	inv := 1 / float64(len(f.trees))
	for j := range out {
		out[j] *= inv
	}
	return out
}
