package forest

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

// synth builds a noisy nonlinear regression problem.
func synth(seed uint64, n int) *ml.Dataset {
	rng := randx.New(seed)
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(-2, 2)
		b := rng.Uniform(-2, 2)
		c := rng.Uniform(-2, 2)
		X[i] = []float64{a, b, c}
		Y[i] = []float64{
			a*a + math.Sin(b) + 0.1*rng.StdNormal(),
			3*c + 0.1*rng.StdNormal(),
		}
	}
	return &ml.Dataset{X: X, Y: Y}
}

func TestForestLearnsNonlinear(t *testing.T) {
	train := synth(1, 1500)
	test := synth(2, 200)
	f := New(Config{NumTrees: 60, Seed: 3})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([][]float64, len(test.X))
	for i, x := range test.X {
		pred[i] = f.Predict(x)
	}
	mse := ml.MSE(pred, test.Y)
	if mse > 0.25 {
		t.Errorf("forest test MSE = %v, want < 0.25", mse)
	}
	// Must handily beat predicting the training mean.
	meanPred := make([][]float64, len(test.X))
	mean := make([]float64, 2)
	for _, y := range train.Y {
		mean[0] += y[0]
		mean[1] += y[1]
	}
	mean[0] /= float64(len(train.Y))
	mean[1] /= float64(len(train.Y))
	for i := range meanPred {
		meanPred[i] = mean
	}
	baseline := ml.MSE(meanPred, test.Y)
	if mse > baseline/3 {
		t.Errorf("forest MSE %v not clearly better than mean baseline %v", mse, baseline)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	train := synth(4, 300)
	f1 := New(Config{NumTrees: 20, Seed: 42})
	f2 := New(Config{NumTrees: 20, Seed: 42})
	if err := f1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range train.X[:20] {
		a, b := f1.Predict(x), f2.Predict(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed gave different forests")
			}
		}
	}
	f3 := New(Config{NumTrees: 20, Seed: 43})
	_ = f3.Fit(train)
	same := true
	for _, x := range train.X[:20] {
		a, b := f1.Predict(x), f3.Predict(x)
		for j := range a {
			if a[j] != b[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds gave identical forests")
	}
}

func TestForestDefaults(t *testing.T) {
	f := New(Config{})
	if f.cfg.NumTrees != 100 || f.cfg.MinSamplesLeaf != 1 {
		t.Errorf("defaults = %+v", f.cfg)
	}
}

func TestForestValidation(t *testing.T) {
	f := New(Config{NumTrees: 5})
	if err := f.Fit(&ml.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestForestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}).Predict([]float64{1})
}

func TestForestAllFeaturesOption(t *testing.T) {
	train := synth(5, 200)
	f := New(Config{NumTrees: 10, MaxFeatures: -1, Seed: 7})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	_ = f.Predict(train.X[0])
	if f.Name() == "" {
		t.Error("Name should render")
	}
}

func TestForestSmootherThanSingleTree(t *testing.T) {
	// A hallmark of bagging: ensemble variance on noisy data is lower
	// than a single deep tree's. Compare test MSE.
	train := synth(8, 800)
	test := synth(9, 300)
	f := New(Config{NumTrees: 50, Seed: 10})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	single := New(Config{NumTrees: 1, Seed: 10})
	if err := single.Fit(train); err != nil {
		t.Fatal(err)
	}
	predF := make([][]float64, len(test.X))
	predS := make([][]float64, len(test.X))
	for i, x := range test.X {
		predF[i] = f.Predict(x)
		predS[i] = single.Predict(x)
	}
	if ml.MSE(predF, test.Y) >= ml.MSE(predS, test.Y) {
		t.Errorf("forest (%v) not better than single tree (%v)",
			ml.MSE(predF, test.Y), ml.MSE(predS, test.Y))
	}
}

func TestForestFeatureImportance(t *testing.T) {
	rng := randx.New(22)
	n := 400
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(-1, 1)
		X[i] = []float64{a, rng.Uniform(-1, 1), rng.Uniform(-1, 1)}
		Y[i] = []float64{2 * a}
	}
	f := New(Config{NumTrees: 30, Seed: 5, MaxFeatures: -1})
	if err := f.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v", sum)
	}
	if imp[0] < 0.8 {
		t.Errorf("informative feature importance = %v, want > 0.8 (got %v)", imp[0], imp)
	}
}

func TestForestFeatureImportanceBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}).FeatureImportance()
}

// TestForestParallelFitBitIdentical is the tentpole determinism
// guarantee: the fitted forest must be bit-identical no matter how many
// workers grow trees, across several seeds.
func TestForestParallelFitBitIdentical(t *testing.T) {
	train := synth(11, 400)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, seed := range []uint64{1, 7, 99} {
		runtime.GOMAXPROCS(1)
		seq := New(Config{NumTrees: 24, Seed: seed})
		if err := seq.Fit(train); err != nil {
			t.Fatal(err)
		}
		want := make([][]float64, 30)
		for i, x := range train.X[:30] {
			want[i] = seq.Predict(x)
		}
		wantImp := seq.FeatureImportance()
		for _, procs := range []int{2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			par := New(Config{NumTrees: 24, Seed: seed})
			if err := par.Fit(train); err != nil {
				t.Fatal(err)
			}
			for i, x := range train.X[:30] {
				got := par.Predict(x)
				for j := range got {
					if got[j] != want[i][j] {
						t.Fatalf("seed %d procs %d: prediction[%d][%d] = %v, sequential = %v",
							seed, procs, i, j, got[j], want[i][j])
					}
				}
			}
			for i, v := range par.FeatureImportance() {
				if v != wantImp[i] {
					t.Fatalf("seed %d procs %d: importance[%d] = %v, sequential = %v", seed, procs, i, v, wantImp[i])
				}
			}
		}
	}
}

// TestForestFitErrorResets is the regression test for the half-fitted
// regressor bug: a failed re-fit must not leave the previous model (or
// a partial one) behind for Predict to use.
func TestForestFitErrorResets(t *testing.T) {
	good := synth(12, 100)
	f := New(Config{NumTrees: 5, Seed: 1})
	if err := f.Fit(good); err != nil {
		t.Fatal(err)
	}
	_ = f.Predict(good.X[0]) // fitted and usable
	bad := &ml.Dataset{X: [][]float64{{1}, {2}}, Y: [][]float64{{math.NaN()}, {0}}}
	if err := f.Fit(bad); err == nil {
		t.Fatal("NaN target should fail Fit")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict after a failed Fit should panic, not serve the stale model")
		}
	}()
	f.Predict(good.X[0])
}

// BenchmarkFit measures cold ensemble training at several worker
// counts; see EXPERIMENTS.md for recorded numbers. On a single-core
// runner the procs>1 rows only show the coordination overhead.
func BenchmarkFit(b *testing.B) {
	ds := synth(1, 2000)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				f := New(Config{NumTrees: 60, Seed: 3})
				if err := f.Fit(ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
