package knn

import (
	"fmt"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

// benchFixture builds an n-point training set and a query, shaped like
// the paper's profiles (a few dozen features, k = 15).
func benchFixture(n int) (*Regressor, []float64) {
	rng := randx.New(5)
	nf := 36
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, nf)
		for j := range X[i] {
			X[i][j] = rng.StdNormal()
		}
		Y[i] = []float64{rng.StdNormal(), rng.StdNormal(), rng.StdNormal()}
	}
	r := New(15)
	if err := r.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		panic(err)
	}
	q := make([]float64, nf)
	for j := range q {
		q[j] = rng.StdNormal()
	}
	return r, q
}

// BenchmarkPredictTopK measures the heap-based O(n log k) selection;
// BenchmarkPredictFullSort measures the previous O(n log n) full sort
// (fullSortPredict in knn_test.go) on the same fixture, demonstrating
// the win of the top-k path.
func BenchmarkPredictTopK(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		r, q := benchFixture(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = r.Predict(q)
			}
		})
	}
}

func BenchmarkPredictFullSort(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		r, q := benchFixture(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = fullSortPredict(r, q)
			}
		})
	}
}
