package knn

import (
	"fmt"

	"repro/internal/ml"
)

// AppendWire serializes the fitted kNN model: hyperparameters, the
// fitted scaler (when standardizing), and the stored training set.
// Prediction is a deterministic scan over the stored rows, so a decoded
// model predicts bit-identically to the original.
func (r *Regressor) AppendWire(e *ml.WireEnc) error {
	if r.x == nil {
		return fmt.Errorf("knn: encode before Fit")
	}
	e.Int(r.K)
	e.U8(uint8(r.Metric))
	e.U8(uint8(r.Weighting))
	e.Bool(r.Standardize)
	e.Bool(r.scaler != nil)
	if r.scaler != nil {
		r.scaler.AppendWire(e)
	}
	e.FloatRows(r.x)
	e.FloatRows(r.y)
	return nil
}

// DecodeWire reconstructs a fitted kNN model written by AppendWire.
func DecodeWire(d *ml.WireDec) (*Regressor, error) {
	r := &Regressor{}
	r.K = d.Int()
	r.Metric = Metric(d.U8())
	r.Weighting = Weighting(d.U8())
	r.Standardize = d.Bool()
	if d.Bool() {
		s, err := ml.DecodeScaler(d)
		if err != nil {
			return nil, fmt.Errorf("knn: decode: %w", err)
		}
		r.scaler = s
	}
	r.x = d.FloatRows()
	r.y = d.FloatRows()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("knn: decode: %w", err)
	}
	if r.K < 1 || len(r.x) == 0 || len(r.x) != len(r.y) {
		return nil, fmt.Errorf("%w: knn with k=%d, %d/%d stored rows", ml.ErrWire, r.K, len(r.x), len(r.y))
	}
	if r.Standardize && r.scaler == nil {
		return nil, fmt.Errorf("%w: standardizing knn without a scaler", ml.ErrWire)
	}
	// The flattened kernel assumes a rectangular training set; reject
	// ragged rows (possible in a corrupt buffer) before building it.
	for i, row := range r.x {
		if len(row) != len(r.x[0]) {
			return nil, fmt.Errorf("%w: knn row %d has %d features, want %d", ml.ErrWire, i, len(row), len(r.x[0]))
		}
	}
	for i, row := range r.y {
		if len(row) != len(r.y[0]) {
			return nil, fmt.Errorf("%w: knn target row %d has %d outputs, want %d", ml.ErrWire, i, len(row), len(r.y[0]))
		}
	}
	if len(r.y[0]) == 0 {
		return nil, fmt.Errorf("%w: knn with zero outputs", ml.ErrWire)
	}
	// Warm-loaded models serve through the same flattened kernel as
	// freshly fitted ones.
	r.finalize()
	return r, nil
}
