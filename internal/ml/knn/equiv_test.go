package knn

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

// equivDataset builds a dense synthetic regression set large enough to
// exercise the blocked kernels' full 8-candidate blocks, the scalar
// remainder, and (on amd64) the padded vector blocks.
func equivDataset(seed uint64, n, p, q int) *ml.Dataset {
	rng := randx.New(seed)
	d := &ml.Dataset{X: make([][]float64, n), Y: make([][]float64, n)}
	for i := range d.X {
		d.X[i] = make([]float64, p)
		for j := range d.X[i] {
			d.X[i][j] = rng.StdNormal()
		}
		d.Y[i] = make([]float64, q)
		for j := range d.Y[i] {
			d.Y[i][j] = d.X[i][j%p] + 0.1*rng.StdNormal()
		}
	}
	return d
}

// TestKNNKernelsBitIdentical drives every metric/weighting/standardize
// combination through the serving kernel — with and without the SIMD
// path where it exists — and requires each prediction to equal the
// pointer-free reference implementation bit for bit. This is the
// load-bearing equivalence test for the flattened kNN kernel.
//
// It mutates the package-level simdEnabled toggle, so it must not run
// in parallel with other tests in this package.
func TestKNNKernelsBitIdentical(t *testing.T) {
	defer func(v bool) { simdEnabled = v }(simdEnabled)
	for _, seed := range []uint64{1, 2, 3} {
		for _, metric := range []Metric{Cosine, Euclidean, Manhattan} {
			for _, weighting := range []Weighting{Uniform, Distance} {
				for _, standardize := range []bool{true, false} {
					name := fmt.Sprintf("seed=%d/%s/w=%d/std=%v", seed, metric, weighting, standardize)
					d := equivDataset(seed, 59, 37, 3)
					r := New(15)
					r.Metric = metric
					r.Weighting = weighting
					r.Standardize = standardize
					if err := r.Fit(d); err != nil {
						t.Fatal(err)
					}
					probe := equivDataset(seed^0xABCD, 13, 37, 3)
					for _, enabled := range []bool{true, false} {
						simdEnabled = enabled
						for i, x := range probe.X {
							got := r.Predict(x)
							want := r.PredictReference(x)
							for j := range want {
								if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
									t.Fatalf("%s simd=%v probe %d out %d: kernel %v != reference %v",
										name, enabled, i, j, got[j], want[j])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestKNNPredictBatchIntoBitIdentical checks the pooled batch path
// (scratch reuse across rows) against per-row reference predictions.
func TestKNNPredictBatchIntoBitIdentical(t *testing.T) {
	d := equivDataset(7, 59, 41, 4)
	r := New(15)
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	out := ml.NewMatrix(len(d.X), r.NumOutputs())
	// Twice: the second pass runs entirely on recycled scratch.
	for pass := 0; pass < 2; pass++ {
		r.PredictBatchInto(context.Background(), d.X, out)
		for i, x := range d.X {
			want := r.PredictReference(x)
			for j := range want {
				if math.Float64bits(out[i][j]) != math.Float64bits(want[j]) {
					t.Fatalf("pass %d row %d out %d: batch %v != reference %v", pass, i, j, out[i][j], want[j])
				}
			}
		}
	}
}

// TestKNNMutatedKPanics pins the guard against a K field zeroed or
// negated after Fit: prediction must fail loudly instead of silently
// averaging zero neighbors.
func TestKNNMutatedKPanics(t *testing.T) {
	d := equivDataset(11, 16, 5, 2)
	for _, k := range []int{0, -3} {
		r := New(3)
		if err := r.Fit(d); err != nil {
			t.Fatal(err)
		}
		r.K = k
		func() {
			defer func() {
				msg, ok := recover().(string)
				if !ok {
					t.Fatalf("K=%d: Predict did not panic", k)
				}
				if !strings.Contains(msg, "K must be >= 1") {
					t.Fatalf("K=%d: panic message %q does not explain the guard", k, msg)
				}
			}()
			r.Predict(d.X[0])
		}()
	}
}

// TestKNNDecodeRejectsZeroK covers the codec-side guard for the same
// invariant: a wire buffer claiming K < 1 must not decode.
func TestKNNDecodeRejectsZeroK(t *testing.T) {
	d := equivDataset(13, 8, 4, 1)
	r := New(2)
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	var e ml.WireEnc
	if err := r.AppendWire(&e); err != nil {
		t.Fatal(err)
	}
	buf := e.Bytes()
	// The wire layout starts with K as a varint-encoded int; rewrite it
	// by re-encoding with a corrupted K through the public API instead
	// of poking bytes: mutate, encode, restore.
	r.K = 0
	var bad ml.WireEnc
	if err := r.AppendWire(&bad); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWire(ml.NewWireDec(bad.Bytes())); err == nil {
		t.Fatal("decode accepted K=0")
	}
	if _, err := DecodeWire(ml.NewWireDec(buf)); err != nil {
		t.Fatalf("decode of valid buffer failed: %v", err)
	}
}
