// Package knn implements the k-nearest-neighbors regressor the paper
// found most accurate for distribution prediction (k = 15, cosine
// distance). It supports multi-output targets, several distance
// metrics, and uniform or inverse-distance weighting.
package knn

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/ml"
	"repro/internal/parallel"
)

// Metric selects the distance function between feature vectors.
type Metric int

// Supported metrics. The paper reports cosine similarity outperforming
// Euclidean distance on perf-counter profiles; both are provided so the
// ablation benchmark can reproduce that comparison.
const (
	Cosine Metric = iota
	Euclidean
	Manhattan
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Weighting selects how neighbor targets are averaged.
type Weighting int

// Uniform averages the k neighbors equally (scikit-learn's default and
// the paper's setting); Distance weights each neighbor by 1/distance.
const (
	Uniform Weighting = iota
	Distance
)

// Regressor is a kNN multi-output regressor. The zero value is not
// usable; construct with New.
type Regressor struct {
	K         int
	Metric    Metric
	Weighting Weighting
	// Standardize controls whether features are z-scored before distance
	// computation (recommended; on by default in New).
	Standardize bool

	scaler *ml.StandardScaler
	x      [][]float64
	y      [][]float64

	// Flattened serving-kernel state, built by finalize at fit/decode
	// time: the training matrix in one contiguous row-major block (the
	// rows of x are re-pointed to views into it), per-row squared norms
	// for the cosine metric, the output arity, and a pool of
	// request-scoped scratch buffers so steady-state prediction does
	// not allocate.
	xflat   []float64
	sqnorm  []float64
	nOut    int
	scratch sync.Pool // *predictScratch

	// Column-major mirror of xflat for the AVX-512 cosine kernel
	// (element (i, j) at xflatT[j*nPad+i]), padded with zero rows to a
	// multiple of the kernel's 32-lane width. nil when the kernel is
	// unavailable or the metric is not cosine.
	xflatT []float64
	nPad   int
}

// predictScratch is the per-call working set: the standardized query,
// the distance column, and the bounded selection heap. Pooled so the
// batch hot path runs allocation-free.
type predictScratch struct {
	q    []float64
	dist []float64
	heap []neighbor
}

// New returns a kNN regressor with the paper's defaults: k = 15, cosine
// distance, uniform weighting, standardized features.
func New(k int) *Regressor {
	return &Regressor{K: k, Metric: Cosine, Weighting: Uniform, Standardize: true}
}

// Name implements ml.Regressor.
func (r *Regressor) Name() string { return fmt.Sprintf("kNN(k=%d,%s)", r.K, r.Metric) }

// Fit stores the (optionally standardized) training set.
func (r *Regressor) Fit(d *ml.Dataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	if r.K < 1 {
		return fmt.Errorf("knn: k must be >= 1, got %d", r.K)
	}
	x := d.X
	if r.Standardize {
		var err error
		r.scaler, err = ml.FitScaler(d.X)
		if err != nil {
			return fmt.Errorf("knn: %w", err)
		}
		x = r.scaler.TransformAll(d.X)
	} else {
		// Copy rows so later caller mutations cannot corrupt the model.
		x = make([][]float64, len(d.X))
		for i, row := range d.X {
			x[i] = append([]float64(nil), row...)
		}
	}
	r.x = x
	r.y = make([][]float64, len(d.Y))
	for i, row := range d.Y {
		r.y[i] = append([]float64(nil), row...)
	}
	r.finalize()
	return nil
}

// finalize builds the flattened serving-kernel state from the stored
// training set: the contiguous row-major matrix the blocked distance
// kernel streams over, and (for the cosine metric) the per-row squared
// norms Σv², accumulated in the same element order as the reference
// distance loop so the values are bit-identical. Fit and DecodeWire
// both call it.
func (r *Regressor) finalize() {
	n := len(r.x)
	p := len(r.x[0])
	r.xflat = make([]float64, n*p)
	for i, row := range r.x {
		copy(r.xflat[i*p:(i+1)*p], row)
		r.x[i] = r.xflat[i*p : (i+1)*p] // rows become views of the block
	}
	r.sqnorm = nil
	r.xflatT, r.nPad = nil, 0
	if r.Metric == Cosine {
		r.sqnorm = make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range r.xflat[i*p : (i+1)*p] {
				s += v * v
			}
			r.sqnorm[i] = s
		}
		if hasAVX512 && p > 0 {
			// Column-major mirror for the vector kernel, zero-padded to
			// whole 64-row blocks. Padding lanes accumulate garbage
			// distances that are never read (and a zero squared norm, so
			// the kernel's vanishing-norm lane fix keeps them finite).
			r.nPad = (n + 63) &^ 63
			r.xflatT = make([]float64, p*r.nPad)
			for i := 0; i < n; i++ {
				row := r.xflat[i*p : (i+1)*p]
				for j, v := range row {
					r.xflatT[j*r.nPad+i] = v
				}
			}
			sq := make([]float64, r.nPad)
			copy(sq, r.sqnorm)
			r.sqnorm = sq
		}
	}
	r.nOut = len(r.y[0])
}

// distance computes the configured metric; for Cosine it returns
// 1 − cos(x, y), which is 0 for parallel vectors and 2 for antiparallel.
func (r *Regressor) distance(a, b []float64) float64 {
	switch r.Metric {
	case Cosine:
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 1 // orthogonal by convention when a norm vanishes
		}
		return 1 - dot/math.Sqrt(na*nb)
	case Manhattan:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	default: // Euclidean
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		//lint:allow floatcheck s is a sum of squares, so it is always >= 0
		return math.Sqrt(s)
	}
}

// neighbor is one candidate training point during top-k selection.
type neighbor struct {
	dist float64
	idx  int
}

// worse reports whether a ranks after b in nearest-neighbor order:
// larger distance, with ties broken toward the larger index (the same
// deterministic tie-break the full sort used).
func worse(a, b neighbor) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.idx > b.idx
}

// Predict returns the (weighted) mean target of the k nearest training
// examples. If fewer than k examples exist, all are used. It runs the
// same blocked, allocation-free kernel as PredictBatchInto (only the
// returned vector is allocated) and is bit-identical to
// PredictReference.
func (r *Regressor) Predict(x []float64) []float64 {
	//lint:allow alloccheck row API allocates only the returned vector by contract; the batch path fills caller buffers via PredictBatchInto
	out := make([]float64, r.nOut)
	s := r.getScratch()
	r.predictInto(x, out, s)
	r.scratch.Put(s)
	return out
}

// NumOutputs implements ml.BatchIntoPredictor.
func (r *Regressor) NumOutputs() int { return r.nOut }

// PredictBatchInto implements ml.BatchIntoPredictor: rows fan out
// across the shared worker pool (bounded by GOMAXPROCS), each filled in
// place with pooled scratch. Row results are independent, so the output
// is bit-identical at any worker count.
func (r *Regressor) PredictBatchInto(ctx context.Context, X, out [][]float64) {
	_ = parallel.ForEach(ctx, len(X), 0, func(_ context.Context, i int) error {
		s := r.getScratch()
		r.predictInto(X[i], out[i], s)
		r.scratch.Put(s)
		return nil
	})
}

// getScratch returns a scratch set sized for this model; steady state
// it never allocates.
//
//perf:pooled sync.Pool acquisition; the makes run only on pool miss or the first call at a new shape
func (r *Regressor) getScratch() *predictScratch {
	s, _ := r.scratch.Get().(*predictScratch)
	if s == nil {
		s = &predictScratch{}
	}
	n, p := len(r.x), len(r.x[0])
	if cap(s.q) < p {
		s.q = make([]float64, p)
	}
	s.q = s.q[:p]
	// The vector kernel writes whole 64-lane blocks, so the distance
	// column needs capacity for the padded row count.
	padN := n
	if r.nPad > padN {
		padN = r.nPad
	}
	if cap(s.dist) < padN {
		s.dist = make([]float64, padN)
	}
	s.dist = s.dist[:n]
	if cap(s.heap) < n {
		s.heap = make([]neighbor, 0, n)
	}
	s.heap = s.heap[:0]
	return s
}

// predictInto is the serving kernel: distances via the blocked flat
// kernel, bounded-heap top-k selection in candidate order, nearest-first
// weighted accumulation into out. Every step reproduces the reference
// implementation's floating-point operation order exactly, so the
// result matches PredictReference to the last bit.
func (r *Regressor) predictInto(x, out []float64, s *predictScratch) {
	if r.x == nil {
		panic("knn: Predict before Fit")
	}
	if r.K < 1 {
		// Fit rejects K < 1, so this only trips when the exported field
		// was mutated after fitting; selecting zero neighbors would
		// silently predict zeros, so fail loudly instead.
		//lint:allow alloccheck panic path: formats a misuse message after post-Fit field mutation, never in steady state
		panic(fmt.Sprintf("knn: Predict with K=%d (K must be >= 1; was it mutated after Fit?)", r.K))
	}
	q := x
	var na float64
	naKnown := false
	if r.Standardize {
		if r.Metric == Cosine {
			// Fused transform + query norm: same values, same element
			// order as a separate Σq² pass, with the serial add chain
			// hidden behind the transform's divides.
			na = r.scaler.TransformSumSqInto(x, s.q)
			naKnown = true
		} else {
			r.scaler.TransformInto(x, s.q)
		}
		q = s.q
	}
	k := r.K
	if k > len(r.x) {
		k = len(r.x)
	}
	r.distancesInto(q, s.dist, na, naKnown)
	// Top-k selection by insertion into a nearest-first sorted window,
	// visiting candidates in index order. The comparator (distance,
	// then index) is a strict total order, so the selected set and its
	// sorted order — and therefore the accumulation below — are the
	// unique ones the reference's heap + full sort produces. The
	// window's current worst is kept in a local so the common case —
	// a candidate that doesn't make the cut — is a single compare.
	sel := s.heap[:0]
	var worst neighbor
	for i, dv := range s.dist {
		if len(sel) == k {
			if dv > worst.dist || (dv == worst.dist && i > worst.idx) {
				continue // ranks after the current worst kept
			}
			sel = sel[:k-1] // evict the worst, then insert in order
		}
		cand := neighbor{dist: dv, idx: i}
		j := len(sel) - 1
		sel = append(sel, cand)
		for ; j >= 0 && worse(sel[j], cand); j-- {
			sel[j+1] = sel[j]
		}
		sel[j+1] = cand
		worst = sel[len(sel)-1]
	}
	// Accumulate nearest-first so the floating-point summation order
	// (and thus the result, to the last bit) matches the full sort.
	for j := range out {
		out[j] = 0
	}
	var wsum float64
	for _, n := range sel {
		w := 1.0
		if r.Weighting == Distance {
			w = 1 / (n.dist + 1e-12)
		}
		wsum += w
		for j, v := range r.y[n.idx] {
			out[j] += w * v
		}
	}
	if wsum <= 0 {
		return // no neighbors contributed weight
	}
	for j := range out {
		out[j] /= wsum
	}
}

// distancesInto fills dist[i] with the configured metric between q and
// training row i, processing candidates in blocks of eight so eight
// independent accumulator chains keep the floating-point units busy
// (the scalar loop is latency-bound on one serial add chain). Each
// candidate's accumulator receives exactly the element-order additions
// of the reference r.distance loop, so every distance is bit-identical.
// When naKnown is true, na is the caller's already-accumulated Σq²
// (only meaningful for the cosine metric).
func (r *Regressor) distancesInto(q, dist []float64, na float64, naKnown bool) {
	switch r.Metric {
	case Cosine:
		r.cosineInto(q, dist, na, naKnown)
	case Manhattan:
		r.manhattanInto(q, dist)
	default:
		r.euclideanInto(q, dist)
	}
}

// cosineDist finishes 1 − cos from the accumulated dot product and the
// two squared norms, with the reference kernel's vanishing-norm
// convention.
func cosineDist(dot, na, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 1 // orthogonal by convention when a norm vanishes
	}
	return 1 - dot/math.Sqrt(na*nb)
}

func (r *Regressor) cosineInto(q, dist []float64, na float64, naKnown bool) {
	// The query norm depends only on q: computed once per call, in the
	// same element order as the reference loop's interleaved na chain
	// (or fused into the standardizing transform by the caller).
	if !naKnown {
		na = 0
		for _, v := range q {
			na += v * v
		}
	}
	if simdEnabled && r.xflatT != nil {
		if na == 0 {
			// Vanishing query norm: the reference returns 1 for every
			// candidate (this also covers zero-feature queries).
			for i := range dist {
				dist[i] = 1
			}
			return
		}
		// 64 candidate rows per call: one row per vector lane, each lane
		// accumulating in the scalar reference's exact feature order.
		pd := dist[:r.nPad]
		for i0 := 0; i0 < r.nPad; i0 += 64 {
			cosineBlock64(&q[0], len(q), &r.xflatT[i0], r.nPad, na, &r.sqnorm[i0], &pd[i0])
		}
		return
	}
	p := len(q)
	n := len(r.x)
	sq := r.sqnorm
	i := 0
	for ; i+8 <= n; i += 8 {
		b0 := r.xflat[(i+0)*p : (i+1)*p]
		b1 := r.xflat[(i+1)*p : (i+2)*p]
		b2 := r.xflat[(i+2)*p : (i+3)*p]
		b3 := r.xflat[(i+3)*p : (i+4)*p]
		b4 := r.xflat[(i+4)*p : (i+5)*p]
		b5 := r.xflat[(i+5)*p : (i+6)*p]
		b6 := r.xflat[(i+6)*p : (i+7)*p]
		b7 := r.xflat[(i+7)*p : (i+8)*p]
		var d0, d1, d2, d3, d4, d5, d6, d7 float64
		for j, qv := range q {
			d0 += qv * b0[j]
			d1 += qv * b1[j]
			d2 += qv * b2[j]
			d3 += qv * b3[j]
			d4 += qv * b4[j]
			d5 += qv * b5[j]
			d6 += qv * b6[j]
			d7 += qv * b7[j]
		}
		dist[i+0] = cosineDist(d0, na, sq[i+0])
		dist[i+1] = cosineDist(d1, na, sq[i+1])
		dist[i+2] = cosineDist(d2, na, sq[i+2])
		dist[i+3] = cosineDist(d3, na, sq[i+3])
		dist[i+4] = cosineDist(d4, na, sq[i+4])
		dist[i+5] = cosineDist(d5, na, sq[i+5])
		dist[i+6] = cosineDist(d6, na, sq[i+6])
		dist[i+7] = cosineDist(d7, na, sq[i+7])
	}
	for ; i < n; i++ {
		b := r.xflat[i*p : (i+1)*p]
		var dot float64
		for j, qv := range q {
			dot += qv * b[j]
		}
		dist[i] = cosineDist(dot, na, sq[i])
	}
}

func (r *Regressor) euclideanInto(q, dist []float64) {
	p := len(q)
	n := len(r.x)
	i := 0
	for ; i+8 <= n; i += 8 {
		b0 := r.xflat[(i+0)*p : (i+1)*p]
		b1 := r.xflat[(i+1)*p : (i+2)*p]
		b2 := r.xflat[(i+2)*p : (i+3)*p]
		b3 := r.xflat[(i+3)*p : (i+4)*p]
		b4 := r.xflat[(i+4)*p : (i+5)*p]
		b5 := r.xflat[(i+5)*p : (i+6)*p]
		b6 := r.xflat[(i+6)*p : (i+7)*p]
		b7 := r.xflat[(i+7)*p : (i+8)*p]
		var d0, d1, d2, d3, d4, d5, d6, d7 float64
		for j, qv := range q {
			e0 := qv - b0[j]
			d0 += e0 * e0
			e1 := qv - b1[j]
			d1 += e1 * e1
			e2 := qv - b2[j]
			d2 += e2 * e2
			e3 := qv - b3[j]
			d3 += e3 * e3
			e4 := qv - b4[j]
			d4 += e4 * e4
			e5 := qv - b5[j]
			d5 += e5 * e5
			e6 := qv - b6[j]
			d6 += e6 * e6
			e7 := qv - b7[j]
			d7 += e7 * e7
		}
		//lint:allow floatcheck each accumulator is a sum of squares, so it is always >= 0
		dist[i+0], dist[i+1], dist[i+2], dist[i+3] = math.Sqrt(d0), math.Sqrt(d1), math.Sqrt(d2), math.Sqrt(d3)
		//lint:allow floatcheck each accumulator is a sum of squares, so it is always >= 0
		dist[i+4], dist[i+5], dist[i+6], dist[i+7] = math.Sqrt(d4), math.Sqrt(d5), math.Sqrt(d6), math.Sqrt(d7)
	}
	for ; i < n; i++ {
		b := r.xflat[i*p : (i+1)*p]
		var s float64
		for j, qv := range q {
			e := qv - b[j]
			s += e * e
		}
		//lint:allow floatcheck s is a sum of squares, so it is always >= 0
		dist[i] = math.Sqrt(s)
	}
}

func (r *Regressor) manhattanInto(q, dist []float64) {
	p := len(q)
	n := len(r.x)
	i := 0
	for ; i+8 <= n; i += 8 {
		b0 := r.xflat[(i+0)*p : (i+1)*p]
		b1 := r.xflat[(i+1)*p : (i+2)*p]
		b2 := r.xflat[(i+2)*p : (i+3)*p]
		b3 := r.xflat[(i+3)*p : (i+4)*p]
		b4 := r.xflat[(i+4)*p : (i+5)*p]
		b5 := r.xflat[(i+5)*p : (i+6)*p]
		b6 := r.xflat[(i+6)*p : (i+7)*p]
		b7 := r.xflat[(i+7)*p : (i+8)*p]
		var d0, d1, d2, d3, d4, d5, d6, d7 float64
		for j, qv := range q {
			d0 += math.Abs(qv - b0[j])
			d1 += math.Abs(qv - b1[j])
			d2 += math.Abs(qv - b2[j])
			d3 += math.Abs(qv - b3[j])
			d4 += math.Abs(qv - b4[j])
			d5 += math.Abs(qv - b5[j])
			d6 += math.Abs(qv - b6[j])
			d7 += math.Abs(qv - b7[j])
		}
		dist[i+0], dist[i+1], dist[i+2], dist[i+3] = d0, d1, d2, d3
		dist[i+4], dist[i+5], dist[i+6], dist[i+7] = d4, d5, d6, d7
	}
	for ; i < n; i++ {
		b := r.xflat[i*p : (i+1)*p]
		var s float64
		for j, qv := range q {
			s += math.Abs(qv - b[j])
		}
		dist[i] = s
	}
}

// PredictReference is the original row-at-a-time implementation —
// per-candidate distance calls, bounded heap, sort.Slice ordering —
// kept as the independent reference the equivalence suite compares
// against the blocked kernel bit for bit.
func (r *Regressor) PredictReference(x []float64) []float64 {
	if r.x == nil {
		panic("knn: Predict before Fit")
	}
	q := x
	if r.Standardize {
		q = r.scaler.Transform(x)
	}
	k := r.K
	if k > len(r.x) {
		k = len(r.x)
	}
	heap := make([]neighbor, 0, k)
	for i, row := range r.x {
		cand := neighbor{dist: r.distance(q, row), idx: i}
		if len(heap) < k {
			heap = append(heap, cand)
			siftUp(heap, len(heap)-1)
		} else if worse(heap[0], cand) {
			heap[0] = cand
			siftDown(heap, 0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return worse(heap[j], heap[i]) })
	out := make([]float64, len(r.y[0]))
	var wsum float64
	for _, n := range heap {
		w := 1.0
		if r.Weighting == Distance {
			w = 1 / (n.dist + 1e-12)
		}
		wsum += w
		for j, v := range r.y[n.idx] {
			out[j] += w * v
		}
	}
	if wsum <= 0 {
		return out
	}
	for j := range out {
		out[j] /= wsum
	}
	return out
}

// siftUp restores the max-heap property after appending at index i.
func siftUp(h []neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDown restores the max-heap property after replacing the root.
func siftDown(h []neighbor, i int) {
	for {
		l, rt := 2*i+1, 2*i+2
		w := i
		if l < len(h) && worse(h[l], h[w]) {
			w = l
		}
		if rt < len(h) && worse(h[rt], h[w]) {
			w = rt
		}
		if w == i {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}
