// Package knn implements the k-nearest-neighbors regressor the paper
// found most accurate for distribution prediction (k = 15, cosine
// distance). It supports multi-output targets, several distance
// metrics, and uniform or inverse-distance weighting.
package knn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// Metric selects the distance function between feature vectors.
type Metric int

// Supported metrics. The paper reports cosine similarity outperforming
// Euclidean distance on perf-counter profiles; both are provided so the
// ablation benchmark can reproduce that comparison.
const (
	Cosine Metric = iota
	Euclidean
	Manhattan
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Weighting selects how neighbor targets are averaged.
type Weighting int

// Uniform averages the k neighbors equally (scikit-learn's default and
// the paper's setting); Distance weights each neighbor by 1/distance.
const (
	Uniform Weighting = iota
	Distance
)

// Regressor is a kNN multi-output regressor. The zero value is not
// usable; construct with New.
type Regressor struct {
	K         int
	Metric    Metric
	Weighting Weighting
	// Standardize controls whether features are z-scored before distance
	// computation (recommended; on by default in New).
	Standardize bool

	scaler *ml.StandardScaler
	x      [][]float64
	y      [][]float64
}

// New returns a kNN regressor with the paper's defaults: k = 15, cosine
// distance, uniform weighting, standardized features.
func New(k int) *Regressor {
	return &Regressor{K: k, Metric: Cosine, Weighting: Uniform, Standardize: true}
}

// Name implements ml.Regressor.
func (r *Regressor) Name() string { return fmt.Sprintf("kNN(k=%d,%s)", r.K, r.Metric) }

// Fit stores the (optionally standardized) training set.
func (r *Regressor) Fit(d *ml.Dataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	if r.K < 1 {
		return fmt.Errorf("knn: k must be >= 1, got %d", r.K)
	}
	x := d.X
	if r.Standardize {
		var err error
		r.scaler, err = ml.FitScaler(d.X)
		if err != nil {
			return fmt.Errorf("knn: %w", err)
		}
		x = r.scaler.TransformAll(d.X)
	} else {
		// Copy rows so later caller mutations cannot corrupt the model.
		x = make([][]float64, len(d.X))
		for i, row := range d.X {
			x[i] = append([]float64(nil), row...)
		}
	}
	r.x = x
	r.y = make([][]float64, len(d.Y))
	for i, row := range d.Y {
		r.y[i] = append([]float64(nil), row...)
	}
	return nil
}

// distance computes the configured metric; for Cosine it returns
// 1 − cos(x, y), which is 0 for parallel vectors and 2 for antiparallel.
func (r *Regressor) distance(a, b []float64) float64 {
	switch r.Metric {
	case Cosine:
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 1 // orthogonal by convention when a norm vanishes
		}
		return 1 - dot/math.Sqrt(na*nb)
	case Manhattan:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	default: // Euclidean
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		//lint:allow floatcheck s is a sum of squares, so it is always >= 0
		return math.Sqrt(s)
	}
}

// neighbor is one candidate training point during top-k selection.
type neighbor struct {
	dist float64
	idx  int
}

// worse reports whether a ranks after b in nearest-neighbor order:
// larger distance, with ties broken toward the larger index (the same
// deterministic tie-break the full sort used).
func worse(a, b neighbor) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.idx > b.idx
}

// Predict returns the (weighted) mean target of the k nearest training
// examples. If fewer than k examples exist, all are used.
//
// Selection is O(n log k) via a bounded max-heap rather than an
// O(n log n) sort of every training point; the selected set, its
// ordering, and therefore the prediction are bit-identical to the
// full-sort implementation.
func (r *Regressor) Predict(x []float64) []float64 {
	if r.x == nil {
		panic("knn: Predict before Fit")
	}
	q := x
	if r.Standardize {
		q = r.scaler.Transform(x)
	}
	k := r.K
	if k > len(r.x) {
		k = len(r.x)
	}
	// Bounded max-heap of the k best candidates seen so far; the root is
	// the worst kept neighbor and is evicted by any better candidate.
	heap := make([]neighbor, 0, k)
	for i, row := range r.x {
		cand := neighbor{dist: r.distance(q, row), idx: i}
		if len(heap) < k {
			heap = append(heap, cand)
			siftUp(heap, len(heap)-1)
		} else if worse(heap[0], cand) {
			heap[0] = cand
			siftDown(heap, 0)
		}
	}
	// Accumulate nearest-first so the floating-point summation order (and
	// thus the result, to the last bit) matches the previous full sort.
	sort.Slice(heap, func(i, j int) bool { return worse(heap[j], heap[i]) })
	out := make([]float64, len(r.y[0]))
	var wsum float64
	for _, n := range heap {
		w := 1.0
		if r.Weighting == Distance {
			w = 1 / (n.dist + 1e-12)
		}
		wsum += w
		for j, v := range r.y[n.idx] {
			out[j] += w * v
		}
	}
	if wsum <= 0 {
		return out // no neighbors contributed weight
	}
	for j := range out {
		out[j] /= wsum
	}
	return out
}

// siftUp restores the max-heap property after appending at index i.
func siftUp(h []neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDown restores the max-heap property after replacing the root.
func siftDown(h []neighbor, i int) {
	for {
		l, rt := 2*i+1, 2*i+2
		w := i
		if l < len(h) && worse(h[l], h[w]) {
			w = l
		}
		if rt < len(h) && worse(h[rt], h[w]) {
			w = rt
		}
		if w == i {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}
