package knn

import (
	"math"
	"sort"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

func TestKNNExactNeighbor(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0, 0}, {10, 0}, {0, 10}},
		Y: [][]float64{{1, 100}, {2, 200}, {3, 300}},
	}
	r := New(1)
	r.Metric = Euclidean
	r.Standardize = false
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	got := r.Predict([]float64{9, 1})
	if got[0] != 2 || got[1] != 200 {
		t.Errorf("Predict = %v, want [2 200]", got)
	}
}

func TestKNNAveragesK(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {100}},
		Y: [][]float64{{10}, {20}, {1000}},
	}
	r := New(2)
	r.Metric = Euclidean
	r.Standardize = false
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	got := r.Predict([]float64{0.4})
	if math.Abs(got[0]-15) > 1e-12 {
		t.Errorf("Predict = %v, want 15 (mean of two nearest)", got[0])
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}},
		Y: [][]float64{{2}, {4}},
	}
	r := New(15)
	r.Metric = Euclidean
	r.Standardize = false
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{0}); math.Abs(got[0]-3) > 1e-12 {
		t.Errorf("Predict = %v, want 3 (mean of all)", got[0])
	}
}

func TestKNNCosineIgnoresMagnitude(t *testing.T) {
	// With cosine distance (and no standardization), scaled copies of a
	// vector are identical; the nearest neighbor of 2·v1 must be v1 even
	// though v2 is closer in Euclidean terms.
	d := &ml.Dataset{
		X: [][]float64{{1, 0}, {1.4, 1.4}},
		Y: [][]float64{{1}, {2}},
	}
	r := New(1)
	r.Standardize = false // keep raw directions
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{2, 0}); got[0] != 1 {
		t.Errorf("cosine Predict = %v, want 1", got[0])
	}
	// Sanity: Euclidean picks the other point.
	re := New(1)
	re.Metric = Euclidean
	re.Standardize = false
	_ = re.Fit(d)
	if got := re.Predict([]float64{2, 0}); got[0] != 1 {
		// (2,0) is distance 1 from (1,0) and ~1.5 from (1.4,1.4): still 1.
		t.Logf("euclidean also picks 1 here (ok)")
	}
}

func TestKNNCosineZeroVector(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1, 1}, {2, 2}},
		Y: [][]float64{{1}, {2}},
	}
	r := New(1)
	r.Standardize = false
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Zero query must not NaN; both distances are 1, tie broken by index.
	if got := r.Predict([]float64{0, 0}); math.IsNaN(got[0]) {
		t.Error("zero-vector query produced NaN")
	}
}

func TestKNNDistanceWeighting(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0}, {10}},
		Y: [][]float64{{0}, {100}},
	}
	r := New(2)
	r.Metric = Euclidean
	r.Weighting = Distance
	r.Standardize = false
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Query at 1: weights 1/1 and 1/9 -> prediction = (0·1 + 100/9)/(1+1/9) = 10.
	if got := r.Predict([]float64{1}); math.Abs(got[0]-10) > 1e-9 {
		t.Errorf("distance-weighted Predict = %v, want 10", got[0])
	}
}

func TestKNNStandardizationMatters(t *testing.T) {
	// Feature 1 has a huge scale; without standardization it dominates.
	d := &ml.Dataset{
		X: [][]float64{{0, 0}, {1, 10000}, {2, 0}},
		Y: [][]float64{{1}, {2}, {3}},
	}
	r := New(1)
	r.Metric = Euclidean
	r.Standardize = true
	if err := r.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Query near example 2 in standardized space.
	got := r.Predict([]float64{2.1, 0})
	if got[0] != 3 {
		t.Errorf("standardized Predict = %v, want 3", got[0])
	}
}

func TestKNNValidation(t *testing.T) {
	r := New(0)
	if err := r.Fit(&ml.Dataset{X: [][]float64{{1}}, Y: [][]float64{{1}}}); err == nil {
		t.Error("k=0 should fail")
	}
	r2 := New(3)
	if err := r2.Fit(&ml.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestKNNPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Predict([]float64{1})
}

func TestKNNDeterministicTieBreak(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1}, {1}, {1}},
		Y: [][]float64{{1}, {2}, {3}},
	}
	r := New(2)
	r.Metric = Euclidean
	r.Standardize = false
	_ = r.Fit(d)
	for i := 0; i < 5; i++ {
		if got := r.Predict([]float64{1}); math.Abs(got[0]-1.5) > 1e-12 {
			t.Fatalf("tie-break not deterministic or wrong: %v", got[0])
		}
	}
}

func TestKNNRecoverySyntheticFunction(t *testing.T) {
	// kNN should approximate a smooth function given dense coverage.
	rng := randx.New(7)
	n := 2000
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a, b := rng.Uniform(-1, 1), rng.Uniform(-1, 1)
		X[i] = []float64{a, b}
		Y[i] = []float64{a*a + b, 2 * a}
	}
	r := New(5)
	r.Metric = Euclidean
	if err := r.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Uniform(-0.9, 0.9), rng.Uniform(-0.9, 0.9)
		got := r.Predict([]float64{a, b})
		if e := math.Abs(got[0] - (a*a + b)); e > worst {
			worst = e
		}
		if e := math.Abs(got[1] - 2*a); e > worst {
			worst = e
		}
	}
	if worst > 0.25 {
		t.Errorf("worst-case kNN error = %v, expected < 0.25", worst)
	}
}

func TestMetricStrings(t *testing.T) {
	if Cosine.String() != "cosine" || Euclidean.String() != "euclidean" || Manhattan.String() != "manhattan" {
		t.Error("metric names wrong")
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric should render")
	}
	if New(15).Name() == "" {
		t.Error("Name should render")
	}
}

func TestKNNManhattan(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0, 0}, {3, 3}},
		Y: [][]float64{{1}, {2}},
	}
	r := New(1)
	r.Metric = Manhattan
	r.Standardize = false
	_ = r.Fit(d)
	if got := r.Predict([]float64{1, 1}); got[0] != 1 {
		t.Errorf("manhattan Predict = %v, want 1", got[0])
	}
}

func TestKNNFitCopiesData(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := [][]float64{{10}, {20}}
	d := &ml.Dataset{X: x, Y: y}
	r := New(1)
	r.Metric = Euclidean
	r.Standardize = false
	_ = r.Fit(d)
	x[0][0] = 999
	y[0][0] = 999
	if got := r.Predict([]float64{1}); got[0] != 10 {
		t.Errorf("model corrupted by caller mutation: %v", got[0])
	}
}

// fullSortPredict is the pre-top-k reference implementation: sort every
// training point, take the first k. The heap-based Predict must agree
// with it to the last bit.
func fullSortPredict(r *Regressor, x []float64) []float64 {
	q := x
	if r.Standardize {
		q = r.scaler.Transform(x)
	}
	ns := make([]neighbor, len(r.x))
	for i, row := range r.x {
		ns[i] = neighbor{dist: r.distance(q, row), idx: i}
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].dist != ns[j].dist {
			return ns[i].dist < ns[j].dist
		}
		return ns[i].idx < ns[j].idx
	})
	k := r.K
	if k > len(ns) {
		k = len(ns)
	}
	out := make([]float64, len(r.y[0]))
	var wsum float64
	for _, n := range ns[:k] {
		w := 1.0
		if r.Weighting == Distance {
			w = 1 / (n.dist + 1e-12)
		}
		wsum += w
		for j, v := range r.y[n.idx] {
			out[j] += w * v
		}
	}
	for j := range out {
		out[j] /= wsum
	}
	return out
}

// TestKNNTopKMatchesFullSort checks the top-k selection against the
// full-sort reference across metrics, weightings, and k values, on data
// with deliberately duplicated rows so the deterministic index
// tie-break is exercised.
func TestKNNTopKMatchesFullSort(t *testing.T) {
	rng := randx.New(31)
	n := 500
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)}
		if i%7 == 0 && i > 0 {
			X[i] = append([]float64(nil), X[i-1]...) // exact duplicate: tied distance
		}
		Y[i] = []float64{rng.StdNormal(), rng.StdNormal()}
	}
	d := &ml.Dataset{X: X, Y: Y}
	for _, metric := range []Metric{Cosine, Euclidean, Manhattan} {
		for _, weighting := range []Weighting{Uniform, Distance} {
			for _, k := range []int{1, 2, 15, 100, 499, 500, 600} {
				r := New(k)
				r.Metric = metric
				r.Weighting = weighting
				if err := r.Fit(d); err != nil {
					t.Fatal(err)
				}
				for probe := 0; probe < 25; probe++ {
					x := []float64{rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)}
					if probe%5 == 0 {
						x = append([]float64(nil), X[probe]...) // exact hit: zero distance
					}
					got := r.Predict(x)
					want := fullSortPredict(r, x)
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("%s/%d k=%d: Predict[%d] = %v, full-sort reference = %v",
								metric, weighting, k, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}
