//go:build amd64

package knn

// The scalar blocked kernel in cosineInto is limited by scalar FP
// throughput (two FP ops per cycle), which caps the 59x272 dot-product
// sweep of the paper's UC1 workload around 2x the latency budget. The
// AVX-512 kernel below processes 64 candidate rows per call — one row
// per vector lane over a column-major copy of the training matrix — so
// each lane still accumulates its row's products in exactly the scalar
// reference's feature order. Separate VMULPD/VADDPD (never FMA) and
// IEEE-correctly-rounded VSQRTPD/VDIVPD keep every distance
// bit-identical to r.distance; the equivalence suite verifies this on
// every test run.

// hasAVX512 reports CPU+OS AVX-512F support, probed once at startup.
var hasAVX512 = x86HasAVX512F()

// simdEnabled gates the assembly kernel at call time. It is a separate
// variable so tests can force the scalar path and compare both kernels
// on the same fitted model.
var simdEnabled = hasAVX512

// cosineBlock64 fills dist[0:64] with 1 - dot/sqrt(na*sq[l]) for the 64
// candidate rows held column-major at col (column stride in elements),
// forcing lanes with sq[l] == 0 to distance 1. The caller guarantees
// na != 0, p >= 1, and 64 addressable lanes in col, sq, and dist.
//
//go:noescape
func cosineBlock64(q *float64, p int, col *float64, stride int, na float64, sq *float64, dist *float64)

// x86HasAVX512F probes CPUID and XCR0 for usable AVX-512F.
func x86HasAVX512F() bool
