// AVX-512 cosine-distance kernel. See simd_amd64.go for the contract.
//
// Bit-identity with the scalar reference is the design constraint: each
// vector lane holds ONE candidate row and accumulates qv*b[j] in strict
// feature order with separate VMULPD/VADDPD (never FMA), so every lane
// performs exactly the multiply-round-add-round sequence of the scalar
// loop. VSQRTPD/VDIVPD/VSUBPD are IEEE-correctly-rounded per lane,
// matching math.Sqrt and scalar division bit for bit.

#include "textflag.h"

DATA one64<>+0(SB)/8, $(1.0)
GLOBL one64<>(SB), RODATA|NOPTR, $8

// func cosineBlock64(q *float64, p int, col *float64, stride int, na float64, sq *float64, dist *float64)
//
// For lanes l = 0..63:
//   dot[l]  = sum over j of q[j] * col[j*stride + l]   (sequential j order)
//   dist[l] = 1 - dot[l]/sqrt(na*sq[l]), or 1 when sq[l] == 0
//
// The caller guarantees na != 0, p >= 1, and 64 addressable lanes in
// col/sq/dist (the training matrix is padded to a multiple of 64 rows).
// Eight independent accumulator chains (Z0-Z7) hide the VADDPD latency;
// one query broadcast feeds all 64 lanes of a feature column.
TEXT ·cosineBlock64(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), SI
	MOVQ p+8(FP), CX
	MOVQ col+16(FP), DI
	MOVQ stride+24(FP), R8
	SHLQ $3, R8 // column step in bytes

	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	VXORPD Z4, Z4, Z4
	VXORPD Z5, Z5, Z5
	VXORPD Z6, Z6, Z6
	VXORPD Z7, Z7, Z7

loop:
	VBROADCASTSD (SI), Z8
	VMOVUPD (DI), Z9
	VMOVUPD 64(DI), Z10
	VMOVUPD 128(DI), Z11
	VMOVUPD 192(DI), Z12
	VMOVUPD 256(DI), Z13
	VMOVUPD 320(DI), Z14
	VMOVUPD 384(DI), Z15
	VMOVUPD 448(DI), Z16
	VMULPD Z8, Z9, Z9
	VMULPD Z8, Z10, Z10
	VMULPD Z8, Z11, Z11
	VMULPD Z8, Z12, Z12
	VMULPD Z8, Z13, Z13
	VMULPD Z8, Z14, Z14
	VMULPD Z8, Z15, Z15
	VMULPD Z8, Z16, Z16
	VADDPD Z9, Z0, Z0
	VADDPD Z10, Z1, Z1
	VADDPD Z11, Z2, Z2
	VADDPD Z12, Z3, Z3
	VADDPD Z13, Z4, Z4
	VADDPD Z14, Z5, Z5
	VADDPD Z15, Z6, Z6
	VADDPD Z16, Z7, Z7
	ADDQ $8, SI
	ADDQ R8, DI
	DECQ CX
	JNZ  loop

	// Finish: dist = 1 - dot/sqrt(na*nb), with nb == 0 lanes forced to 1.
	VBROADCASTSD na+32(FP), Z17
	VBROADCASTSD one64<>(SB), Z18
	VXORPD Z19, Z19, Z19
	MOVQ sq+40(FP), R9
	MOVQ dist+48(FP), R10

	VMOVUPD (R9), Z9
	VCMPPD $0, Z19, Z9, K1 // K1: lanes with nb == 0
	VMULPD Z17, Z9, Z9     // na*nb
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z0, Z0      // dot/sqrt(na*nb)
	VSUBPD Z0, Z18, Z0     // 1 - ...
	VMOVUPD Z18, K1, Z0    // vanishing-norm convention: distance 1
	VMOVUPD Z0, (R10)

	VMOVUPD 64(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z1, Z1
	VSUBPD Z1, Z18, Z1
	VMOVUPD Z18, K1, Z1
	VMOVUPD Z1, 64(R10)

	VMOVUPD 128(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z2, Z2
	VSUBPD Z2, Z18, Z2
	VMOVUPD Z18, K1, Z2
	VMOVUPD Z2, 128(R10)

	VMOVUPD 192(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z3, Z3
	VSUBPD Z3, Z18, Z3
	VMOVUPD Z18, K1, Z3
	VMOVUPD Z3, 192(R10)

	VMOVUPD 256(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z4, Z4
	VSUBPD Z4, Z18, Z4
	VMOVUPD Z18, K1, Z4
	VMOVUPD Z4, 256(R10)

	VMOVUPD 320(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z5, Z5
	VSUBPD Z5, Z18, Z5
	VMOVUPD Z18, K1, Z5
	VMOVUPD Z5, 320(R10)

	VMOVUPD 384(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z6, Z6
	VSUBPD Z6, Z18, Z6
	VMOVUPD Z18, K1, Z6
	VMOVUPD Z6, 384(R10)

	VMOVUPD 448(R9), Z9
	VCMPPD $0, Z19, Z9, K1
	VMULPD Z17, Z9, Z9
	VSQRTPD Z9, Z9
	VDIVPD Z9, Z7, Z7
	VSUBPD Z7, Z18, Z7
	VMOVUPD Z18, K1, Z7
	VMOVUPD Z7, 448(R10)

	RET

// func x86HasAVX512F() bool
//
// True when the CPU and OS support AVX-512F: CPUID max leaf >= 7,
// OSXSAVE+AVX in CPUID.1:ECX, XCR0 enabling SSE/AVX and the three
// AVX-512 state components, and AVX512F in CPUID.7.0:EBX.
TEXT ·x86HasAVX512F(SB), NOSPLIT, $0-1
	MOVB $0, ret+0(FP)

	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   done

	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8 // OSXSAVE | AVX
	CMPL R8, $(1<<27 | 1<<28)
	JNE  done

	MOVL $0, CX
	XGETBV
	ANDL $0xE6, AX // XMM|YMM|opmask|ZMM_Hi256|Hi16_ZMM
	CMPL AX, $0xE6
	JNE  done

	MOVL $7, AX
	MOVL $0, CX
	CPUID
	MOVL BX, R8
	ANDL $(1<<16), R8 // AVX512F
	JZ   done
	MOVB $1, ret+0(FP)

done:
	RET
