//go:build !amd64

package knn

// Non-amd64 builds always use the scalar blocked kernel.

const hasAVX512 = false

var simdEnabled = false

func cosineBlock64(q *float64, p int, col *float64, stride int, na float64, sq *float64, dist *float64) {
	panic("knn: SIMD kernel unavailable on this architecture")
}
