// Package linreg implements multi-output ridge regression (L2-penalized
// linear least squares, solved in closed form via the normal equations).
// It is not one of the paper's three models; it serves as the linear
// baseline in the extended model comparison, probing how much of the
// distribution-prediction problem is linear in the profile features.
package linreg

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/numeric"
)

// Regressor is a ridge regressor. Construct with New.
type Regressor struct {
	// Lambda is the L2 penalty (> 0 keeps the normal equations
	// well-posed when features outnumber examples, as they do here:
	// ~272 features vs ~59 training benchmarks).
	Lambda float64

	scaler  *ml.StandardScaler
	weights *numeric.Matrix // (features+?) the coefficient matrix, rows=features, cols=outputs
	bias    []float64
}

// New returns a ridge regressor with penalty lambda (defaulted to 1 if
// non-positive).
func New(lambda float64) *Regressor {
	if lambda <= 0 {
		lambda = 1
	}
	return &Regressor{Lambda: lambda}
}

// Name implements ml.Regressor.
func (r *Regressor) Name() string { return fmt.Sprintf("Ridge(lambda=%g)", r.Lambda) }

// Fit solves (XᵀX + λI)·W = XᵀY on standardized features with
// mean-centered outputs (the bias absorbs the output means).
func (r *Regressor) Fit(d *ml.Dataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("linreg: %w", err)
	}
	n := d.NumExamples()
	p := d.NumFeatures()
	q := d.NumOutputs()

	var err error
	r.scaler, err = ml.FitScaler(d.X)
	if err != nil {
		return fmt.Errorf("linreg: %w", err)
	}
	x := r.scaler.TransformAll(d.X)

	r.bias = make([]float64, q)
	for _, row := range d.Y {
		for j, v := range row {
			r.bias[j] += v
		}
	}
	for j := range r.bias {
		r.bias[j] /= float64(n)
	}

	// Gram matrix with ridge on the diagonal.
	gram := numeric.NewMatrix(p, p)
	for i := 0; i < n; i++ {
		xi := x[i]
		for a := 0; a < p; a++ {
			va := xi[a]
			if va == 0 {
				continue
			}
			row := gram.Row(a)
			for b := 0; b < p; b++ {
				row[b] += va * xi[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		gram.Set(a, a, gram.At(a, a)+r.Lambda)
	}

	// Solve one system per output against XᵀY with centered targets.
	r.weights = numeric.NewMatrix(p, q)
	for j := 0; j < q; j++ {
		rhs := make([]float64, p)
		for i := 0; i < n; i++ {
			yc := d.Y[i][j] - r.bias[j]
			for a, va := range x[i] {
				rhs[a] += va * yc
			}
		}
		sol, err := numeric.SolveLinear(gram.Clone(), rhs)
		if err != nil {
			return fmt.Errorf("linreg: output %d: %w", j, err)
		}
		for a := 0; a < p; a++ {
			r.weights.Set(a, j, sol[a])
		}
	}
	return nil
}

// Predict implements ml.Regressor.
func (r *Regressor) Predict(x []float64) []float64 {
	if r.weights == nil {
		panic("linreg: Predict before Fit")
	}
	z := r.scaler.Transform(x)
	//lint:allow alloccheck the copy is sized by the append contract to exactly len(bias) and is the row API's one returned vector
	out := append([]float64(nil), r.bias...)
	for a, va := range z {
		if va == 0 {
			continue
		}
		row := r.weights.Row(a)
		for j := range out {
			out[j] += va * row[j]
		}
	}
	return out
}
