package linreg

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

func TestRidgeRecoversLinearFunction(t *testing.T) {
	rng := randx.New(1)
	n := 500
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a, b := rng.Uniform(-1, 1), rng.Uniform(-1, 1)
		X[i] = []float64{a, b}
		Y[i] = []float64{3*a - 2*b + 1, 0.5 * b}
	}
	r := New(1e-6)
	if err := r.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	got := r.Predict([]float64{0.5, -0.5})
	want := []float64{3*0.5 + 2*0.5 + 1, -0.25}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-3 {
			t.Errorf("output %d = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestRidgeHandlesMoreFeaturesThanExamples(t *testing.T) {
	// p > n is the regime of the paper's datasets; the ridge term keeps
	// the solve well-posed.
	rng := randx.New(2)
	n, p := 20, 100
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, p)
		for j := range X[i] {
			X[i][j] = rng.StdNormal()
		}
		Y[i] = []float64{X[i][0] + 0.1*rng.StdNormal()}
	}
	r := New(1)
	if err := r.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	// In the p >> n regime individual coefficients are unidentifiable;
	// what ridge must deliver is finite, better-than-mean predictions on
	// held-out points from the same distribution.
	var sse, sseMean float64
	for trial := 0; trial < 100; trial++ {
		q := make([]float64, p)
		for j := range q {
			q[j] = rng.StdNormal()
		}
		want := q[0]
		got := r.Predict(q)[0]
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("prediction not finite: %v", got)
		}
		sse += (got - want) * (got - want)
		sseMean += want * want
	}
	if sse >= sseMean {
		t.Errorf("ridge held-out SSE %v not better than mean baseline %v", sse, sseMean)
	}
}

func TestRidgeShrinksWithLargeLambda(t *testing.T) {
	rng := randx.New(3)
	n := 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	var meanY float64
	for i := range X {
		a := rng.Uniform(-1, 1)
		X[i] = []float64{a}
		Y[i] = []float64{5 * a}
		meanY += Y[i][0]
	}
	meanY /= float64(n)
	r := New(1e9)
	if err := r.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	// With a huge penalty the prediction collapses to the output mean.
	if got := r.Predict([]float64{1}); math.Abs(got[0]-meanY) > 0.05 {
		t.Errorf("heavily penalized prediction = %v, want ~mean %v", got[0], meanY)
	}
}

func TestRidgeValidation(t *testing.T) {
	if err := New(1).Fit(&ml.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
	if New(0).Lambda != 1 {
		t.Error("non-positive lambda should default to 1")
	}
	if New(2).Name() == "" {
		t.Error("Name should render")
	}
}

func TestRidgePredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Predict([]float64{1})
}

func TestRidgeDeterministic(t *testing.T) {
	rng := randx.New(4)
	n := 100
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.StdNormal(), rng.StdNormal()}
		Y[i] = []float64{rng.StdNormal()}
	}
	d := &ml.Dataset{X: X, Y: Y}
	r1, r2 := New(0.5), New(0.5)
	if err := r1.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := r2.Fit(d); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.StdNormal(), rng.StdNormal()}
		if a, b := r1.Predict(q), r2.Predict(q); a[0] != b[0] {
			t.Fatal("ridge fit not deterministic")
		}
	}
}
