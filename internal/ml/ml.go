package ml

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Dataset is a design matrix X (rows = examples, columns = features)
// with multi-output targets Y (rows aligned with X).
type Dataset struct {
	X [][]float64
	Y [][]float64
	// FeatureNames optionally labels the columns of X (len == #features).
	FeatureNames []string
}

// NumExamples returns the number of rows.
func (d *Dataset) NumExamples() int { return len(d.X) }

// NumFeatures returns the number of input columns (0 if empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// NumOutputs returns the number of target columns (0 if empty).
func (d *Dataset) NumOutputs() int {
	if len(d.Y) == 0 {
		return 0
	}
	return len(d.Y[0])
}

// Validate checks the dataset for shape consistency and non-finite
// values, returning a descriptive error on the first problem found.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: X has %d rows but Y has %d", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	nf, no := len(d.X[0]), len(d.Y[0])
	if nf == 0 {
		return fmt.Errorf("ml: zero features")
	}
	if no == 0 {
		return fmt.Errorf("ml: zero outputs")
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != nf {
		return fmt.Errorf("ml: %d feature names for %d features", len(d.FeatureNames), nf)
	}
	for i := range d.X {
		if len(d.X[i]) != nf {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(d.X[i]), nf)
		}
		if len(d.Y[i]) != no {
			return fmt.Errorf("ml: row %d has %d outputs, want %d", i, len(d.Y[i]), no)
		}
		for j, v := range d.X[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: non-finite feature X[%d][%d] = %v", i, j, v)
			}
		}
		for j, v := range d.Y[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: non-finite target Y[%d][%d] = %v", i, j, v)
			}
		}
	}
	return nil
}

// Subset returns a dataset view with the given row indices (data shared,
// not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:            make([][]float64, len(idx)),
		Y:            make([][]float64, len(idx)),
		FeatureNames: d.FeatureNames,
	}
	for k, i := range idx {
		out.X[k] = d.X[i]
		out.Y[k] = d.Y[i]
	}
	return out
}

// Regressor is a trainable multi-output regression model. Fit must be
// called before Predict. Implementations are deterministic given their
// construction-time seed.
type Regressor interface {
	// Fit trains on the dataset. It must not retain references that the
	// caller subsequently mutates.
	Fit(d *Dataset) error
	// Predict returns the predicted output vector for one input row.
	Predict(x []float64) []float64
	// Name identifies the model family (for reports).
	Name() string
}

// MSE returns the mean squared error between prediction rows and target
// rows, averaged over all outputs and examples.
func MSE(pred, want [][]float64) float64 {
	if len(pred) != len(want) {
		panic(fmt.Sprintf("ml: MSE row mismatch %d vs %d", len(pred), len(want)))
	}
	var s float64
	var n int
	for i := range pred {
		for j := range pred[i] {
			d := pred[i][j] - want[i][j]
			s += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MAE returns the mean absolute error, averaged over outputs and examples.
func MAE(pred, want [][]float64) float64 {
	if len(pred) != len(want) {
		panic(fmt.Sprintf("ml: MAE row mismatch %d vs %d", len(pred), len(want)))
	}
	var s float64
	var n int
	for i := range pred {
		for j := range pred[i] {
			s += math.Abs(pred[i][j] - want[i][j])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// R2 returns the coefficient of determination for single-output slices.
func R2(pred, want []float64) float64 {
	if len(pred) != len(want) {
		panic(fmt.Sprintf("ml: R2 length mismatch %d vs %d", len(pred), len(want)))
	}
	if len(want) == 0 {
		return 0
	}
	mean := numeric.Mean(want)
	var ssRes, ssTot float64
	for i := range want {
		d := want[i] - pred[i]
		ssRes += d * d
		t := want[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
