package ml

import (
	"math"
	"testing"
)

func validSet() *Dataset {
	return &Dataset{
		X: [][]float64{{1, 2}, {3, 4}, {5, 6}},
		Y: [][]float64{{1}, {2}, {3}},
	}
}

func TestDatasetShape(t *testing.T) {
	d := validSet()
	if d.NumExamples() != 3 || d.NumFeatures() != 2 || d.NumOutputs() != 1 {
		t.Errorf("shape = (%d, %d, %d)", d.NumExamples(), d.NumFeatures(), d.NumOutputs())
	}
	empty := &Dataset{}
	if empty.NumFeatures() != 0 || empty.NumOutputs() != 0 {
		t.Error("empty dataset should report zero shape")
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := validSet().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	cases := []struct {
		name string
		d    *Dataset
	}{
		{"row mismatch", &Dataset{X: [][]float64{{1}}, Y: [][]float64{{1}, {2}}}},
		{"empty", &Dataset{}},
		{"zero features", &Dataset{X: [][]float64{{}}, Y: [][]float64{{1}}}},
		{"zero outputs", &Dataset{X: [][]float64{{1}}, Y: [][]float64{{}}}},
		{"ragged X", &Dataset{X: [][]float64{{1, 2}, {3}}, Y: [][]float64{{1}, {2}}}},
		{"ragged Y", &Dataset{X: [][]float64{{1}, {2}}, Y: [][]float64{{1}, {1, 2}}}},
		{"NaN feature", &Dataset{X: [][]float64{{math.NaN()}}, Y: [][]float64{{1}}}},
		{"Inf target", &Dataset{X: [][]float64{{1}}, Y: [][]float64{{math.Inf(1)}}}},
		{"bad names", &Dataset{X: [][]float64{{1}}, Y: [][]float64{{1}}, FeatureNames: []string{"a", "b"}}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDatasetSubset(t *testing.T) {
	d := validSet()
	s := d.Subset([]int{2, 0})
	if s.NumExamples() != 2 {
		t.Fatalf("subset size = %d", s.NumExamples())
	}
	if s.X[0][0] != 5 || s.X[1][0] != 1 || s.Y[0][0] != 3 {
		t.Errorf("subset contents wrong: %v %v", s.X, s.Y)
	}
}

func TestMSEMAE(t *testing.T) {
	pred := [][]float64{{1, 2}, {3, 4}}
	want := [][]float64{{1, 4}, {5, 4}}
	if got := MSE(pred, want); math.Abs(got-2) > 1e-12 { // (0+4+4+0)/4
		t.Errorf("MSE = %v, want 2", got)
	}
	if got := MAE(pred, want); math.Abs(got-1) > 1e-12 { // (0+2+2+0)/4
		t.Errorf("MAE = %v, want 1", got)
	}
	if MSE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Error("empty metrics should be 0")
	}
}

func TestR2(t *testing.T) {
	want := []float64{1, 2, 3, 4}
	if got := R2(want, want); got != 1 {
		t.Errorf("perfect R2 = %v, want 1", got)
	}
	constPred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(constPred, want); math.Abs(got) > 1e-12 {
		t.Errorf("mean-prediction R2 = %v, want 0", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("constant-target exact prediction R2 = %v, want 1", got)
	}
	if got := R2([]float64{4, 6}, []float64{5, 5}); got != 0 {
		t.Errorf("constant-target wrong prediction R2 = %v, want 0", got)
	}
}

func TestStandardScaler(t *testing.T) {
	rows := [][]float64{{1, 10, 7}, {3, 20, 7}, {5, 30, 7}}
	s, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	scaled := s.TransformAll(rows)
	// Column means must be ~0, population std ~1 (except constant col).
	for j := 0; j < 2; j++ {
		var mean, variance float64
		for i := range scaled {
			mean += scaled[i][j]
		}
		mean /= 3
		for i := range scaled {
			d := scaled[i][j] - mean
			variance += d * d
		}
		variance /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(variance-1) > 1e-12 {
			t.Errorf("column %d: mean=%v var=%v", j, mean, variance)
		}
	}
	// Constant column: centered to zero, scale fallback 1.
	for i := range scaled {
		if scaled[i][2] != 0 {
			t.Errorf("constant column scaled to %v, want 0", scaled[i][2])
		}
	}
}

func TestFitScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged data should fail")
	}
}

func TestTransformPanicsOnWrongLength(t *testing.T) {
	s, _ := FitScaler([][]float64{{1, 2}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Transform([]float64{1})
}
