//go:build !race

package ml_test

const raceDetectorEnabled = false
