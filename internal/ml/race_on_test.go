//go:build race

package ml_test

// raceDetectorEnabled gates allocation assertions: the race detector
// defeats sync.Pool caching, so alloc counts are meaningless under it.
const raceDetectorEnabled = true
