package ml

import (
	"fmt"
	"math"
)

// StandardScaler centers each feature to zero mean and scales it to unit
// variance, the preprocessing the paper applies before kNN so that no
// single perf-counter metric dominates the distance computation.
// Constant features are left centered but unscaled.
type StandardScaler struct {
	Means, Scales []float64
}

// FitScaler computes per-column statistics over rows.
func FitScaler(rows [][]float64) (*StandardScaler, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ml: FitScaler on empty data")
	}
	nf := len(rows[0])
	s := &StandardScaler{
		Means:  make([]float64, nf),
		Scales: make([]float64, nf),
	}
	for _, r := range rows {
		if len(r) != nf {
			return nil, fmt.Errorf("ml: FitScaler ragged rows (%d vs %d)", len(r), nf)
		}
		for j, v := range r {
			s.Means[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.Means {
		s.Means[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Means[j]
			s.Scales[j] += d * d
		}
	}
	for j := range s.Scales {
		sd := math.Sqrt(s.Scales[j] / n)
		if sd <= 0 {
			sd = 1 // constant feature: center only
		}
		s.Scales[j] = sd
	}
	return s, nil
}

// Transform returns the scaled copy of one row.
func (s *StandardScaler) Transform(x []float64) []float64 {
	if len(x) != len(s.Means) {
		panic(fmt.Sprintf("ml: Transform length %d, scaler has %d features", len(x), len(s.Means)))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		//lint:allow floatcheck FitScaler pins zero-variance columns to scale 1, so every divisor is positive
		out[j] = (v - s.Means[j]) / s.Scales[j]
	}
	return out
}

// TransformAll scales every row.
func (s *StandardScaler) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}
