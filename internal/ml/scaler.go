package ml

import (
	"fmt"
	"math"
)

// StandardScaler centers each feature to zero mean and scales it to unit
// variance, the preprocessing the paper applies before kNN so that no
// single perf-counter metric dominates the distance computation.
// Constant features are left centered but unscaled.
type StandardScaler struct {
	Means, Scales []float64
}

// FitScaler computes per-column statistics over rows.
func FitScaler(rows [][]float64) (*StandardScaler, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ml: FitScaler on empty data")
	}
	nf := len(rows[0])
	s := &StandardScaler{
		Means:  make([]float64, nf),
		Scales: make([]float64, nf),
	}
	for _, r := range rows {
		if len(r) != nf {
			return nil, fmt.Errorf("ml: FitScaler ragged rows (%d vs %d)", len(r), nf)
		}
		for j, v := range r {
			s.Means[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.Means {
		s.Means[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Means[j]
			s.Scales[j] += d * d
		}
	}
	for j := range s.Scales {
		sd := math.Sqrt(s.Scales[j] / n)
		if sd <= 0 {
			sd = 1 // constant feature: center only
		}
		s.Scales[j] = sd
	}
	return s, nil
}

// Transform returns the scaled copy of one row.
func (s *StandardScaler) Transform(x []float64) []float64 {
	//lint:allow alloccheck row API allocates only the returned copy by contract; the batch kernels use TransformInto with pooled buffers
	out := make([]float64, len(x))
	s.TransformInto(x, out)
	return out
}

// TransformInto scales one row into dst (len(x) == len(dst)), the
// allocation-free form the batch kernels use with pooled buffers. The
// scaled values are bit-identical to Transform.
func (s *StandardScaler) TransformInto(x, dst []float64) {
	if len(x) != len(s.Means) {
		//lint:allow alloccheck panic path: allocates only while formatting a shape-bug message, never in steady state
		panic(fmt.Sprintf("ml: Transform length %d, scaler has %d features", len(x), len(s.Means)))
	}
	if len(dst) != len(x) {
		//lint:allow alloccheck panic path: allocates only while formatting a shape-bug message, never in steady state
		panic(fmt.Sprintf("ml: TransformInto dst length %d, want %d", len(dst), len(x)))
	}
	for j, v := range x {
		//lint:allow floatcheck FitScaler pins zero-variance columns to scale 1, so every divisor is positive
		dst[j] = (v - s.Means[j]) / s.Scales[j]
	}
}

// TransformSumSqInto scales one row into dst like TransformInto and
// returns the sum of squares of the scaled values, accumulated in
// element order. Fusing the two lets the serial sum-of-squares chain
// overlap the divides instead of running as a separate latency-bound
// pass; the scaled values and the sum are bit-identical to calling
// TransformInto and accumulating dst[j]*dst[j] in a second loop.
func (s *StandardScaler) TransformSumSqInto(x, dst []float64) float64 {
	if len(x) != len(s.Means) {
		//lint:allow alloccheck panic path: allocates only while formatting a shape-bug message, never in steady state
		panic(fmt.Sprintf("ml: Transform length %d, scaler has %d features", len(x), len(s.Means)))
	}
	if len(dst) != len(x) {
		//lint:allow alloccheck panic path: allocates only while formatting a shape-bug message, never in steady state
		panic(fmt.Sprintf("ml: TransformInto dst length %d, want %d", len(dst), len(x)))
	}
	var sumsq float64
	for j, v := range x {
		//lint:allow floatcheck FitScaler pins zero-variance columns to scale 1, so every divisor is positive
		t := (v - s.Means[j]) / s.Scales[j]
		dst[j] = t
		sumsq += t * t
	}
	return sumsq
}

// TransformAll scales every row.
func (s *StandardScaler) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}
