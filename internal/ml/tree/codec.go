package tree

import (
	"fmt"

	"repro/internal/ml"
)

// maxWireDepth bounds recursion when decoding node structures, so a
// corrupt buffer that somehow passes the outer checksum cannot exhaust
// the stack. Real trees are depth-bounded by MaxDepth (tens at most).
const maxWireDepth = 10_000

// AppendWire serializes the fitted tree: growth configuration,
// bookkeeping, feature importances, and the node structure in preorder.
// The feature-subsampling RNG is deliberately not serialized — a
// decoded tree predicts bit-identically but cannot be refitted with
// MaxFeatures in effect.
func (t *Tree) AppendWire(e *ml.WireEnc) error {
	if t.root == nil {
		return fmt.Errorf("tree: encode before Fit")
	}
	e.Int(t.cfg.MaxDepth)
	e.Int(t.cfg.MinSamplesLeaf)
	e.Int(t.cfg.MinSamplesSplit)
	e.Int(t.cfg.MaxFeatures)
	e.Int(t.depth)
	e.Int(t.leaves)
	e.Floats(t.importance)
	appendNode(e, t.root)
	return nil
}

func appendNode(e *ml.WireEnc, n *node) {
	if n.value != nil {
		e.U8(1)
		e.Floats(n.value)
		return
	}
	e.U8(0)
	e.Int(n.feature)
	e.F64(n.threshold)
	appendNode(e, n.left)
	appendNode(e, n.right)
}

// DecodeWire reconstructs a fitted tree written by AppendWire.
func DecodeWire(d *ml.WireDec) (*Tree, error) {
	t := &Tree{}
	t.cfg.MaxDepth = d.Int()
	t.cfg.MinSamplesLeaf = d.Int()
	t.cfg.MinSamplesSplit = d.Int()
	t.cfg.MaxFeatures = d.Int()
	t.depth = d.Int()
	t.leaves = d.Int()
	t.importance = d.Floats()
	t.root = decodeNode(d, 0)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("tree: decode: %w", err)
	}
	// Warm-loaded trees serve through the same flattened kernel as
	// freshly fitted ones.
	t.finalize()
	return t, nil
}

func decodeNode(d *ml.WireDec, depth int) *node {
	if d.Err() != nil {
		return nil
	}
	if depth > maxWireDepth {
		d.Failf("tree deeper than %d nodes", maxWireDepth)
		return nil
	}
	switch tag := d.U8(); tag {
	case 1:
		n := &node{feature: -1, value: d.Floats()}
		if n.value == nil && d.Err() == nil {
			d.Failf("leaf without a target vector")
		}
		return n
	case 0:
		n := &node{feature: d.Int(), threshold: d.F64()}
		n.left = decodeNode(d, depth+1)
		n.right = decodeNode(d, depth+1)
		return n
	default:
		if d.Err() == nil {
			d.Failf("bad node tag %d", tag)
		}
		return nil
	}
}
