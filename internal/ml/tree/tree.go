// Package tree implements a multi-output CART regression tree with the
// variance-reduction (sum of per-output squared error) split criterion
// used by scikit-learn's DecisionTreeRegressor. It is the base learner
// for the random forest and (in single-output form) for the gradient
// boosting model.
package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/numeric"
	"repro/internal/randx"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds tree depth; <= 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum number of examples in a leaf
	// (default 1).
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum number of examples required to
	// consider splitting a node (default 2).
	MinSamplesSplit int
	// MaxFeatures is the number of features sampled (without
	// replacement) at each split; <= 0 means all features. Random
	// forests use this for decorrelation.
	MaxFeatures int
	// Rand supplies feature-subsampling randomness; required when
	// MaxFeatures is in effect, ignored otherwise.
	Rand *randx.RNG
}

func (c Config) withDefaults() Config {
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	return c
}

// node is one tree node; leaves carry the mean target vector.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	value     []float64 // leaf payload (nil for internal nodes)
}

// flatTree is the struct-of-arrays node table the serving kernel
// traverses: one preorder-indexed entry per node, leaf payloads packed
// into a single contiguous block. It is built once at fit/decode time;
// traversal is iterative with no pointer chasing and no allocation.
//
// Encoding: feature[i] >= 0 marks an internal node whose children are
// left[i]/right[i]; feature[i] == flatLeaf marks a leaf whose payload
// is values[left[i] : left[i]+nOut].
type flatTree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
	values    []float64
	nOut      int
}

// flatLeaf is the feature sentinel marking a leaf row in the table.
const flatLeaf = int32(-1)

// buildFlat lowers the pointer tree into its node table. Node indices
// are preorder, so the hot left spine stays cache-adjacent.
func buildFlat(root *node) *flatTree {
	f := &flatTree{}
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		i := int32(len(f.feature))
		f.feature = append(f.feature, 0)
		f.threshold = append(f.threshold, 0)
		f.left = append(f.left, 0)
		f.right = append(f.right, 0)
		if n.value != nil {
			f.feature[i] = flatLeaf
			f.left[i] = int32(len(f.values))
			f.values = append(f.values, n.value...)
			f.nOut = len(n.value)
			return i
		}
		f.feature[i] = int32(n.feature)
		f.threshold[i] = n.threshold
		f.left[i] = walk(n.left)
		f.right[i] = walk(n.right)
		return i
	}
	walk(root)
	return f
}

// leaf routes x to its leaf and returns a view of the payload (do not
// mutate). The comparison `x <= threshold` is false for NaN, so a NaN
// feature follows the right branch — the same explicit NaN-routing
// contract PredictReference implements with math.IsNaN.
func (f *flatTree) leaf(x []float64) []float64 {
	ft, th, lt, rt := f.feature, f.threshold, f.left, f.right
	i := int32(0)
	for ft[i] >= 0 {
		if x[ft[i]] <= th[i] {
			i = lt[i]
		} else {
			i = rt[i]
		}
	}
	off := lt[i]
	return f.values[off : off+int32(f.nOut)]
}

// Tree is a fitted regression tree.
type Tree struct {
	cfg  Config
	root *node
	flat *flatTree // serving kernel, built by finalize
	// depth and leaves are bookkeeping for tests and reports.
	depth  int
	leaves int
	// importance accumulates the total impurity (SSE) reduction
	// attributed to each feature — the classic "gain" importance.
	importance []float64
}

// finalize builds the flattened kernel from the pointer tree. Fit and
// DecodeWire both call it, so fresh and warm-loaded trees share one
// serving kernel.
func (t *Tree) finalize() { t.flat = buildFlat(t.root) }

// FeatureImportance returns the per-feature impurity-reduction shares of
// the fitted tree, normalized to sum to 1 (all zeros when the tree is a
// single leaf). The slice is a copy.
func (t *Tree) FeatureImportance() []float64 {
	out := make([]float64, len(t.importance))
	total := numeric.Sum(t.importance)
	if total <= 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

// New returns an unfitted tree with the given configuration.
func New(cfg Config) *Tree { return &Tree{cfg: cfg.withDefaults()} }

// Name implements ml.Regressor.
func (t *Tree) Name() string { return "CART" }

// Depth returns the depth of the fitted tree (0 for a stump).
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the number of leaves of the fitted tree.
func (t *Tree) Leaves() int { return t.leaves }

// Fit grows the tree on d.
func (t *Tree) Fit(d *ml.Dataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.Rand == nil {
		return fmt.Errorf("tree: MaxFeatures requires a Rand source")
	}
	idx := make([]int, d.NumExamples())
	for i := range idx {
		idx[i] = i
	}
	t.depth = 0
	t.leaves = 0
	t.importance = make([]float64, d.NumFeatures())
	t.root = t.grow(d, idx, 0)
	t.finalize()
	return nil
}

// FitIndices grows the tree on the subset of d given by idx (used by the
// forest for bootstrap samples without copying rows).
func (t *Tree) FitIndices(d *ml.Dataset, idx []int) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.Rand == nil {
		return fmt.Errorf("tree: MaxFeatures requires a Rand source")
	}
	if len(idx) == 0 {
		return fmt.Errorf("tree: empty index set")
	}
	t.depth = 0
	t.leaves = 0
	t.importance = make([]float64, d.NumFeatures())
	t.root = t.grow(d, append([]int(nil), idx...), 0)
	t.finalize()
	return nil
}

// meanTarget computes the mean target vector over idx.
func meanTarget(d *ml.Dataset, idx []int) []float64 {
	out := make([]float64, d.NumOutputs())
	for _, i := range idx {
		for j, v := range d.Y[i] {
			out[j] += v
		}
	}
	inv := 1 / float64(len(idx))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// sse computes the total squared error of idx around their mean,
// summed over outputs — the impurity whose reduction CART maximizes.
func sse(d *ml.Dataset, idx []int) float64 {
	mean := meanTarget(d, idx)
	var s float64
	for _, i := range idx {
		for j, v := range d.Y[i] {
			dv := v - mean[j]
			s += dv * dv
		}
	}
	return s
}

func (t *Tree) grow(d *ml.Dataset, idx []int, depth int) *node {
	if depth > t.depth {
		t.depth = depth
	}
	leaf := func() *node {
		t.leaves++
		return &node{feature: -1, value: meanTarget(d, idx)}
	}
	if len(idx) < t.cfg.MinSamplesSplit || (t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return leaf()
	}
	feat, thr, gain, ok := t.bestSplit(d, idx)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinSamplesLeaf || len(right) < t.cfg.MinSamplesLeaf {
		return leaf()
	}
	t.importance[feat] += gain
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(d, left, depth+1),
		right:     t.grow(d, right, depth+1),
	}
}

// bestSplit scans (a subsample of) features for the split that maximally
// reduces total squared error, using the classic sorted-prefix-sum scan.
func (t *Tree) bestSplit(d *ml.Dataset, idx []int) (feature int, threshold, gain float64, ok bool) {
	nf := d.NumFeatures()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.MaxFeatures < nf {
		features = t.cfg.Rand.SampleWithoutReplacement(nf, t.cfg.MaxFeatures)
		sort.Ints(features) // determinism independent of sample order
	}
	no := d.NumOutputs()
	n := len(idx)

	parentSSE := sse(d, idx)
	best := parentSSE - 1e-12 // require strictly positive gain
	found := false

	order := make([]int, n)
	// Prefix sums of targets and squared targets over the sorted order.
	sumL := make([]float64, no)
	sumAll := make([]float64, no)
	var sqAll float64
	for _, i := range idx {
		for j, v := range d.Y[i] {
			sumAll[j] += v
			sqAll += v * v
		}
	}

	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			if d.X[order[a]][f] != d.X[order[b]][f] {
				return d.X[order[a]][f] < d.X[order[b]][f]
			}
			return order[a] < order[b]
		})
		for j := range sumL {
			sumL[j] = 0
		}
		var sqL float64
		for pos := 0; pos < n-1; pos++ {
			i := order[pos]
			for j, v := range d.Y[i] {
				sumL[j] += v
				sqL += v * v
			}
			xv, xn := d.X[i][f], d.X[order[pos+1]][f]
			if xv == xn {
				continue // cannot split between equal values
			}
			nl, nr := float64(pos+1), float64(n-pos-1)
			if int(nl) < t.cfg.MinSamplesLeaf || int(nr) < t.cfg.MinSamplesLeaf {
				continue
			}
			// SSE_left + SSE_right = Σy² − Σ_left²/n_l − Σ_right²/n_r,
			// accumulated across outputs.
			var childSSE float64
			childSSE = sqAll
			for j := 0; j < no; j++ {
				sr := sumAll[j] - sumL[j]
				childSSE -= sumL[j]*sumL[j]/nl + sr*sr/nr
			}
			if childSSE < best {
				best = childSSE
				feature = f
				threshold = (xv + xn) / 2
				found = true
			}
		}
	}
	if !found {
		return 0, 0, 0, false
	}
	return feature, threshold, parentSSE - best, true
}

// Predict implements ml.Regressor via the flattened kernel.
func (t *Tree) Predict(x []float64) []float64 {
	if t.flat == nil {
		panic("tree: Predict before Fit")
	}
	leaf := t.flat.leaf(x)
	//lint:allow alloccheck row API allocates only the returned vector by contract; batch callers route through the ensemble kernels
	out := make([]float64, len(leaf))
	copy(out, leaf)
	return out
}

// PredictInto writes the prediction for x into out (len NumOutputs)
// without allocating.
func (t *Tree) PredictInto(x, out []float64) {
	if t.flat == nil {
		panic("tree: Predict before Fit")
	}
	copy(out, t.flat.leaf(x))
}

// AddLeafInto adds the leaf payload for x into acc — the forest's
// accumulation hot path, one table walk and nOut additions, zero
// allocation.
func (t *Tree) AddLeafInto(x, acc []float64) {
	for j, v := range t.flat.leaf(x) {
		acc[j] += v
	}
}

// NumOutputs returns the fitted output arity.
func (t *Tree) NumOutputs() int {
	if t.flat == nil {
		panic("tree: NumOutputs before Fit")
	}
	return t.flat.nOut
}

// PredictReference is the original pointer-chasing kernel, kept as the
// independent reference implementation the equivalence suite compares
// against the flattened kernel bit for bit.
//
// NaN routing contract: a NaN feature value always follows the right
// (greater-than) branch. The flattened kernel realizes the same
// contract through IEEE comparison semantics (`NaN <= t` is false);
// here it is spelled out with math.IsNaN so the behavior is explicit
// rather than an artifact of comparison order.
func (t *Tree) PredictReference(x []float64) []float64 {
	if t.root == nil {
		panic("tree: Predict before Fit")
	}
	n := t.root
	for n.value == nil {
		xv := x[n.feature]
		switch {
		case math.IsNaN(xv):
			n = n.right
		case xv <= n.threshold:
			n = n.left
		default:
			n = n.right
		}
	}
	out := make([]float64, len(n.value))
	copy(out, n.value)
	return out
}
