// Package tree implements a multi-output CART regression tree with the
// variance-reduction (sum of per-output squared error) split criterion
// used by scikit-learn's DecisionTreeRegressor. It is the base learner
// for the random forest and (in single-output form) for the gradient
// boosting model.
package tree

import (
	"fmt"
	"sort"

	"repro/internal/ml"
	"repro/internal/numeric"
	"repro/internal/randx"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds tree depth; <= 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum number of examples in a leaf
	// (default 1).
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum number of examples required to
	// consider splitting a node (default 2).
	MinSamplesSplit int
	// MaxFeatures is the number of features sampled (without
	// replacement) at each split; <= 0 means all features. Random
	// forests use this for decorrelation.
	MaxFeatures int
	// Rand supplies feature-subsampling randomness; required when
	// MaxFeatures is in effect, ignored otherwise.
	Rand *randx.RNG
}

func (c Config) withDefaults() Config {
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	return c
}

// node is one tree node; leaves carry the mean target vector.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	value     []float64 // leaf payload (nil for internal nodes)
}

// Tree is a fitted regression tree.
type Tree struct {
	cfg  Config
	root *node
	// depth and leaves are bookkeeping for tests and reports.
	depth  int
	leaves int
	// importance accumulates the total impurity (SSE) reduction
	// attributed to each feature — the classic "gain" importance.
	importance []float64
}

// FeatureImportance returns the per-feature impurity-reduction shares of
// the fitted tree, normalized to sum to 1 (all zeros when the tree is a
// single leaf). The slice is a copy.
func (t *Tree) FeatureImportance() []float64 {
	out := make([]float64, len(t.importance))
	total := numeric.Sum(t.importance)
	if total <= 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

// New returns an unfitted tree with the given configuration.
func New(cfg Config) *Tree { return &Tree{cfg: cfg.withDefaults()} }

// Name implements ml.Regressor.
func (t *Tree) Name() string { return "CART" }

// Depth returns the depth of the fitted tree (0 for a stump).
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the number of leaves of the fitted tree.
func (t *Tree) Leaves() int { return t.leaves }

// Fit grows the tree on d.
func (t *Tree) Fit(d *ml.Dataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.Rand == nil {
		return fmt.Errorf("tree: MaxFeatures requires a Rand source")
	}
	idx := make([]int, d.NumExamples())
	for i := range idx {
		idx[i] = i
	}
	t.depth = 0
	t.leaves = 0
	t.importance = make([]float64, d.NumFeatures())
	t.root = t.grow(d, idx, 0)
	return nil
}

// FitIndices grows the tree on the subset of d given by idx (used by the
// forest for bootstrap samples without copying rows).
func (t *Tree) FitIndices(d *ml.Dataset, idx []int) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.Rand == nil {
		return fmt.Errorf("tree: MaxFeatures requires a Rand source")
	}
	if len(idx) == 0 {
		return fmt.Errorf("tree: empty index set")
	}
	t.depth = 0
	t.leaves = 0
	t.importance = make([]float64, d.NumFeatures())
	t.root = t.grow(d, append([]int(nil), idx...), 0)
	return nil
}

// meanTarget computes the mean target vector over idx.
func meanTarget(d *ml.Dataset, idx []int) []float64 {
	out := make([]float64, d.NumOutputs())
	for _, i := range idx {
		for j, v := range d.Y[i] {
			out[j] += v
		}
	}
	inv := 1 / float64(len(idx))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// sse computes the total squared error of idx around their mean,
// summed over outputs — the impurity whose reduction CART maximizes.
func sse(d *ml.Dataset, idx []int) float64 {
	mean := meanTarget(d, idx)
	var s float64
	for _, i := range idx {
		for j, v := range d.Y[i] {
			dv := v - mean[j]
			s += dv * dv
		}
	}
	return s
}

func (t *Tree) grow(d *ml.Dataset, idx []int, depth int) *node {
	if depth > t.depth {
		t.depth = depth
	}
	leaf := func() *node {
		t.leaves++
		return &node{feature: -1, value: meanTarget(d, idx)}
	}
	if len(idx) < t.cfg.MinSamplesSplit || (t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return leaf()
	}
	feat, thr, gain, ok := t.bestSplit(d, idx)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinSamplesLeaf || len(right) < t.cfg.MinSamplesLeaf {
		return leaf()
	}
	t.importance[feat] += gain
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(d, left, depth+1),
		right:     t.grow(d, right, depth+1),
	}
}

// bestSplit scans (a subsample of) features for the split that maximally
// reduces total squared error, using the classic sorted-prefix-sum scan.
func (t *Tree) bestSplit(d *ml.Dataset, idx []int) (feature int, threshold, gain float64, ok bool) {
	nf := d.NumFeatures()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.MaxFeatures < nf {
		features = t.cfg.Rand.SampleWithoutReplacement(nf, t.cfg.MaxFeatures)
		sort.Ints(features) // determinism independent of sample order
	}
	no := d.NumOutputs()
	n := len(idx)

	parentSSE := sse(d, idx)
	best := parentSSE - 1e-12 // require strictly positive gain
	found := false

	order := make([]int, n)
	// Prefix sums of targets and squared targets over the sorted order.
	sumL := make([]float64, no)
	sumAll := make([]float64, no)
	var sqAll float64
	for _, i := range idx {
		for j, v := range d.Y[i] {
			sumAll[j] += v
			sqAll += v * v
		}
	}

	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			if d.X[order[a]][f] != d.X[order[b]][f] {
				return d.X[order[a]][f] < d.X[order[b]][f]
			}
			return order[a] < order[b]
		})
		for j := range sumL {
			sumL[j] = 0
		}
		var sqL float64
		for pos := 0; pos < n-1; pos++ {
			i := order[pos]
			for j, v := range d.Y[i] {
				sumL[j] += v
				sqL += v * v
			}
			xv, xn := d.X[i][f], d.X[order[pos+1]][f]
			if xv == xn {
				continue // cannot split between equal values
			}
			nl, nr := float64(pos+1), float64(n-pos-1)
			if int(nl) < t.cfg.MinSamplesLeaf || int(nr) < t.cfg.MinSamplesLeaf {
				continue
			}
			// SSE_left + SSE_right = Σy² − Σ_left²/n_l − Σ_right²/n_r,
			// accumulated across outputs.
			var childSSE float64
			childSSE = sqAll
			for j := 0; j < no; j++ {
				sr := sumAll[j] - sumL[j]
				childSSE -= sumL[j]*sumL[j]/nl + sr*sr/nr
			}
			if childSSE < best {
				best = childSSE
				feature = f
				threshold = (xv + xn) / 2
				found = true
			}
		}
	}
	if !found {
		return 0, 0, 0, false
	}
	return feature, threshold, parentSSE - best, true
}

// Predict implements ml.Regressor.
func (t *Tree) Predict(x []float64) []float64 {
	if t.root == nil {
		panic("tree: Predict before Fit")
	}
	n := t.root
	for n.value == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	out := make([]float64, len(n.value))
	copy(out, n.value)
	return out
}
