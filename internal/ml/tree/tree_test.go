package tree

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

func TestTreePerfectSplit(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {10}, {11}},
		Y: [][]float64{{1}, {1}, {5}, {5}},
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.5}); got[0] != 1 {
		t.Errorf("Predict(0.5) = %v, want 1", got[0])
	}
	if got := tr.Predict([]float64{10.5}); got[0] != 5 {
		t.Errorf("Predict(10.5) = %v, want 5", got[0])
	}
}

func TestTreeConstantTargetIsLeaf(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1}, {2}, {3}},
		Y: [][]float64{{7}, {7}, {7}},
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Errorf("constant target grew %d leaves, want 1 (no positive gain)", tr.Leaves())
	}
	if got := tr.Predict([]float64{99}); got[0] != 7 {
		t.Errorf("Predict = %v, want 7", got[0])
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := randx.New(3)
	n := 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Uniform(0, 1)
		X[i] = []float64{x}
		Y[i] = []float64{math.Sin(10 * x)}
	}
	tr := New(Config{MaxDepth: 2})
	if err := tr.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 2 {
		t.Errorf("Depth = %d, want <= 2", tr.Depth())
	}
	if tr.Leaves() > 4 {
		t.Errorf("Leaves = %d, want <= 4", tr.Leaves())
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1}, {2}, {3}, {4}},
		Y: [][]float64{{1}, {2}, {3}, {4}},
	}
	tr := New(Config{MinSamplesLeaf: 2})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// With min leaf 2, at most 2 leaves of 2 samples each.
	if tr.Leaves() > 2 {
		t.Errorf("Leaves = %d, want <= 2", tr.Leaves())
	}
}

func TestTreeMultiOutputSplitsOnJointVariance(t *testing.T) {
	// Output 0 is constant; output 1 depends on the feature. The tree
	// must still split (joint criterion) and predict both outputs.
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {2}, {3}},
		Y: [][]float64{{5, 0}, {5, 0}, {5, 10}, {5, 10}},
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	got := tr.Predict([]float64{3})
	if got[0] != 5 || got[1] != 10 {
		t.Errorf("Predict = %v, want [5 10]", got)
	}
}

func TestTreeInterpolatesStep(t *testing.T) {
	rng := randx.New(9)
	n := 500
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Uniform(0, 1)
		X[i] = []float64{x, rng.Uniform(0, 1)} // second feature is noise
		y := 0.0
		if x > 0.5 {
			y = 1
		}
		Y[i] = []float64{y}
	}
	tr := New(Config{MaxDepth: 4})
	if err := tr.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.25, 0.5}); math.Abs(got[0]) > 0.05 {
		t.Errorf("Predict left = %v, want ~0", got[0])
	}
	if got := tr.Predict([]float64{0.75, 0.5}); math.Abs(got[0]-1) > 0.05 {
		t.Errorf("Predict right = %v, want ~1", got[0])
	}
}

func TestTreeFitIndices(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {10}, {11}},
		Y: [][]float64{{1}, {1}, {5}, {5}},
	}
	tr := New(Config{})
	if err := tr.FitIndices(d, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	// Trained only on the high cluster.
	if got := tr.Predict([]float64{0}); got[0] != 5 {
		t.Errorf("Predict = %v, want 5", got[0])
	}
	if err := tr.FitIndices(d, nil); err == nil {
		t.Error("empty indices should fail")
	}
}

func TestTreeMaxFeaturesRequiresRand(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1, 2}}, Y: [][]float64{{1}}}
	tr := New(Config{MaxFeatures: 1})
	if err := tr.Fit(d); err == nil {
		t.Error("MaxFeatures without Rand should fail")
	}
}

func TestTreeMaxFeaturesSubsamples(t *testing.T) {
	// With MaxFeatures=1 and a fixed RNG, fitting still works and uses
	// one of the features.
	rng := randx.New(11)
	d := &ml.Dataset{
		X: [][]float64{{0, 5}, {1, 5}, {2, 6}, {3, 6}},
		Y: [][]float64{{0}, {0}, {1}, {1}},
	}
	tr := New(Config{MaxFeatures: 1, Rand: rng})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	_ = tr.Predict([]float64{0, 5})
}

func TestTreePredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}).Predict([]float64{1})
}

func TestTreeDuplicateFeatureValues(t *testing.T) {
	// All X equal: no split possible, must yield a single mean leaf.
	d := &ml.Dataset{
		X: [][]float64{{1}, {1}, {1}},
		Y: [][]float64{{0}, {3}, {6}},
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Errorf("Leaves = %d, want 1", tr.Leaves())
	}
	if got := tr.Predict([]float64{1}); got[0] != 3 {
		t.Errorf("Predict = %v, want mean 3", got[0])
	}
}

func TestTreeFeatureImportance(t *testing.T) {
	// Feature 0 fully determines the target; feature 1 is noise.
	rng := randx.New(21)
	n := 300
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(0, 1)
		X[i] = []float64{a, rng.Uniform(0, 1)}
		y := 0.0
		if a > 0.5 {
			y = 1
		}
		Y[i] = []float64{y}
	}
	tr := New(Config{MaxDepth: 3})
	if err := tr.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance length = %d", len(imp))
	}
	if imp[0] < 0.9 {
		t.Errorf("informative feature importance = %v, want > 0.9", imp[0])
	}
	if math.Abs(imp[0]+imp[1]-1) > 1e-12 {
		t.Errorf("importance does not sum to 1: %v", imp)
	}
}

func TestTreeFeatureImportanceAllZeroForLeaf(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}, {1}}, Y: [][]float64{{2}, {2}}}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	if imp[0] != 0 {
		t.Errorf("single-leaf importance = %v, want 0", imp)
	}
}

func TestTreeNaNRoutesRight(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {10}, {11}},
		Y: [][]float64{{1}, {1}, {5}, {5}},
	}
	tr := New(Config{})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// NaN fails `x <= threshold`, so it must take the right (high) branch
	// in both the flattened kernel and the reference walker.
	q := []float64{math.NaN()}
	if got := tr.Predict(q); got[0] != 5 {
		t.Errorf("flattened kernel routed NaN to %v, want right branch (5)", got[0])
	}
	if got := tr.PredictReference(q); got[0] != 5 {
		t.Errorf("reference walker routed NaN to %v, want right branch (5)", got[0])
	}
}

func TestTreeFlatMatchesReferenceWithNaNs(t *testing.T) {
	rng := randx.New(42)
	n, p := 120, 6
	d := &ml.Dataset{X: make([][]float64, n), Y: make([][]float64, n)}
	for i := range d.X {
		d.X[i] = make([]float64, p)
		for j := range d.X[i] {
			d.X[i][j] = rng.StdNormal()
		}
		d.Y[i] = []float64{d.X[i][0]*2 - d.X[i][3]}
	}
	tr := New(Config{MaxDepth: 6})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := make([]float64, p)
		for j := range q {
			q[j] = rng.StdNormal()
		}
		// Sprinkle NaNs to exercise the routing contract at interior splits.
		if i%3 == 0 {
			q[i%p] = math.NaN()
		}
		got, want := tr.Predict(q), tr.PredictReference(q)
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("probe %d out %d: flattened %v != reference %v", i, j, got[j], want[j])
			}
		}
	}
}
