package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrWire reports structurally invalid wire data: a truncated buffer, a
// negative or impossible length prefix, or leftover bytes. It is the
// root cause surfaced by WireDec.Err and wrapped by the model codecs.
var ErrWire = errors.New("ml: invalid wire data")

// WireEnc appends fixed-width little-endian primitives to a growing
// buffer — the shared encoding substrate for the model codecs in
// internal/ml/{tree,forest,xgb,knn} and the envelope in
// internal/modelstore. Floats are encoded via math.Float64bits so a
// round trip is bit-exact, which is what makes store-loaded models
// predict bit-identically to freshly fitted ones.
type WireEnc struct {
	buf []byte
}

// Bytes returns the encoded buffer (not a copy).
func (e *WireEnc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *WireEnc) U8(v uint8) { e.buf = append(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *WireEnc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Int appends an int as a two's-complement uint64 (negatives such as
// the forest's MaxFeatures sentinel survive the round trip).
func (e *WireEnc) Int(v int) { e.U64(uint64(int64(v))) }

// Bool appends a bool as one byte.
func (e *WireEnc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends the IEEE-754 bits of v.
func (e *WireEnc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Floats appends a length-prefixed float slice.
func (e *WireEnc) Floats(xs []float64) {
	e.Int(len(xs))
	for _, v := range xs {
		e.F64(v)
	}
}

// FloatRows appends a length-prefixed slice of float rows.
func (e *WireEnc) FloatRows(rows [][]float64) {
	e.Int(len(rows))
	for _, r := range rows {
		e.Floats(r)
	}
}

// WireDec reads back what WireEnc wrote. It latches the first error:
// after a failed read every subsequent read returns the zero value, so
// decoders can read a whole structure and check Err once at the end.
type WireDec struct {
	buf []byte
	off int
	err error
}

// NewWireDec wraps a buffer for decoding.
func NewWireDec(b []byte) *WireDec { return &WireDec{buf: b} }

// Err returns the first decoding error (nil if all reads succeeded).
func (d *WireDec) Err() error { return d.err }

// Remaining reports how many bytes are left unread.
func (d *WireDec) Remaining() int { return len(d.buf) - d.off }

func (d *WireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrWire, fmt.Sprintf(format, args...))
	}
}

// Failf latches a structural error discovered by a codec (bad tag byte,
// impossible shape), with the same first-error-wins semantics as the
// primitive reads.
func (d *WireDec) Failf(format string, args ...any) { d.fail(format, args...) }

func (d *WireDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *WireDec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U64 reads a little-endian uint64.
func (d *WireDec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads back what WireEnc.Int wrote.
func (d *WireDec) Int() int { return int(int64(d.U64())) }

// Bool reads a bool, rejecting bytes other than 0 and 1.
func (d *WireDec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte at offset %d", d.off-1)
		return false
	}
}

// F64 reads back IEEE-754 bits.
func (d *WireDec) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads a length prefix for elements of at least elemSize bytes,
// rejecting negative counts and counts that cannot fit in the remaining
// buffer (so corrupt data cannot trigger huge allocations).
func (d *WireDec) Len(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > d.Remaining() {
		d.fail("implausible length %d at offset %d (%d bytes remain)", n, d.off-8, d.Remaining())
		return 0
	}
	return n
}

// Floats reads back a length-prefixed float slice (nil for length 0,
// matching an encoded nil slice).
func (d *WireDec) Floats() []float64 {
	n := d.Len(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// FloatRows reads back a length-prefixed slice of float rows.
func (d *WireDec) FloatRows() [][]float64 {
	n := d.Len(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = d.Floats()
	}
	return out
}

// AppendWire serializes the fitted scaler.
func (s *StandardScaler) AppendWire(e *WireEnc) {
	e.Floats(s.Means)
	e.Floats(s.Scales)
}

// DecodeScaler reconstructs a scaler written by AppendWire.
func DecodeScaler(d *WireDec) (*StandardScaler, error) {
	s := &StandardScaler{Means: d.Floats(), Scales: d.Floats()}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("ml: decode scaler: %w", err)
	}
	if len(s.Means) != len(s.Scales) {
		return nil, fmt.Errorf("%w: scaler has %d means but %d scales", ErrWire, len(s.Means), len(s.Scales))
	}
	return s, nil
}
