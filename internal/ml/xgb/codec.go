package xgb

import (
	"fmt"

	"repro/internal/ml"
)

// maxWireDepth bounds recursion when decoding node structures (real
// boosting trees are MaxDepth-bounded, single digits).
const maxWireDepth = 10_000

// AppendWire serializes the fitted booster: the (defaulted)
// configuration, per-output base scores, and every ensemble's trees in
// boosting order. Prediction accumulates LearningRate-scaled leaf
// weights in that order, so a decoded booster predicts bit-identically
// to the original.
func (x *Regressor) AppendWire(e *ml.WireEnc) error {
	if x.ensembles == nil {
		return fmt.Errorf("xgb: encode before Fit")
	}
	e.Int(x.cfg.NumRounds)
	e.F64(x.cfg.LearningRate)
	e.Int(x.cfg.MaxDepth)
	e.F64(x.cfg.Lambda)
	e.F64(x.cfg.Gamma)
	e.F64(x.cfg.MinChildWeight)
	e.F64(x.cfg.Subsample)
	e.F64(x.cfg.ColSample)
	e.U64(x.cfg.Seed)
	e.Floats(x.baseScore)
	e.Int(len(x.ensembles))
	for _, trees := range x.ensembles {
		e.Int(len(trees))
		for _, t := range trees {
			appendBNode(e, t)
		}
	}
	return nil
}

func appendBNode(e *ml.WireEnc, n *bnode) {
	if n.leaf {
		e.U8(1)
		e.F64(n.weight)
		return
	}
	e.U8(0)
	e.Int(n.feature)
	e.F64(n.threshold)
	appendBNode(e, n.left)
	appendBNode(e, n.right)
}

// DecodeWire reconstructs a fitted booster written by AppendWire.
func DecodeWire(d *ml.WireDec) (*Regressor, error) {
	x := &Regressor{}
	x.cfg.NumRounds = d.Int()
	x.cfg.LearningRate = d.F64()
	x.cfg.MaxDepth = d.Int()
	x.cfg.Lambda = d.F64()
	x.cfg.Gamma = d.F64()
	x.cfg.MinChildWeight = d.F64()
	x.cfg.Subsample = d.F64()
	x.cfg.ColSample = d.F64()
	x.cfg.Seed = d.U64()
	x.baseScore = d.Floats()
	nOut := d.Len(8)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("xgb: decode: %w", err)
	}
	if nOut == 0 || nOut != len(x.baseScore) {
		return nil, fmt.Errorf("%w: booster with %d ensembles, %d base scores", ml.ErrWire, nOut, len(x.baseScore))
	}
	x.ensembles = make([][]*bnode, nOut)
	for out := range x.ensembles {
		n := d.Len(1)
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("xgb: decode ensemble %d: %w", out, err)
		}
		trees := make([]*bnode, n)
		for t := range trees {
			trees[t] = decodeBNode(d, 0)
		}
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("xgb: decode ensemble %d: %w", out, err)
		}
		x.ensembles[out] = trees
	}
	// Warm-loaded boosters serve through the same flattened kernel as
	// freshly fitted ones.
	x.finalize()
	return x, nil
}

func decodeBNode(d *ml.WireDec, depth int) *bnode {
	if d.Err() != nil {
		return nil
	}
	if depth > maxWireDepth {
		d.Failf("boosting tree deeper than %d nodes", maxWireDepth)
		return nil
	}
	switch tag := d.U8(); tag {
	case 1:
		return &bnode{leaf: true, weight: d.F64()}
	case 0:
		n := &bnode{feature: d.Int(), threshold: d.F64()}
		n.left = decodeBNode(d, depth+1)
		n.right = decodeBNode(d, depth+1)
		return n
	default:
		if d.Err() == nil {
			d.Failf("bad boosting node tag %d", tag)
		}
		return nil
	}
}
