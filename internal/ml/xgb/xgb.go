// Package xgb implements gradient-boosted regression trees in the style
// of XGBoost (Chen & Guestrin 2016): trees are grown greedily on the
// second-order Taylor expansion of the loss, with L2-regularized leaf
// weights, minimum-gain (γ) pruning, shrinkage, and row/column
// subsampling. For the squared-error objective used here the gradient
// is (ŷ − y) and the hessian is 1, so the leaf weight is
// −ΣG/(ΣH + λ) and the split gain is the standard XGBoost formula
//
//	gain = ½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ.
//
// Multi-output targets are handled by boosting one ensemble per output,
// matching how XGBoost is applied to multi-output regression in the
// paper's Python workflow.
package xgb

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/numeric"
	"repro/internal/parallel"
	"repro/internal/randx"
)

// Config controls boosting.
type Config struct {
	// NumRounds is the number of boosting rounds per output (default 100).
	NumRounds int
	// LearningRate is the shrinkage η (default 0.1).
	LearningRate float64
	// MaxDepth per tree (default 3).
	MaxDepth int
	// Lambda is the L2 regularization on leaf weights. Zero selects the
	// default of 1; any negative value explicitly disables regularization
	// (λ = 0), mirroring the forest-style MaxFeatures sentinel.
	Lambda float64
	// Gamma is the minimum split gain (default 0).
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child (default 1).
	MinChildWeight float64
	// Subsample is the row-sampling fraction per tree in (0, 1]
	// (default 1).
	Subsample float64
	// ColSample is the feature-sampling fraction per tree in (0, 1]
	// (default 1).
	ColSample float64
	// Seed makes training deterministic.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.NumRounds <= 0 {
		c.NumRounds = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	} else if c.Lambda < 0 {
		c.Lambda = 0 // explicit "no regularization" sentinel
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	if c.ColSample <= 0 || c.ColSample > 1 {
		c.ColSample = 1
	}
	return c
}

// bnode is a boosting tree node.
type bnode struct {
	feature   int
	threshold float64
	left      *bnode
	right     *bnode
	leaf      bool
	weight    float64
}

// flatEnsemble is one output's flattened boosting ensemble: every
// round's tree packed into a single struct-of-arrays node table,
// traversed iteratively with no pointer chasing and no allocation.
//
// Encoding: feature[i] >= 0 marks an internal node with children
// left[i]/right[i]; feature[i] == flatLeaf marks a leaf whose weight is
// stored in threshold[i] (a leaf has no split threshold, so the slot is
// free and the table stays four arrays wide). roots[r] indexes round
// r's root node.
type flatEnsemble struct {
	roots     []int32
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
}

// flatLeaf is the feature sentinel marking a leaf row in the table.
const flatLeaf = int32(-1)

// appendFlat lowers one pointer tree into the table in preorder and
// returns its root index.
func (f *flatEnsemble) appendFlat(n *bnode) int32 {
	i := int32(len(f.feature))
	f.feature = append(f.feature, 0)
	f.threshold = append(f.threshold, 0)
	f.left = append(f.left, 0)
	f.right = append(f.right, 0)
	if n.leaf {
		f.feature[i] = flatLeaf
		f.threshold[i] = n.weight
		return i
	}
	f.feature[i] = int32(n.feature)
	f.threshold[i] = n.threshold
	f.left[i] = f.appendFlat(n.left)
	f.right[i] = f.appendFlat(n.right)
	return i
}

// Regressor is a fitted gradient-boosting model.
type Regressor struct {
	cfg       Config
	baseScore []float64      // per-output initial prediction
	ensembles [][]*bnode     // [output][round]
	flat      []flatEnsemble // serving kernel, built by finalize
}

// finalize builds the flattened serving kernel from the pointer
// ensembles. Fit and DecodeWire both call it, so fresh and warm-loaded
// boosters share one kernel.
func (x *Regressor) finalize() {
	x.flat = make([]flatEnsemble, len(x.ensembles))
	for out, trees := range x.ensembles {
		fe := &x.flat[out]
		fe.roots = make([]int32, len(trees))
		for r, t := range trees {
			fe.roots[r] = fe.appendFlat(t)
		}
	}
}

// New returns an unfitted booster.
func New(cfg Config) *Regressor { return &Regressor{cfg: cfg.withDefaults()} }

// Name implements ml.Regressor.
func (x *Regressor) Name() string {
	return fmt.Sprintf("XGBoost(rounds=%d,depth=%d,eta=%g)", x.cfg.NumRounds, x.cfg.MaxDepth, x.cfg.LearningRate)
}

// Fit trains one boosted ensemble per output dimension. The outputs are
// independent given their pre-split random streams, so they are boosted
// concurrently on the shared worker pool (bounded by GOMAXPROCS); the
// fitted model is bit-identical to a sequential fit regardless of
// worker count. On error the regressor is reset to its unfitted state.
func (x *Regressor) Fit(d *ml.Dataset) error {
	x.baseScore, x.ensembles = nil, nil
	if err := d.Validate(); err != nil {
		return fmt.Errorf("xgb: %w", err)
	}
	n := d.NumExamples()
	nOut := d.NumOutputs()
	rng := randx.New(x.cfg.Seed ^ 0xABCDEF0123456789)
	// Output out's row/column subsampling depends only on stream out,
	// never on what the other workers consume.
	outRNGs := rng.SplitN(nOut)
	baseScore := make([]float64, nOut)
	ensembles := make([][]*bnode, nOut)
	//lint:allow ctxflow Fit is synchronous and bit-reproducible; a caller deadline would make training results depend on timing
	err := parallel.ForEach(context.Background(), nOut, 0, func(_ context.Context, out int) error {
		y := make([]float64, n)
		for i := range y {
			y[i] = d.Y[i][out]
		}
		base := numeric.Mean(y)
		baseScore[out] = base

		pred := make([]float64, n)
		for i := range pred {
			pred[i] = base
		}
		grad := make([]float64, n)
		hess := make([]float64, n)
		outRNG := outRNGs[out]
		trees := make([]*bnode, 0, x.cfg.NumRounds)
		for round := 0; round < x.cfg.NumRounds; round++ {
			for i := range grad {
				grad[i] = pred[i] - y[i] // squared loss
				hess[i] = 1
			}
			rows := x.sampleRows(outRNG, n)
			cols := x.sampleCols(outRNG, d.NumFeatures())
			root := x.buildTree(d, rows, cols, grad, hess, 0)
			trees = append(trees, root)
			for i := 0; i < n; i++ {
				pred[i] += x.cfg.LearningRate * evalTree(root, d.X[i])
			}
		}
		ensembles[out] = trees
		return nil
	})
	if err != nil {
		return err
	}
	x.baseScore = baseScore
	x.ensembles = ensembles
	x.finalize()
	return nil
}

func (x *Regressor) sampleRows(rng *randx.RNG, n int) []int {
	if x.cfg.Subsample >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(x.cfg.Subsample * float64(n))
	if k < 1 {
		k = 1
	}
	idx := rng.SampleWithoutReplacement(n, k)
	sort.Ints(idx)
	return idx
}

func (x *Regressor) sampleCols(rng *randx.RNG, nf int) []int {
	if x.cfg.ColSample >= 1 {
		cols := make([]int, nf)
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	k := int(x.cfg.ColSample * float64(nf))
	if k < 1 {
		k = 1
	}
	cols := rng.SampleWithoutReplacement(nf, k)
	sort.Ints(cols)
	return cols
}

// buildTree grows one regularized tree on the gradient statistics.
func (x *Regressor) buildTree(d *ml.Dataset, rows, cols []int, grad, hess []float64, depth int) *bnode {
	var gSum, hSum float64
	for _, i := range rows {
		gSum += grad[i]
		hSum += hess[i]
	}
	leaf := func() *bnode {
		return &bnode{leaf: true, weight: -gSum / (hSum + x.cfg.Lambda)}
	}
	if depth >= x.cfg.MaxDepth || len(rows) < 2 {
		return leaf()
	}

	parentScore := gSum * gSum / (hSum + x.cfg.Lambda)
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0

	order := make([]int, len(rows))
	for _, f := range cols {
		copy(order, rows)
		sort.Slice(order, func(a, b int) bool {
			if d.X[order[a]][f] != d.X[order[b]][f] {
				return d.X[order[a]][f] < d.X[order[b]][f]
			}
			return order[a] < order[b]
		})
		var gl, hl float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			gl += grad[i]
			hl += hess[i]
			xv, xn := d.X[i][f], d.X[order[pos+1]][f]
			if xv == xn {
				continue
			}
			gr := gSum - gl
			hr := hSum - hl
			if hl < x.cfg.MinChildWeight || hr < x.cfg.MinChildWeight {
				continue
			}
			gain := 0.5*(gl*gl/(hl+x.cfg.Lambda)+gr*gr/(hr+x.cfg.Lambda)-parentScore) - x.cfg.Gamma
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (xv + xn) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leaf()
	}
	var left, right []int
	for _, i := range rows {
		if d.X[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leaf()
	}
	return &bnode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      x.buildTree(d, left, cols, grad, hess, depth+1),
		right:     x.buildTree(d, right, cols, grad, hess, depth+1),
	}
}

// evalTree walks one pointer tree to its leaf weight, routing NaN
// features explicitly right (the ensemble-wide NaN contract; Dataset
// validation keeps NaN out of training, so the branch only matters for
// serving-time inputs).
func evalTree(n *bnode, x []float64) float64 {
	for !n.leaf {
		xv := x[n.feature]
		switch {
		case math.IsNaN(xv):
			n = n.right
		case xv <= n.threshold:
			n = n.left
		default:
			n = n.right
		}
	}
	return n.weight
}

// Predict implements ml.Regressor via the flattened kernel.
func (x *Regressor) Predict(in []float64) []float64 {
	//lint:allow alloccheck row API allocates only the returned vector by contract; the batch path fills caller buffers via PredictBatchInto
	out := make([]float64, len(x.flat))
	x.PredictInto(in, out)
	return out
}

// PredictInto writes the prediction for in into out (len NumOutputs)
// without allocating. Leaf weights accumulate in boosting order with
// the same shrinkage multiply as the pointer kernel, so the result is
// bit-identical to PredictReference.
//
// NaN routing contract: a NaN feature fails the `<=` comparison and
// follows the right branch, identical to the explicit math.IsNaN branch
// in PredictReference.
func (x *Regressor) PredictInto(in, out []float64) {
	if x.flat == nil {
		panic("xgb: Predict before Fit")
	}
	eta := x.cfg.LearningRate
	for j := range x.flat {
		fe := &x.flat[j]
		ft, th, lt, rt := fe.feature, fe.threshold, fe.left, fe.right
		p := x.baseScore[j]
		for _, root := range fe.roots {
			i := root
			for ft[i] >= 0 {
				if in[ft[i]] <= th[i] {
					i = lt[i]
				} else {
					i = rt[i]
				}
			}
			p += eta * th[i]
		}
		out[j] = p
	}
}

// NumOutputs implements ml.BatchIntoPredictor.
func (x *Regressor) NumOutputs() int { return len(x.flat) }

// PredictBatchInto implements ml.BatchIntoPredictor: rows fan out
// across the shared worker pool (bounded by GOMAXPROCS) and each is
// filled in place by the allocation-free kernel. Row results are
// independent, so the output is bit-identical at any worker count.
func (x *Regressor) PredictBatchInto(ctx context.Context, X, out [][]float64) {
	if x.flat == nil {
		panic("xgb: Predict before Fit")
	}
	_ = parallel.ForEach(ctx, len(X), 0, func(_ context.Context, i int) error {
		x.PredictInto(X[i], out[i])
		return nil
	})
}

// PredictReference is the original pointer-chasing kernel, kept as the
// independent reference implementation the equivalence suite compares
// against the flattened kernel bit for bit. NaN features explicitly
// route right at every split.
func (x *Regressor) PredictReference(in []float64) []float64 {
	if x.ensembles == nil {
		panic("xgb: Predict before Fit")
	}
	out := make([]float64, len(x.ensembles))
	for j, trees := range x.ensembles {
		p := x.baseScore[j]
		for _, t := range trees {
			p += x.cfg.LearningRate * evalTree(t, in)
		}
		out[j] = p
	}
	return out
}
