package xgb

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

func synth(seed uint64, n int) *ml.Dataset {
	rng := randx.New(seed)
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(-2, 2)
		b := rng.Uniform(-2, 2)
		X[i] = []float64{a, b}
		Y[i] = []float64{a*a - b + 0.05*rng.StdNormal(), math.Cos(a) + 0.05*rng.StdNormal()}
	}
	return &ml.Dataset{X: X, Y: Y}
}

func TestXGBLearnsNonlinear(t *testing.T) {
	train := synth(1, 1500)
	test := synth(2, 300)
	m := New(Config{NumRounds: 150, MaxDepth: 4, LearningRate: 0.15, Seed: 5})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([][]float64, len(test.X))
	for i, x := range test.X {
		pred[i] = m.Predict(x)
	}
	if mse := ml.MSE(pred, test.Y); mse > 0.1 {
		t.Errorf("xgb test MSE = %v, want < 0.1", mse)
	}
}

func TestXGBBoostingReducesTrainError(t *testing.T) {
	train := synth(3, 400)
	few := New(Config{NumRounds: 3, Seed: 1})
	many := New(Config{NumRounds: 100, Seed: 1})
	if err := few.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(train); err != nil {
		t.Fatal(err)
	}
	pf := make([][]float64, len(train.X))
	pm := make([][]float64, len(train.X))
	for i, x := range train.X {
		pf[i] = few.Predict(x)
		pm[i] = many.Predict(x)
	}
	if ml.MSE(pm, train.Y) >= ml.MSE(pf, train.Y) {
		t.Errorf("more rounds did not reduce training error: %v vs %v",
			ml.MSE(pm, train.Y), ml.MSE(pf, train.Y))
	}
}

func TestXGBConstantTarget(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1}, {2}, {3}},
		Y: [][]float64{{5}, {5}, {5}},
	}
	m := New(Config{NumRounds: 10})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2}); math.Abs(got[0]-5) > 1e-9 {
		t.Errorf("constant-target prediction = %v, want 5", got[0])
	}
}

func TestXGBDeterministicWithSeed(t *testing.T) {
	train := synth(6, 300)
	m1 := New(Config{NumRounds: 30, Subsample: 0.8, ColSample: 0.5, Seed: 9})
	m2 := New(Config{NumRounds: 30, Subsample: 0.8, ColSample: 0.5, Seed: 9})
	if err := m1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range train.X[:20] {
		a, b := m1.Predict(x), m2.Predict(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed gave different boosters")
			}
		}
	}
}

func TestXGBSubsamplingStillLearns(t *testing.T) {
	train := synth(7, 1000)
	test := synth(8, 200)
	m := New(Config{NumRounds: 120, MaxDepth: 4, Subsample: 0.7, ColSample: 0.8, Seed: 11})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([][]float64, len(test.X))
	for i, x := range test.X {
		pred[i] = m.Predict(x)
	}
	if mse := ml.MSE(pred, test.Y); mse > 0.15 {
		t.Errorf("subsampled xgb test MSE = %v, want < 0.15", mse)
	}
}

func TestXGBGammaPrunes(t *testing.T) {
	// Huge gamma forbids all splits: every tree is a single leaf, and
	// with squared loss + lambda the prediction stays near the base.
	train := synth(9, 200)
	m := New(Config{NumRounds: 20, Gamma: 1e12, Seed: 2})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	var base float64
	for _, y := range train.Y {
		base += y[0]
	}
	base /= float64(len(train.Y))
	got := m.Predict(train.X[0])
	if math.Abs(got[0]-base) > 0.2*math.Abs(base)+0.2 {
		t.Errorf("gamma-pruned prediction = %v, want ~base %v", got[0], base)
	}
}

func TestXGBDefaults(t *testing.T) {
	m := New(Config{})
	c := m.cfg
	if c.NumRounds != 100 || c.LearningRate != 0.1 || c.MaxDepth != 3 ||
		c.Lambda != 1 || c.MinChildWeight != 1 || c.Subsample != 1 || c.ColSample != 1 {
		t.Errorf("defaults = %+v", c)
	}
	if m.Name() == "" {
		t.Error("Name should render")
	}
}

func TestXGBValidation(t *testing.T) {
	if err := New(Config{}).Fit(&ml.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestXGBPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}).Predict([]float64{1})
}

func TestXGBMultiOutputIndependence(t *testing.T) {
	// Output 1 is pure noise w.r.t. features; output 0 is learnable.
	// Learning output 0 must not be degraded by output 1's presence.
	rng := randx.New(13)
	n := 600
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(-1, 1)
		X[i] = []float64{a}
		Y[i] = []float64{3 * a, rng.StdNormal()}
	}
	m := New(Config{NumRounds: 80, Seed: 3})
	if err := m.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5}); math.Abs(got[0]-1.5) > 0.2 {
		t.Errorf("output 0 prediction = %v, want ~1.5", got[0])
	}
}
