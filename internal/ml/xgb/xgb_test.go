package xgb

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

func synth(seed uint64, n int) *ml.Dataset {
	rng := randx.New(seed)
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(-2, 2)
		b := rng.Uniform(-2, 2)
		X[i] = []float64{a, b}
		Y[i] = []float64{a*a - b + 0.05*rng.StdNormal(), math.Cos(a) + 0.05*rng.StdNormal()}
	}
	return &ml.Dataset{X: X, Y: Y}
}

func TestXGBLearnsNonlinear(t *testing.T) {
	train := synth(1, 1500)
	test := synth(2, 300)
	m := New(Config{NumRounds: 150, MaxDepth: 4, LearningRate: 0.15, Seed: 5})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([][]float64, len(test.X))
	for i, x := range test.X {
		pred[i] = m.Predict(x)
	}
	if mse := ml.MSE(pred, test.Y); mse > 0.1 {
		t.Errorf("xgb test MSE = %v, want < 0.1", mse)
	}
}

func TestXGBBoostingReducesTrainError(t *testing.T) {
	train := synth(3, 400)
	few := New(Config{NumRounds: 3, Seed: 1})
	many := New(Config{NumRounds: 100, Seed: 1})
	if err := few.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(train); err != nil {
		t.Fatal(err)
	}
	pf := make([][]float64, len(train.X))
	pm := make([][]float64, len(train.X))
	for i, x := range train.X {
		pf[i] = few.Predict(x)
		pm[i] = many.Predict(x)
	}
	if ml.MSE(pm, train.Y) >= ml.MSE(pf, train.Y) {
		t.Errorf("more rounds did not reduce training error: %v vs %v",
			ml.MSE(pm, train.Y), ml.MSE(pf, train.Y))
	}
}

func TestXGBConstantTarget(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1}, {2}, {3}},
		Y: [][]float64{{5}, {5}, {5}},
	}
	m := New(Config{NumRounds: 10})
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2}); math.Abs(got[0]-5) > 1e-9 {
		t.Errorf("constant-target prediction = %v, want 5", got[0])
	}
}

func TestXGBDeterministicWithSeed(t *testing.T) {
	train := synth(6, 300)
	m1 := New(Config{NumRounds: 30, Subsample: 0.8, ColSample: 0.5, Seed: 9})
	m2 := New(Config{NumRounds: 30, Subsample: 0.8, ColSample: 0.5, Seed: 9})
	if err := m1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range train.X[:20] {
		a, b := m1.Predict(x), m2.Predict(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed gave different boosters")
			}
		}
	}
}

func TestXGBSubsamplingStillLearns(t *testing.T) {
	train := synth(7, 1000)
	test := synth(8, 200)
	m := New(Config{NumRounds: 120, MaxDepth: 4, Subsample: 0.7, ColSample: 0.8, Seed: 11})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := make([][]float64, len(test.X))
	for i, x := range test.X {
		pred[i] = m.Predict(x)
	}
	if mse := ml.MSE(pred, test.Y); mse > 0.15 {
		t.Errorf("subsampled xgb test MSE = %v, want < 0.15", mse)
	}
}

func TestXGBGammaPrunes(t *testing.T) {
	// Huge gamma forbids all splits: every tree is a single leaf, and
	// with squared loss + lambda the prediction stays near the base.
	train := synth(9, 200)
	m := New(Config{NumRounds: 20, Gamma: 1e12, Seed: 2})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	var base float64
	for _, y := range train.Y {
		base += y[0]
	}
	base /= float64(len(train.Y))
	got := m.Predict(train.X[0])
	if math.Abs(got[0]-base) > 0.2*math.Abs(base)+0.2 {
		t.Errorf("gamma-pruned prediction = %v, want ~base %v", got[0], base)
	}
}

func TestXGBDefaults(t *testing.T) {
	m := New(Config{})
	c := m.cfg
	if c.NumRounds != 100 || c.LearningRate != 0.1 || c.MaxDepth != 3 ||
		c.Lambda != 1 || c.MinChildWeight != 1 || c.Subsample != 1 || c.ColSample != 1 {
		t.Errorf("defaults = %+v", c)
	}
	if m.Name() == "" {
		t.Error("Name should render")
	}
}

func TestXGBValidation(t *testing.T) {
	if err := New(Config{}).Fit(&ml.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestXGBPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}).Predict([]float64{1})
}

func TestXGBMultiOutputIndependence(t *testing.T) {
	// Output 1 is pure noise w.r.t. features; output 0 is learnable.
	// Learning output 0 must not be degraded by output 1's presence.
	rng := randx.New(13)
	n := 600
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		a := rng.Uniform(-1, 1)
		X[i] = []float64{a}
		Y[i] = []float64{3 * a, rng.StdNormal()}
	}
	m := New(Config{NumRounds: 80, Seed: 3})
	if err := m.Fit(&ml.Dataset{X: X, Y: Y}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5}); math.Abs(got[0]-1.5) > 0.2 {
		t.Errorf("output 0 prediction = %v, want ~1.5", got[0])
	}
}

// TestXGBParallelFitBitIdentical is the tentpole determinism guarantee
// for boosting: per-output ensembles fitted concurrently must match a
// single-worker fit to the last bit, across seeds and worker counts.
func TestXGBParallelFitBitIdentical(t *testing.T) {
	train := synth(10, 350)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, seed := range []uint64{1, 13, 777} {
		runtime.GOMAXPROCS(1)
		seq := New(Config{NumRounds: 25, Subsample: 0.8, ColSample: 0.5, Seed: seed})
		if err := seq.Fit(train); err != nil {
			t.Fatal(err)
		}
		want := make([][]float64, 30)
		for i, x := range train.X[:30] {
			want[i] = seq.Predict(x)
		}
		for _, procs := range []int{2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			par := New(Config{NumRounds: 25, Subsample: 0.8, ColSample: 0.5, Seed: seed})
			if err := par.Fit(train); err != nil {
				t.Fatal(err)
			}
			for i, x := range train.X[:30] {
				got := par.Predict(x)
				for j := range got {
					if got[j] != want[i][j] {
						t.Fatalf("seed %d procs %d: prediction[%d][%d] = %v, sequential = %v",
							seed, procs, i, j, got[j], want[i][j])
					}
				}
			}
		}
	}
}

// TestXGBLambdaSentinel is the regression test for the withDefaults bug
// that made an unregularized booster impossible: 0 selects the default
// of 1, while a negative value explicitly disables regularization.
func TestXGBLambdaSentinel(t *testing.T) {
	if got := New(Config{}).cfg.Lambda; got != 1 {
		t.Errorf("Lambda default = %v, want 1", got)
	}
	if got := New(Config{Lambda: 2.5}).cfg.Lambda; got != 2.5 {
		t.Errorf("explicit Lambda = %v, want 2.5", got)
	}
	if got := New(Config{Lambda: -1}).cfg.Lambda; got != 0 {
		t.Errorf("negative Lambda sentinel = %v, want 0 (unregularized)", got)
	}

	// The unregularized booster must actually behave differently: with
	// λ = 0 a single-sample leaf fits its residual exactly, so one deep
	// tree at learning rate 1 drives the training error to ~0; λ = 1
	// shrinks every leaf and cannot.
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {2}, {3}},
		Y: [][]float64{{0}, {10}, {-3}, {7}},
	}
	unreg := New(Config{NumRounds: 1, MaxDepth: 10, LearningRate: 1, Lambda: -1})
	reg := New(Config{NumRounds: 1, MaxDepth: 10, LearningRate: 1, Lambda: 1})
	if err := unreg.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := reg.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X {
		if got := unreg.Predict(x)[0]; math.Abs(got-d.Y[i][0]) > 1e-9 {
			t.Errorf("unregularized booster: Predict(%v) = %v, want exact %v", x, got, d.Y[i][0])
		}
		if got := reg.Predict(x)[0]; math.Abs(got-d.Y[i][0]) < 1e-9 && d.Y[i][0] != 0 {
			t.Errorf("regularized booster unexpectedly exact at %v", x)
		}
	}
}

// TestXGBFitErrorResets mirrors the forest regression: a failed re-fit
// must leave the regressor unfitted rather than serving the stale model.
func TestXGBFitErrorResets(t *testing.T) {
	good := synth(11, 100)
	m := New(Config{NumRounds: 5, Seed: 1})
	if err := m.Fit(good); err != nil {
		t.Fatal(err)
	}
	_ = m.Predict(good.X[0])
	bad := &ml.Dataset{X: [][]float64{{1}, {2}}, Y: [][]float64{{math.Inf(1)}, {0}}}
	if err := m.Fit(bad); err == nil {
		t.Fatal("Inf target should fail Fit")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict after a failed Fit should panic, not serve the stale model")
		}
	}()
	m.Predict(good.X[0])
}

// BenchmarkFit measures cold boosting at several worker counts (the
// parallel unit is one output ensemble, so multi-output datasets are
// required to see any gain); see EXPERIMENTS.md for recorded numbers.
func BenchmarkFit(b *testing.B) {
	ds := synth(1, 1500)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				m := New(Config{NumRounds: 40, MaxDepth: 4, Seed: 5})
				if err := m.Fit(ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
