package modelstore

import (
	"fmt"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/knn"
	"repro/internal/ml/xgb"
	"repro/internal/randx"
)

// benchDataset is sized like a real leave-one-out UC1 training set:
// 59 training benchmarks, 22 probe features, 4 representation outputs.
func benchDataset() *ml.Dataset {
	rng := randx.New(7)
	const n, nf, no = 59, 22, 4
	d := &ml.Dataset{}
	for j := 0; j < nf; j++ {
		d.FeatureNames = append(d.FeatureNames, fmt.Sprintf("f%02d", j))
	}
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Uniform(-2, 2)
		}
		y := make([]float64, no)
		for j := range y {
			y[j] = x[j]*1.5 - x[j+2] + rng.Normal(0, 0.1)
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// benchFit trains one full-ensemble model (production sizes from
// internal/core: rf 100 trees, xgb 60 rounds × depth 3, kNN k=15).
func benchFit(b *testing.B, kind Kind, d *ml.Dataset) ml.Regressor {
	b.Helper()
	var reg ml.Regressor
	switch kind {
	case KindForest:
		reg = forest.New(forest.Config{NumTrees: 100, Seed: 1})
	case KindXGB:
		reg = xgb.New(xgb.Config{NumRounds: 60, MaxDepth: 3, Seed: 1})
	case KindKNN:
		reg = knn.New(15)
	default:
		b.Fatalf("benchFit: %v", kind)
	}
	if err := reg.Fit(d); err != nil {
		b.Fatalf("fit %v: %v", kind, err)
	}
	return reg
}

// BenchmarkColdFit / BenchmarkDiskLoad quantify the warm-start claim:
// loading a persisted model must be far cheaper than refitting it.
// EXPERIMENTS.md records the measured ratios.
func BenchmarkColdFit(b *testing.B) {
	d := benchDataset()
	for _, kind := range allKinds {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchFit(b, kind, d)
			}
		})
	}
}

func BenchmarkDiskLoad(b *testing.B) {
	d := benchDataset()
	fp := FingerprintDataset(d)
	for _, kind := range allKinds {
		b.Run(kind.String(), func(b *testing.B) {
			store, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			reg := benchFit(b, kind, d)
			key := fmt.Sprintf("%064x", int(kind))
			if err := store.Save(key, reg, fp); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Load(key, fp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncode / BenchmarkDecode isolate the serialization cost
// from the filesystem.
func BenchmarkEncode(b *testing.B) {
	d := benchDataset()
	fp := FingerprintDataset(d)
	for _, kind := range allKinds {
		b.Run(kind.String(), func(b *testing.B) {
			reg := benchFit(b, kind, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(reg, fp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	d := benchDataset()
	fp := FingerprintDataset(d)
	for _, kind := range allKinds {
		b.Run(kind.String(), func(b *testing.B) {
			reg := benchFit(b, kind, d)
			data, err := Encode(reg, fp)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
