// Package modelstore persists trained models so a process restart (or
// a fleet scale-out) loads seconds of training from disk in
// milliseconds instead of re-paying it.
//
// It has three layers:
//
//   - Format: a versioned binary envelope — magic, format version,
//     model kind, dataset fingerprint, payload, CRC32 trailer — around
//     the per-model codecs living beside each model
//     (internal/ml/{tree,forest,xgb,knn}). Floats travel as IEEE-754
//     bits, so a loaded model predicts bit-identically to the one that
//     was saved. Damaged or incompatible files are rejected with typed
//     errors (ErrBadMagic, ErrVersionSkew, ErrCorrupt, ErrTruncated,
//     ErrUnknownKind) that callers treat as a cache miss, never as data.
//
//   - Store: a content-addressed directory of model files written
//     atomically (temp file + rename, the repo's only sanctioned use of
//     os.Rename — enforced by the pathpolicy analyzer). The address is
//     a hash of everything that determines the fitted model's bits
//     (KeySpec: use case, system, holdout, resolved hyperparameters,
//     dataset fingerprint), so a stale entry is structurally
//     impossible: if anything changed, the key changed and the old file
//     is simply never read again.
//
//   - Registry: an in-memory front for the store with LRU-bounded
//     residency, per-key singleflight (concurrent requests for the same
//     model share one load-or-fit), and atomic swap on Refresh. It
//     counts hits, disk hits, misses, evictions, and load/save errors
//     for the serving layer's gauges.
//
// The package sits below internal/core: it knows about ml.Regressor
// implementations but nothing about predictors, breakers, or HTTP.
package modelstore
