package modelstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/ml"
)

// FingerprintDataset hashes the learning problem's exact bits — shape,
// feature names, and the IEEE-754 bits of every X and Y value — with
// FNV-1a. Two datasets share a fingerprint exactly when a model fitted
// on them would be bit-identical, which is what lets the store address
// models by content: any ingest change (new runs, different
// quarantine/repair outcome, different representation) changes Y or X
// and therefore the address.
func FingerprintDataset(d *ml.Dataset) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = h.Write(b[:])
	}
	put(uint64(len(d.X)))
	put(uint64(d.NumFeatures()))
	put(uint64(d.NumOutputs()))
	for _, row := range d.X {
		for _, v := range row {
			put(math.Float64bits(v))
		}
	}
	for _, row := range d.Y {
		for _, v := range row {
			put(math.Float64bits(v))
		}
	}
	for _, name := range d.FeatureNames {
		_, _ = h.Write([]byte(name))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// DatasetKey renders the stable identity of one model cell — the
// (use case, system, target) dataset a predictor assembles — exactly
// as KeySpec.Key embeds it in the content address. It is the routing
// key of the sharded serving tier: internal/cluster hashes these bytes
// (FNV-1a) to partition cells across replicas, so a replica that owns
// a cell also owns every content address derived from it and its
// model registry stays hot. The rendering is part of the on-disk
// format contract (a change re-addresses every stored model) and is
// pinned byte-for-byte by a golden test.
func DatasetKey(useCase int, system, target string) string {
	return fmt.Sprintf("uc%d|sys=%s|dst=%s", useCase, system, target)
}

// KeySpec enumerates everything that determines a fitted model's bits.
// Key renders it into the content address files are stored under.
type KeySpec struct {
	// UseCase is 1 or 2.
	UseCase int
	// System is the UC1 system or UC2 source; Target the UC2 target
	// ("" for UC1).
	System, Target string
	// Holdout is the benchmark held out of training ("" for the full
	// deployment model). It selects the training subset, so it is part
	// of the address even though the dataset fingerprint is not.
	Holdout string
	// Model is the canonical rendering of the resolved model family and
	// hyperparameters, including the training seed where it matters.
	Model string
	// DatasetFP is FingerprintDataset of the assembled problem.
	DatasetFP uint64
}

// Key returns the content address: the hex SHA-256 of the spec's
// canonical rendering, prefixed with the format version so a format
// bump never reads (or half-trusts) old-layout files.
func (s KeySpec) Key() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf(
		"v%d|%s|holdout=%s|model=%s|fp=%016x",
		FormatVersion, DatasetKey(s.UseCase, s.System, s.Target), s.Holdout, s.Model, s.DatasetFP,
	)))
	return hex.EncodeToString(sum[:])
}
