package modelstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/knn"
	"repro/internal/ml/xgb"
)

// The on-disk envelope, all little-endian:
//
//	offset  size  field
//	0       4     magic "PVMS"
//	4       2     format version
//	6       1     model kind
//	7       1     reserved (zero)
//	8       8     dataset fingerprint
//	16      4     payload length N
//	20      N     payload (model codec output)
//	20+N    4     CRC32 (IEEE) over bytes [0, 20+N)
const (
	magic       = "PVMS"
	headerSize  = 4 + 2 + 1 + 1 + 8 + 4
	trailerSize = 4
)

// FormatVersion is the current on-disk format revision. Bump it on any
// incompatible envelope or payload change; old files are rejected with
// ErrVersionSkew and treated as a miss (refit and overwrite).
const FormatVersion uint16 = 1

// Kind identifies the serialized model family.
type Kind uint8

// The storable families. Ridge (the linear baseline) deliberately has
// no codec: it fits in microseconds, so persistence would only add
// failure modes.
const (
	KindUnknown Kind = iota
	KindForest
	KindXGB
	KindKNN
)

// String names the kind for spans and error messages.
func (k Kind) String() string {
	switch k {
	case KindForest:
		return "forest"
	case KindXGB:
		return "xgb"
	case KindKNN:
		return "knn"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Typed rejection errors, matched with errors.Is. Every one of them
// means "do not trust this file"; the registry maps them all to a cache
// miss that refits and overwrites.
var (
	// ErrBadMagic reports a file that is not a model file at all.
	ErrBadMagic = errors.New("modelstore: not a model file")
	// ErrVersionSkew reports a file written by an incompatible format
	// revision (e.g. a newer binary's store read by an older one).
	ErrVersionSkew = errors.New("modelstore: unsupported format version")
	// ErrCorrupt reports a file whose checksum or payload structure is
	// damaged.
	ErrCorrupt = errors.New("modelstore: corrupt model file")
	// ErrTruncated reports a file shorter than its envelope claims.
	ErrTruncated = errors.New("modelstore: truncated model file")
	// ErrUnknownKind reports a structurally valid envelope carrying a
	// model family this binary cannot decode.
	ErrUnknownKind = errors.New("modelstore: unknown model kind")
	// ErrUnsupportedModel reports an attempt to encode a family without
	// a codec (e.g. the Ridge baseline).
	ErrUnsupportedModel = errors.New("modelstore: model family not serializable")
	// ErrNotFound reports a key with no file in the store.
	ErrNotFound = errors.New("modelstore: model not found")
	// ErrFingerprint reports a file whose recorded dataset fingerprint
	// does not match the data the caller is predicting for.
	ErrFingerprint = errors.New("modelstore: dataset fingerprint mismatch")
)

// Header is the decoded envelope metadata.
type Header struct {
	Version     uint16
	Kind        Kind
	Fingerprint uint64
}

// KindOf maps a regressor to its serialization kind (KindUnknown and
// false for families without a codec).
func KindOf(reg ml.Regressor) (Kind, bool) {
	switch reg.(type) {
	case *forest.Regressor:
		return KindForest, true
	case *xgb.Regressor:
		return KindXGB, true
	case *knn.Regressor:
		return KindKNN, true
	default:
		return KindUnknown, false
	}
}

// Encode serializes a fitted regressor into the versioned envelope,
// stamping the dataset fingerprint the model was trained on.
func Encode(reg ml.Regressor, fingerprint uint64) ([]byte, error) {
	enc := &ml.WireEnc{}
	kind, ok := KindOf(reg)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedModel, reg.Name())
	}
	var err error
	switch m := reg.(type) {
	case *forest.Regressor:
		err = m.AppendWire(enc)
	case *xgb.Regressor:
		err = m.AppendWire(enc)
	case *knn.Regressor:
		err = m.AppendWire(enc)
	}
	if err != nil {
		return nil, fmt.Errorf("modelstore: encode %s: %w", kind, err)
	}
	payload := enc.Bytes()
	buf := make([]byte, 0, headerSize+len(payload)+trailerSize)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = append(buf, byte(kind), 0)
	buf = binary.LittleEndian.AppendUint64(buf, fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode validates the envelope (magic, version, length, checksum) and
// reconstructs the model. The returned header is valid whenever the
// fields it covers decoded, even on error, so callers can log what they
// rejected.
func Decode(data []byte) (ml.Regressor, Header, error) {
	var h Header
	if len(data) < headerSize+trailerSize {
		return nil, h, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrTruncated, len(data))
	}
	if string(data[:4]) != magic {
		return nil, h, ErrBadMagic
	}
	h.Version = binary.LittleEndian.Uint16(data[4:6])
	if h.Version != FormatVersion {
		// Layout beyond the version field is unknowable for other
		// revisions, so skew is checked before the checksum.
		return nil, h, fmt.Errorf("%w: file has v%d, this binary reads v%d", ErrVersionSkew, h.Version, FormatVersion)
	}
	h.Kind = Kind(data[6])
	h.Fingerprint = binary.LittleEndian.Uint64(data[8:16])
	plen := int(binary.LittleEndian.Uint32(data[16:20]))
	switch {
	case len(data) < headerSize+plen+trailerSize:
		return nil, h, fmt.Errorf("%w: payload claims %d bytes, file holds %d", ErrTruncated, plen, len(data)-headerSize-trailerSize)
	case len(data) > headerSize+plen+trailerSize:
		return nil, h, fmt.Errorf("%w: %d trailing bytes after the checksum", ErrCorrupt, len(data)-headerSize-plen-trailerSize)
	}
	body := data[:headerSize+plen]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[len(data)-trailerSize:]); got != want {
		return nil, h, fmt.Errorf("%w: checksum %08x, expected %08x", ErrCorrupt, got, want)
	}
	dec := ml.NewWireDec(body[headerSize:])
	var reg ml.Regressor
	var err error
	switch h.Kind {
	case KindForest:
		reg, err = forest.DecodeWire(dec)
	case KindXGB:
		reg, err = xgb.DecodeWire(dec)
	case KindKNN:
		reg, err = knn.DecodeWire(dec)
	default:
		return nil, h, fmt.Errorf("%w: kind byte %d", ErrUnknownKind, data[6])
	}
	if err != nil {
		// The checksum passed, so this is an encoder/decoder mismatch
		// rather than bit rot — still untrustworthy.
		return nil, h, fmt.Errorf("%w: payload: %w", ErrCorrupt, err)
	}
	if n := dec.Remaining(); n != 0 {
		return nil, h, fmt.Errorf("%w: %d unread payload bytes", ErrCorrupt, n)
	}
	return reg, h, nil
}
