package modelstore

import "testing"

// TestDatasetKeyGolden pins DatasetKey byte-for-byte. The rendering is
// shared by two consumers that must never disagree: KeySpec.Key embeds
// it in every content address (a drift re-addresses every stored
// model), and the cluster router hashes it to place cells on replicas
// (a drift would send requests to replicas whose registries are cold).
func TestDatasetKeyGolden(t *testing.T) {
	cases := []struct {
		useCase         int
		system, target  string
		want            string
	}{
		{1, "intel", "", "uc1|sys=intel|dst="},
		{2, "intel", "amd", "uc2|sys=intel|dst=amd"},
		{1, "", "", "uc1|sys=|dst="},
		{2, "a|b", "c", "uc2|sys=a|b|dst=c"},
	}
	for _, c := range cases {
		if got := DatasetKey(c.useCase, c.system, c.target); got != c.want {
			t.Errorf("DatasetKey(%d, %q, %q) = %q, want %q", c.useCase, c.system, c.target, got, c.want)
		}
	}
}

// TestKeySpecKeyGolden pins full content addresses for fixed specs, so
// a rendering change in either DatasetKey or KeySpec.Key (which would
// silently invalidate every model on disk) fails loudly here instead.
func TestKeySpecKeyGolden(t *testing.T) {
	cases := []struct {
		spec KeySpec
		want string
	}{
		{
			KeySpec{UseCase: 1, System: "intel", Holdout: "npb/bt", Model: "knn{k=15,metric=cosine}", DatasetFP: 0x0123456789abcdef},
			"10fd4655db9c28e6ea3e15a78e73e06f0ee6daa8e822e5fb15702c9c9eaed1f6",
		},
		{
			KeySpec{UseCase: 2, System: "intel", Target: "amd", Model: "xgb{rounds=60,depth=3,eta=0.12,sub=0.9,col=0.8,seed=1}", DatasetFP: 0xfeedface},
			"c96cae8282b929c539a783ed0295ffdcd1a16c0755627c6eab0e6f649d69a390",
		},
	}
	for i, c := range cases {
		if got := c.spec.Key(); got != c.want {
			t.Errorf("case %d: KeySpec.Key() = %s, want %s", i, got, c.want)
		}
	}
}

// TestKeyEmbedsDatasetKey pins the coupling direction: two specs that
// differ only in fields outside the dataset cell share the DatasetKey,
// and specs with different cells never share one — the property the
// router's cache-affinity placement relies on.
func TestKeyEmbedsDatasetKey(t *testing.T) {
	a := KeySpec{UseCase: 1, System: "intel", Model: "knn{k=15,metric=cosine}"}
	b := a
	b.Holdout = "npb/bt"
	if DatasetKey(a.UseCase, a.System, a.Target) != DatasetKey(b.UseCase, b.System, b.Target) {
		t.Fatal("holdout changed the dataset key; routing would split one cell across replicas")
	}
	if a.Key() == b.Key() {
		t.Fatal("different holdouts produced the same content address")
	}
	c := a
	c.System = "amd"
	if DatasetKey(a.UseCase, a.System, a.Target) == DatasetKey(c.UseCase, c.System, c.Target) {
		t.Fatal("different systems produced the same dataset key")
	}
}
