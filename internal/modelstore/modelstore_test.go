package modelstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/knn"
	"repro/internal/ml/xgb"
	"repro/internal/randx"
)

// testDataset builds a small deterministic multi-output problem.
func testDataset(seed uint64) *ml.Dataset {
	rng := randx.New(seed)
	const n, nf, no = 24, 5, 3
	d := &ml.Dataset{FeatureNames: []string{"a", "b", "c", "d", "e"}}
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Uniform(-2, 2)
		}
		y := make([]float64, no)
		y[0] = x[0]*1.5 - x[2] + rng.Normal(0, 0.1)
		y[1] = math.Abs(x[1]) + x[3]*x[3]
		y[2] = x[4] + rng.Normal(0, 0.05)
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// fitKind trains one model of the given kind on d.
func fitKind(t *testing.T, kind Kind, d *ml.Dataset, seed uint64) ml.Regressor {
	t.Helper()
	var reg ml.Regressor
	switch kind {
	case KindForest:
		reg = forest.New(forest.Config{NumTrees: 12, Seed: seed})
	case KindXGB:
		reg = xgb.New(xgb.Config{NumRounds: 15, MaxDepth: 3, Seed: seed})
	case KindKNN:
		reg = knn.New(5)
	default:
		t.Fatalf("fitKind: %v", kind)
	}
	if err := reg.Fit(d); err != nil {
		t.Fatalf("fit %v: %v", kind, err)
	}
	return reg
}

var allKinds = []Kind{KindForest, KindXGB, KindKNN}

// TestLoadedPredictsBitIdentical is the core persistence contract: for
// every storable family and several seeds, an encode/decode round trip
// yields a model whose predictions match the fitted original bit for
// bit.
func TestLoadedPredictsBitIdentical(t *testing.T) {
	for _, kind := range allKinds {
		for _, seed := range []uint64{1, 2, 3} {
			d := testDataset(seed)
			reg := fitKind(t, kind, d, seed)
			data, err := Encode(reg, FingerprintDataset(d))
			if err != nil {
				t.Fatalf("%v seed %d: encode: %v", kind, seed, err)
			}
			loaded, h, err := Decode(data)
			if err != nil {
				t.Fatalf("%v seed %d: decode: %v", kind, seed, err)
			}
			if h.Kind != kind || h.Version != FormatVersion || h.Fingerprint != FingerprintDataset(d) {
				t.Fatalf("%v seed %d: header %+v", kind, seed, h)
			}
			probe := randx.New(seed ^ 0xBEEF)
			for q := 0; q < 20; q++ {
				x := make([]float64, len(d.X[0]))
				for j := range x {
					x[j] = probe.Uniform(-2.5, 2.5)
				}
				want := reg.Predict(x)
				got := loaded.Predict(x)
				if len(got) != len(want) {
					t.Fatalf("%v seed %d: output arity %d vs %d", kind, seed, len(got), len(want))
				}
				for j := range want {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("%v seed %d probe %d out %d: loaded %v != fitted %v",
							kind, seed, q, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// reseal recomputes the CRC trailer after a deliberate header mutation,
// so tests can reach the checks behind the checksum.
func reseal(data []byte) []byte {
	body := data[:len(data)-trailerSize]
	out := append([]byte(nil), body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
}

func encodeOne(t *testing.T) []byte {
	t.Helper()
	d := testDataset(7)
	data, err := Encode(fitKind(t, KindKNN, d, 7), FingerprintDataset(d))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeRejectsDamage(t *testing.T) {
	data := encodeOne(t)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"mid payload cut", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"missing trailer", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, ErrBadMagic},
		{"payload bit flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerSize+3] ^= 0x40
			return c
		}, ErrCorrupt},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xAA) }, ErrCorrupt},
		{"version skew", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint16(c[4:6], FormatVersion+1)
			return reseal(c)
		}, ErrVersionSkew},
		{"unknown kind", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[6] = 0xEE
			return reseal(c)
		}, ErrUnknownKind},
		{"garbage payload with valid checksum", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := headerSize; i < len(c)-trailerSize; i++ {
				c[i] = byte(i * 31)
			}
			return reseal(c)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(tc.mutate(data))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want errors.Is(%v)", err, tc.wantErr)
			}
		})
	}
}

type fakeRegressor struct{}

func (fakeRegressor) Fit(*ml.Dataset) error         { return nil }
func (fakeRegressor) Predict(x []float64) []float64 { return nil }
func (fakeRegressor) Name() string                  { return "fake" }

func TestEncodeRejectsUnsupportedAndUnfitted(t *testing.T) {
	if _, err := Encode(fakeRegressor{}, 1); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("unsupported: got %v", err)
	}
	if _, err := Encode(knn.New(5), 1); err == nil {
		t.Fatal("encoding an unfitted model should fail")
	}
}

func TestFingerprintDataset(t *testing.T) {
	a, b := testDataset(1), testDataset(1)
	if FingerprintDataset(a) != FingerprintDataset(b) {
		t.Fatal("identical datasets must share a fingerprint")
	}
	b.Y[3][1] = math.Nextafter(b.Y[3][1], math.Inf(1))
	if FingerprintDataset(a) == FingerprintDataset(b) {
		t.Fatal("a one-ULP change must change the fingerprint")
	}
	c := testDataset(1)
	c.FeatureNames = append([]string(nil), c.FeatureNames...)
	c.FeatureNames[0] = "renamed"
	if FingerprintDataset(a) == FingerprintDataset(c) {
		t.Fatal("feature renames must change the fingerprint")
	}
}

func TestKeySpecKey(t *testing.T) {
	base := KeySpec{UseCase: 1, System: "intel", Holdout: "npb/bt", Model: "rf{trees=100,seed=1}", DatasetFP: 42}
	if k := base.Key(); len(k) != 64 || strings.ToLower(k) != k {
		t.Fatalf("key %q is not lower-hex sha256", k)
	}
	variants := []KeySpec{
		{UseCase: 2, System: "intel", Holdout: "npb/bt", Model: base.Model, DatasetFP: 42},
		{UseCase: 1, System: "amd", Holdout: "npb/bt", Model: base.Model, DatasetFP: 42},
		{UseCase: 1, System: "intel", Holdout: "", Model: base.Model, DatasetFP: 42},
		{UseCase: 1, System: "intel", Holdout: "npb/bt", Model: "rf{trees=200,seed=1}", DatasetFP: 42},
		{UseCase: 1, System: "intel", Holdout: "npb/bt", Model: base.Model, DatasetFP: 43},
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("variant %d collides: %+v", i, v)
		}
		seen[v.Key()] = true
	}
	if base.Key() != (KeySpec{UseCase: 1, System: "intel", Holdout: "npb/bt", Model: base.Model, DatasetFP: 42}).Key() {
		t.Fatal("key derivation must be deterministic")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := testDataset(3)
	fp := FingerprintDataset(d)
	reg := fitKind(t, KindForest, d, 3)
	key := KeySpec{UseCase: 1, System: "intel", Model: "rf", DatasetFP: fp}.Key()

	if _, err := st.Load(key, fp); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load before save: %v", err)
	}
	if err := st.Save(key, reg, fp); err != nil {
		t.Fatal(err)
	}
	loaded, err := st.Load(key, fp)
	if err != nil {
		t.Fatal(err)
	}
	x := d.X[0]
	if got, want := loaded.Predict(x), reg.Predict(x); math.Float64bits(got[0]) != math.Float64bits(want[0]) {
		t.Fatalf("loaded prediction %v != %v", got, want)
	}
	if _, err := st.Load(key, fp+1); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("keys = %v", keys)
	}
	// The atomic writer must not leave temp files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".pvm-tmp-") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
	if err := st.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(key, fp); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load after delete: %v", err)
	}
	if err := st.Delete(key); err != nil {
		t.Fatalf("double delete should be a no-op: %v", err)
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../../etc/passwd", "ABCDEF", "has space", "x/y"} {
		if _, err := st.Load(key, 0); err == nil {
			t.Fatalf("key %q should be rejected", key)
		}
	}
}

func TestStoreLoadRejectsCorruptFile(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(st.Dir(), key+fileExt), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(key, 0); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
		t.Fatalf("corrupt file: %v", err)
	}
}

// referencePredictor is the pointer-walking fallback every storable
// family keeps alongside its flattened serving kernel.
type referencePredictor interface {
	PredictReference(x []float64) []float64
}

// TestLoadedFlatMatchesPointerReference pins the warm-load contract for
// the flattened kernels: a model decoded from the store serves with its
// struct-of-arrays kernel, and that kernel must agree bit for bit with
// the original pointer-based reference walker — per family, per seed.
func TestLoadedFlatMatchesPointerReference(t *testing.T) {
	for _, kind := range allKinds {
		for _, seed := range []uint64{1, 2, 3} {
			d := testDataset(seed)
			reg := fitKind(t, kind, d, seed)
			data, err := Encode(reg, FingerprintDataset(d))
			if err != nil {
				t.Fatalf("%v seed %d: encode: %v", kind, seed, err)
			}
			loaded, _, err := Decode(data)
			if err != nil {
				t.Fatalf("%v seed %d: decode: %v", kind, seed, err)
			}
			ref, ok := reg.(referencePredictor)
			if !ok {
				t.Fatalf("%v: fitted model has no reference kernel", kind)
			}
			probe := randx.New(seed ^ 0xF1A7)
			for q := 0; q < 25; q++ {
				x := make([]float64, len(d.X[0]))
				for j := range x {
					x[j] = probe.Uniform(-2.5, 2.5)
				}
				want := ref.PredictReference(x)
				got := loaded.Predict(x)
				for j := range want {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("%v seed %d probe %d out %d: warm flat %v != pointer reference %v",
							kind, seed, q, j, got[j], want[j])
					}
				}
			}
		}
	}
}
