package modelstore

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ml"
)

// Source reports where GetOrFit found a model.
type Source int

// Cheapest first: already resident, loaded from disk, freshly fitted.
const (
	SourceMemory Source = iota
	SourceDisk
	SourceFit
)

// String names the source for spans and logs.
func (s Source) String() string {
	switch s {
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourceFit:
		return "fit"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// DefaultMaxResident bounds in-memory residency when NewRegistry is
// given no limit.
const DefaultMaxResident = 256

// Registry fronts a Store with bounded in-memory residency. GetOrFit
// resolves a key through three tiers — resident model, disk file, fresh
// fit (persisted back) — with per-key singleflight so concurrent
// requests for the same model share one resolution. Refresh atomically
// swaps a resident entry for a refit without ever leaving the key
// empty. All methods are safe for concurrent use.
type Registry struct {
	store *Store
	max   int

	mu       sync.Mutex
	resident map[string]*list.Element
	lru      *list.List // of *entry; front = most recently used
	flights  map[string]*flight

	hits, diskHits, misses            atomic.Uint64
	evictions, refreshes              atomic.Uint64
	loadErrors, saveErrors, fitErrors atomic.Uint64
}

// entry is one resident model.
type entry struct {
	key string
	reg ml.Regressor
}

// flight is one in-progress load-or-fit that late arrivals wait on.
type flight struct {
	done chan struct{}
	reg  ml.Regressor
	src  Source
	err  error
}

// NewRegistry wraps a store; maxResident <= 0 selects
// DefaultMaxResident.
func NewRegistry(store *Store, maxResident int) *Registry {
	if maxResident <= 0 {
		maxResident = DefaultMaxResident
	}
	return &Registry{
		store:    store,
		max:      maxResident,
		resident: map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
	}
}

// Store exposes the backing store.
func (r *Registry) Store() *Store { return r.store }

// GetOrFit returns the model for key: the resident copy, else the disk
// copy (fingerprint-checked against fp), else the result of fit —
// persisted back so the next process starts warm. A failed fit resolves
// every waiting caller with the same error and leaves the key absent,
// so a later request retries.
func (r *Registry) GetOrFit(key string, fp uint64, fit func() (ml.Regressor, error)) (ml.Regressor, Source, error) {
	reg, fl, leader := r.acquire(key)
	if reg != nil {
		r.hits.Add(1)
		return reg, SourceMemory, nil
	}
	if !leader {
		<-fl.done
		return fl.reg, fl.src, fl.err
	}
	fl.reg, fl.src, fl.err = r.loadOrFit(key, fp, fit)
	r.settle(key, fl)
	return fl.reg, fl.src, fl.err
}

// acquire resolves the fast paths under one lock hold: a resident model
// (reg non-nil), an in-progress flight to wait on (leader false), or
// leadership of a new flight (leader true).
func (r *Registry) acquire(key string) (reg ml.Regressor, fl *flight, leader bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.resident[key]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*entry).reg, nil, false
	}
	if fl, ok := r.flights[key]; ok {
		return nil, fl, false
	}
	fl = &flight{done: make(chan struct{})}
	r.flights[key] = fl
	return nil, fl, true
}

// settle publishes a finished flight — resident on success, absent on
// failure so a later request retries — and wakes its waiters.
func (r *Registry) settle(key string, fl *flight) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.flights, key)
	if fl.err == nil {
		r.insertLocked(key, fl.reg)
	}
	close(fl.done)
}

// loadOrFit is the slow path: disk, then fit + persist.
func (r *Registry) loadOrFit(key string, fp uint64, fit func() (ml.Regressor, error)) (ml.Regressor, Source, error) {
	reg, err := r.store.Load(key, fp)
	if err == nil {
		r.diskHits.Add(1)
		return reg, SourceDisk, nil
	}
	if !errors.Is(err, ErrNotFound) {
		// Corrupt, truncated, skewed, or mismatched file: count it and
		// fall through to a refit that overwrites it.
		r.loadErrors.Add(1)
	}
	reg, err = fit()
	if err != nil {
		r.fitErrors.Add(1)
		return nil, SourceFit, err
	}
	r.misses.Add(1)
	if err := r.store.Save(key, reg, fp); err != nil {
		// Persistence is an optimization; serving the fitted model
		// matters more than the disk write.
		r.saveErrors.Add(1)
	}
	return reg, SourceFit, nil
}

// insertLocked makes key resident (most recently used), evicting from
// the LRU tail past the residency bound. Callers hold r.mu.
func (r *Registry) insertLocked(key string, reg ml.Regressor) {
	if el, ok := r.resident[key]; ok {
		el.Value.(*entry).reg = reg
		r.lru.MoveToFront(el)
		return
	}
	r.resident[key] = r.lru.PushFront(&entry{key: key, reg: reg})
	for r.lru.Len() > r.max {
		back := r.lru.Back()
		r.lru.Remove(back)
		delete(r.resident, back.Value.(*entry).key)
		r.evictions.Add(1)
	}
}

// Refresh refits key via fit, persists the result, and atomically swaps
// it into residency: readers see the old model until the single map
// update publishes the new one, never an empty slot. Unlike GetOrFit it
// always fits — it is the background-refresh entry point, so the caller
// decides when (and whether, e.g. consulting its breakers) a refit is
// due.
func (r *Registry) Refresh(key string, fp uint64, fit func() (ml.Regressor, error)) error {
	reg, err := fit()
	if err != nil {
		r.fitErrors.Add(1)
		return fmt.Errorf("modelstore: refresh %s: %w", key, err)
	}
	if err := r.store.Save(key, reg, fp); err != nil {
		r.saveErrors.Add(1)
		return err
	}
	r.mu.Lock()
	r.insertLocked(key, reg)
	r.mu.Unlock()
	r.refreshes.Add(1)
	return nil
}

// Invalidate drops the resident copy of key (the disk file stays; the
// next GetOrFit reloads it).
func (r *Registry) Invalidate(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.resident[key]; ok {
		r.lru.Remove(el)
		delete(r.resident, key)
	}
}

// ResidentKeys returns the resident content addresses, most recently
// used first — the observable LRU order (deterministic given the
// operation order, which the eviction tests rely on).
func (r *Registry) ResidentKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Stats is a snapshot of the registry counters.
type Stats struct {
	// Hits served from memory; DiskHits loaded from the store; Misses
	// resolved by fitting.
	Hits, DiskHits, Misses uint64
	// Evictions counts models dropped past the residency bound;
	// Refreshes successful atomic swaps.
	Evictions, Refreshes uint64
	// LoadErrors counts rejected files (corrupt, skewed, mismatched);
	// SaveErrors failed persists; FitErrors failed fits.
	LoadErrors, SaveErrors, FitErrors uint64
	// Resident and MaxResident describe current memory residency.
	Resident, MaxResident int
}

// Stats returns a snapshot of the counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	resident := r.lru.Len()
	r.mu.Unlock()
	return Stats{
		Hits:        r.hits.Load(),
		DiskHits:    r.diskHits.Load(),
		Misses:      r.misses.Load(),
		Evictions:   r.evictions.Load(),
		Refreshes:   r.refreshes.Load(),
		LoadErrors:  r.loadErrors.Load(),
		SaveErrors:  r.saveErrors.Load(),
		FitErrors:   r.fitErrors.Load(),
		Resident:    resident,
		MaxResident: r.max,
	}
}
