package modelstore

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/knn"
)

// fitCounter returns a fit func that trains a kNN model and counts
// invocations.
func fitCounter(t *testing.T, d *ml.Dataset, calls *atomic.Int64) func() (ml.Regressor, error) {
	t.Helper()
	return func() (ml.Regressor, error) {
		calls.Add(1)
		reg := knn.New(5)
		if err := reg.Fit(d); err != nil {
			return nil, err
		}
		return reg, nil
	}
}

func newTestRegistry(t *testing.T, max int) *Registry {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistry(st, max)
}

func TestRegistryTiers(t *testing.T) {
	r := newTestRegistry(t, 4)
	d := testDataset(1)
	fp := FingerprintDataset(d)
	key := KeySpec{UseCase: 1, System: "intel", Model: "knn", DatasetFP: fp}.Key()
	var calls atomic.Int64
	fit := fitCounter(t, d, &calls)

	_, src, err := r.GetOrFit(key, fp, fit)
	if err != nil || src != SourceFit {
		t.Fatalf("first resolve: src=%v err=%v", src, err)
	}
	_, src, err = r.GetOrFit(key, fp, fit)
	if err != nil || src != SourceMemory {
		t.Fatalf("second resolve: src=%v err=%v", src, err)
	}
	r.Invalidate(key)
	_, src, err = r.GetOrFit(key, fp, fit)
	if err != nil || src != SourceDisk {
		t.Fatalf("post-invalidate resolve: src=%v err=%v", src, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fit ran %d times, want 1", got)
	}
	s := r.Stats()
	if s.Hits != 1 || s.DiskHits != 1 || s.Misses != 1 || s.Resident != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestRegistrySingleflight launches many concurrent requests for one
// key and requires exactly one fit, with every caller getting the same
// model object.
func TestRegistrySingleflight(t *testing.T) {
	r := newTestRegistry(t, 4)
	d := testDataset(2)
	fp := FingerprintDataset(d)
	key := KeySpec{UseCase: 1, System: "intel", Model: "knn-sf", DatasetFP: fp}.Key()

	var calls atomic.Int64
	gate := make(chan struct{})
	fit := func() (ml.Regressor, error) {
		calls.Add(1)
		<-gate // hold the flight open until every waiter has queued
		reg := knn.New(5)
		if err := reg.Fit(d); err != nil {
			return nil, err
		}
		return reg, nil
	}

	const waiters = 16
	regs := make([]ml.Regressor, waiters)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			reg, _, err := r.GetOrFit(key, fp, fit)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			regs[i] = reg
		}(i)
	}
	started.Wait()
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fit ran %d times under concurrency, want 1", got)
	}
	for i := 1; i < waiters; i++ {
		if regs[i] != regs[0] {
			t.Fatalf("waiter %d got a different model object", i)
		}
	}
}

func TestRegistryFitErrorRetries(t *testing.T) {
	r := newTestRegistry(t, 4)
	d := testDataset(3)
	fp := FingerprintDataset(d)
	key := KeySpec{UseCase: 1, System: "intel", Model: "knn-err", DatasetFP: fp}.Key()
	boom := errors.New("boom")
	if _, _, err := r.GetOrFit(key, fp, func() (ml.Regressor, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("failed fit: %v", err)
	}
	if s := r.Stats(); s.FitErrors != 1 || s.Resident != 0 {
		t.Fatalf("stats after failure %+v", s)
	}
	var calls atomic.Int64
	if _, src, err := r.GetOrFit(key, fp, fitCounter(t, d, &calls)); err != nil || src != SourceFit {
		t.Fatalf("retry: src=%v err=%v", src, err)
	}
}

// TestRegistryLRUDeterministic replays a fixed access pattern and
// checks the exact residency order and eviction count.
func TestRegistryLRUDeterministic(t *testing.T) {
	r := newTestRegistry(t, 3)
	d := testDataset(4)
	fp := FingerprintDataset(d)
	var calls atomic.Int64
	fit := fitCounter(t, d, &calls)

	key := func(i int) string {
		return KeySpec{UseCase: 1, System: fmt.Sprintf("sys%d", i), Model: "knn", DatasetFP: fp}.Key()
	}
	mustGet := func(i int, want Source) {
		t.Helper()
		_, src, err := r.GetOrFit(key(i), fp, fit)
		if err != nil || src != want {
			t.Fatalf("get %d: src=%v err=%v (want %v)", i, src, err, want)
		}
	}

	mustGet(0, SourceFit)
	mustGet(1, SourceFit)
	mustGet(2, SourceFit) // residency (MRU first): 2 1 0
	mustGet(0, SourceMemory)
	// Key 3 must evict key 1, the least recently used.
	mustGet(3, SourceFit)
	want := []string{key(3), key(0), key(2)}
	if got := r.ResidentKeys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resident order\n got %v\nwant %v", got, want)
	}
	// Key 1 was evicted but persisted: it comes back from disk and
	// evicts key 2.
	mustGet(1, SourceDisk)
	want = []string{key(1), key(3), key(0)}
	if got := r.ResidentKeys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resident order after reload\n got %v\nwant %v", got, want)
	}
	if s := r.Stats(); s.Evictions != 2 || s.Resident != 3 || s.MaxResident != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRegistryCorruptFileFallsThroughToFit(t *testing.T) {
	r := newTestRegistry(t, 4)
	d := testDataset(5)
	fp := FingerprintDataset(d)
	key := KeySpec{UseCase: 1, System: "intel", Model: "knn-corrupt", DatasetFP: fp}.Key()
	// Plant a damaged file under the key.
	path := filepath.Join(r.Store().Dir(), key+fileExt)
	if err := os.WriteFile(path, []byte("PVMSgarbage-that-is-long-enough-to-parse"), 0o644); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	_, src, err := r.GetOrFit(key, fp, fitCounter(t, d, &calls))
	if err != nil || src != SourceFit {
		t.Fatalf("corrupt file resolve: src=%v err=%v", src, err)
	}
	if s := r.Stats(); s.LoadErrors != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The refit overwrote the damage: a cold registry now disk-hits.
	r2 := NewRegistry(r.Store(), 4)
	if _, src, err := r2.GetOrFit(key, fp, fitCounter(t, d, &calls)); err != nil || src != SourceDisk {
		t.Fatalf("reload after overwrite: src=%v err=%v", src, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fit ran %d times, want 1", got)
	}
}

func TestRegistryRefreshSwapsAtomically(t *testing.T) {
	r := newTestRegistry(t, 4)
	d := testDataset(6)
	fp := FingerprintDataset(d)
	key := KeySpec{UseCase: 1, System: "intel", Model: "knn-refresh", DatasetFP: fp}.Key()
	var calls atomic.Int64
	fit := fitCounter(t, d, &calls)
	first, _, err := r.GetOrFit(key, fp, fit)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(key, fp, fit); err != nil {
		t.Fatal(err)
	}
	second, src, err := r.GetOrFit(key, fp, fit)
	if err != nil || src != SourceMemory {
		t.Fatalf("post-refresh: src=%v err=%v", src, err)
	}
	if second == first {
		t.Fatal("refresh must swap in the refit model")
	}
	// Same data, same hyperparameters: the swap is invisible in the
	// predictions.
	x := d.X[0]
	if got, want := second.Predict(x), first.Predict(x); math.Float64bits(got[0]) != math.Float64bits(want[0]) {
		t.Fatalf("refresh changed predictions: %v vs %v", got, want)
	}
	if s := r.Stats(); s.Refreshes != 1 || s.Resident != 1 {
		t.Fatalf("stats %+v", s)
	}
	boom := errors.New("boom")
	if err := r.Refresh(key, fp, func() (ml.Regressor, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("failed refresh: %v", err)
	}
	// A failed refresh leaves the old model serving.
	if reg, src, err := r.GetOrFit(key, fp, fit); err != nil || src != SourceMemory || reg != second {
		t.Fatalf("after failed refresh: src=%v err=%v same=%v", src, err, reg == second)
	}
}
