package modelstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/ml"
)

// fileExt suffixes every model file ("performance-variability model").
const fileExt = ".pvm"

// Store is a directory of content-addressed model files. Writes are
// atomic (temp file + rename in the same directory), so concurrent
// processes sharing a store directory — the fleet scale-out case —
// never observe partial files; at worst they race to write identical
// bytes under the same content address.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("modelstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: open: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// path validates the key (content addresses are lower-hex, which also
// rules out path traversal) and returns the file path.
func (s *Store) path(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("modelstore: empty key")
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("modelstore: malformed key %q", key)
		}
	}
	return filepath.Join(s.dir, key+fileExt), nil
}

// Save encodes the model and writes it atomically under key.
func (s *Store) Save(key string, reg ml.Regressor, fingerprint uint64) error {
	path, err := s.path(key)
	if err != nil {
		return err
	}
	data, err := Encode(reg, fingerprint)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("modelstore: save %s: %w", key, err)
	}
	return nil
}

// Load reads and decodes the model under key. A missing file returns
// ErrNotFound; a damaged or incompatible one returns the format's typed
// error; a fingerprint disagreeing with want (when want is nonzero)
// returns ErrFingerprint. All of them mean "refit".
func (s *Store) Load(key string, want uint64) (ml.Regressor, error) {
	path, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("modelstore: load %s: %w", key, err)
	}
	reg, h, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", key, err)
	}
	if want != 0 && h.Fingerprint != want {
		return nil, fmt.Errorf("%w: file trained on %016x, data is %016x", ErrFingerprint, h.Fingerprint, want)
	}
	return reg, nil
}

// Delete removes the file under key (no error when absent).
func (s *Store) Delete(key string) error {
	path, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("modelstore: delete %s: %w", key, err)
	}
	return nil
}

// Keys lists the stored content addresses, sorted.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("modelstore: list: %w", err)
	}
	var keys []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, fileExt) && !e.IsDir() {
			keys = append(keys, strings.TrimSuffix(name, fileExt))
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// writeFileAtomic writes data via a temp file in the destination's
// directory followed by a rename, so a reader never observes a partial
// file and a crash leaves either the old version or the new one. This
// helper is the repo's one sanctioned call site for os.Rename/os.Remove
// (the pathpolicy analyzer flags them anywhere outside this package).
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".pvm-tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}
