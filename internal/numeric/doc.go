// Package numeric provides the small dense linear-algebra, quadrature,
// root-finding, and interpolation kernels that the statistical and
// maximum-entropy machinery of this repository is built on.
//
// The package is deliberately minimal: everything operates on float64
// slices, nothing allocates behind the caller's back unless documented,
// and all algorithms are deterministic. It replaces the NumPy/SciPy
// numerical substrate used by the paper's original Python workflow.
package numeric
