package numeric

import (
	"fmt"
	"sort"
)

// LinearInterp evaluates the piecewise-linear interpolant through
// (xs, ys) at x, clamping outside the domain. xs must be sorted ascending
// and strictly increasing where it matters; equal consecutive xs are
// tolerated (the left value wins).
func LinearInterp(xs, ys []float64, x float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("numeric: LinearInterp length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return y0
	}
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// InverseMonotone inverts a monotone non-decreasing tabulated function:
// given (xs, ys) with ys non-decreasing, it returns x such that
// f(x) ≈ target. Used for inverse-CDF sampling from tabulated CDFs.
func InverseMonotone(xs, ys []float64, target float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("numeric: InverseMonotone length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	if target <= ys[0] {
		return xs[0]
	}
	if target >= ys[n-1] {
		return xs[n-1]
	}
	i := sort.Search(n, func(k int) bool { return ys[k] >= target })
	// ys[i-1] < target <= ys[i]
	y0, y1 := ys[i-1], ys[i]
	x0, x1 := xs[i-1], xs[i]
	if y1 == y0 {
		return x0
	}
	t := (target - y0) / (y1 - y0)
	return x0 + t*(x1-x0)
}

// Linspace returns n evenly spaced points from a to b inclusive.
// n must be at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("numeric: Linspace needs n >= 2, got %d", n))
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b // avoid accumulation error at the endpoint
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
