package numeric

import "math"

// Sum returns the Neumaier-compensated sum of xs.
//
// A bare `for … { s += v }` loop loses low-order bits whenever the
// running sum dwarfs the next addend; over the long accumulations this
// project runs (feature moments across thousands of runs, ensemble
// aggregation, histogram mass) the drift becomes visible in the final
// digits and breaks cross-machine reproducibility of summaries.
// Neumaier's variant of Kahan summation tracks the lost low-order bits
// in a compensation term — including the case where the addend exceeds
// the running sum — at the cost of a few flops per element. floatcheck
// flags the bare loops; this is the sanctioned replacement.
func Sum(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum()
}

// Mean returns Sum(xs)/len(xs), and 0 for an empty slice (no NaN
// leakage from degenerate input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Accumulator is a streaming Neumaier-compensated summator for call
// sites that cannot materialize a slice (online statistics, fused
// loops). The zero value is an empty sum.
type Accumulator struct {
	sum  float64
	comp float64 // running compensation of lost low-order bits
}

// Add folds x into the sum.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.comp += (a.sum - t) + x
	} else {
		a.comp += (x - t) + a.sum
	}
	a.sum = t
}

// Sum returns the compensated total so far.
func (a *Accumulator) Sum() float64 { return a.sum + a.comp }
