package numeric

import (
	"math"
	"testing"
)

// TestSumCompensation is the case naive summation gets wrong: the unit
// addend vanishes into 1e16, so a bare loop returns 0 or 2 depending on
// order. Neumaier compensation recovers the exact answer either way.
func TestSumCompensation(t *testing.T) {
	cases := [][]float64{
		{1e16, 1, -1e16},
		{1, 1e16, -1e16},
		{-1e16, 1e16, 1},
	}
	for _, xs := range cases {
		if got := Sum(xs); got != 1 {
			t.Errorf("Sum(%v) = %v, want exactly 1", xs, got)
		}
	}
}

func TestSumAgainstExact(t *testing.T) {
	// n copies of 0.1: the exact decimal answer is n/10, which float64
	// naive accumulation drifts away from while the compensated sum
	// stays within one ulp.
	const n = 1_000_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.1
	}
	got := Sum(xs)
	want := float64(n) / 10
	if math.Abs(got-want) > want*1e-15 {
		t.Fatalf("Sum of %d x 0.1 = %.17g, want %.17g", n, got, want)
	}
}

func TestSumEmptyAndSingle(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if got := Sum([]float64{math.Pi}); got != math.Pi {
		t.Errorf("Sum([pi]) = %v", got)
	}
}

func TestAccumulatorMatchesSum(t *testing.T) {
	xs := []float64{1e-9, 3.5, -2, 1e12, 0.25, -1e12, 7}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if got, want := a.Sum(), Sum(xs); got != want {
		t.Fatalf("Accumulator = %v, Sum = %v", got, want)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}
