package numeric

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty matrix; use NewMatrix to allocate storage.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a Rows×Cols matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("numeric: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("numeric: ragged rows: row 0 has %d columns, row %d has %d", cols, i, len(r))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MulVec computes y = M·x, allocating the result.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("numeric: MulVec dimension mismatch: %d columns vs vector length %d", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// ErrSingular is returned when a linear solve encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("numeric: singular matrix")

// SolveLinear solves A·x = b in place using LU decomposition with partial
// pivoting. A and b are destroyed; the solution is returned in a new slice.
// It returns ErrSingular when a pivot underflows relative tolerance.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("numeric: SolveLinear requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: SolveLinear dimension mismatch: matrix %dx%d, rhs length %d", n, n, len(b))
	}
	// Scaled partial pivoting for robustness on badly conditioned
	// moment (Hankel) systems produced by the max-entropy solver.
	scale := make([]float64, n)
	for i := 0; i < n; i++ {
		mx := 0.0
		for j := 0; j < n; j++ {
			if v := math.Abs(a.At(i, j)); v > mx {
				mx = v
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		scale[i] = 1 / mx
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Select pivot row.
		p, best := k, -1.0
		for i := k; i < n; i++ {
			v := math.Abs(a.At(perm[i], k)) * scale[perm[i]]
			if v > best {
				best, p = v, i
			}
		}
		if best <= 1e-300 {
			return nil, ErrSingular
		}
		perm[k], perm[p] = perm[p], perm[k]
		pk := perm[k]
		piv := a.At(pk, k)
		for i := k + 1; i < n; i++ {
			pi := perm[i]
			f := a.At(pi, k) / piv
			a.Set(pi, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a.Set(pi, j, a.At(pi, j)-f*a.At(pk, j))
			}
		}
	}
	// Forward substitution on permuted rows.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[perm[i]]
		for j := 0; j < i; j++ {
			s -= a.At(perm[i], j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(perm[i], j) * x[j]
		}
		piv := a.At(perm[i], i)
		if math.Abs(piv) <= 1e-300 {
			return nil, ErrSingular
		}
		x[i] = s / piv
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("numeric: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	//lint:allow floatcheck s is a sum of squares, so it is always >= 0
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x (0 for an empty slice).
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// AXPY computes y += alpha*x element-wise in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("numeric: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}
