package numeric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 7.5)
	m.Set(0, 0, -1)
	if got := m.At(2, 3); got != 7.5 {
		t.Errorf("At(2,3) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != -1 {
		t.Errorf("At(0,0) = %v, want -1", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0", got)
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Errorf("wrong contents: %v", m.Data)
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestMatrixFromRowsEmpty(t *testing.T) {
	m, err := MatrixFromRows(nil)
	if err != nil {
		t.Fatalf("MatrixFromRows(nil): %v", err)
	}
	if m.Rows != 0 {
		t.Errorf("Rows = %d, want 0", m.Rows)
	}
}

func TestMatrixClone(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", y)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1
	a, _ := MatrixFromRows([][]float64{{2, 1}, {1, -1}})
	x, err := SolveLinear(a, []float64{5, 1})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Errorf("solution = %v, want [2 1]", x)
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	n := 6
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		b[i] = float64(i + 1)
	}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	for i := range x {
		if !almostEqual(x[i], float64(i+1), 1e-14) {
			t.Errorf("x[%d] = %v, want %d", i, x[i], i+1)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestSolveLinearZeroRow(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{0, 0}, {1, 1}})
	if _, err := SolveLinear(a, []float64{0, 1}); err == nil {
		t.Fatal("expected error for zero row")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero pivot in the (0,0) position forces a row swap.
	a, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{3, 4})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !almostEqual(x[0], 4, 1e-14) || !almostEqual(x[1], 3, 1e-14) {
		t.Errorf("solution = %v, want [4 3]", x)
	}
}

// Property: for random well-conditioned systems, A·x reproduces b.
func TestSolveLinearRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		orig := a.Clone()
		borig := append([]float64(nil), b...)
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: SolveLinear: %v", trial, err)
		}
		back := orig.MulVec(x)
		for i := range back {
			if !almostEqual(back[i], borig[i], 1e-9) {
				t.Fatalf("trial %d: residual too large: A·x=%v, b=%v", trial, back, borig)
			}
		}
	}
}

func TestDotNorms(t *testing.T) {
	x := []float64{3, 4}
	if got := Dot(x, x); got != 25 {
		t.Errorf("Dot = %v, want 25", got)
	}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-7, 2, 6.5}); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil) = %v, want 0", got)
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 2, 3}
	AXPY(2, []float64{1, 1, 1}, y)
	if y[0] != 3 || y[1] != 4 || y[2] != 5 {
		t.Errorf("AXPY result = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[2] != 2.5 {
		t.Errorf("Scale result = %v", y)
	}
}

func TestDotCommutative(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := a[:], b[:]
		// Bound magnitudes so products cannot overflow; exact
		// commutativity only holds when every term is finite.
		for i := range x {
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
		}
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
