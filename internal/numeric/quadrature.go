package numeric

import (
	"fmt"
	"math"
)

// GaussLegendre returns the nodes and weights of the n-point
// Gauss–Legendre quadrature rule on [a, b].
//
// Nodes are computed by Newton iteration on the Legendre polynomial using
// the Chebyshev-point initial guess; this is accurate to machine precision
// for the rule sizes used in this repository (n ≤ a few hundred).
func GaussLegendre(n int, a, b float64) (nodes, weights []float64) {
	if n < 1 {
		panic(fmt.Sprintf("numeric: GaussLegendre needs n >= 1, got %d", n))
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	m := (n + 1) / 2
	xm := 0.5 * (b + a)
	xl := 0.5 * (b - a)
	for i := 0; i < m; i++ {
		// Initial guess: Chebyshev points.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / float64(j+1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) < 1e-15 {
				break
			}
		}
		nodes[i] = xm - xl*z
		nodes[n-1-i] = xm + xl*z
		w := 2 * xl / ((1 - z*z) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}

// Integrate applies a quadrature rule (nodes, weights) to f.
func Integrate(f func(float64) float64, nodes, weights []float64) float64 {
	var s float64
	for i, x := range nodes {
		s += weights[i] * f(x)
	}
	return s
}

// Simpson integrates f on [a, b] with n subintervals (n is rounded up to
// the next even number). It is used as an independent cross-check of the
// Gauss–Legendre rules in tests and for cheap CDF tabulation.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// Trapezoid integrates tabulated values ys sampled at xs using the
// trapezoid rule. xs must be sorted ascending.
func Trapezoid(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("numeric: Trapezoid length mismatch %d vs %d", len(xs), len(ys)))
	}
	var s float64
	for i := 1; i < len(xs); i++ {
		s += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	return s
}

// CumTrapezoid returns the running trapezoid integral of ys over xs,
// starting at 0. The result has the same length as xs.
func CumTrapezoid(xs, ys []float64) []float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("numeric: CumTrapezoid length mismatch %d vs %d", len(xs), len(ys)))
	}
	out := make([]float64, len(xs))
	for i := 1; i < len(xs); i++ {
		out[i] = out[i-1] + 0.5*(ys[i]+ys[i-1])*(xs[i]-xs[i-1])
	}
	return out
}
