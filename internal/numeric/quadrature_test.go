package numeric

import (
	"math"
	"testing"
)

func TestGaussLegendreExactPolynomials(t *testing.T) {
	// An n-point rule integrates polynomials up to degree 2n-1 exactly.
	for _, n := range []int{1, 2, 3, 5, 10, 32} {
		nodes, weights := GaussLegendre(n, -1, 1)
		for deg := 0; deg <= 2*n-1; deg++ {
			got := Integrate(func(x float64) float64 { return math.Pow(x, float64(deg)) }, nodes, weights)
			var want float64
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("n=%d deg=%d: integral = %v, want %v", n, deg, got, want)
			}
		}
	}
}

func TestGaussLegendreWeightsSum(t *testing.T) {
	for _, n := range []int{1, 7, 64, 129} {
		_, weights := GaussLegendre(n, 2, 5)
		var s float64
		for _, w := range weights {
			s += w
		}
		if !almostEqual(s, 3, 1e-12) {
			t.Errorf("n=%d: weight sum = %v, want 3 (interval length)", n, s)
		}
	}
}

func TestGaussLegendreGaussianIntegral(t *testing.T) {
	nodes, weights := GaussLegendre(80, -8, 8)
	got := Integrate(func(x float64) float64 {
		return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
	}, nodes, weights)
	if !almostEqual(got, 1, 1e-10) {
		t.Errorf("standard normal integrates to %v, want 1", got)
	}
}

func TestGaussLegendreNodesSorted(t *testing.T) {
	nodes, _ := GaussLegendre(33, 0, 1)
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatalf("nodes not strictly increasing at %d: %v <= %v", i, nodes[i], nodes[i-1])
		}
	}
	if nodes[0] <= 0 || nodes[len(nodes)-1] >= 1 {
		t.Errorf("nodes outside open interval: first=%v last=%v", nodes[0], nodes[len(nodes)-1])
	}
}

func TestSimpsonMatchesGauss(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) * math.Exp(-x/3) }
	nodes, weights := GaussLegendre(60, 0, 4)
	gl := Integrate(f, nodes, weights)
	sp := Simpson(f, 0, 4, 2000)
	if !almostEqual(gl, sp, 1e-8) {
		t.Errorf("Gauss=%v Simpson=%v disagree", gl, sp)
	}
}

func TestSimpsonOddNRoundsUp(t *testing.T) {
	got := Simpson(func(x float64) float64 { return x }, 0, 1, 3)
	if !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Simpson with odd n = %v, want 0.5", got)
	}
}

func TestTrapezoidLinear(t *testing.T) {
	xs := Linspace(0, 2, 11)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x
	}
	if got := Trapezoid(xs, ys); !almostEqual(got, 6, 1e-12) {
		t.Errorf("Trapezoid = %v, want 6", got)
	}
}

func TestCumTrapezoid(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{1, 1, 1, 1}
	cum := CumTrapezoid(xs, ys)
	want := []float64{0, 1, 2, 4}
	for i := range want {
		if !almostEqual(cum[i], want[i], 1e-12) {
			t.Errorf("cum[%d] = %v, want %v", i, cum[i], want[i])
		}
	}
}
