package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Brent when the supplied interval does not
// bracket a sign change.
var ErrNoBracket = errors.New("numeric: root not bracketed")

// ErrNoConverge is returned when an iterative method exhausts its
// iteration budget without reaching tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Brent finds a root of f in [a, b] using Brent's method. f(a) and f(b)
// must have opposite signs (or one of them must be zero).
func Brent(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < maxIter; i++ {
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*machEps*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			//lint:allow floatcheck Brent's method branches on exact a == c to pick secant vs inverse quadratic; a tolerance here is wrong
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e = d
				//lint:allow floatcheck the 2p < min(3·xm·q − |tol1·q|, |e·q|) acceptance test above already implies q != 0
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
	}
	return b, ErrNoConverge
}

const machEps = 2.220446049250313e-16

// Bisect finds a root of f in [a, b] by bisection; it is slower than Brent
// but immune to pathological interpolation and is used as a fallback.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if (fa > 0) == (fm > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), ErrNoConverge
}
