package numeric

import (
	"math"
	"testing"
)

func TestBrentSimpleRoot(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 100)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBrentRootAtEndpoint(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x - 1 }, 1, 2, 1e-12, 100)
	if err != nil || root != 1 {
		t.Errorf("root = %v err = %v, want exactly 1", root, err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12, 100); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentTranscendental(t *testing.T) {
	// cos(x) = x near 0.739085...
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-13, 200)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if !almostEqual(root, 0.7390851332151607, 1e-10) {
		t.Errorf("root = %v", root)
	}
}

func TestBisectAgreesWithBrent(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 3 }
	rb, err1 := Brent(f, 0, 2, 1e-12, 200)
	rs, err2 := Bisect(f, 0, 2, 1e-12, 200)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if !almostEqual(rb, rs, 1e-9) || !almostEqual(rb, math.Log(3), 1e-9) {
		t.Errorf("Brent=%v Bisect=%v want ln3=%v", rb, rs, math.Log(3))
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1.0 }, 0, 1, 1e-9, 50); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestLinearInterp(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 0}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 7.5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := LinearInterp(xs, ys, c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LinearInterp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLinearInterpDegenerate(t *testing.T) {
	if got := LinearInterp([]float64{1}, []float64{5}, 3); got != 5 {
		t.Errorf("single point interp = %v, want 5", got)
	}
	if got := LinearInterp(nil, nil, 3); got != 0 {
		t.Errorf("empty interp = %v, want 0", got)
	}
}

func TestInverseMonotone(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 0.25, 0.75, 1}
	cases := []struct{ target, want float64 }{
		{0, 0}, {0.25, 1}, {0.5, 1.5}, {1, 3}, {-0.5, 0}, {1.5, 3},
	}
	for _, c := range cases {
		if got := InverseMonotone(xs, ys, c.target); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("InverseMonotone(%v) = %v, want %v", c.target, got, c.want)
		}
	}
}

func TestInverseMonotoneFlatSegment(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 0.5, 0.5}
	got := InverseMonotone(xs, ys, 0.5)
	if got < 1 || got > 2 {
		t.Errorf("flat-segment inverse = %v, want within [1,2]", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-15) {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if xs[4] != 1 {
		t.Error("endpoint must be exact")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
