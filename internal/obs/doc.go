// Package obs is the repository's observability layer: request-scoped
// hierarchical tracing, a metrics registry, and the glue that exports
// both — built entirely on the standard library plus the project's own
// primitives.
//
// # Tracing
//
// A Tracer mints root Spans; obs.Start(ctx, name) attaches children to
// whatever span the context carries. Spans record wall-clock intervals
// through a randx.Clock, so traces replay deterministically under a
// FixedClock/StepClock in tests and stay varlint-clean (no ambient
// time.Now). Completed root spans land in a bounded in-memory ring
// buffer (Tracer.Traces) and, past a configurable threshold, in the
// slow-trace log — the first place to look when a prediction's latency
// spikes.
//
// Instrumentation is nil-safe by design: obs.Start on a context without
// a span returns a nil *Span whose methods are no-ops, so hot paths
// (the parallel pool, ml.PredictBatch) pay only a context lookup when
// tracing is off. The measured overhead on the PredictBatch benchmark
// is recorded in EXPERIMENTS.md.
//
// # Metrics
//
// A Registry owns named Counters, Gauges, and LatencyHists. The
// latency histograms reuse the fixed-bin internal/stats Histogram over
// log10(milliseconds) — the paper's own distribution representation,
// dogfooded on the service's behavior — and report approximate
// p50/p90/p95/p99 quantiles by within-bin interpolation (bins are 5%
// wide in log space, so quantiles carry a few percent of relative
// error; Count, Mean, Min, and Max are exact). Registry methods are
// nil-safe too: a nil *Registry hands out nil instruments whose
// recording methods do nothing, so optional instrumentation needs no
// branching at call sites.
//
// Snapshots are plain JSON-encodable values served by varserve's
// GET /v1/metrics endpoint and publishable through expvar
// (Registry.ExpvarVar). Profiling is the third leg: varserve's -pprof
// flag mounts net/http/pprof on the serving mux.
package obs
