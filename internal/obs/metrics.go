package obs

import (
	"expvar"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// The latency histograms hold fixed bins over log10(milliseconds):
// nine decades from 1µs to ~16.7min at 20 bins per decade. Each bin is
// 5% wide in log space, so interpolated quantiles carry a few percent
// of relative error — plenty for p50/p95/p99 dashboards — while the
// histogram itself stays O(1) per observation and fixed-size forever.
const (
	histLogLo = -3.0
	histLogHi = 6.0
	histBins  = 180
	histMinMS = 1e-3
)

// Counter is a monotonically increasing metric. All methods are no-ops
// on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. All methods are no-ops on a nil
// receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (atomic compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyHist is a fixed-bin latency distribution built on the
// internal/stats histogram machinery. All methods are no-ops on a nil
// receiver.
type LatencyHist struct {
	mu    sync.Mutex
	h     *stats.Histogram
	count int64
	sum   numeric.Accumulator // milliseconds
	min   float64
	max   float64
}

// NewLatencyHist returns an empty latency histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{h: stats.NewHistogram(histLogLo, histLogHi, histBins)}
}

// Observe records one duration.
func (h *LatencyHist) Observe(d time.Duration) {
	h.ObserveMS(float64(d) / float64(time.Millisecond))
}

// ObserveMS records one latency given in milliseconds. Non-positive
// and NaN observations are clamped to the smallest representable bin
// (the histogram measures elapsed time; zero happens under frozen test
// clocks).
func (h *LatencyHist) ObserveMS(ms float64) {
	if h == nil {
		return
	}
	if !(ms >= histMinMS) { // also catches NaN
		ms = histMinMS
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.h.Add(math.Log10(ms))
	h.count++
	h.sum.Add(ms)
	if h.count == 1 || ms < h.min {
		h.min = ms
	}
	if ms > h.max {
		h.max = ms
	}
}

// HistSnapshot is a point-in-time latency summary. Count, Mean, Min,
// and Max are exact; the quantiles are interpolated from the log-space
// bins.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot summarizes the histogram (zero value for nil or empty).
func (h *LatencyHist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count:  h.count,
		MeanMS: h.sum.Sum() / float64(h.count),
		MinMS:  h.min,
		MaxMS:  h.max,
	}
	s.P50MS = h.quantileLocked(0.50)
	s.P90MS = h.quantileLocked(0.90)
	s.P95MS = h.quantileLocked(0.95)
	s.P99MS = h.quantileLocked(0.99)
	return s
}

// quantileLocked interpolates the q-quantile (in ms) from the log-bin
// weights, clamped to the exact observed [min, max]. Caller holds mu.
func (h *LatencyHist) quantileLocked(q float64) float64 {
	target := q * float64(h.count)
	var cum float64
	w := h.h.BinWidth()
	for i, c := range h.h.Counts {
		if c <= 0 {
			continue
		}
		if cum+c >= target {
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			logv := h.h.Lo + (float64(i)+frac)*w
			v := math.Pow(10, logv)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Registry owns a process- or server-scoped set of named metrics.
// Instruments are created on first use and live forever (the set of
// names is small and bounded by the instrumentation sites). A nil
// *Registry hands out nil instruments, so optional instrumentation is
// branch-free at call sites.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*LatencyHist
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*LatencyHist),
	}
}

// Counter returns the named counter, creating it on first use (nil for
// a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil for a
// nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use (nil for a nil registry).
func (r *Registry) Histogram(name string) *LatencyHist {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewLatencyHist()
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is a point-in-time JSON-encodable view of every
// instrument (encoding/json renders map keys sorted, so the output is
// deterministic for a given state).
type RegistrySnapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current state (zero value for a
// nil registry).
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := RegistrySnapshot{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		out.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			out.Histograms[name] = h.Snapshot()
		}
	}
	return out
}

// ExpvarVar adapts the registry to the expvar interface. Publish it
// under a process-unique name at most once:
//
//	expvar.Publish("obs", reg.ExpvarVar())
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}
