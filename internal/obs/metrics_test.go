package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("inflight")
	g.Set(2.5)
	g.Add(0.5)
	if g.Value() != 3 {
		t.Errorf("gauge = %v, want 3", g.Value())
	}
	if r.Gauge("inflight") != g {
		t.Error("same name should return the same gauge")
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	h.ObserveMS(5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments should read as zero")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Histograms != nil {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestLatencyHistExactFields(t *testing.T) {
	h := NewLatencyHist()
	if h.Snapshot() != (HistSnapshot{}) {
		t.Fatal("empty histogram snapshot should be zero")
	}
	for _, ms := range []float64{1, 2, 3, 4, 10} {
		h.ObserveMS(ms)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if s.MinMS != 1 || s.MaxMS != 10 {
		t.Errorf("min/max = %v/%v, want 1/10", s.MinMS, s.MaxMS)
	}
	if math.Abs(s.MeanMS-4) > 1e-12 {
		t.Errorf("mean = %v, want 4", s.MeanMS)
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	// 1000 observations spread uniformly over [1, 1000] ms: quantile q
	// should land near 1000q ms within the 5%-in-log bin resolution.
	h := NewLatencyHist()
	for i := 1; i <= 1000; i++ {
		h.ObserveMS(float64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ got, want float64 }{
		{s.P50MS, 500}, {s.P90MS, 900}, {s.P95MS, 950}, {s.P99MS, 990},
	} {
		if rel := math.Abs(tc.got-tc.want) / tc.want; rel > 0.12 {
			t.Errorf("quantile = %v, want ~%v (rel err %.3f)", tc.got, tc.want, rel)
		}
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P95MS || s.P95MS > s.P99MS {
		t.Error("quantiles must be monotone")
	}
	if s.P99MS > s.MaxMS || s.P50MS < s.MinMS {
		t.Error("quantiles must be clamped to [min, max]")
	}
}

func TestLatencyHistSingleValue(t *testing.T) {
	h := NewLatencyHist()
	h.Observe(25 * time.Millisecond)
	s := h.Snapshot()
	// With one observation every quantile is that observation, exactly,
	// thanks to the [min, max] clamp.
	if s.P50MS != 25 || s.P99MS != 25 || s.MinMS != 25 || s.MaxMS != 25 {
		t.Errorf("snapshot = %+v, want all 25", s)
	}
}

func TestLatencyHistClampsJunk(t *testing.T) {
	h := NewLatencyHist()
	h.ObserveMS(0)
	h.ObserveMS(-5)
	h.ObserveMS(math.NaN())
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinMS != histMinMS || s.MaxMS != histMinMS {
		t.Errorf("junk observations should clamp to %v, got %+v", histMinMS, s)
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	h := NewLatencyHist()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { //lint:allow lockcheck test goroutines joined via WaitGroup
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.ObserveMS(float64(j + 1))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 1600 {
		t.Errorf("count = %d, want 1600", got)
	}
}

func TestRegistrySnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("temp").Set(1.5)
	r.Histogram("lat").ObserveMS(7)
	snap := r.Snapshot()
	if snap.Counters["hits"] != 3 || snap.Gauges["temp"] != 1.5 || snap.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}

	out := r.ExpvarVar().String()
	var decoded RegistrySnapshot
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, out)
	}
	if decoded.Counters["hits"] != 3 {
		t.Errorf("decoded expvar = %+v", decoded)
	}
	for _, key := range []string{"p50_ms", "p95_ms", "p99_ms", "count"} {
		if !strings.Contains(out, key) {
			t.Errorf("expvar JSON missing %q: %s", key, out)
		}
	}
}

func TestRegistryConcurrentCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { //lint:allow lockcheck test goroutines joined via WaitGroup
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(1)
				r.Histogram("h").ObserveMS(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 800 {
		t.Errorf("hist count = %d, want 800", got)
	}
}
