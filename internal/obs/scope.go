package obs

// Scope namespaces instrument names under a fixed prefix, so a
// component that owns a family of per-entity instruments (the cluster
// router's per-replica counters and latency histograms, for example)
// can mint them without string-concatenating at every call site. A
// Scope over a nil registry hands out nil instruments like the
// registry itself, so optional instrumentation stays branch-free.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a scope that prefixes every instrument name with
// prefix (callers include their own separator, e.g. "replica.r0.").
// Valid on a nil registry.
func (r *Registry) Scope(prefix string) Scope {
	return Scope{r: r, prefix: prefix}
}

// Scope returns a nested scope: the prefixes concatenate.
func (s Scope) Scope(prefix string) Scope {
	return Scope{r: s.r, prefix: s.prefix + prefix}
}

// Counter returns the scoped counter (nil over a nil registry).
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + name) }

// Gauge returns the scoped gauge (nil over a nil registry).
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + name) }

// Histogram returns the scoped latency histogram (nil over a nil
// registry).
func (s Scope) Histogram(name string) *LatencyHist { return s.r.Histogram(s.prefix + name) }
