package obs

import "testing"

func TestScopePrefixesNames(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("router.").Scope("replica.r0.")
	s.Counter("requests").Add(3)
	s.Gauge("state").Set(2)
	s.Histogram("latency").ObserveMS(5)

	snap := reg.Snapshot()
	if got := snap.Counters["router.replica.r0.requests"]; got != 3 {
		t.Fatalf("scoped counter = %d, want 3 (counters: %v)", got, snap.Counters)
	}
	if got := snap.Gauges["router.replica.r0.state"]; got != 2 {
		t.Fatalf("scoped gauge = %v, want 2", got)
	}
	if h := snap.Histograms["router.replica.r0.latency"]; h.Count != 1 {
		t.Fatalf("scoped histogram count = %d, want 1", h.Count)
	}
	// The same scope hands back the same instrument.
	if reg.Scope("router.replica.r0.").Counter("requests") != s.Counter("requests") {
		t.Fatal("equal scoped names resolved to different instruments")
	}
}

func TestScopeNilRegistry(t *testing.T) {
	var reg *Registry
	s := reg.Scope("x.")
	// Everything must be a no-op, not a panic.
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Histogram("h").ObserveMS(1)
	if s.Counter("c") != nil || s.Gauge("g") != nil || s.Histogram("h") != nil {
		t.Fatal("nil registry scope handed out non-nil instruments")
	}
}
