package obs

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/randx"
)

// maxSpansPerTrace bounds one trace's tree so a runaway loop cannot
// grow a trace without limit; spans past the cap are dropped (counted
// on the root) rather than recorded.
const maxSpansPerTrace = 4096

// Config tunes a Tracer. The zero value selects sensible defaults.
type Config struct {
	// Clock is the time source (default randx.SystemClock). Tests
	// install a FixedClock/StepClock for deterministic traces.
	Clock randx.Clock
	// BufferSize bounds the completed-trace ring buffer (default 256).
	BufferSize int
	// SlowThreshold enables the slow-trace log: completed root spans at
	// or above it are rendered to SlowLog. Zero disables the log.
	SlowThreshold time.Duration
	// SlowLog receives rendered slow traces (default log.Print).
	SlowLog func(string)
}

// Tracer mints root spans and keeps the bounded ring buffer of
// completed traces. A Tracer is safe for concurrent use.
type Tracer struct {
	clock   randx.Clock
	slow    time.Duration
	slowLog func(string)

	mu        sync.Mutex
	buf       []*Span // ring of completed root spans
	next      int
	completed uint64
	slowSeen  uint64
}

// NewTracer builds a tracer from cfg, applying defaults for zero
// fields.
func NewTracer(cfg Config) *Tracer {
	if cfg.Clock == nil {
		cfg.Clock = randx.SystemClock
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 256
	}
	if cfg.SlowLog == nil {
		cfg.SlowLog = func(s string) { log.Print(s) }
	}
	return &Tracer{
		clock:   cfg.Clock,
		slow:    cfg.SlowThreshold,
		slowLog: cfg.SlowLog,
		buf:     make([]*Span, 0, cfg.BufferSize),
	}
}

// Attr is one key/value annotation on a span. Values are stored
// rendered so snapshots are immutable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace tree. All methods are safe on
// a nil receiver (no-ops), so instrumented code never branches on
// whether tracing is active.
type Span struct {
	tracer *Tracer
	mu     *sync.Mutex // the trace-wide lock, owned by the root
	root   *Span

	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span

	// root-only bookkeeping (guarded by mu).
	nspans  int
	dropped int
}

type ctxKey struct{}

// FromContext returns the span the context carries, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start begins a new root span (a new trace) and returns a context
// carrying it. The caller must End the span to commit the trace to the
// buffer.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{tracer: t, mu: &sync.Mutex{}, name: name, start: t.clock()}
	s.root = s
	s.nspans = 1
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start begins a child of the span the context carries and returns a
// context carrying the child. Without a span in ctx it returns ctx
// unchanged and a nil span, so instrumentation costs one context
// lookup when tracing is off.
//
//perf:pooled span creation is bounded per request, not per row; tracing-off costs one context lookup
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.startChild(name)
	if child == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, child), child
}

func (s *Span) startChild(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root.nspans >= maxSpansPerTrace {
		s.root.dropped++
		return nil
	}
	s.root.nspans++
	child := &Span{
		tracer: s.tracer,
		mu:     s.mu,
		root:   s.root,
		name:   name,
		start:  s.tracer.clock(),
	}
	s.children = append(s.children, child)
	return child
}

// SetAttr annotates the span. Values render deterministically: strings
// verbatim, integers and bools in their canonical form, float64 via
// strconv 'g', time.Duration via its String method.
//
//perf:pooled span attribute work is bounded per span (a handful per request), never per row; the batch kernels inside the span do not call it
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	v := formatAttrValue(value)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

func formatAttrValue(value any) string {
	switch x := value.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case time.Duration:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}

// End closes the span. Ending a root span commits the trace to the
// ring buffer and, past the tracer's threshold, to the slow-trace log.
// End is idempotent; ending a nil span is a no-op.
//
//perf:pooled commit/render runs once per completed root span, not per row, and the slow-trace path only fires past the latency threshold
func (s *Span) End() {
	if s == nil {
		return
	}
	isRoot, dur, first := s.finish()
	if isRoot && first {
		s.tracer.commit(s, dur)
	}
}

// finish stamps the end time exactly once under the trace lock.
func (s *Span) finish() (isRoot bool, dur time.Duration, first bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.end.IsZero() {
		return false, 0, false
	}
	s.end = s.tracer.clock()
	return s.root == s, s.end.Sub(s.start), true
}

// commit pushes a completed root span into the ring buffer and, past
// the slow threshold, renders it to the slow-trace log (outside the
// tracer lock).
func (t *Tracer) commit(root *Span, dur time.Duration) {
	if t.push(root, dur) {
		t.slowLog("slow trace (" + dur.String() + "):\n" + root.Render())
	}
}

// push appends to the ring buffer under the tracer lock and reports
// whether the trace crossed the slow threshold.
func (t *Tracer) push(root *Span, dur time.Duration) (slow bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, root)
	} else {
		t.buf[t.next] = root
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.completed++
	slow = t.slow > 0 && dur >= t.slow
	if slow {
		t.slowSeen++
	}
	return slow
}

// Traces returns the buffered completed root spans, oldest first.
func (t *Tracer) Traces() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Completed reports how many traces have finished since the tracer was
// built (including ones the ring buffer has since evicted), and how
// many of those crossed the slow threshold.
func (t *Tracer) Completed() (total, slow uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed, t.slowSeen
}

// Name returns the span's operation name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's recorded extent (0 while unfinished or
// for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the named annotation ("" when absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Children returns a copy of the span's direct children in start
// order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// SpanCount returns the number of spans recorded in the span's trace
// (root bookkeeping; any span of the trace may be asked).
func (s *Span) SpanCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.nspans
}

// Clock returns the time source behind the span's tracer
// (randx.SystemClock for nil), so instrumented code can take interval
// measurements consistent with the trace.
func (s *Span) Clock() randx.Clock {
	if s == nil {
		return randx.SystemClock
	}
	return s.tracer.clock
}

// Render returns the trace subtree rooted at s as an indented text
// tree — the slow-trace log format.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.mu.Lock()
	defer s.mu.Unlock()
	s.render(&b, 0)
	if s.root == s && s.dropped > 0 {
		fmt.Fprintf(&b, "  (+%d spans dropped past the %d-span cap)\n", s.dropped, maxSpansPerTrace)
	}
	return strings.TrimRight(b.String(), "\n")
}

// render assumes the trace lock is held.
func (s *Span) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.name)
	if s.end.IsZero() {
		b.WriteString(" (unfinished)")
	} else {
		b.WriteString(" ")
		b.WriteString(s.end.Sub(s.start).String())
	}
	for _, a := range s.attrs {
		b.WriteString(" ")
		b.WriteString(a.Key)
		b.WriteString("=")
		b.WriteString(a.Value)
	}
	b.WriteString("\n")
	for _, c := range s.children {
		c.render(b, depth+1)
	}
}
