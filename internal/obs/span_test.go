package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/randx"
)

func stepTracer(stepMS int, cfg Config) *Tracer {
	cfg.Clock = randx.StepClock(time.Unix(1700000000, 0), time.Duration(stepMS)*time.Millisecond)
	return NewTracer(cfg)
}

func TestSpanTreeDeterministic(t *testing.T) {
	tr := stepTracer(10, Config{})
	ctx, root := tr.Start(context.Background(), "request")
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	cctx, child := Start(ctx, "predict")
	child.SetAttr("model", "rf")
	child.SetAttr("n", 42)
	_, grand := Start(cctx, "fit")
	grand.End()
	child.End()
	root.SetAttr("route", "POST /v1/predict/uc1")
	root.End()

	// StepClock ticks 10ms per reading: root start, child start, grand
	// start, grand end, child end, root end.
	if got := grand.Duration(); got != 10*time.Millisecond {
		t.Errorf("grandchild duration = %v, want 10ms", got)
	}
	if got := child.Duration(); got != 30*time.Millisecond {
		t.Errorf("child duration = %v, want 30ms", got)
	}
	if got := root.Duration(); got != 50*time.Millisecond {
		t.Errorf("root duration = %v, want 50ms", got)
	}
	if root.SpanCount() != 3 || grand.SpanCount() != 3 {
		t.Errorf("SpanCount = %d/%d, want 3/3", root.SpanCount(), grand.SpanCount())
	}
	if got := child.Attr("model"); got != "rf" {
		t.Errorf("child attr model = %q", got)
	}
	if got := child.Attr("n"); got != "42" {
		t.Errorf("child attr n = %q", got)
	}
	if got := child.Attr("absent"); got != "" {
		t.Errorf("absent attr = %q, want empty", got)
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "predict" {
		t.Fatalf("root children = %v", kids)
	}
	if len(kids[0].Children()) != 1 || kids[0].Children()[0].Name() != "fit" {
		t.Fatalf("predict children wrong")
	}

	r := root.Render()
	for _, want := range []string{"request 50ms route=POST /v1/predict/uc1", "  predict 30ms model=rf n=42", "    fit 10ms"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q in:\n%s", want, r)
		}
	}
}

func TestNilSpanSafety(t *testing.T) {
	ctx, s := Start(context.Background(), "orphan")
	if s != nil {
		t.Fatal("Start without a parent should return a nil span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("context should stay span-free")
	}
	// Every method must be a no-op on nil.
	s.SetAttr("k", "v")
	s.End()
	if s.Name() != "" || s.Duration() != 0 || s.Attrs() != nil || s.Attr("k") != "" ||
		s.Children() != nil || s.SpanCount() != 0 || s.Render() != "" {
		t.Error("nil span accessors should return zero values")
	}
	if s.Clock() == nil {
		t.Error("nil span Clock should fall back to SystemClock")
	}
}

func TestTraceBufferEviction(t *testing.T) {
	tr := stepTracer(1, Config{BufferSize: 2})
	for i, name := range []string{"a", "b", "c"} {
		_, root := tr.Start(context.Background(), name)
		root.End()
		if total, _ := tr.Completed(); total != uint64(i+1) {
			t.Fatalf("completed = %d after %d traces", total, i+1)
		}
	}
	got := tr.Traces()
	if len(got) != 2 || got[0].Name() != "b" || got[1].Name() != "c" {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Name()
		}
		t.Fatalf("buffer = %v, want [b c] oldest first", names)
	}
}

func TestSlowTraceLog(t *testing.T) {
	var logged []string
	tr := stepTracer(40, Config{
		SlowThreshold: 50 * time.Millisecond,
		SlowLog:       func(s string) { logged = append(logged, s) },
	})
	_, fast := tr.Start(context.Background(), "fast") // 40ms < threshold
	fast.End()
	ctx, slow := tr.Start(context.Background(), "slow")
	_, child := Start(ctx, "inner")
	child.End()
	slow.End() // 120ms >= threshold
	if len(logged) != 1 {
		t.Fatalf("slow log entries = %d, want 1", len(logged))
	}
	if !strings.Contains(logged[0], "slow trace (120ms)") || !strings.Contains(logged[0], "inner") {
		t.Errorf("slow log = %q", logged[0])
	}
	if total, slowN := tr.Completed(); total != 2 || slowN != 1 {
		t.Errorf("Completed = %d/%d, want 2/1", total, slowN)
	}
}

func TestSpanCapDropsExcess(t *testing.T) {
	tr := stepTracer(1, Config{})
	ctx, root := tr.Start(context.Background(), "big")
	var nilSeen int
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, c := Start(ctx, "child")
		if c == nil {
			nilSeen++
			continue
		}
		c.End()
	}
	root.End()
	if root.SpanCount() != maxSpansPerTrace {
		t.Errorf("SpanCount = %d, want cap %d", root.SpanCount(), maxSpansPerTrace)
	}
	if nilSeen != 11 { // root takes 1 slot, so 4095 children fit
		t.Errorf("dropped children = %d, want 11", nilSeen)
	}
	if !strings.Contains(root.Render(), "spans dropped") {
		t.Error("Render should note dropped spans")
	}
}

func TestEndIdempotentAndUnfinishedRender(t *testing.T) {
	tr := stepTracer(5, Config{})
	ctx, root := tr.Start(context.Background(), "r")
	_, child := Start(ctx, "open")
	if !strings.Contains(root.Render(), "open (unfinished)") {
		t.Error("unfinished child should render a marker")
	}
	child.End()
	d := child.Duration()
	child.End() // second End must not re-stamp
	if child.Duration() != d {
		t.Error("End is not idempotent")
	}
	root.End()
	root.End()
	if total, _ := tr.Completed(); total != 1 {
		t.Errorf("double End committed %d traces", total)
	}
}

func TestAttrFormatting(t *testing.T) {
	tr := stepTracer(1, Config{})
	_, root := tr.Start(context.Background(), "r")
	root.SetAttr("s", "x")
	root.SetAttr("b", true)
	root.SetAttr("i", 7)
	root.SetAttr("i64", int64(-8))
	root.SetAttr("u64", uint64(9))
	root.SetAttr("f", 0.25)
	root.SetAttr("d", 1500*time.Millisecond)
	root.SetAttr("other", []int{1})
	root.End()
	want := map[string]string{
		"s": "x", "b": "true", "i": "7", "i64": "-8", "u64": "9",
		"f": "0.25", "d": "1.5s", "other": "[1]",
	}
	for k, v := range want {
		if got := root.Attr(k); got != v {
			t.Errorf("attr %s = %q, want %q", k, got, v)
		}
	}
}

func TestTracerDefaultsAndClock(t *testing.T) {
	tr := NewTracer(Config{})
	_, root := tr.Start(context.Background(), "r")
	if root.Clock() == nil {
		t.Fatal("span clock should default to SystemClock")
	}
	root.End()
	if root.Duration() < 0 {
		t.Error("system-clock duration negative")
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := stepTracer(1, Config{})
	ctx, root := tr.Start(context.Background(), "r")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { //lint:allow lockcheck test goroutines joined via channel
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				cctx, c := Start(ctx, "c")
				_, g := Start(cctx, "g")
				g.SetAttr("j", j)
				g.End()
				c.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	if got := root.SpanCount(); got != 1+8*50*2 {
		t.Errorf("SpanCount = %d, want %d", got, 1+8*50*2)
	}
}
