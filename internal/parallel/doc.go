// Package parallel provides the shared bounded worker pool used by the
// training and prediction paths: a deterministic work-distribution
// primitive that fans a fixed index range out across at most GOMAXPROCS
// goroutines, stops dispatching on the first error, and honors context
// cancellation.
//
// The pool carries no randomness of its own. Callers that need
// per-item random streams (the tree ensembles) must pre-split them from
// the parent RNG *before* dispatch — see randx.RNG.SplitN — so that the
// work executed for item i is byte-for-byte identical no matter how many
// workers run or in which order items complete.
//
// ForEach is also the only sanctioned way to spawn goroutines in server
// paths: the lockcheck analyzer flags raw `go` statements inside
// internal/serve and internal/core, so request-path concurrency always
// stays bounded and propagates its first error.
package parallel
