package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Workers resolves a worker-count request: values <= 0 select
// GOMAXPROCS, and the result never exceeds n (no idle goroutines).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). Items are dispatched in
// index order. The first error cancels the pool's context and stops new
// items from starting; ForEach then waits for in-flight items and
// returns that first-observed error. If the parent context is canceled
// before all items run, ForEach returns ctx.Err().
//
// fn must be safe for concurrent invocation across distinct indices.
//
//perf:pooled bounded worker pool; per-call bookkeeping is the measured AllocsPerRun slack, closures handed in are amortized
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)

	// When the context carries a trace, the whole dispatch becomes one
	// span that aggregates how long items sat queued before a worker
	// picked them up (queue_wait) versus how long they actually ran
	// (run_time). Untraced calls skip every clock read.
	if cctx, span := obs.Start(ctx, "parallel.foreach"); span != nil {
		ctx = cctx
		span.SetAttr("items", n)
		span.SetAttr("workers", workers)
		clk := span.Clock()
		dispatched := clk()
		var waitNS, runNS atomic.Int64
		inner := fn
		fn = func(ctx context.Context, i int) error {
			t0 := clk()
			waitNS.Add(int64(t0.Sub(dispatched)))
			err := inner(ctx, i)
			runNS.Add(int64(clk().Sub(t0)))
			return err
		}
		defer func() {
			span.SetAttr("queue_wait", time.Duration(waitNS.Load()))
			span.SetAttr("run_time", time.Duration(runNS.Load()))
			span.End()
		}()
	}

	if workers == 1 {
		// Sequential fast path: no goroutines, identical semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	abort := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					abort(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
