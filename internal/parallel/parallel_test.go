package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			counts := make([]atomic.Int32, n)
			err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForEachFirstErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 1000, 2, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		time.Sleep(10 * time.Microsecond) // give cancellation time to land
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop dispatching promptly: far fewer than all 1000
	// items may run after the failure (workers in flight can finish).
	if got := ran.Load(); got > 100 {
		t.Errorf("%d items ran after early error, want prompt abort", got)
	}
}

func TestForEachSequentialFirstErrorStopsImmediately(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 3 {
		t.Errorf("ran %d items, want exactly 3 (indices 0..2)", ran)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1000, 2, func(ctx context.Context, i int) error {
			started.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil
		})
	}()
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= 1000 {
		t.Errorf("all %d items started despite cancellation", got)
	}
}

func TestForEachAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 10, 4, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-canceled context", ran.Load())
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	err := ForEach(context.Background(), 200, workers, func(context.Context, int) error {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 1000) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3 (capped at n)", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1 (floor)", got)
	}
	if got := Workers(5, 100); got != 5 {
		t.Errorf("Workers(5, 100) = %d, want 5", got)
	}
}
