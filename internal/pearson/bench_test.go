package pearson

import (
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

func BenchmarkNewTypeI(b *testing.B) {
	m := stats.Moments4{Mean: 1, Std: 0.05, Skew: 0.5, Kurt: 2.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewTypeIV(b *testing.B) {
	// Type IV pays for its tabulated inverse CDF at construction.
	m := stats.Moments4{Mean: 1, Std: 0.05, Skew: 0.5, Kurt: 4.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSample1000TypeI(b *testing.B) {
	d, err := New(stats.Moments4{Mean: 1, Std: 0.05, Skew: 0.5, Kurt: 2.2})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.SampleN(rng, 1000)
	}
}

func BenchmarkSample1000TypeIV(b *testing.B) {
	d, err := New(stats.Moments4{Mean: 1, Std: 0.05, Skew: 0.5, Kurt: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.SampleN(rng, 1000)
	}
}

func BenchmarkSample1000TypeVI(b *testing.B) {
	d, err := New(stats.Moments4{Mean: 1, Std: 0.05, Skew: 1.5, Kurt: 7})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.SampleN(rng, 1000)
	}
}

func BenchmarkClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Classify(0.8, 3.5); err != nil {
			b.Fatal(err)
		}
	}
}
