package pearson_test

import (
	"fmt"

	"repro/internal/pearson"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Example demonstrates the pearsrnd-style workflow: specify four
// moments, classify the Pearson type, and draw samples matching them.
func Example() {
	target := stats.Moments4{Mean: 1, Std: 0.05, Skew: 1, Kurt: 4.5}
	d, err := pearson.New(target)
	if err != nil {
		panic(err)
	}
	fmt.Println("type:", d.PType)

	xs := d.SampleN(randx.New(7), 200000)
	got := stats.ComputeMoments4(xs)
	fmt.Printf("mean %.2f  std %.3f  skew %.1f  kurt %.1f\n",
		got.Mean, got.Std, got.Skew, got.Kurt)
	// Output:
	// type: III (gamma)
	// mean 1.00  std 0.050  skew 1.0  kurt 4.5
}

// ExampleClassify shows type classification without building a sampler.
func ExampleClassify() {
	for _, c := range []struct{ skew, kurt float64 }{
		{0, 3},     // normal
		{0, 2},     // platykurtic symmetric
		{1.5, 7},   // heavy right skew
		{0.5, 4.5}, // mild skew, heavy tails
	} {
		ty, err := pearson.Classify(c.skew, c.kurt)
		if err != nil {
			fmt.Println("infeasible")
			continue
		}
		fmt.Println(ty)
	}
	// Output:
	// 0 (normal)
	// II (symmetric beta)
	// VI (beta prime)
	// IV
}
