package pearson

import (
	"math"

	"repro/internal/numeric"
)

// This file adds density evaluation to the Pearson system. Each
// standardized sampler in samplers.go has a closed-form density except
// type IV, whose density is normalized numerically. The public PDF
// method maps data-space points through the affine/mirror transform
// applied at sampling time.

// PDF evaluates the probability density of the distribution at x.
// For a degenerate (zero standard deviation) distribution it returns 0
// everywhere (the point mass has no density).
func (d *Dist) PDF(x float64) float64 {
	if d.sigma == 0 || d.pdf == nil {
		return 0
	}
	z := (x - d.mu) / d.sigma
	if d.mirror {
		z = -z
	}
	return d.pdf(z) / d.sigma
}

// CDF evaluates the cumulative distribution function at x by adaptive
// Simpson integration of the PDF over the standardized support. It is
// exact enough for plotting and goodness-of-fit use (absolute error well
// below 1e-4).
func (d *Dist) CDF(x float64) float64 {
	if d.sigma == 0 {
		if x < d.mu {
			return 0
		}
		return 1
	}
	// Integrate the standardized density from -12 to z (or use the
	// mirror identity CDF(x) = 1 - CDF_mirror(-z)).
	z := (x - d.mu) / d.sigma
	if d.mirror {
		return 1 - d.cdfStd(-z)
	}
	return d.cdfStd(z)
}

// cdfStd integrates the standardized density up to z.
func (d *Dist) cdfStd(z float64) float64 {
	const lo = -12.0
	if z <= lo {
		return 0
	}
	if z >= 12 {
		return 1
	}
	n := int(64 * (z - lo))
	if n < 64 {
		n = 64
	}
	if n > 3072 {
		n = 3072
	}
	v := numeric.Simpson(d.pdf, lo, z, n)
	return numeric.Clamp(v, 0, 1)
}

// logBeta returns log B(a, b).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// stdNormalPDF is the density of the standard normal.
func stdNormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// betaPDFOn returns the density of a beta(alpha, beta) variate scaled to
// the interval [a1, a2] and standardized by (mean, sd).
func betaPDFOn(alpha, beta, a1, a2, mean, sd float64) func(float64) float64 {
	span := a2 - a1
	lb := logBeta(alpha, beta)
	return func(z float64) float64 {
		x := mean + sd*z // position in the (a1, a2) frame
		y := (x - a1) / span
		if y <= 0 || y >= 1 {
			return 0
		}
		logp := (alpha-1)*math.Log(y) + (beta-1)*math.Log(1-y) - lb
		return math.Exp(logp) / span * sd
	}
}

// gammaPDFShifted returns the standardized density of Gamma(shape, scale)
// shifted and scaled by (mean, sd).
func gammaPDFShifted(shape, scale, mean, sd float64) func(float64) float64 {
	lg, _ := math.Lgamma(shape)
	return func(z float64) float64 {
		x := mean + sd*z
		if x <= 0 {
			return 0
		}
		//lint:allow floatcheck the type III fitter only constructs this closure with positive shape and scale
		logp := (shape-1)*math.Log(x) - x/scale - lg - shape*math.Log(scale)
		return math.Exp(logp) * sd
	}
}

// invGammaPDFShifted returns the standardized density of
// InvGamma(alpha, b), optionally mirrored, standardized by (mean, sd).
func invGammaPDFShifted(alpha, b, mean, sd float64, flip bool) func(float64) float64 {
	lg, _ := math.Lgamma(alpha)
	return func(z float64) float64 {
		if flip {
			z = -z
		}
		u := mean + sd*z
		if u <= 0 {
			return 0
		}
		//lint:allow floatcheck the type V fitter only constructs this closure with positive alpha and b
		logp := alpha*math.Log(b) - (alpha+1)*math.Log(u) - b/u - lg
		return math.Exp(logp) * sd
	}
}

// betaPrimePDFOn returns the standardized density of a beta-prime(p, q)
// variate scaled by span and shifted by a2, standardized by (mean, sd).
func betaPrimePDFOn(p, q, a2, span, mean, sd float64) func(float64) float64 {
	lb := logBeta(p, q)
	return func(z float64) float64 {
		x := mean + sd*z // position in the shifted frame
		//lint:allow floatcheck the type VI fitter only constructs this closure with positive span
		y := (x - a2) / span
		if y <= 0 {
			return 0
		}
		logp := (p-1)*math.Log(y) - (p+q)*math.Log(1+y) - lb
		//lint:allow floatcheck the type VI fitter only constructs this closure with positive span
		return math.Exp(logp) / span * sd
	}
}

// studentTPDF returns the density of a unit-variance-scaled Student-t.
func studentTPDF(nu, scale float64) func(float64) float64 {
	lgHalf, _ := math.Lgamma((nu + 1) / 2)
	lgNu, _ := math.Lgamma(nu / 2)
	logC := lgHalf - lgNu - 0.5*math.Log(nu*math.Pi)
	return func(z float64) float64 {
		//lint:allow floatcheck the type VII fitter only constructs this closure with nu > 0 and scale > 0
		t := z / scale
		//lint:allow floatcheck the type VII fitter only constructs this closure with nu > 0 and scale > 0
		logp := logC - (nu+1)/2*math.Log1p(t*t/nu)
		//lint:allow floatcheck the type VII fitter only constructs this closure with nu > 0 and scale > 0
		return math.Exp(logp) / scale
	}
}
