package pearson

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/randx"
	"repro/internal/stats"
)

// pdfTargets spans every Pearson type (same grid as the sampler
// round-trip test).
var pdfTargets = []stats.Moments4{
	{Mean: 0, Std: 1, Skew: 0, Kurt: 3},       // 0
	{Mean: 1, Std: 0.1, Skew: 0, Kurt: 1.8},   // II
	{Mean: 0, Std: 1, Skew: 0, Kurt: 4.2},     // VII
	{Mean: 1, Std: 1, Skew: 1, Kurt: 4.5},     // III
	{Mean: 0, Std: 1, Skew: 0.5, Kurt: 2.2},   // I
	{Mean: 0, Std: 1, Skew: 0.5, Kurt: 4.5},   // IV
	{Mean: 0, Std: 1, Skew: 1.5, Kurt: 7},     // VI
	{Mean: 2, Std: 0.5, Skew: -1.2, Kurt: 6},  // mirrored IV/VI region
	{Mean: 10, Std: 3, Skew: -0.5, Kurt: 2.2}, // mirrored I
}

func TestPDFIntegratesToOne(t *testing.T) {
	for _, target := range pdfTargets {
		d, err := New(target)
		if err != nil {
			t.Fatalf("New(%+v): %v", target, err)
		}
		lo := target.Mean - 12*target.Std
		hi := target.Mean + 12*target.Std
		integral := numeric.Simpson(d.PDF, lo, hi, 8000)
		if math.Abs(integral-1) > 0.01 {
			t.Errorf("%+v (%v): PDF integrates to %v", target, d.PType, integral)
		}
	}
}

func TestPDFMatchesSampleHistogram(t *testing.T) {
	for _, target := range pdfTargets {
		d, err := New(target)
		if err != nil {
			t.Fatal(err)
		}
		xs := d.SampleN(randx.New(11), 200000)
		lo, hi := stats.Quantile(xs, 0.005), stats.Quantile(xs, 0.995)
		h := stats.HistogramFromSample(xs, lo, hi, 40)
		centers := h.BinCenters()
		// Skip the boundary bins: the histogram clamps the tail mass
		// beyond [lo, hi] into them, inflating their empirical density.
		for i := 1; i < len(centers)-1; i++ {
			want := h.Density(i)
			got := d.PDF(centers[i])
			// Compare where there is enough mass for the empirical
			// density to be stable.
			if want > 0.1/(hi-lo) && math.Abs(got-want) > 0.15*want+0.02 {
				t.Errorf("%+v (%v): PDF(%v) = %v, empirical %v",
					target, d.PType, centers[i], got, want)
			}
		}
	}
}

func TestPDFMomentsMatchTargets(t *testing.T) {
	// Independent check: integrate x·f and x²·f numerically.
	for _, target := range pdfTargets {
		d, err := New(target)
		if err != nil {
			t.Fatal(err)
		}
		lo := target.Mean - 12*target.Std
		hi := target.Mean + 12*target.Std
		mean := numeric.Simpson(func(x float64) float64 { return x * d.PDF(x) }, lo, hi, 8000)
		m2 := numeric.Simpson(func(x float64) float64 { return x * x * d.PDF(x) }, lo, hi, 8000)
		sd := math.Sqrt(m2 - mean*mean)
		if math.Abs(mean-target.Mean) > 0.02*(1+math.Abs(target.Mean)) {
			t.Errorf("%+v (%v): PDF mean = %v", target, d.PType, mean)
		}
		if math.Abs(sd-target.Std) > 0.05*target.Std {
			t.Errorf("%+v (%v): PDF std = %v", target, d.PType, sd)
		}
	}
}

func TestCDFProperties(t *testing.T) {
	for _, target := range pdfTargets {
		d, err := New(target)
		if err != nil {
			t.Fatal(err)
		}
		// Monotone, 0 at -inf side, 1 at +inf side.
		prev := -1.0
		for _, q := range []float64{-10, -2, -0.5, 0, 0.5, 2, 10} {
			x := target.Mean + q*target.Std
			c := d.CDF(x)
			if c < prev-1e-9 {
				t.Fatalf("%+v: CDF not monotone at %v", target, x)
			}
			if c < 0 || c > 1 {
				t.Fatalf("%+v: CDF(%v) = %v", target, x, c)
			}
			prev = c
		}
		if c := d.CDF(target.Mean - 13*target.Std); c > 1e-3 {
			t.Errorf("%+v: CDF far left = %v", target, c)
		}
		if c := d.CDF(target.Mean + 13*target.Std); c < 1-1e-3 {
			t.Errorf("%+v: CDF far right = %v", target, c)
		}
	}
}

func TestCDFMatchesECDF(t *testing.T) {
	for _, target := range pdfTargets {
		d, err := New(target)
		if err != nil {
			t.Fatal(err)
		}
		xs := d.SampleN(randx.New(21), 100000)
		e := stats.NewECDF(xs)
		for _, q := range []float64{-1.5, -0.5, 0, 0.5, 1.5} {
			x := target.Mean + q*target.Std
			got := d.CDF(x)
			want := e.At(x)
			if math.Abs(got-want) > 0.015 {
				t.Errorf("%+v (%v): CDF(%v) = %v, ECDF %v", target, d.PType, x, got, want)
			}
		}
	}
}

func TestDegeneratePDFCDF(t *testing.T) {
	d, err := New(stats.Moments4{Mean: 5, Std: 0, Skew: 0, Kurt: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.PDF(5) != 0 || d.PDF(4) != 0 {
		t.Error("degenerate PDF should be 0 everywhere")
	}
	if d.CDF(4.9) != 0 || d.CDF(5.1) != 1 {
		t.Error("degenerate CDF should step at the mean")
	}
}
