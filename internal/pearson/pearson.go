// Package pearson implements the Pearson distribution system: given a
// target mean, standard deviation, skewness, and kurtosis, it classifies
// the matching Pearson type (0, I–VII) and draws random variates from
// that distribution. It is this repository's replacement for MATLAB's
// pearsrnd, which the paper uses to turn predicted moments back into a
// concrete performance distribution (the "PearsonRnd" representation).
//
// The implementation follows the classical parameterization of the
// Pearson differential equation for a standardized variable x
// (zero mean, unit variance):
//
//	p'(x)/p(x) = -(c1 + x) / (c0 + c1·x + c2·x²)
//
// with
//
//	c0 = (4·β2 − 3·β1) / A,
//	c1 = γ1·(β2 + 3) / A,
//	c2 = (2·β2 − 3·β1 − 6) / A,
//	A  = 10·β2 − 12·β1 − 18,
//
// where γ1 is the skewness, β1 = γ1², and β2 is the (non-excess)
// kurtosis. The sign of the roots/discriminant of the denominator
// selects the type; each type maps onto a standard family (beta, gamma,
// inverse-gamma, beta-prime, Student-t) except type IV, which is sampled
// by numerical CDF inversion (see type4.go).
package pearson

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/stats"
)

// Type identifies a member of the Pearson system.
type Type int

// The Pearson types. Type0 is the normal distribution; TypeII and
// TypeVII are the symmetric specializations (beta and Student-t).
const (
	Type0 Type = iota
	TypeI
	TypeII
	TypeIII
	TypeIV
	TypeV
	TypeVI
	TypeVII
)

// String returns the conventional name of the type.
func (t Type) String() string {
	switch t {
	case Type0:
		return "0 (normal)"
	case TypeI:
		return "I (beta)"
	case TypeII:
		return "II (symmetric beta)"
	case TypeIII:
		return "III (gamma)"
	case TypeIV:
		return "IV"
	case TypeV:
		return "V (inverse gamma)"
	case TypeVI:
		return "VI (beta prime)"
	case TypeVII:
		return "VII (Student t)"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ErrInfeasible is returned when the requested (skew, kurt) pair violates
// the moment inequality kurt > skew² + 1 that every distribution obeys.
var ErrInfeasible = errors.New("pearson: infeasible moments (need kurt > skew^2 + 1)")

// Dist is a member of the Pearson system ready for sampling. Build one
// with New.
type Dist struct {
	// PType is the classified Pearson type.
	PType Type
	// Target holds the requested moments.
	Target stats.Moments4

	mu, sigma float64
	mirror    bool // standardized sampler was built for |skew|; negate output
	// sample draws one standardized (zero-mean unit-variance) variate.
	sample func(r *randx.RNG) float64
	// pdf evaluates the standardized density (nil only for degenerate
	// point masses).
	pdf func(z float64) float64
}

const symmetryEps = 1e-8

// Classify returns the Pearson type for a (skew, kurt) pair, without
// building a sampler. It mirrors negative skew to positive (the type is
// symmetric in the sign of the skew).
func Classify(skew, kurt float64) (Type, error) {
	g := math.Abs(skew)
	if !(kurt > g*g+1) {
		return 0, ErrInfeasible
	}
	c0, c1, c2, ok := coefficients(g, kurt)
	if !ok {
		return 0, ErrInfeasible
	}
	return classify(g, kurt, c0, c1, c2), nil
}

// coefficients computes the standardized Pearson ODE coefficients,
// nudging the kurtosis when the shared denominator vanishes (a
// measure-zero parameterization singularity, not a property of the
// distribution family).
func coefficients(g, kurt float64) (c0, c1, c2 float64, ok bool) {
	b1 := g * g
	b2 := kurt
	denom := 10*b2 - 12*b1 - 18
	for math.Abs(denom) < 1e-9 {
		b2 += 1e-6
		denom = 10*b2 - 12*b1 - 18
	}
	c0 = (4*b2 - 3*b1) / denom
	c1 = g * (b2 + 3) / denom
	c2 = (2*b2 - 3*b1 - 6) / denom
	if math.IsNaN(c0) || math.IsNaN(c1) || math.IsNaN(c2) {
		return 0, 0, 0, false
	}
	return c0, c1, c2, true
}

func classify(g, kurt, c0, c1, c2 float64) Type {
	if g < symmetryEps {
		switch {
		case math.Abs(kurt-3) < 1e-8:
			return Type0
		case kurt < 3:
			return TypeII
		default:
			return TypeVII
		}
	}
	if math.Abs(c2) < 1e-9 {
		return TypeIII
	}
	kappa := c1 * c1 / (4 * c0 * c2)
	switch {
	case kappa < 0:
		return TypeI
	case math.Abs(kappa-1) < 1e-7:
		return TypeV
	case kappa < 1:
		return TypeIV
	default:
		return TypeVI
	}
}

// New builds a Pearson distribution matching the four target moments.
// A zero (or negative, clamped to zero) standard deviation yields a
// degenerate point mass at the mean. Infeasible (skew, kurt) pairs
// return ErrInfeasible; callers that obtained moments from a regression
// model should clamp with ClampFeasible first.
func New(target stats.Moments4) (*Dist, error) {
	if math.IsNaN(target.Mean) || math.IsNaN(target.Std) ||
		math.IsNaN(target.Skew) || math.IsNaN(target.Kurt) {
		return nil, fmt.Errorf("pearson: NaN in target moments %+v", target)
	}
	d := &Dist{Target: target, mu: target.Mean, sigma: target.Std}
	if target.Std <= 0 {
		d.sigma = 0
		d.PType = Type0
		d.sample = func(*randx.RNG) float64 { return 0 }
		return d, nil
	}
	g := target.Skew
	d.mirror = g < 0
	if d.mirror {
		g = -g
	}
	kurt := target.Kurt
	if !(kurt > g*g+1+1e-12) {
		return nil, ErrInfeasible
	}
	c0, c1, c2, ok := coefficients(g, kurt)
	if !ok {
		return nil, ErrInfeasible
	}
	d.PType = classify(g, kurt, c0, c1, c2)

	var err error
	switch d.PType {
	case Type0:
		d.sample = func(r *randx.RNG) float64 { return r.StdNormal() }
		d.pdf = stdNormalPDF
	case TypeI, TypeII:
		d.sample, d.pdf, err = betaSampler(c0, c1, c2)
	case TypeIII:
		d.sample, d.pdf, err = gammaSampler(c0, c1)
	case TypeIV:
		d.sample, d.pdf, err = type4Sampler(g, kurt)
	case TypeV:
		d.sample, d.pdf, err = invGammaSampler(c1, c2)
	case TypeVI:
		d.sample, d.pdf, err = betaPrimeSampler(c0, c1, c2)
	case TypeVII:
		d.sample, d.pdf, err = studentTSampler(kurt)
	}
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Sample draws one variate.
func (d *Dist) Sample(r *randx.RNG) float64 {
	x := d.sample(r)
	if d.mirror {
		x = -x
	}
	return d.mu + d.sigma*x
}

// SampleN draws n variates.
func (d *Dist) SampleN(r *randx.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

// ClampFeasible returns a copy of m whose (skew, kurt) pair is nudged
// into the feasible region kurt > skew² + 1 (with margin), and whose
// standard deviation is clamped to be non-negative. Prediction models
// regress the four moments independently, so their outputs can land
// slightly outside the feasible region; this restores validity while
// staying as close as possible to the prediction.
func ClampFeasible(m stats.Moments4) stats.Moments4 {
	const margin = 0.05
	out := m
	if math.IsNaN(out.Mean) {
		out.Mean = 1
	}
	if math.IsNaN(out.Std) || out.Std < 0 {
		out.Std = 0
	}
	if math.IsNaN(out.Skew) {
		out.Skew = 0
	}
	if math.IsNaN(out.Kurt) {
		out.Kurt = 3
	}
	if lo := out.Skew*out.Skew + 1 + margin; out.Kurt < lo {
		out.Kurt = lo
	}
	return out
}
