package pearson

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

func TestClassifyKnownTypes(t *testing.T) {
	cases := []struct {
		name       string
		skew, kurt float64
		want       Type
	}{
		{"normal", 0, 3, Type0},
		{"uniform-like", 0, 1.8, TypeII},
		{"arcsine-like", 0, 1.5, TypeII},
		{"heavy symmetric", 0, 5, TypeVII},
		{"gamma boundary", 1, 4.5, TypeIII}, // 2·4.5 − 3·1 − 6 = 0
		{"beta region", 0.5, 2.2, TypeI},
		{"lognormal-ish", 1.5, 7, TypeVI},
		{"mild skew high kurt", 0.5, 4.5, TypeIV},
		{"negative skew mirrors", -1.5, 7, TypeVI},
	}
	for _, c := range cases {
		got, err := Classify(c.skew, c.kurt)
		if err != nil {
			t.Errorf("%s: Classify(%v, %v) error: %v", c.name, c.skew, c.kurt, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: Classify(%v, %v) = %v, want %v", c.name, c.skew, c.kurt, got, c.want)
		}
	}
}

func TestClassifyInfeasible(t *testing.T) {
	for _, c := range []struct{ skew, kurt float64 }{
		{0, 1},    // Bernoulli boundary
		{0, 0.5},  // below boundary
		{2, 5},    // kurt == skew²+1 exactly
		{1, 1.99}, // below
	} {
		if _, err := Classify(c.skew, c.kurt); err == nil {
			t.Errorf("Classify(%v, %v) should be infeasible", c.skew, c.kurt)
		}
	}
}

func TestTypeString(t *testing.T) {
	for ty := Type0; ty <= TypeVII; ty++ {
		if ty.String() == "" {
			t.Errorf("empty String for type %d", int(ty))
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

// TestMomentRoundTrip is the central validation of the pearsrnd
// replacement: for a grid of target moments spanning every Pearson type,
// sampling must reproduce all four moments.
func TestMomentRoundTrip(t *testing.T) {
	targets := []stats.Moments4{
		{Mean: 0, Std: 1, Skew: 0, Kurt: 3},       // 0
		{Mean: 5, Std: 2, Skew: 0, Kurt: 3},       // 0 scaled
		{Mean: 1, Std: 0.1, Skew: 0, Kurt: 1.8},   // II (uniform-like)
		{Mean: 0, Std: 1, Skew: 0, Kurt: 2.4},     // II
		{Mean: 0, Std: 1, Skew: 0, Kurt: 4.2},     // VII
		{Mean: 2, Std: 0.5, Skew: 0, Kurt: 6},     // VII heavy
		{Mean: 1, Std: 1, Skew: 1, Kurt: 4.5},     // III (gamma)
		{Mean: 0, Std: 1, Skew: -1, Kurt: 4.5},    // III mirrored
		{Mean: 0, Std: 1, Skew: 0.5, Kurt: 2.2},   // I
		{Mean: 10, Std: 3, Skew: -0.5, Kurt: 2.2}, // I mirrored
		{Mean: 0, Std: 1, Skew: 0.8, Kurt: 2.9},   // I
		{Mean: 0, Std: 1, Skew: 0.5, Kurt: 4.5},   // IV
		{Mean: 1, Std: 0.2, Skew: 1.2, Kurt: 5.8}, // IV
		{Mean: 0, Std: 1, Skew: -0.7, Kurt: 5},    // IV mirrored
		{Mean: 0, Std: 1, Skew: 1.5, Kurt: 7},     // VI
		{Mean: 100, Std: 10, Skew: 2, Kurt: 10.5}, // VI strong skew
		{Mean: 0, Std: 1, Skew: -1.5, Kurt: 7},    // VI mirrored
	}
	const n = 400000
	for _, target := range targets {
		d, err := New(target)
		if err != nil {
			t.Errorf("New(%+v): %v", target, err)
			continue
		}
		r := randx.New(777)
		xs := d.SampleN(r, n)
		got := stats.ComputeMoments4(xs)
		// Tolerances scale with the difficulty: higher kurtosis means
		// slower Monte-Carlo convergence of the 3rd/4th moments.
		kurtTol := 0.05*target.Kurt + 0.15
		skewTol := 0.06 + 0.02*math.Abs(target.Skew)*target.Kurt
		if math.Abs(got.Mean-target.Mean) > 0.02*(1+math.Abs(target.Mean)) {
			t.Errorf("%v (%v): mean = %v, want %v", target, d.PType, got.Mean, target.Mean)
		}
		if math.Abs(got.Std-target.Std) > 0.03*(1+target.Std) {
			t.Errorf("%v (%v): std = %v, want %v", target, d.PType, got.Std, target.Std)
		}
		if math.Abs(got.Skew-target.Skew) > skewTol {
			t.Errorf("%v (%v): skew = %v, want %v", target, d.PType, got.Skew, target.Skew)
		}
		if math.Abs(got.Kurt-target.Kurt) > kurtTol {
			t.Errorf("%v (%v): kurt = %v, want %v", target, d.PType, got.Kurt, target.Kurt)
		}
	}
}

// TestTypeVRoundTrip constructs moments lying exactly on the type V
// locus (κ = 1) and verifies classification and sampling there.
func TestTypeVRoundTrip(t *testing.T) {
	// For fixed skew, find kurt where kappa(skew, kurt) == 1 by bisection.
	skew := 1.0
	kappaMinus1 := func(kurt float64) float64 {
		c0, c1, c2, ok := coefficients(skew, kurt)
		if !ok {
			return math.NaN()
		}
		return c1*c1/(4*c0*c2) - 1
	}
	lo, hi := 4.51, 20.0 // type III boundary is at 4.5 for skew=1
	flo := kappaMinus1(lo)
	kurtV := 0.0
	found := false
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		fm := kappaMinus1(mid)
		if math.Abs(fm) < 1e-12 {
			kurtV = mid
			found = true
			break
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
		kurtV = mid
		found = true
	}
	if !found {
		t.Fatal("could not locate type V locus")
	}
	ty, err := Classify(skew, kurtV)
	if err != nil {
		t.Fatalf("Classify on V locus: %v", err)
	}
	if ty != TypeV {
		t.Fatalf("Classify(%v, %v) = %v, want TypeV", skew, kurtV, ty)
	}
	target := stats.Moments4{Mean: 0, Std: 1, Skew: skew, Kurt: kurtV}
	d, err := New(target)
	if err != nil {
		t.Fatalf("New type V: %v", err)
	}
	xs := d.SampleN(randx.New(999), 400000)
	got := stats.ComputeMoments4(xs)
	if math.Abs(got.Mean) > 0.02 || math.Abs(got.Std-1) > 0.03 {
		t.Errorf("type V mean/std = %v/%v, want 0/1", got.Mean, got.Std)
	}
	if math.Abs(got.Skew-skew) > 0.15 {
		t.Errorf("type V skew = %v, want %v", got.Skew, skew)
	}
	if math.Abs(got.Kurt-kurtV) > 0.1*kurtV {
		t.Errorf("type V kurt = %v, want %v", got.Kurt, kurtV)
	}
}

func TestDegenerateStd(t *testing.T) {
	d, err := New(stats.Moments4{Mean: 3, Std: 0, Skew: 0, Kurt: 3})
	if err != nil {
		t.Fatalf("New degenerate: %v", err)
	}
	r := randx.New(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 3 {
			t.Fatalf("degenerate sample = %v, want 3", got)
		}
	}
}

func TestNewRejectsNaN(t *testing.T) {
	if _, err := New(stats.Moments4{Mean: math.NaN(), Std: 1, Skew: 0, Kurt: 3}); err == nil {
		t.Error("expected error for NaN mean")
	}
}

func TestNewRejectsInfeasible(t *testing.T) {
	if _, err := New(stats.Moments4{Mean: 0, Std: 1, Skew: 2, Kurt: 4}); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMirrorSymmetry(t *testing.T) {
	// Sampling with skew γ and −γ from the same seed must be exact mirrors.
	pos, err := New(stats.Moments4{Mean: 0, Std: 1, Skew: 1.2, Kurt: 6})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := New(stats.Moments4{Mean: 0, Std: 1, Skew: -1.2, Kurt: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := pos.SampleN(randx.New(5), 100)
	b := neg.SampleN(randx.New(5), 100)
	for i := range a {
		if math.Abs(a[i]+b[i]) > 1e-12 {
			t.Fatalf("mirror broken at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClampFeasible(t *testing.T) {
	cases := []struct {
		in stats.Moments4
		ok func(stats.Moments4) bool
	}{
		{stats.Moments4{Mean: 1, Std: 0.1, Skew: 2, Kurt: 3}, func(m stats.Moments4) bool { return m.Kurt > 5 }},
		{stats.Moments4{Mean: 1, Std: -0.5, Skew: 0, Kurt: 3}, func(m stats.Moments4) bool { return m.Std == 0 }},
		{stats.Moments4{Mean: math.NaN(), Std: 1, Skew: 0, Kurt: 3}, func(m stats.Moments4) bool { return m.Mean == 1 }},
		{stats.Moments4{Mean: 1, Std: 1, Skew: math.NaN(), Kurt: math.NaN()}, func(m stats.Moments4) bool { return m.Skew == 0 && m.Kurt >= 3 }},
		{stats.Moments4{Mean: 1, Std: 1, Skew: 0, Kurt: 3}, func(m stats.Moments4) bool { return m.Kurt == 3 }},
	}
	for i, c := range cases {
		got := ClampFeasible(c.in)
		if !c.ok(got) {
			t.Errorf("case %d: ClampFeasible(%+v) = %+v fails invariant", i, c.in, got)
		}
		if got.Std > 0 {
			if _, err := New(got); err != nil {
				t.Errorf("case %d: clamped moments still rejected: %v", i, err)
			}
		}
	}
}

// Property: for any random feasible moment vector, New succeeds and the
// sampler's first two moments converge.
func TestRandomFeasibleMoments(t *testing.T) {
	r := randx.New(2024)
	for trial := 0; trial < 25; trial++ {
		skew := r.Uniform(-2, 2)
		kurt := skew*skew + 1 + 0.1 + r.Uniform(0, 8)
		target := stats.Moments4{
			Mean: r.Uniform(-5, 5),
			Std:  r.Uniform(0.05, 3),
			Skew: skew,
			Kurt: kurt,
		}
		d, err := New(target)
		if err != nil {
			t.Errorf("trial %d: New(%+v): %v", trial, target, err)
			continue
		}
		xs := d.SampleN(r.Split(), 60000)
		got := stats.ComputeMoments4(xs)
		if math.Abs(got.Mean-target.Mean) > 0.05*(1+math.Abs(target.Mean))+0.05 {
			t.Errorf("trial %d (%v): mean %v vs %v", trial, d.PType, got.Mean, target.Mean)
		}
		if math.Abs(got.Std-target.Std) > 0.1*target.Std+0.05 {
			t.Errorf("trial %d (%v): std %v vs %v", trial, d.PType, got.Std, target.Std)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	target := stats.Moments4{Mean: 1, Std: 0.3, Skew: 0.9, Kurt: 5}
	d1, _ := New(target)
	d2, _ := New(target)
	a := d1.SampleN(randx.New(8), 50)
	b := d2.SampleN(randx.New(8), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}
