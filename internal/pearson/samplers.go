package pearson

import (
	"fmt"
	"math"

	"repro/internal/randx"
)

// betaSampler handles types I and II: the denominator quadratic
// c0 + c1·x + c2·x² has real roots a1 < a2 of opposite sign, and the
// density is (x−a1)^m1·(a2−x)^m2 on (a1, a2) — a shifted, scaled beta.
// The returned sampler is standardized analytically using the beta
// distribution's exact mean and variance.
func betaSampler(c0, c1, c2 float64) (func(*randx.RNG) float64, func(float64) float64, error) {
	disc := c1*c1 - 4*c0*c2
	if disc < 0 {
		return nil, nil, fmt.Errorf("pearson: type I with complex roots (disc=%v)", disc)
	}
	s := math.Sqrt(disc)
	a1 := (-c1 - s) / (2 * c2)
	a2 := (-c1 + s) / (2 * c2)
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	span := a2 - a1
	if span <= 0 {
		return nil, nil, fmt.Errorf("pearson: type I with empty support [%v, %v]", a1, a2)
	}
	m1 := (c1 + a1) / (c2 * span)
	m2 := -(c1 + a2) / (c2 * span)
	alpha, beta := m1+1, m2+1
	if alpha <= 0 || beta <= 0 {
		return nil, nil, fmt.Errorf("pearson: type I with invalid beta shapes (%v, %v)", alpha, beta)
	}
	ab := alpha + beta
	meanY := alpha / ab
	sdY := math.Sqrt(alpha * beta / (ab * ab * (ab + 1)))
	mean := a1 + span*meanY
	sd := span * sdY
	sample := func(r *randx.RNG) float64 {
		return (a1 + span*r.Beta(alpha, beta) - mean) / sd
	}
	return sample, betaPDFOn(alpha, beta, a1, a2, mean, sd), nil
}

// gammaSampler handles type III (c2 == 0): the density solves
// p'/p = −(c1+x)/(c0+c1·x), a gamma distribution with shape c0/c1²
// and scale c1, shifted so the mean is zero.
func gammaSampler(c0, c1 float64) (func(*randx.RNG) float64, func(float64) float64, error) {
	if c1 <= 0 {
		return nil, nil, fmt.Errorf("pearson: type III needs c1 > 0, got %v", c1)
	}
	shape := c0 / (c1 * c1)
	if shape <= 0 {
		return nil, nil, fmt.Errorf("pearson: type III with non-positive shape %v", shape)
	}
	mean := shape * c1
	sd := math.Sqrt(shape) * c1
	sample := func(r *randx.RNG) float64 {
		return (r.Gamma(shape, c1) - mean) / sd
	}
	return sample, gammaPDFShifted(shape, c1, mean, sd), nil
}

// invGammaSampler handles type V (κ == 1): with C1 = c1/(2·c2) the
// density in u = x + C1 is u^(−1/c2)·exp(−b/u), an inverse gamma with
// shape 1/c2 − 1 and scale b = (C1 − c1)/c2.
func invGammaSampler(c1, c2 float64) (func(*randx.RNG) float64, func(float64) float64, error) {
	if c2 == 0 {
		return nil, nil, fmt.Errorf("pearson: type V needs c2 != 0")
	}
	C1 := c1 / (2 * c2)
	alpha := 1/c2 - 1
	b := (C1 - c1) / c2
	if alpha <= 2 {
		return nil, nil, fmt.Errorf("pearson: type V shape %v <= 2 has no finite variance", alpha)
	}
	flip := false
	if b < 0 {
		// Support is u < 0; sample the mirrored positive branch.
		b = -b
		flip = true
	}
	meanU := b / (alpha - 1)
	sdU := b / ((alpha - 1) * math.Sqrt(alpha-2))
	sample := func(r *randx.RNG) float64 {
		u := r.InvGamma(alpha, b)
		x := (u - meanU) / sdU
		if flip {
			x = -x
		}
		return x
	}
	return sample, invGammaPDFShifted(alpha, b, meanU, sdU, flip), nil
}

// betaPrimeSampler handles type VI (κ > 1): both roots of the
// denominator quadratic share a sign; with a1 < a2 the density on
// x > a2 is (x−a1)^m1·(x−a2)^m2, which maps onto a beta-prime
// distribution with shapes (m2+1, −(m1+m2+1)) under
// y = (x − a2)/(a2 − a1).
func betaPrimeSampler(c0, c1, c2 float64) (func(*randx.RNG) float64, func(float64) float64, error) {
	disc := c1*c1 - 4*c0*c2
	if disc < 0 {
		return nil, nil, fmt.Errorf("pearson: type VI with complex roots (disc=%v)", disc)
	}
	s := math.Sqrt(disc)
	a1 := (-c1 - s) / (2 * c2)
	a2 := (-c1 + s) / (2 * c2)
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	span := a2 - a1
	if span <= 0 {
		return nil, nil, fmt.Errorf("pearson: type VI with degenerate roots %v, %v", a1, a2)
	}
	m1 := (c1 + a1) / (c2 * span)
	m2 := -(c1 + a2) / (c2 * span)
	p := m2 + 1
	q := -(m1 + m2 + 1)
	if p <= 0 || q <= 2 {
		return nil, nil, fmt.Errorf("pearson: type VI with invalid beta-prime shapes (%v, %v)", p, q)
	}
	meanY := p / (q - 1)
	varY := p * (p + q - 1) / ((q - 2) * (q - 1) * (q - 1))
	mean := a2 + span*meanY
	sd := span * math.Sqrt(varY)
	sample := func(r *randx.RNG) float64 {
		return (a2 + span*r.BetaPrime(p, q) - mean) / sd
	}
	return sample, betaPrimePDFOn(p, q, a2, span, mean, sd), nil
}

// studentTSampler handles type VII (symmetric, kurt > 3): a Student-t
// with ν = 4 + 6/(kurt−3) degrees of freedom, rescaled to unit variance.
func studentTSampler(kurt float64) (func(*randx.RNG) float64, func(float64) float64, error) {
	if !(kurt > 3) {
		return nil, nil, fmt.Errorf("pearson: type VII needs kurt > 3, got %v", kurt)
	}
	nu := 4 + 6/(kurt-3)
	scale := math.Sqrt((nu - 2) / nu)
	sample := func(r *randx.RNG) float64 {
		return r.StudentT(nu) * scale
	}
	return sample, studentTPDF(nu, scale), nil
}
