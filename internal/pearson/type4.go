package pearson

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/randx"
)

// type4Sampler builds a sampler for Pearson type IV, the only member of
// the system with no closed-form reduction to a standard family. Its
// standardized density is
//
//	f(t) ∝ (1 + t²)^(−m) · exp(−ν·atan(t)),
//
// with, following Heinrich's parameterization in terms of β1 = skew² and
// β2 = kurt,
//
//	r = 6(β2 − β1 − 1)/(2β2 − 3β1 − 6),   m = 1 + r/2,
//	ν = −r(r−2)·skew / sqrt(16(r−1) − β1(r−2)²).
//
// The substitution t = tan(φ) maps the real line onto (−π/2, π/2) where
// the density becomes w(φ) = cos^r(φ)·exp(−νφ) — bounded with compact
// support — so the CDF can be tabulated accurately on a uniform grid and
// sampled by inverse transform. Heavy t-tails are resolved automatically
// because they compress into the neighborhoods of ±π/2.
func type4Sampler(skew, kurt float64) (func(*randx.RNG) float64, func(float64) float64, error) {
	b1 := skew * skew
	b2 := kurt
	denom := 2*b2 - 3*b1 - 6
	if denom <= 0 {
		return nil, nil, fmt.Errorf("pearson: type IV denominator %v <= 0", denom)
	}
	r := 6 * (b2 - b1 - 1) / denom
	if r <= 3 {
		return nil, nil, fmt.Errorf("pearson: type IV with r=%v <= 3 lacks a finite fourth moment", r)
	}
	inner := 16*(r-1) - b1*(r-2)*(r-2)
	if inner <= 0 {
		return nil, nil, fmt.Errorf("pearson: type IV scale term %v <= 0", inner)
	}
	nu := -r * (r - 2) * skew / math.Sqrt(inner)

	const gridN = 4097
	phis := numeric.Linspace(-math.Pi/2, math.Pi/2, gridN)
	// Work in log space: exponents r·log(cos φ) − ν·φ can overflow for
	// extreme ν; shift by the maximum before exponentiating.
	logw := make([]float64, gridN)
	maxLog := math.Inf(-1)
	for i, phi := range phis {
		c := math.Cos(phi)
		if c <= 0 {
			logw[i] = math.Inf(-1)
			continue
		}
		logw[i] = r*math.Log(c) - nu*phi
		if logw[i] > maxLog {
			maxLog = logw[i]
		}
	}
	w := make([]float64, gridN)
	for i, lw := range logw {
		if math.IsInf(lw, -1) {
			w[i] = 0
			continue
		}
		w[i] = math.Exp(lw - maxLog)
	}
	cdf := numeric.CumTrapezoid(phis, w)
	z := cdf[gridN-1]
	if z <= 0 || math.IsNaN(z) {
		return nil, nil, fmt.Errorf("pearson: type IV density integrated to %v", z)
	}
	// First two moments of t = tan(φ) by quadrature; the integrands
	// sin·cos^(r−1) and sin²·cos^(r−2) vanish at the endpoints for r > 3.
	var m1, m2 float64
	for i := 1; i < gridN; i++ {
		dphi := phis[i] - phis[i-1]
		t0, t1 := math.Tan(phis[i-1]), math.Tan(phis[i])
		f0, f1 := w[i-1], w[i]
		if i == 1 {
			t0 = 0 // endpoint weight is zero; avoid Inf·0
		}
		if i == gridN-1 {
			t1 = 0
		}
		m1 += 0.5 * (f0*t0 + f1*t1) * dphi
		m2 += 0.5 * (f0*t0*t0 + f1*t1*t1) * dphi
	}
	m1 /= z
	m2 /= z
	variance := m2 - m1*m1
	if variance <= 0 || math.IsNaN(variance) {
		return nil, nil, fmt.Errorf("pearson: type IV variance %v invalid", variance)
	}
	sd := math.Sqrt(variance)

	sample := func(rng *randx.RNG) float64 {
		u := rng.Float64() * z
		phi := numeric.InverseMonotone(phis, cdf, u)
		// Clamp a hair inside the support so tan stays finite.
		phi = numeric.Clamp(phi, phis[0]+1e-12, phis[gridN-1]-1e-12)
		return (math.Tan(phi) - m1) / sd
	}
	// Standardized density: f_std(zv) = sd·f_t(m1 + sd·zv), with the
	// t-space density recovered from the φ-space weight through
	// t = tan(φ): f_t(t) = w(φ)/z · cos²(φ).
	pdf := func(zv float64) float64 {
		t := m1 + sd*zv
		phi := math.Atan(t)
		c := math.Cos(phi)
		if c <= 0 {
			return 0
		}
		lw := r*math.Log(c) - nu*phi - maxLog
		return math.Exp(lw) / z * c * c * sd
	}
	return sample, pdf, nil
}
