package perfsim

import (
	"testing"

	"repro/internal/randx"
)

func BenchmarkRunSingle(b *testing.B) {
	m := NewMachine(NewIntelSystem())
	w, _ := FindWorkload("specomp/376")
	bench := m.Bench(w)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bench.Run(rng)
	}
}

func BenchmarkRun1000(b *testing.B) {
	m := NewMachine(NewAMDSystem())
	w, _ := FindWorkload("parsec/canneal")
	bench := m.Bench(w)
	rng := randx.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bench.RunN(rng, 1000)
	}
}

func BenchmarkNewRuntimeDist(b *testing.B) {
	w, _ := FindWorkload("mllib/correlation")
	s := NewIntelSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewRuntimeDist(w, s)
	}
}

func BenchmarkBuildRates(b *testing.B) {
	w, _ := FindWorkload("npb/cg")
	s := NewIntelSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buildRates(w, s)
	}
}
