package perfsim

import "fmt"

// metricKind categorizes how a counter accumulates during a run. The
// distinction drives how the per-second feature of the counter reacts to
// the run's outcome:
//
//   - workKind counters measure fixed work (instructions, loads): their
//     total is roughly constant per run, so slow runs show *lower*
//     per-second rates — exactly how real fixed-work benchmarks behave;
//   - timeKind counters accrue with wall time (cycles, stall cycles):
//     their per-second rate is roughly constant;
//   - missKind counters are the *cause* of slow modes (cache misses,
//     remote-node traffic): their totals are boosted in slow modes;
//   - osKind counters accrue with time and spike on straggler runs
//     (context switches, faults);
//   - clockKind counters are derived directly from the run duration
//     (duration_time, task-clock).
type metricKind int

const (
	workKind metricKind = iota
	timeKind
	missKind
	osKind
	clockKind
)

// metricSpec ties one Table II/III metric name to the latent event
// stream it observes.
type metricSpec struct {
	kind metricKind
	// rate extracts the nominal per-second rate from a rateSet.
	// Unused for clockKind.
	rate func(*rateSet) float64
	// noise is the lognormal per-run measurement-noise sigma.
	noise float64
	// modeSens scales how strongly slow performance modes inflate the
	// count (missKind and stall-type timeKind metrics).
	modeSens float64
	// tailSens scales how strongly straggler runs inflate the count.
	tailSens float64
	// freqSens couples the count to the run's frequency deviation.
	freqSens float64
}

// specFor resolves a metric name from either system's schema to its
// generator specification. Unknown names panic: the schema tables and
// this mapping must stay in sync (enforced by tests).
func specFor(name string) metricSpec {
	hw := 0.015 // baseline hardware-counter noise
	os := 0.18  // OS event counts are small and noisy
	switch name {
	// Core work counters.
	case "instructions", "inst_retired.any":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.ins }, noise: hw}
	case "macro_ops_retired":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.macroOps }, noise: hw}
	case "lsd.uops":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.lsdUops }, noise: 0.03}
	case "op_cache_hit_miss.all_op_cache_accesses":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.opCache }, noise: 0.02}

	// Cycle/time counters.
	case "cpu-cycles", "cpu_clk_unhalted.distributed":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.cycles }, noise: 0.008, freqSens: 1}
	case "ref-cycles":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.refCycles }, noise: 0.008}
	case "bus-cycles":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.busCycles }, noise: 0.01}
	case "slots":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.slots }, noise: 0.008, freqSens: 1}

	// Branches.
	case "branch-instructions", "branch-loads", "br_inst_retired.all_branches":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.branch }, noise: hw}
	case "branch-misses", "branch-load-misses", "br_misp_retired.all_branches":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.branchMiss }, noise: 0.03, modeSens: 0.3}
	case "bp_l1_btb_correct":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.btbL1 }, noise: 0.02}
	case "bp_l2_btb_correct":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.btbL2 }, noise: 0.02}

	// Generic cache events.
	case "cache-references":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.llcAccess }, noise: 0.025, modeSens: 0.2}
	case "cache-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.llcMissTotal }, noise: 0.04, modeSens: 1.2}

	// L1 data/instruction cache.
	case "L1-dcache-loads", "mem_inst_retired.all_loads":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.l1Load }, noise: hw}
	case "L1-dcache-stores", "mem_inst_retired.all_stores":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.l1Store }, noise: hw}
	case "L1-dcache-load-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l1Miss }, noise: 0.03, modeSens: 0.5}
	case "l1d.replacement", "l1_data_cache_fills_all":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l1Miss * 1.05 }, noise: 0.03, modeSens: 0.8}
	case "L1-dcache-prefetches":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.l1Prefetch }, noise: 0.04}
	case "L1-icache-loads", "ic_tag_hit_miss.instruction_cache_hit", "iTLB-loads":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.icLoad }, noise: 0.02}
	case "L1-icache-load-misses", "ic_tag_hit_miss.instruction_cache_miss":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.icMiss }, noise: 0.04, modeSens: 0.3}
	case "mem_inst_retired.lock_loads":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.lockLoad }, noise: 0.05}

	// L2.
	case "l2_lines_in.all":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l2Miss }, noise: 0.03, modeSens: 0.8}
	case "l2_rqsts.all_demand_miss", "l2_cache_misses_from_dc_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l2Miss }, noise: 0.03, modeSens: 1.0}
	case "l2_rqsts.all_rfo":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.l2RFO }, noise: 0.03}
	case "l2_trans.l2_wb":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l2WB }, noise: 0.04, modeSens: 0.5}
	case "l2_cache_accesses_from_dc_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l2Access }, noise: 0.03, modeSens: 0.5}
	case "l2_cache_accesses_from_ic_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.icMiss }, noise: 0.04, modeSens: 0.3}
	case "l2_cache_hits_from_dc_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.l2Hit }, noise: 0.03, modeSens: 0.3}
	case "l2_cache_hits_from_ic_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.icMiss * 0.9 }, noise: 0.04, modeSens: 0.2}
	case "l2_cache_hits_from_l2_hwpf":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.l2HWPF }, noise: 0.05}
	case "l2_cache_misses_from_ic_miss":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.icMiss * 0.1 }, noise: 0.06, modeSens: 0.3}

	// LLC / L3.
	case "LLC-loads":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.llcLoad }, noise: 0.03, modeSens: 0.3}
	case "LLC-load-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.llcLoadMiss }, noise: 0.04, modeSens: 1.5}
	case "LLC-stores":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.llcStore }, noise: 0.03}
	case "LLC-store-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.llcStoreMiss }, noise: 0.04, modeSens: 1.2}
	case "longest_lat_cache.miss":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.llcMissTotal }, noise: 0.04, modeSens: 1.4}
	case "l3_cache_accesses":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.llcAccess }, noise: 0.03, modeSens: 0.3}
	case "l3_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.llcMissTotal }, noise: 0.04, modeSens: 1.5}
	case "l1_data_cache_fills_from_memory":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.memFill }, noise: 0.04, modeSens: 1.5}
	case "l1_data_cache_fills_from_remote_node":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.remoteFill }, noise: 0.06, modeSens: 3.0}
	case "l1_data_cache_fills_from_external_ccx_cache":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.ccxExternal }, noise: 0.05, modeSens: 2.0}
	case "l1_data_cache_fills_from_within_same_ccx":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.ccxLocal }, noise: 0.04}

	// TLBs.
	case "dTLB-loads":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.dtlbLoad }, noise: hw}
	case "dTLB-stores":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.dtlbStore }, noise: hw}
	case "dTLB-load-misses", "l1_dtlb_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.dtlbLoadMiss }, noise: 0.04, modeSens: 1.0}
	case "dTLB-store-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.dtlbStoreMiss }, noise: 0.04, modeSens: 0.9}
	case "l2_dtlb_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.dtlbLoadMiss * 0.3 }, noise: 0.05, modeSens: 1.1}
	case "iTLB-load-misses", "bp_l1_tlb_miss_l2_tlb_miss":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.itlbMiss }, noise: 0.05, modeSens: 0.4}
	case "l2_itlb_misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.itlbMiss * 0.5 }, noise: 0.06, modeSens: 0.4}
	case "dtlb_load_misses.stlb_hit":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.stlbHit }, noise: 0.05, modeSens: 0.8}
	case "dtlb_store_misses.stlb_hit":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.stlbHit * 0.4 }, noise: 0.05, modeSens: 0.8}
	case "itlb_misses.stlb_hit", "bp_l1_tlb_miss_l2_tlb_hit":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.itlbMiss * 0.6 }, noise: 0.06, modeSens: 0.4}
	case "bp_tlb_rel":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.itlbLoad * 0.01 }, noise: 0.06}
	case "all_tlbs_flushed":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.tlbFlush }, noise: os, tailSens: 0.5}

	// NUMA node traffic.
	case "node-loads":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.nodeLoad }, noise: 0.04, modeSens: 0.5}
	case "node-load-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.nodeLoadMiss }, noise: 0.06, modeSens: 3.0}
	case "node-stores":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.nodeStore }, noise: 0.04, modeSens: 0.5}
	case "node-store-misses":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.nodeStoreMiss }, noise: 0.06, modeSens: 2.5}
	case "ls_sw_pf_dc_fills.mem_io_local":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.swPfLocal }, noise: 0.05}
	case "ls_sw_pf_dc_fills.mem_io_remote":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.swPfRemote }, noise: 0.07, modeSens: 2.5}
	case "ls_hw_pf_dc_fills.mem_io_local":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.hwPfLocal }, noise: 0.05}
	case "ls_hw_pf_dc_fills.mem_io_remote":
		return metricSpec{kind: missKind, rate: func(r *rateSet) float64 { return r.hwPfRemote }, noise: 0.07, modeSens: 2.5}

	// Sampled memory events.
	case "mem-loads":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.memSampleLoad }, noise: 0.1}
	case "mem-stores":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.memSampleStore }, noise: 0.1}

	// Stalls and topdown.
	case "cycle_activity.stalls_total":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.stallTotal }, noise: 0.02, modeSens: 0.5}
	case "cycle_activity.stalls_l3_miss":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.stallL3 }, noise: 0.03, modeSens: 1.5}
	case "stalled-cycles-backend":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.stallBack }, noise: 0.02, modeSens: 0.8}
	case "stalled-cycles-frontend", "ic_fetch_stall.ic_stall_any":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.stallFront }, noise: 0.02, modeSens: 0.2}
	case "topdown.backend_bound_slots":
		//lint:allow floatcheck r.cycles = activeCores(>=1) * FreqGHz(>0 in the static system specs) * 1e9
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.stallBack * r.slots / r.cycles * 0.8 }, noise: 0.02, modeSens: 0.8}
	case "resource_stalls.sb":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.sbStall }, noise: 0.03, modeSens: 0.4}
	case "resource_stalls.scoreboard":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.sbStall * 0.6 }, noise: 0.03, modeSens: 0.3}
	case "sse_avx_stalls":
		return metricSpec{kind: timeKind, rate: func(r *rateSet) float64 { return r.sseStall }, noise: 0.04}

	// Floating point.
	case "fp_ret_sse_avx_ops.all":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.fpOps }, noise: 0.01}
	case "fpu_pipe_assignment.total":
		return metricSpec{kind: workKind, rate: func(r *rateSet) float64 { return r.fpPipe }, noise: 0.015}
	case "assists.fp":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.fpAssist }, noise: os}
	case "assists.any":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.anyAssist }, noise: os}

	// OS events.
	case "context-switches":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.ctxSwitch }, noise: 0.12, tailSens: 1.5}
	case "cgroup-switches":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.cgroupSwitch }, noise: 0.2, tailSens: 1.0}
	case "cpu-migrations":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.migration }, noise: 0.25, tailSens: 1.0}
	case "minor-faults":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.minorFault }, noise: 0.08, tailSens: 0.5}
	case "major-faults":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.majorFault }, noise: 0.4, tailSens: 3.0}
	case "page-faults":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.pageFault }, noise: 0.08, tailSens: 0.6}
	case "alignment-faults":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.alignFault }, noise: os}
	case "emulation-faults":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.emuFault }, noise: os}
	case "bpf-output":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.bpfOutput }, noise: os}
	case "ls_int_taken":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.intTaken }, noise: 0.1, tailSens: 0.8}
	case "unc_cha_tor_inserts.io_hit":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.ioHit }, noise: 0.1, tailSens: 1.0}
	case "unc_cha_tor_inserts.io_miss":
		return metricSpec{kind: osKind, rate: func(r *rateSet) float64 { return r.ioMiss }, noise: 0.12, tailSens: 1.0}

	// Clock metrics.
	case "duration_time", "task-clock", "cpu-clock":
		return metricSpec{kind: clockKind}
	}
	panic(fmt.Sprintf("perfsim: no spec for metric %q", name))
}
