package perfsim

// IntelMetricNames reproduces Table II of the paper: the 68 profiling
// metrics collected with Linux perf on the Intel Xeon Platinum 8358
// system, in table order (IDs 0–67).
var IntelMetricNames = []string{
	"branch-instructions",           // 0
	"branch-misses",                 // 1
	"bus-cycles",                    // 2
	"cache-misses",                  // 3
	"cache-references",              // 4
	"cpu-cycles",                    // 5
	"instructions",                  // 6
	"ref-cycles",                    // 7
	"alignment-faults",              // 8
	"bpf-output",                    // 9
	"cgroup-switches",               // 10
	"context-switches",              // 11
	"cpu-clock",                     // 12
	"cpu-migrations",                // 13
	"emulation-faults",              // 14
	"major-faults",                  // 15
	"minor-faults",                  // 16
	"page-faults",                   // 17
	"task-clock",                    // 18
	"duration_time",                 // 19
	"L1-dcache-load-misses",         // 20
	"L1-dcache-loads",               // 21
	"L1-dcache-stores",              // 22
	"l1d.replacement",               // 23
	"L1-icache-load-misses",         // 24
	"l2_lines_in.all",               // 25
	"l2_rqsts.all_demand_miss",      // 26
	"l2_rqsts.all_rfo",              // 27
	"l2_trans.l2_wb",                // 28
	"LLC-load-misses",               // 29
	"LLC-loads",                     // 30
	"LLC-store-misses",              // 31
	"LLC-stores",                    // 32
	"longest_lat_cache.miss",        // 33
	"mem_inst_retired.all_loads",    // 34
	"mem_inst_retired.all_stores",   // 35
	"mem_inst_retired.lock_loads",   // 36
	"branch-load-misses",            // 37
	"branch-loads",                  // 38
	"dTLB-load-misses",              // 39
	"dTLB-loads",                    // 40
	"dTLB-store-misses",             // 41
	"dTLB-stores",                   // 42
	"iTLB-load-misses",              // 43
	"node-load-misses",              // 44
	"node-loads",                    // 45
	"node-store-misses",             // 46
	"node-stores",                   // 47
	"mem-loads",                     // 48
	"mem-stores",                    // 49
	"slots",                         // 50
	"assists.fp",                    // 51
	"cycle_activity.stalls_l3_miss", // 52
	"assists.any",                   // 53
	"topdown.backend_bound_slots",   // 54
	"br_inst_retired.all_branches",  // 55
	"br_misp_retired.all_branches",  // 56
	"cpu_clk_unhalted.distributed",  // 57
	"cycle_activity.stalls_total",   // 58
	"inst_retired.any",              // 59
	"lsd.uops",                      // 60
	"resource_stalls.sb",            // 61
	"resource_stalls.scoreboard",    // 62
	"dtlb_load_misses.stlb_hit",     // 63
	"dtlb_store_misses.stlb_hit",    // 64
	"itlb_misses.stlb_hit",          // 65
	"unc_cha_tor_inserts.io_hit",    // 66
	"unc_cha_tor_inserts.io_miss",   // 67
}

// AMDMetricNames reproduces Table III of the paper: the 75 profiling
// metrics collected on the AMD EPYC 7543 system, in table order
// (IDs 0–74). The paper's list repeats several core events (they appear
// in two perf event groups); the duplicates are preserved so the feature
// vector matches the paper's dimensionality exactly.
var AMDMetricNames = []string{
	"branch-instructions",                         // 0
	"branch-misses",                               // 1
	"cache-misses",                                // 2
	"cache-references",                            // 3
	"cpu-cycles",                                  // 4
	"instructions",                                // 5
	"stalled-cycles-backend",                      // 6
	"stalled-cycles-frontend",                     // 7
	"alignment-faults",                            // 8
	"bpf-output",                                  // 9
	"cgroup-switches",                             // 10
	"context-switches",                            // 11
	"cpu-clock",                                   // 12
	"cpu-migrations",                              // 13
	"emulation-faults",                            // 14
	"major-faults",                                // 15
	"minor-faults",                                // 16
	"page-faults",                                 // 17
	"task-clock",                                  // 18
	"duration_time",                               // 19
	"L1-dcache-load-misses",                       // 20
	"L1-dcache-loads",                             // 21
	"L1-dcache-prefetches",                        // 22
	"L1-icache-load-misses",                       // 23
	"L1-icache-loads",                             // 24
	"branch-load-misses",                          // 25
	"branch-loads",                                // 26
	"dTLB-load-misses",                            // 27
	"dTLB-loads",                                  // 28
	"iTLB-load-misses",                            // 29
	"iTLB-loads",                                  // 30
	"branch-instructions",                         // 31 (second event group)
	"branch-misses",                               // 32
	"cache-misses",                                // 33
	"cache-references",                            // 34
	"cpu-cycles",                                  // 35
	"stalled-cycles-backend",                      // 36
	"stalled-cycles-frontend",                     // 37
	"bp_l2_btb_correct",                           // 38
	"bp_tlb_rel",                                  // 39
	"bp_l1_tlb_miss_l2_tlb_hit",                   // 40
	"bp_l1_tlb_miss_l2_tlb_miss",                  // 41
	"ic_fetch_stall.ic_stall_any",                 // 42
	"ic_tag_hit_miss.instruction_cache_hit",       // 43
	"ic_tag_hit_miss.instruction_cache_miss",      // 44
	"op_cache_hit_miss.all_op_cache_accesses",     // 45
	"fp_ret_sse_avx_ops.all",                      // 46
	"fpu_pipe_assignment.total",                   // 47
	"l1_data_cache_fills_all",                     // 48
	"l1_data_cache_fills_from_external_ccx_cache", // 49
	"l1_data_cache_fills_from_memory",             // 50
	"l1_data_cache_fills_from_remote_node",        // 51
	"l1_data_cache_fills_from_within_same_ccx",    // 52
	"l1_dtlb_misses",                              // 53
	"l2_cache_accesses_from_dc_misses",            // 54
	"l2_cache_accesses_from_ic_misses",            // 55
	"l2_cache_hits_from_dc_misses",                // 56
	"l2_cache_hits_from_ic_misses",                // 57
	"l2_cache_hits_from_l2_hwpf",                  // 58
	"l2_cache_misses_from_dc_misses",              // 59
	"l2_cache_misses_from_ic_miss",                // 60
	"l2_dtlb_misses",                              // 61
	"l2_itlb_misses",                              // 62
	"macro_ops_retired",                           // 63
	"sse_avx_stalls",                              // 64
	"l3_cache_accesses",                           // 65
	"l3_misses",                                   // 66
	"ls_sw_pf_dc_fills.mem_io_local",              // 67
	"ls_sw_pf_dc_fills.mem_io_remote",             // 68
	"ls_hw_pf_dc_fills.mem_io_local",              // 69
	"ls_hw_pf_dc_fills.mem_io_remote",             // 70
	"ls_int_taken",                                // 71
	"all_tlbs_flushed",                            // 72
	"instructions",                                // 73 (second event group)
	"bp_l1_btb_correct",                           // 74
}
