package perfsim

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

func TestMetricTablesMatchPaperCardinality(t *testing.T) {
	if got := len(IntelMetricNames); got != 68 {
		t.Errorf("Intel metric count = %d, want 68 (Table II)", got)
	}
	if got := len(AMDMetricNames); got != 75 {
		t.Errorf("AMD metric count = %d, want 75 (Table III)", got)
	}
}

func TestEveryMetricHasSpec(t *testing.T) {
	for _, name := range IntelMetricNames {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Intel metric %q: %v", name, r)
				}
			}()
			specFor(name)
		}()
	}
	for _, name := range AMDMetricNames {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("AMD metric %q: %v", name, r)
				}
			}()
			specFor(name)
		}()
	}
}

func TestSpecForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown metric")
		}
	}()
	specFor("definitely-not-a-metric")
}

func TestTableIPopulation(t *testing.T) {
	ws := TableI()
	if len(ws) != 60 {
		t.Fatalf("Table I has %d benchmarks, want 60", len(ws))
	}
	suiteCounts := map[string]int{}
	seen := map[string]bool{}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("invalid workload: %v", err)
		}
		if seen[w.ID()] {
			t.Errorf("duplicate benchmark %s", w.ID())
		}
		seen[w.ID()] = true
		suiteCounts[w.Suite]++
	}
	want := map[string]int{
		"npb": 9, "parsec": 9, "specomp": 5, "specaccel": 8,
		"parboil": 8, "rodinia": 10, "mllib": 11,
	}
	for suite, n := range want {
		if suiteCounts[suite] != n {
			t.Errorf("suite %s has %d benchmarks, want %d", suite, suiteCounts[suite], n)
		}
	}
}

func TestFindWorkload(t *testing.T) {
	w, ok := FindWorkload("specomp/376")
	if !ok || w.Name != "376" {
		t.Fatalf("FindWorkload failed: %v %v", w, ok)
	}
	if _, ok := FindWorkload("nope/nothing"); ok {
		t.Error("found a nonexistent workload")
	}
}

func TestWorkloadHashStableAndSpread(t *testing.T) {
	w := Workload{Suite: "npb", Name: "bt"}
	if w.hashFloat("x") != w.hashFloat("x") {
		t.Error("hash not stable")
	}
	if w.hashFloat("x") == w.hashFloat("y") {
		t.Error("different salts should differ")
	}
	w2 := Workload{Suite: "npb", Name: "cg"}
	if w.hashFloat("x") == w2.hashFloat("x") {
		t.Error("different benchmarks should differ")
	}
	for _, salt := range []string{"a", "b", "c", "d"} {
		v := w.hashFloat(salt)
		if v < -1 || v >= 1 {
			t.Errorf("hashFloat(%q) = %v outside [-1,1)", salt, v)
		}
		u := w.hash01(salt)
		if u < 0 || u >= 1 {
			t.Errorf("hash01(%q) = %v outside [0,1)", salt, u)
		}
	}
}

func TestRuntimeDistDeterministic(t *testing.T) {
	w, _ := FindWorkload("specomp/376")
	s := NewIntelSystem()
	d1 := NewRuntimeDist(w, s)
	d2 := NewRuntimeDist(w, s)
	if d1.BaseSeconds != d2.BaseSeconds || len(d1.Modes) != len(d2.Modes) {
		t.Fatal("RuntimeDist not deterministic")
	}
	for i := range d1.Modes {
		if d1.Modes[i] != d2.Modes[i] {
			t.Fatal("modes differ between constructions")
		}
	}
}

func TestSpecOMP376IsBimodalWithFasterLargerMode(t *testing.T) {
	// The paper's Figure 1 shows 376 with two modes, the larger faster.
	w, _ := FindWorkload("specomp/376")
	d := NewRuntimeDist(w, NewIntelSystem())
	if d.NumModes() < 2 {
		t.Fatalf("376 has %d modes, want >= 2", d.NumModes())
	}
	if d.Modes[0].Weight <= d.Modes[1].Weight {
		t.Errorf("primary mode weight %v not larger than secondary %v",
			d.Modes[0].Weight, d.Modes[1].Weight)
	}
	if d.Modes[0].Center >= d.Modes[1].Center {
		t.Errorf("primary mode center %v not faster than secondary %v",
			d.Modes[0].Center, d.Modes[1].Center)
	}
	// The KDE of a large sample must actually show 2+ modes.
	rel := stats.Normalize(d.SampleN(randx.New(1), 4000))
	modes := stats.NewKDE(rel).CountModes(1024, 0.08)
	if modes < 2 {
		t.Errorf("sampled 376 distribution shows %d modes, want >= 2", modes)
	}
}

func TestNarrowBenchmarksAreNarrow(t *testing.T) {
	s := NewIntelSystem()
	for _, id := range []string{"specaccel/359", "rodinia/heartwall", "npb/ep"} {
		w, ok := FindWorkload(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		d := NewRuntimeDist(w, s)
		rel := stats.Normalize(d.SampleN(randx.New(2), 3000))
		if sd := stats.StdDev(rel); sd > 0.03 {
			t.Errorf("%s relative std = %v, want < 0.03 (narrow)", id, sd)
		}
	}
}

func TestWideBenchmarksAreWider(t *testing.T) {
	s := NewIntelSystem()
	narrow, _ := FindWorkload("specaccel/359")
	for _, id := range []string{"specaccel/303", "parboil/mrigridding", "parsec/canneal"} {
		w, ok := FindWorkload(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		dn := NewRuntimeDist(narrow, s)
		dw := NewRuntimeDist(w, s)
		sdN := stats.StdDev(stats.Normalize(dn.SampleN(randx.New(3), 3000)))
		sdW := stats.StdDev(stats.Normalize(dw.SampleN(randx.New(3), 3000)))
		if sdW < 2.5*sdN {
			t.Errorf("%s std %v not clearly wider than 359's %v", id, sdW, sdN)
		}
	}
}

func TestStreamclusterHasLongRightTail(t *testing.T) {
	w, _ := FindWorkload("parsec/streamcluster")
	d := NewRuntimeDist(w, NewIntelSystem())
	rel := stats.Normalize(d.SampleN(randx.New(4), 6000))
	if skew := stats.Skewness(rel); skew < 1 {
		t.Errorf("streamcluster skewness = %v, want > 1 (long right tail)", skew)
	}
}

func TestDistributionShapeDiversity(t *testing.T) {
	// Figure 3's headline: shapes vary widely across benchmarks. Check
	// the population spans narrow to wide and unimodal to multimodal.
	s := NewIntelSystem()
	rng := randx.New(5)
	var stds []float64
	multimodal := 0
	for _, w := range TableI() {
		d := NewRuntimeDist(w, s)
		rel := stats.Normalize(d.SampleN(rng.Split(), 2000))
		stds = append(stds, stats.StdDev(rel))
		if stats.NewKDE(rel).CountModes(512, 0.08) >= 2 {
			multimodal++
		}
	}
	min, max := stats.MinMax(stds)
	if max/min < 8 {
		t.Errorf("std spread %v..%v too homogeneous (ratio %v)", min, max, max/min)
	}
	if multimodal < 8 {
		t.Errorf("only %d/60 benchmarks multimodal, want >= 8", multimodal)
	}
	if multimodal > 45 {
		t.Errorf("%d/60 benchmarks multimodal, want unimodal majority mix", multimodal)
	}
}

func TestMeanSecondsMatchesSampleMean(t *testing.T) {
	w, _ := FindWorkload("npb/lu")
	d := NewRuntimeDist(w, NewIntelSystem())
	got := stats.Mean(d.SampleN(randx.New(6), 20000))
	want := d.MeanSeconds()
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("sample mean %v vs analytic %v", got, want)
	}
}

func TestSystemsDiffer(t *testing.T) {
	intel, amd := NewIntelSystem(), NewAMDSystem()
	if intel.NumMetrics() != 68 || amd.NumMetrics() != 75 {
		t.Errorf("metric counts: intel=%d amd=%d", intel.NumMetrics(), amd.NumMetrics())
	}
	if intel.String() == amd.String() {
		t.Error("systems should describe themselves differently")
	}
	// Same workload must yield different distributions on the two
	// systems (different geometry) yet correlated difficulty.
	w, _ := FindWorkload("specaccel/303")
	di := NewRuntimeDist(w, intel)
	da := NewRuntimeDist(w, amd)
	if di.BaseSeconds == da.BaseSeconds {
		t.Error("base seconds identical across systems")
	}
}

func TestRunProducesFiniteMetrics(t *testing.T) {
	m := NewMachine(NewIntelSystem())
	rng := randx.New(7)
	for _, w := range TableI()[:10] {
		b := m.Bench(w)
		run := b.Run(rng)
		if run.Seconds <= 0 {
			t.Fatalf("%s: non-positive duration %v", w.ID(), run.Seconds)
		}
		if len(run.Metrics) != 68 {
			t.Fatalf("%s: %d metrics, want 68", w.ID(), len(run.Metrics))
		}
		for i, v := range run.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s: metric %s = %v", w.ID(), m.System.MetricNames[i], v)
			}
		}
	}
}

func TestDurationMetricMatchesSeconds(t *testing.T) {
	m := NewMachine(NewIntelSystem())
	w, _ := FindWorkload("npb/ep")
	b := m.Bench(w)
	run := b.Run(randx.New(8))
	var durIdx int = -1
	for i, name := range m.System.MetricNames {
		if name == "duration_time" {
			durIdx = i
		}
	}
	if durIdx < 0 {
		t.Fatal("duration_time missing from schema")
	}
	if math.Abs(run.Metrics[durIdx]-run.Seconds*1e9) > 1 {
		t.Errorf("duration_time = %v, want %v", run.Metrics[durIdx], run.Seconds*1e9)
	}
}

func TestSlowModeInflatesRemoteTraffic(t *testing.T) {
	// For a NUMA-sensitive bimodal benchmark, runs landing in the slow
	// mode must show more node-load-misses per second: the physical
	// coupling that lets few-run profiles reveal distribution shape.
	m := NewMachine(NewIntelSystem())
	w, _ := FindWorkload("specaccel/303")
	b := m.Bench(w)
	if b.Dist.NumModes() < 2 {
		t.Fatalf("303 should be multimodal, has %d modes", b.Dist.NumModes())
	}
	idx := -1
	for i, name := range m.System.MetricNames {
		if name == "node-load-misses" {
			idx = i
		}
	}
	rng := randx.New(9)
	var fastSum, slowSum float64
	var fastN, slowN int
	for i := 0; i < 3000; i++ {
		run := b.Run(rng)
		rate := run.Metrics[idx] / run.Seconds
		if run.Latent.Mode == 0 {
			fastSum += rate
			fastN++
		} else {
			slowSum += rate
			slowN++
		}
	}
	if fastN == 0 || slowN == 0 {
		t.Fatalf("modes not both visited: fast=%d slow=%d", fastN, slowN)
	}
	fastMean := fastSum / float64(fastN)
	slowMean := slowSum / float64(slowN)
	if slowMean < 1.2*fastMean {
		t.Errorf("slow-mode node-load-miss rate %v not clearly above fast-mode %v", slowMean, fastMean)
	}
}

func TestWorkCountersDropPerSecondOnSlowRuns(t *testing.T) {
	// Fixed-work counters (instructions) must yield lower per-second
	// rates on slower runs.
	m := NewMachine(NewIntelSystem())
	w, _ := FindWorkload("specomp/376")
	b := m.Bench(w)
	idx := -1
	for i, name := range m.System.MetricNames {
		if name == "instructions" {
			idx = i
		}
	}
	rng := randx.New(10)
	type obs struct{ sec, rate float64 }
	var runs []obs
	for i := 0; i < 2000; i++ {
		r := b.Run(rng)
		runs = append(runs, obs{r.Seconds, r.Metrics[idx] / r.Seconds})
	}
	// Correlation between duration and instruction rate must be negative.
	var ms, mr float64
	for _, o := range runs {
		ms += o.sec
		mr += o.rate
	}
	ms /= float64(len(runs))
	mr /= float64(len(runs))
	var cov, vs, vr float64
	for _, o := range runs {
		cov += (o.sec - ms) * (o.rate - mr)
		vs += (o.sec - ms) * (o.sec - ms)
		vr += (o.rate - mr) * (o.rate - mr)
	}
	corr := cov / math.Sqrt(vs*vr)
	if corr > -0.3 {
		t.Errorf("duration/instruction-rate correlation = %v, want clearly negative", corr)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	m := NewMachine(NewAMDSystem())
	w, _ := FindWorkload("mllib/kmeans")
	b := m.Bench(w)
	r1 := b.RunN(randx.New(11), 5)
	r2 := b.RunN(randx.New(11), 5)
	for i := range r1 {
		if r1[i].Seconds != r2[i].Seconds {
			t.Fatal("runs not deterministic")
		}
		for j := range r1[i].Metrics {
			if r1[i].Metrics[j] != r2[i].Metrics[j] {
				t.Fatal("metrics not deterministic")
			}
		}
	}
}

func TestSecondsHelper(t *testing.T) {
	runs := []Run{{Seconds: 1}, {Seconds: 2.5}}
	s := Seconds(runs)
	if len(s) != 2 || s[0] != 1 || s[1] != 2.5 {
		t.Errorf("Seconds = %v", s)
	}
}

func TestWorkloadValidateCatchesBadValues(t *testing.T) {
	w, _ := FindWorkload("npb/bt")
	w.Compute = 1.5
	if err := w.Validate(); err == nil {
		t.Error("Compute > 1 should fail validation")
	}
	w2, _ := FindWorkload("npb/bt")
	w2.BaseSeconds = 0
	if err := w2.Validate(); err == nil {
		t.Error("zero BaseSeconds should fail validation")
	}
	w3 := Workload{Name: "x", BaseSeconds: 1, WorkingSetMB: 1}
	if err := w3.Validate(); err == nil {
		t.Error("empty suite should fail validation")
	}
}
