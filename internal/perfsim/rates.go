package perfsim

import "math"

// rateSet holds the nominal per-second rates of the latent hardware and
// OS event streams of one (workload, system) pair. Every metric in
// Tables II/III maps onto one of these latents (see specFor); the
// mapping is deterministic, so a benchmark has a stable counter
// signature that reflects its workload characteristics — the property
// the paper's predictors learn from.
type rateSet struct {
	activeCores float64

	cycles, refCycles, busCycles, slots float64
	ins, uops, macroOps                 float64

	branch, branchMiss, btbL1, btbL2 float64

	l1Load, l1Store, l1Miss, l1Prefetch                                   float64
	icLoad, icMiss                                                        float64
	l2Access, l2Hit, l2Miss, l2RFO, l2WB, l2HWPF                          float64
	llcAccess, llcLoad, llcLoadMiss, llcStore, llcStoreMiss, llcMissTotal float64

	dtlbLoad, dtlbStore, dtlbLoadMiss, dtlbStoreMiss float64
	itlbLoad, itlbMiss, stlbHit, tlbFlush            float64

	nodeLoad, nodeLoadMiss, nodeStore, nodeStoreMiss float64
	ccxLocal, ccxExternal, memFill, remoteFill       float64
	swPfLocal, swPfRemote, hwPfLocal, hwPfRemote     float64

	pageFault, minorFault, majorFault  float64
	ctxSwitch, cgroupSwitch, migration float64
	emuFault, alignFault, bpfOutput    float64
	intTaken                           float64

	stallTotal, stallFront, stallBack, stallL3, sbStall float64
	fpOps, fpPipe, fpAssist, anyAssist, sseStall        float64
	lockLoad, lsdUops, opCache                          float64
	ioHit, ioMiss                                       float64
	memSampleLoad, memSampleStore                       float64
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// buildRates derives the nominal event rates of w on s. Each rate picks
// up a small stable per-benchmark perturbation (from the workload hash)
// so that applications with similar characteristics remain
// distinguishable, exactly as real applications are.
func buildRates(w Workload, s *System) *rateSet {
	pert := func(salt string) float64 { return math.Exp(0.22 * w.hashFloat(salt)) }

	r := &rateSet{}
	r.activeCores = math.Max(1, w.Parallelism*float64(s.Cores))

	// Cache-fit ratios: how badly the working set overflows each level.
	//lint:allow floatcheck r.activeCores is math.Max(1, ...) one line above, so it is >= 1
	perCoreWS := w.WorkingSetMB / r.activeCores
	fitL1 := perCoreWS / (perCoreWS + s.L1KB/1024)
	fitL2 := perCoreWS / (perCoreWS + s.L2KB/1024)
	fitL3 := w.WorkingSetMB / (w.WorkingSetMB + s.L3MB)

	r.cycles = r.activeCores * s.FreqGHz * 1e9
	r.refCycles = r.cycles * 0.96
	r.busCycles = r.cycles / 8
	r.slots = r.cycles * s.PipelineWidth

	effMem := w.Memory * (0.3 + 0.7*fitL3)
	ipc := clampRange(0.5+2.0*w.Compute-1.0*effMem-0.3*w.Branch, 0.25, 3.2) * pert("ipc")
	r.ins = r.cycles * ipc
	r.uops = r.ins * (1.1 + 0.2*pert("uops"))
	r.macroOps = r.ins * 1.08
	r.lsdUops = r.ins * (0.05 + 0.25*w.Compute) * pert("lsd")
	r.opCache = r.ins * (0.6 + 0.3*(1-w.Branch))

	r.branch = r.ins * (0.04 + 0.16*w.Branch) * pert("br")
	r.branchMiss = r.branch * (0.002 + 0.09*w.Branch*w.Branch) * pert("brm")
	r.btbL1 = r.branch * 0.70
	r.btbL2 = r.branch * 0.22

	loadShare := 0.18 + 0.18*w.Memory
	r.l1Load = r.ins * loadShare * pert("l1l")
	r.l1Store = r.l1Load * (0.35 + 0.2*w.hash01("st"))
	// Page-allocation sensitivity manifests as conflict-miss pressure in
	// L1/L2 and the dTLB — the physical mechanism behind discrete modes.
	conflict := 0.3 * w.PageSensitivity
	r.l1Miss = r.l1Load * clampRange(0.004+0.09*fitL1*(0.3+0.7*w.Memory)+0.02*conflict, 0.001, 0.3) * pert("l1m")
	r.l1Prefetch = r.l1Miss * (0.8 + 0.6*w.hash01("pf"))
	r.icLoad = r.ins * 0.28
	r.icMiss = r.icLoad * (0.0005 + 0.01*w.Branch) * pert("icm")

	r.l2Access = r.l1Miss * (1.05 + 0.5*w.hash01("l2a"))
	r.l2Miss = r.l2Access * clampRange(0.05+0.75*fitL2+0.05*conflict, 0.02, 0.95) * pert("l2m")
	r.l2Hit = r.l2Access - r.l2Miss
	r.l2RFO = r.l1Store * 0.12
	r.l2WB = r.l2Miss * (0.3 + 0.3*w.hash01("wb"))
	r.l2HWPF = r.l2Access * (0.2 + 0.4*w.hash01("hwpf"))

	r.llcLoad = r.l2Miss * 0.78
	r.llcStore = r.l2Miss * 0.22
	llcMissRatio := clampRange(0.08+0.85*fitL3, 0.02, 0.98) * pert("l3m")
	r.llcLoadMiss = r.llcLoad * llcMissRatio
	r.llcStoreMiss = r.llcStore * llcMissRatio * 0.9
	r.llcAccess = r.llcLoad + r.llcStore
	r.llcMissTotal = r.llcLoadMiss + r.llcStoreMiss

	pageWalk := 0.0008 + 0.02*fitL3 + 0.03*conflict
	r.dtlbLoad = r.l1Load
	r.dtlbStore = r.l1Store
	r.dtlbLoadMiss = r.dtlbLoad * pageWalk * pert("tlb")
	r.dtlbStoreMiss = r.dtlbStore * pageWalk * 0.8
	r.itlbLoad = r.icLoad
	r.itlbMiss = r.icLoad * (0.0001 + 0.002*w.Branch)
	r.stlbHit = r.dtlbLoadMiss * 0.6
	r.tlbFlush = 0.5 + 40*w.GC

	// NUMA traffic split: LLC misses are served locally or remotely.
	numaShare := clamp01(0.03 + 0.55*w.NUMASensitivity*s.NUMAEffect)
	r.nodeLoad = r.llcLoadMiss
	r.nodeLoadMiss = r.nodeLoad * numaShare
	r.nodeStore = r.llcStoreMiss
	r.nodeStoreMiss = r.nodeStore * numaShare * 0.9
	r.memFill = r.llcMissTotal
	r.remoteFill = r.llcMissTotal * numaShare
	r.ccxExternal = r.l2Miss * clamp01(0.05+0.4*w.NUMASensitivity)
	r.ccxLocal = r.l2Miss * 0.5
	prefetchLocal := r.llcMissTotal * (0.15 + 0.25*w.hash01("swpf"))
	r.swPfLocal = prefetchLocal * 0.4
	r.swPfRemote = prefetchLocal * 0.4 * numaShare
	r.hwPfLocal = prefetchLocal
	r.hwPfRemote = prefetchLocal * numaShare

	// OS-level events (per second, whole node).
	r.minorFault = (40 + 2500*w.GC + 300*w.Memory + 150*w.IO) * pert("mnf")
	r.majorFault = 0.05 + 6*w.IO
	r.pageFault = r.minorFault + r.majorFault
	r.ctxSwitch = (25 + 3500*w.Sync + 2200*w.IO + 1600*w.GC) * (r.activeCores / 64) * pert("ctx")
	r.cgroupSwitch = r.ctxSwitch * 0.015
	r.migration = (0.8 + 25*w.Sync*s.SchedJitter + 8*w.GC) * pert("mig")
	r.emuFault = 0.001
	r.alignFault = 0.001
	r.bpfOutput = 0.001
	r.intTaken = 80 + 1200*w.IO + 0.001*r.ctxSwitch
	r.ioHit = (10 + 5e4*w.IO) * pert("io")
	r.ioMiss = r.ioHit * 0.3

	// Pipeline stalls.
	r.stallBack = r.cycles * clampRange(0.06+0.6*effMem, 0.02, 0.9)
	r.stallFront = r.cycles * clampRange(0.03+0.12*w.Branch+0.05*w.GC, 0.01, 0.5)
	r.stallL3 = r.cycles * clampRange(0.45*effMem*fitL3, 0, 0.7)
	r.stallTotal = r.stallBack + r.stallFront
	r.sbStall = r.cycles * clampRange(0.02+0.15*w.Memory*(0.3+0.7*w.hash01("sb")), 0, 0.4)

	r.fpOps = r.ins * w.FPShare * (0.3 + 0.25*pert("fp"))
	r.fpPipe = r.fpOps * 1.05
	r.fpAssist = 0.01 + 2*w.FPShare
	r.anyAssist = r.fpAssist*1.2 + 0.5
	r.sseStall = r.cycles * 0.01 * w.FPShare

	r.lockLoad = r.ins * 0.0004 * (1 + 20*w.Sync)
	r.memSampleLoad = r.l1Load * 2e-5
	r.memSampleStore = r.l1Store * 2e-5
	return r
}
