package perfsim

import (
	"math"

	"repro/internal/randx"
)

// Run is one simulated execution of a benchmark on a system: the wall
// time plus the raw perf-counter totals for the run, aligned with the
// system's MetricNames. Counters are raw totals (not rates) — exactly
// what `perf stat` emits — so the feature pipeline normalizes them per
// second just as the paper does.
type Run struct {
	Seconds float64
	Metrics []float64
	Latent  RunLatent
}

// Machine binds a System to its compiled metric specifications.
type Machine struct {
	System *System
	specs  []metricSpec
}

// NewMachine compiles the system's metric schema.
func NewMachine(s *System) *Machine {
	m := &Machine{System: s, specs: make([]metricSpec, len(s.MetricNames))}
	for i, name := range s.MetricNames {
		m.specs[i] = specFor(name)
	}
	return m
}

// BenchInstance is a benchmark staged on a machine: its ground-truth
// run-time distribution and nominal counter rates, ready for repeated
// execution.
type BenchInstance struct {
	Machine  *Machine
	Workload Workload
	Dist     *RuntimeDist
	rates    *rateSet
	meanSec  float64
}

// Bench stages a workload on the machine.
func (m *Machine) Bench(w Workload) *BenchInstance {
	dist := NewRuntimeDist(w, m.System)
	return &BenchInstance{
		Machine:  m,
		Workload: w,
		Dist:     dist,
		rates:    buildRates(w, m.System),
		meanSec:  dist.MeanSeconds(),
	}
}

// noiseScale globally scales every metric's per-run measurement noise.
// It is calibrated so that single-run profiles are genuinely unreliable
// (the premise of the paper's Figure 6: accuracy improves markedly as
// profiles aggregate more runs) while many-run profiles converge to the
// benchmark's stable signature.
const noiseScale = 1.0

// Run executes the benchmark once, producing its wall time and counter
// totals. Counter noise is correlated with the run's latent state: runs
// that land in a slow mode inflate the miss-type counters that cause the
// slowdown, and straggler runs inflate OS-event counters.
func (b *BenchInstance) Run(rng *randx.RNG) Run {
	seconds, latent := b.Dist.Sample(rng)
	out := Run{Seconds: seconds, Latent: latent, Metrics: make([]float64, len(b.Machine.specs))}

	// Mode excess: the relative slowdown of the mode the run landed in.
	modeExcess := b.Dist.Modes[latent.Mode].Center - 1
	// Frequency deviation shared by cycle-type counters this run.
	freqDev := -0.4 * b.Dist.Modes[latent.Mode].Sigma * latent.RelDev

	// Run-level noise factors shared by whole counter groups. Real
	// measurement noise is strongly correlated across counters (one
	// run's frequency residency, memory-zone placement, or daemon
	// activity shifts dozens of metrics together), which is why a
	// single-run profile cannot be rescued by averaging over metrics —
	// only more runs help (the paper's Figure 6).
	groupWork := math.Exp(0.08 * rng.StdNormal())
	groupTime := math.Exp(0.04 * rng.StdNormal())
	groupMiss := math.Exp(0.15 * rng.StdNormal())
	groupOS := math.Exp(0.25 * rng.StdNormal())

	for i, spec := range b.Machine.specs {
		var count float64
		switch spec.kind {
		case clockKind:
			switch b.Machine.System.MetricNames[i] {
			case "duration_time":
				count = seconds * 1e9 // nanoseconds
			default: // task-clock, cpu-clock (milliseconds of CPU time)
				count = b.rates.activeCores * seconds * 1e3
			}
			out.Metrics[i] = count
			continue
		case workKind:
			// Fixed work: total independent of how long the run took.
			count = spec.rate(b.rates) * b.meanSec * groupWork
		case timeKind:
			count = spec.rate(b.rates) * seconds * groupTime
		case missKind:
			count = spec.rate(b.rates) * b.meanSec * (1 + spec.modeSens*6*modeExcess) * groupMiss
		case osKind:
			count = spec.rate(b.rates) * seconds * groupOS
			if latent.Tail {
				count *= 1 + spec.tailSens*6
			}
		}
		if spec.modeSens > 0 && spec.kind == timeKind {
			count *= 1 + spec.modeSens*4*modeExcess
		}
		if spec.freqSens > 0 {
			count *= math.Exp(spec.freqSens * freqDev)
		}
		if spec.noise > 0 {
			count *= math.Exp(noiseScale * spec.noise * rng.StdNormal())
		}
		out.Metrics[i] = count
	}
	return out
}

// RunN executes the benchmark n times.
func (b *BenchInstance) RunN(rng *randx.RNG, n int) []Run {
	out := make([]Run, n)
	for i := range out {
		out[i] = b.Run(rng)
	}
	return out
}

// Clone returns a deep copy of the run (the Metrics slice is copied),
// so mutating the clone — e.g. fault injection — cannot alias the
// original record.
func (r Run) Clone() Run {
	out := r
	out.Metrics = append([]float64(nil), r.Metrics...)
	return out
}

// CloneRuns deep-copies a run set.
func CloneRuns(runs []Run) []Run {
	out := make([]Run, len(runs))
	for i := range runs {
		out[i] = runs[i].Clone()
	}
	return out
}

// Seconds extracts the wall times from a run set.
func Seconds(runs []Run) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r.Seconds
	}
	return out
}
